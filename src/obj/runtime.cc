#include "obj/runtime.h"

#include <algorithm>

#include "common/log.h"

namespace khz::obj {

using consistency::LockContext;
using consistency::LockMode;
using net::Message;
using net::MsgType;

ObjectRuntime::ObjectRuntime(core::Node& node) : node_(node) {
  node_.set_obj_invoke_handler(
      [this](const Message& m) { on_invoke_req(m); });
}

ObjectRuntime::~ObjectRuntime() { node_.set_obj_invoke_handler(nullptr); }

void ObjectRuntime::register_type(ObjectType type) {
  types_[type.name] = std::move(type);
}

std::uint64_t ObjectRuntime::region_size(std::uint32_t capacity) const {
  // Header (magic, type string, capacity, state_len) + state capacity,
  // rounded up to whole pages.
  const std::uint64_t raw = 4 + 4 + 64 + 4 + 4 + capacity;
  return (raw + kDefaultPageSize - 1) / kDefaultPageSize * kDefaultPageSize;
}

void ObjectRuntime::create(const std::string& type,
                           const Bytes& initial_state,
                           std::uint32_t capacity,
                           const core::RegionAttrs& attrs, CreateCb cb) {
  if (!types_.contains(type) || type.size() > 64 ||
      initial_state.size() > capacity) {
    cb(ErrorCode::kBadArgument);
    return;
  }
  const std::uint64_t size = region_size(capacity);
  node_.reserve(size, attrs, [this, type, initial_state, capacity, size,
                              cb = std::move(cb)](
                                 Result<GlobalAddress> base) mutable {
    if (!base) {
      cb(base.error());
      return;
    }
    const GlobalAddress addr = base.value();
    node_.allocate({addr, size}, [this, addr, size, type, initial_state,
                                  capacity,
                                  cb = std::move(cb)](Status s) mutable {
      if (!s.ok()) {
        cb(s.error());
        return;
      }
      node_.lock({addr, size}, LockMode::kWrite,
                 [this, addr, capacity, type, initial_state,
                  cb = std::move(cb)](Result<LockContext> ctx) mutable {
                   if (!ctx) {
                     cb(ctx.error());
                     return;
                   }
                   Encoder e;
                   e.u32(kMagic);
                   e.str(type);
                   e.u32(capacity);
                   e.bytes(initial_state);
                   const Status ws = node_.write(ctx.value(), 0, e.data());
                   node_.unlock(ctx.value());
                   if (!ws.ok()) {
                     cb(ws.error());
                     return;
                   }
                   cb(ObjRef{addr, capacity});
                 });
    });
  });
}

Result<Bytes> ObjectRuntime::execute(const LockContext& ctx,
                                     const std::string& method,
                                     const Bytes& args, bool* out_mutating) {
  auto raw = node_.read(ctx, 0, ctx.range.size);
  if (!raw) return raw.error();
  Decoder d(raw.value());
  if (d.u32() != kMagic) return ErrorCode::kCorrupt;
  const std::string type = d.str();
  const std::uint32_t capacity = d.u32();
  Bytes state = d.bytes();
  if (!d.ok()) return ErrorCode::kCorrupt;

  auto tit = types_.find(type);
  if (tit == types_.end()) return ErrorCode::kNotFound;
  auto mit = tit->second.methods.find(method);
  if (mit == tit->second.methods.end()) return ErrorCode::kNotFound;
  if (out_mutating != nullptr) *out_mutating = mit->second.mutating;

  auto result = mit->second.fn(state, args);
  if (!result) return result;

  if (mit->second.mutating) {
    if (state.size() > capacity) return ErrorCode::kNoSpace;
    Encoder e;
    e.u32(kMagic);
    e.str(type);
    e.u32(capacity);
    e.bytes(state);
    const Status ws = node_.write(ctx, 0, e.data());
    if (!ws.ok()) return ws.error();
  }
  return result;
}

void ObjectRuntime::invoke_local(const ObjRef& ref, const std::string& method,
                                 const Bytes& args, InvokeCb cb) {
  // Lock mode follows the method's declared intent — the "transparently
  // inserted" locking of Section 4.2. We do not know the type before
  // reading the object, so consult the registered method by name across
  // types; default to a write lock when ambiguous.
  bool mutating = true;
  for (const auto& [_, type] : types_) {
    auto mit = type.methods.find(method);
    if (mit != type.methods.end()) {
      mutating = mit->second.mutating;
      break;
    }
  }
  const std::uint64_t size = region_size(ref.capacity);
  node_.lock({ref.addr, size},
             mutating ? LockMode::kWrite : LockMode::kRead,
             [this, method, args, cb = std::move(cb)](
                 Result<LockContext> ctx) mutable {
               if (!ctx) {
                 cb(ctx.error());
                 return;
               }
               auto result = execute(ctx.value(), method, args, nullptr);
               node_.unlock(ctx.value());
               ++stats_.local_invokes;
               cb(std::move(result));
             });
}

void ObjectRuntime::invoke_remote(NodeId target, const ObjRef& ref,
                                  const std::string& method,
                                  const Bytes& args, InvokeCb cb) {
  Encoder e;
  e.addr(ref.addr);
  e.u32(ref.capacity);
  e.str(method);
  e.bytes(args);
  ++stats_.remote_invokes;
  node_.app_rpc(target, MsgType::kObjInvokeReq, std::move(e).take(),
                [cb = std::move(cb)](bool ok, Decoder& d) mutable {
                  if (!ok) {
                    cb(ErrorCode::kUnreachable);
                    return;
                  }
                  const auto err = static_cast<ErrorCode>(d.u8());
                  if (err != ErrorCode::kOk) {
                    cb(err);
                    return;
                  }
                  cb(d.bytes());
                });
}

void ObjectRuntime::on_invoke_req(const Message& msg) {
  Decoder d(msg.payload);
  ObjRef ref;
  ref.addr = d.addr();
  ref.capacity = d.u32();
  const std::string method = d.str();
  const Bytes args = d.bytes();
  if (!d.ok()) return;
  // Execute locally on behalf of the caller and ship the result back.
  Message req = msg;  // keep rpc correlation for the deferred response
  invoke_local(ref, method, args, [this, req](Result<Bytes> r) {
    ++stats_.remote_served;
    --stats_.local_invokes;  // bookkeeping: counted as remote_served instead
    Encoder e;
    e.u8(static_cast<std::uint8_t>(r.ok() ? ErrorCode::kOk : r.error()));
    e.bytes(r.ok() ? r.value() : Bytes{});
    node_.app_respond(req, MsgType::kObjInvokeResp, std::move(e).take());
  });
}

void ObjectRuntime::destroy(const ObjRef& ref, DestroyCb cb) {
  const std::uint64_t size = region_size(ref.capacity);
  node_.deallocate({ref.addr, size}, [this, ref, cb = std::move(cb)](
                                         Status s) mutable {
    if (!s.ok()) {
      cb(s);
      return;
    }
    node_.unreserve(ref.addr, std::move(cb));
  });
}

void ObjectRuntime::invoke(const ObjRef& ref, const std::string& method,
                           const Bytes& args, InvokePolicy policy,
                           InvokeCb cb) {
  if (policy == InvokePolicy::kAlwaysLocal) {
    invoke_local(ref, method, args, std::move(cb));
    return;
  }
  // "It also could use location information exported from Khazana to
  // decide if it is more efficient to load a local copy of the object or
  // perform a remote invocation of the object on a node where it is
  // already physically instantiated."
  node_.locate(ref.addr, [this, ref, method, args, policy,
                          cb = std::move(cb)](
                             Result<std::vector<NodeId>> holders) mutable {
    const NodeId self = node_.id();
    bool here = false;
    NodeId remote_target = kNoNode;
    if (holders) {
      for (NodeId n : holders.value()) {
        if (n == self) here = true;
      }
      for (NodeId n : holders.value()) {
        if (n != self) {
          remote_target = n;
          break;
        }
      }
    }
    const bool small = ref.capacity <= kReplicateThreshold;
    const bool go_local =
        policy == InvokePolicy::kAlwaysLocal ||
        (policy == InvokePolicy::kAuto && (here || small)) ||
        remote_target == kNoNode;
    if (go_local && policy != InvokePolicy::kAlwaysRemote) {
      invoke_local(ref, method, args, std::move(cb));
    } else if (remote_target != kNoNode) {
      invoke_remote(remote_target, ref, method, args, std::move(cb));
    } else {
      invoke_local(ref, method, args, std::move(cb));
    }
  });
}

}  // namespace khz::obj
