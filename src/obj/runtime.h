// Distributed object runtime (paper, Section 4.2).
//
// "To build a distributed object runtime system on top of Khazana, we plan
// to use Khazana as the repository for object data and for maintaining
// location information related to each object. The object runtime layer is
// responsible for determining the degree of consistency needed for each
// object, ensuring that the appropriate locking and data access operations
// are inserted (transparently) into the object code, and determining when
// to create a local replica of an object rather than using RPC to invoke a
// remote instance of the object."
//
// Objects are typed blobs living in their own Khazana regions; methods are
// registered per type and run against the object state under the
// appropriate Khazana lock (read lock for const methods, write lock for
// mutators — the "transparently inserted" locking). invoke() implements the
// replicate-vs-RPC decision using Khazana's explicit location query:
// invoke locally when a replica is already here or the object is small
// enough that replicating it pays off, otherwise ship the invocation to a
// node that holds a copy.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/node.h"

namespace khz::obj {

/// A method body: reads `args`, may mutate `state` (only honored for
/// mutating methods), returns the result payload.
using MethodFn = std::function<Result<Bytes>(Bytes& state, const Bytes& args)>;

struct Method {
  MethodFn fn;
  bool mutating = true;
};

struct ObjectType {
  std::string name;
  std::map<std::string, Method> methods;
};

/// Reference to a distributed object: its Khazana address is its identity
/// ("Khazana provides location transparency for the object by associating
/// with each object a unique identifying Khazana address").
struct ObjRef {
  GlobalAddress addr;
  std::uint32_t capacity = 0;  // state capacity in bytes
};

enum class InvokePolicy : std::uint8_t {
  kAuto = 0,      // location-driven decision (the paper's design)
  kAlwaysLocal,   // always replicate + run locally
  kAlwaysRemote,  // always RPC to a holder
};

struct RuntimeStats {
  std::uint64_t local_invokes = 0;
  std::uint64_t remote_invokes = 0;
  std::uint64_t remote_served = 0;  // invocations executed for peers
};

class ObjectRuntime {
 public:
  /// Objects whose state fits in this many bytes are replicated rather
  /// than invoked remotely under kAuto.
  static constexpr std::uint32_t kReplicateThreshold = 4096;

  explicit ObjectRuntime(core::Node& node);
  ~ObjectRuntime();

  ObjectRuntime(const ObjectRuntime&) = delete;
  ObjectRuntime& operator=(const ObjectRuntime&) = delete;

  /// Registers a type; every node that executes methods of this type must
  /// register it ("Methods are invoked by downloading the code to be
  /// executed along with the object instance" — in this reproduction the
  /// code is pre-registered rather than shipped).
  void register_type(ObjectType type);

  using CreateCb = std::function<void(Result<ObjRef>)>;
  using InvokeCb = std::function<void(Result<Bytes>)>;

  /// Creates an object with initial state and capacity for growth;
  /// `attrs` carries the per-object consistency/replication knobs.
  void create(const std::string& type, const Bytes& initial_state,
              std::uint32_t capacity, const core::RegionAttrs& attrs,
              CreateCb cb);

  /// Invokes `method` with `args`; the policy decides local vs remote.
  void invoke(const ObjRef& ref, const std::string& method,
              const Bytes& args, InvokePolicy policy, InvokeCb cb);

  using DestroyCb = std::function<void(Status)>;
  /// Destroys the object: releases its storage and reservation. The paper
  /// leaves reference counting / GC to the object veneer (Section 4.2);
  /// this is the primitive such a veneer would call when the count hits
  /// zero.
  void destroy(const ObjRef& ref, DestroyCb cb);

  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }

 private:
  struct Header {
    std::string type;
    std::uint32_t capacity = 0;
    std::uint32_t state_len = 0;
  };
  static constexpr std::uint32_t kMagic = 0x4b4f424a;  // "KOBJ"

  [[nodiscard]] std::uint64_t region_size(std::uint32_t capacity) const;

  void invoke_local(const ObjRef& ref, const std::string& method,
                    const Bytes& args, InvokeCb cb);
  void invoke_remote(NodeId target, const ObjRef& ref,
                     const std::string& method, const Bytes& args,
                     InvokeCb cb);
  void on_invoke_req(const net::Message& msg);

  /// Executes under an already-granted lock context.
  Result<Bytes> execute(const consistency::LockContext& ctx,
                        const std::string& method, const Bytes& args,
                        bool* out_mutating);

  core::Node& node_;
  std::map<std::string, ObjectType> types_;
  RuntimeStats stats_;
};

}  // namespace khz::obj
