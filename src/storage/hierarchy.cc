#include "storage/hierarchy.h"

namespace khz::storage {

StorageHierarchy::StorageHierarchy(std::size_t ram_capacity_pages,
                                   std::shared_ptr<DiskStore> disk)
    : ram_(ram_capacity_pages), disk_(std::move(disk)) {}

void StorageHierarchy::put(const GlobalAddress& page, Bytes data) {
  ram_.put(page, std::move(data));
  enforce_capacity();
}

void StorageHierarchy::enforce_capacity() {
  // Victimize until RAM is back under its capacity or no victim is
  // eligible (everything pinned / every drop vetoed).
  //
  // Disk-bound victims are *batched*: each is pinned while selection runs
  // (so pick_victim() proposes someone else) and the whole set reaches the
  // segment log in one put_batch — one store-lock acquisition and one
  // contiguous append run instead of a file write per page. Vetoed pages
  // are likewise pinned for the round; all pins are released before
  // returning.
  std::vector<GlobalAddress> vetoed;
  std::vector<PageWrite> to_disk;
  std::size_t queued_fresh = 0;  // batch members not already on disk
  const auto over = [&] {
    return ram_.capacity() != 0 &&
           ram_.size() - to_disk.size() > ram_.capacity();
  };
  const auto disk_has_room = [&] {
    return disk_ && (disk_->capacity() == 0 ||
                     disk_->size() + queued_fresh < disk_->capacity());
  };
  while (over()) {
    const auto victim = ram_.pick_victim();
    if (!victim) break;  // all pinned: allow temporary over-capacity
    const Bytes* data = ram_.peek(*victim);
    if (data == nullptr) break;
    if (disk_has_room()) {
      // RAM -> disk victimization, deferred into the batch below.
      if (!disk_->contains(*victim)) ++queued_fresh;
      to_disk.push_back(PageWrite{*victim, *data});
      ram_.pin(*victim);
      continue;
    }
    // Page must leave the node: consult the consistency layer.
    if (!evict_hook_ || evict_hook_(*victim, *data)) {
      stats_.evictions++;
      ram_.erase(*victim);
      if (disk_) disk_->erase(*victim);
      continue;
    }
    stats_.eviction_vetoes++;
    ram_.pin(*victim);
    vetoed.push_back(*victim);
  }
  if (!to_disk.empty()) {
    std::vector<GlobalAddress> addrs;
    addrs.reserve(to_disk.size());
    for (const PageWrite& w : to_disk) addrs.push_back(w.addr);
    if (disk_->put_batch(std::move(to_disk)).ok()) {
      for (const GlobalAddress& page : addrs) {
        stats_.ram_to_disk++;
        ram_.unpin(page);
        ram_.erase(page);
      }
    } else {
      // Disk refused the batch (raced to full): leave the pages resident
      // over capacity rather than lose data.
      for (const GlobalAddress& page : addrs) ram_.unpin(page);
    }
  }
  for (const auto& page : vetoed) ram_.unpin(page);
}

const Bytes* StorageHierarchy::get(const GlobalAddress& page) {
  if (const Bytes* hit = ram_.get(page)) {
    stats_.ram_hits++;
    return hit;
  }
  if (disk_) {
    if (auto data = disk_->get(page)) {
      stats_.disk_hits++;
      stats_.disk_promotions++;
      ram_.put(page, std::move(*data));
      enforce_capacity();
      return ram_.peek(page);
    }
  }
  stats_.misses++;
  return nullptr;
}

Bytes* StorageHierarchy::get_mutable(const GlobalAddress& page) {
  if (Bytes* hit = ram_.get_mutable(page)) {
    stats_.ram_hits++;
    return hit;
  }
  if (disk_) {
    if (auto data = disk_->get(page)) {
      stats_.disk_hits++;
      stats_.disk_promotions++;
      ram_.put(page, std::move(*data));
      enforce_capacity();
      return ram_.get_mutable(page);
    }
  }
  stats_.misses++;
  return nullptr;
}

HitLevel StorageHierarchy::probe(const GlobalAddress& page) const {
  if (ram_.peek(page) != nullptr) return HitLevel::kRam;
  if (disk_ && disk_->contains(page)) return HitLevel::kDisk;
  return HitLevel::kMiss;
}

bool StorageHierarchy::contains(const GlobalAddress& page) const {
  return probe(page) != HitLevel::kMiss;
}

void StorageHierarchy::erase(const GlobalAddress& page) {
  ram_.erase(page);
  if (disk_) disk_->erase(page);
}

Status StorageHierarchy::flush(const GlobalAddress& page) {
  if (!disk_) return {};
  const Bytes* data = ram_.peek(page);
  if (data == nullptr) {
    // Already only on disk (or absent); nothing to write back.
    return disk_->contains(page) ? Status{} : Status{ErrorCode::kNotFound};
  }
  return disk_->put(page, *data);
}

}  // namespace khz::storage
