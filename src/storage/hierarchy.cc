#include "storage/hierarchy.h"

namespace khz::storage {

StorageHierarchy::StorageHierarchy(std::size_t ram_capacity_pages,
                                   std::shared_ptr<DiskStore> disk)
    : ram_(ram_capacity_pages), disk_(std::move(disk)) {}

void StorageHierarchy::put(const GlobalAddress& page, Bytes data) {
  ram_.put(page, std::move(data));
  enforce_capacity();
}

void StorageHierarchy::enforce_capacity() {
  // Victimize until RAM is back under its capacity or no victim is
  // eligible (everything pinned / every drop vetoed). Vetoed pages are
  // pinned for the duration of this round so pick_victim() proposes
  // someone else; the pins are released before returning.
  std::vector<GlobalAddress> vetoed;
  while (ram_.over_capacity()) {
    const auto victim = ram_.pick_victim();
    if (!victim) break;  // all pinned: allow temporary over-capacity
    const Bytes* data = ram_.peek(*victim);
    if (data == nullptr) break;
    if (disk_ && !disk_->full()) {
      // RAM -> disk victimization.
      if (disk_->put(*victim, *data).ok()) {
        stats_.ram_to_disk++;
        ram_.erase(*victim);
        continue;
      }
    }
    // Page must leave the node: consult the consistency layer.
    if (!evict_hook_ || evict_hook_(*victim, *data)) {
      stats_.evictions++;
      ram_.erase(*victim);
      if (disk_) disk_->erase(*victim);
      continue;
    }
    stats_.eviction_vetoes++;
    ram_.pin(*victim);
    vetoed.push_back(*victim);
  }
  for (const auto& page : vetoed) ram_.unpin(page);
}

const Bytes* StorageHierarchy::get(const GlobalAddress& page) {
  if (const Bytes* hit = ram_.get(page)) {
    stats_.ram_hits++;
    return hit;
  }
  if (disk_) {
    if (auto data = disk_->get(page)) {
      stats_.disk_hits++;
      stats_.disk_promotions++;
      ram_.put(page, std::move(*data));
      enforce_capacity();
      return ram_.peek(page);
    }
  }
  stats_.misses++;
  return nullptr;
}

Bytes* StorageHierarchy::get_mutable(const GlobalAddress& page) {
  if (Bytes* hit = ram_.get_mutable(page)) {
    stats_.ram_hits++;
    return hit;
  }
  if (disk_) {
    if (auto data = disk_->get(page)) {
      stats_.disk_hits++;
      stats_.disk_promotions++;
      ram_.put(page, std::move(*data));
      enforce_capacity();
      return ram_.get_mutable(page);
    }
  }
  stats_.misses++;
  return nullptr;
}

HitLevel StorageHierarchy::probe(const GlobalAddress& page) const {
  if (ram_.peek(page) != nullptr) return HitLevel::kRam;
  if (disk_ && disk_->contains(page)) return HitLevel::kDisk;
  return HitLevel::kMiss;
}

bool StorageHierarchy::contains(const GlobalAddress& page) const {
  return probe(page) != HitLevel::kMiss;
}

void StorageHierarchy::erase(const GlobalAddress& page) {
  ram_.erase(page);
  if (disk_) disk_->erase(page);
}

Status StorageHierarchy::flush(const GlobalAddress& page) {
  if (!disk_) return {};
  const Bytes* data = ram_.peek(page);
  if (data == nullptr) {
    // Already only on disk (or absent); nothing to write back.
    return disk_->contains(page) ? Status{} : Status{ErrorCode::kNotFound};
  }
  return disk_->put(page, *data);
}

}  // namespace khz::storage
