// RAM level of the local storage hierarchy.
//
// A bounded page cache with LRU victimization. Pinned pages (locked by a
// client) are never chosen as victims, matching Section 3.4: "If local
// storage is full, it can choose to victimize unlocked pages."
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/global_address.h"
#include "common/serialize.h"

namespace khz::storage {

class MemoryStore {
 public:
  /// capacity_pages == 0 means unbounded.
  explicit MemoryStore(std::size_t capacity_pages = 0)
      : capacity_(capacity_pages) {}

  /// Inserts or overwrites. Returns false when the store is full and every
  /// resident page is pinned (caller must victimize through the hierarchy).
  bool put(const GlobalAddress& page, Bytes data);

  /// Returns the page contents and refreshes its LRU position.
  [[nodiscard]] const Bytes* get(const GlobalAddress& page);

  /// Peek without touching LRU order.
  [[nodiscard]] const Bytes* peek(const GlobalAddress& page) const;

  /// In-place mutation access (for writes under a lock). Refreshes LRU.
  [[nodiscard]] Bytes* get_mutable(const GlobalAddress& page);

  bool erase(const GlobalAddress& page);
  [[nodiscard]] bool contains(const GlobalAddress& page) const {
    return map_.contains(page);
  }

  void pin(const GlobalAddress& page);
  void unpin(const GlobalAddress& page);

  /// Least recently used unpinned page, if any.
  [[nodiscard]] std::optional<GlobalAddress> pick_victim() const;

  [[nodiscard]] bool over_capacity() const {
    return capacity_ != 0 && map_.size() > capacity_;
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t pages) { capacity_ = pages; }

 private:
  struct Entry {
    Bytes data;
    std::uint32_t pins = 0;
    std::list<GlobalAddress>::iterator lru_pos;
  };

  void touch(Entry& e, const GlobalAddress& page);

  std::size_t capacity_;
  std::unordered_map<GlobalAddress, Entry> map_;
  std::list<GlobalAddress> lru_;  // front = most recent
};

}  // namespace khz::storage
