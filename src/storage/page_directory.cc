#include "storage/page_directory.h"

#include <algorithm>

namespace khz::storage {

PageInfo& PageDirectory::ensure(const GlobalAddress& page) {
  auto [it, inserted] = entries_.try_emplace(page);
  if (inserted) it->second.addr = page;
  return it->second;
}

PageInfo* PageDirectory::find(const GlobalAddress& page) {
  auto it = entries_.find(page);
  return it == entries_.end() ? nullptr : &it->second;
}

const PageInfo* PageDirectory::find(const GlobalAddress& page) const {
  auto it = entries_.find(page);
  return it == entries_.end() ? nullptr : &it->second;
}

void PageDirectory::erase(const GlobalAddress& page) { entries_.erase(page); }

std::vector<GlobalAddress> PageDirectory::pages() const {
  std::vector<GlobalAddress> out;
  out.reserve(entries_.size());
  for (const auto& [addr, _] : entries_) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<GlobalAddress> PageDirectory::homed_pages() const {
  std::vector<GlobalAddress> out;
  for (const auto& [addr, info] : entries_) {
    if (info.homed_locally) out.push_back(addr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace khz::storage
