#include "storage/memory_store.h"

namespace khz::storage {

void MemoryStore::touch(Entry& e, const GlobalAddress& page) {
  lru_.erase(e.lru_pos);
  lru_.push_front(page);
  e.lru_pos = lru_.begin();
}

bool MemoryStore::put(const GlobalAddress& page, Bytes data) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    it->second.data = std::move(data);
    touch(it->second, page);
    return true;
  }
  lru_.push_front(page);
  Entry e;
  e.data = std::move(data);
  e.lru_pos = lru_.begin();
  map_.emplace(page, std::move(e));
  return true;
}

const Bytes* MemoryStore::get(const GlobalAddress& page) {
  auto it = map_.find(page);
  if (it == map_.end()) return nullptr;
  touch(it->second, page);
  return &it->second.data;
}

const Bytes* MemoryStore::peek(const GlobalAddress& page) const {
  auto it = map_.find(page);
  return it == map_.end() ? nullptr : &it->second.data;
}

Bytes* MemoryStore::get_mutable(const GlobalAddress& page) {
  auto it = map_.find(page);
  if (it == map_.end()) return nullptr;
  touch(it->second, page);
  return &it->second.data;
}

bool MemoryStore::erase(const GlobalAddress& page) {
  auto it = map_.find(page);
  if (it == map_.end()) return false;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
  return true;
}

void MemoryStore::pin(const GlobalAddress& page) {
  auto it = map_.find(page);
  if (it != map_.end()) ++it->second.pins;
}

void MemoryStore::unpin(const GlobalAddress& page) {
  auto it = map_.find(page);
  if (it != map_.end() && it->second.pins > 0) --it->second.pins;
}

std::optional<GlobalAddress> MemoryStore::pick_victim() const {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto entry = map_.find(*it);
    if (entry != map_.end() && entry->second.pins == 0) return *it;
  }
  return std::nullopt;
}

}  // namespace khz::storage
