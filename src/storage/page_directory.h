// Per-node page directory (paper, Section 3.4).
//
// "The local storage subsystem on each node maintains a page directory,
// indexed by global addresses, that contains information about individual
// pages of global regions including the list of nodes sharing this page."
//
// The directory holds authoritative (persistent) entries for pages homed
// locally and cached entries for remotely homed pages. Consistency managers
// read and update the sharer/owner fields; the storage hierarchy updates
// residency; the lock layer updates hold counts.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/global_address.h"
#include "common/types.h"

namespace khz::storage {

/// Local residency/validity of a page copy, mirroring a classic
/// invalidation-based DSM state machine.
enum class PageState : std::uint8_t {
  kInvalid = 0,  // no valid local copy
  kShared,       // valid read-only copy; others may share
  kExclusive,    // sole writable copy (CREW owner)
};

/// Everything a node knows about one 4 KiB (or per-region-sized) page.
/// Entries for locally homed pages are persistent metadata — their
/// versions are journaled and recovered (see docs/recovery.md); entries
/// for remote pages are cache state and may be dropped at any time.
struct PageInfo {
  GlobalAddress addr;
  /// Node that keeps the directory entry for this page (paper: region home).
  NodeId home = kNoNode;
  /// Current CREW owner (holder of the exclusive/most-recent copy).
  NodeId owner = kNoNode;
  /// Nodes believed to hold copies. Authoritative only at the home node.
  std::set<NodeId> sharers;
  PageState state = PageState::kInvalid;
  Version version = 0;
  bool dirty = false;
  /// True when this node homes the page (entry is persistent metadata).
  bool homed_locally = false;
  /// Outstanding lock holds on this node, by mode.
  std::uint32_t read_holds = 0;
  std::uint32_t write_holds = 0;
  Micros last_access = 0;

  [[nodiscard]] bool locked() const { return read_holds + write_holds > 0; }
};

/// The page directory proper: `GlobalAddress → PageInfo`. Single-threaded
/// like the rest of the node core — all access happens on the node's
/// executor, so there is no internal locking. Returned pointers/references
/// are invalidated by ensure() / erase() (unordered_map semantics).
class PageDirectory {
 public:
  /// Returns the entry, creating a default one (kInvalid, no home) if
  /// absent.
  PageInfo& ensure(const GlobalAddress& page);

  /// Returns the entry or nullptr.
  [[nodiscard]] PageInfo* find(const GlobalAddress& page);
  [[nodiscard]] const PageInfo* find(const GlobalAddress& page) const;

  /// Drops the entry entirely (region freed or cache entry discarded).
  /// No-op if absent.
  void erase(const GlobalAddress& page);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// All pages currently tracked (sorted, for deterministic iteration).
  [[nodiscard]] std::vector<GlobalAddress> pages() const;

  /// Pages homed locally (the persistent subset).
  [[nodiscard]] std::vector<GlobalAddress> homed_pages() const;

 private:
  std::unordered_map<GlobalAddress, PageInfo> entries_;
};

}  // namespace khz::storage
