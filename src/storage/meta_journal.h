// Per-node write-ahead record of metadata mutations.
//
// The node's region descriptors and the persistent slice of its page
// directory must survive a crash: a rebooted node rejoins with its hosted
// regions intact instead of empty (DESIGN.md, docs/recovery.md). Rewriting
// the full metadata snapshot on every mutation is O(state); this journal
// makes each mutation an O(1) append. Recovery = load the last snapshot
// ("node_state" meta blob), then replay the journal over it. The journal is
// periodically compacted back into a fresh snapshot by the owner.
//
// Record framing: u32 LE payload length, u32 LE FNV-1a checksum, payload.
// Replay stops at the first truncated or corrupt record — exactly what a
// crash mid-append leaves behind — so a torn tail never poisons recovery.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>

#include "common/result.h"
#include "common/serialize.h"

namespace khz::storage {

class MetaJournal {
 public:
  /// Opens (creating if absent) the journal file at `path` for appending.
  explicit MetaJournal(std::filesystem::path path);

  MetaJournal(const MetaJournal&) = delete;
  MetaJournal& operator=(const MetaJournal&) = delete;

  /// Appends one framed record and flushes it to the OS.
  Status append(const Bytes& record);

  /// Invokes `cb` for every intact record, oldest first; returns how many
  /// were replayed. Safe to call on a journal that is also open for append
  /// (replay reads an independent handle).
  std::size_t replay(const std::function<void(const Bytes&)>& cb) const;

  /// Truncates the journal to zero records. The caller writes a snapshot
  /// covering everything the journal recorded *before* calling this.
  Status reset();

  /// Records appended since open/reset — the owner's compaction trigger.
  [[nodiscard]] std::size_t appended() const { return appended_; }

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t appended_ = 0;
};

}  // namespace khz::storage
