// Per-node write-ahead record of metadata mutations.
//
// The node's region descriptors and the persistent slice of its page
// directory must survive a crash: a rebooted node rejoins with its hosted
// regions intact instead of empty (DESIGN.md, docs/recovery.md). Rewriting
// the full metadata snapshot on every mutation is O(state); this journal
// makes each mutation an O(1) append. Recovery = load the last snapshot
// ("node_state" meta blob), then replay the journal over it. The journal is
// periodically compacted back into a fresh snapshot by the owner.
//
// Record framing: u32 LE payload length, u32 LE FNV-1a checksum, payload.
// Replay stops at the first truncated or corrupt record — exactly what a
// crash mid-append leaves behind — so a torn tail never poisons recovery.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>

#include "common/result.h"
#include "common/serialize.h"

namespace khz::storage {

class MetaJournal {
 public:
  /// Opens (creating if absent) the journal file at `path` for appending.
  explicit MetaJournal(std::filesystem::path path);
  ~MetaJournal();

  MetaJournal(const MetaJournal&) = delete;
  MetaJournal& operator=(const MetaJournal&) = delete;

  /// Appends one framed record and flushes it to the OS. With
  /// sync-on-commit enabled (and group commit off) the record is also
  /// fdatasync'd to stable storage before append() returns, so an
  /// acknowledged metadata mutation survives power loss, not just a
  /// process crash. Under group commit the fdatasync is deferred to the
  /// next sync() — one sync covers the whole batch.
  Status append(const Bytes& record);

  /// Enables (or disables) fdatasync-on-commit. Off by default: the sim
  /// worlds journal thousands of records per test and only need
  /// crash-of-the-process durability, which flush() already gives them.
  /// Production-profile nodes (NodeConfig::sync_metadata) turn it on.
  void set_sync_on_commit(bool on) { sync_on_commit_ = on; }
  [[nodiscard]] bool sync_on_commit() const { return sync_on_commit_; }

  /// Under group commit append() stops syncing inline; DiskStore::commit()
  /// calls sync() to fdatasync the accumulated records in one shot.
  void set_group_commit(bool on) { group_commit_ = on; }

  /// fdatasyncs any records appended since the last sync (no-op unless
  /// sync-on-commit is enabled and something is pending). The group-commit
  /// drain point.
  Status sync();

  /// Invokes `cb` for every intact record, oldest first; returns how many
  /// were replayed. Safe to call on a journal that is also open for append
  /// (replay reads an independent handle).
  std::size_t replay(const std::function<void(const Bytes&)>& cb) const;

  /// Truncates the journal to zero records. The caller writes a snapshot
  /// covering everything the journal recorded *before* calling this.
  Status reset();

  /// Records appended since open/reset — the owner's compaction trigger.
  [[nodiscard]] std::size_t appended() const {
    std::lock_guard lock(mu_);
    return appended_;
  }

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  /// The fd used for fdatasync. std::ofstream hides its descriptor, so the
  /// sync path opens a second POSIX handle onto the same inode (lazily, on
  /// the first synced append) and syncs through that after flush().
  [[nodiscard]] bool sync_now();

  std::filesystem::path path_;
  /// Guards the stream and the dirty flag: lane threads append while the
  /// owner's group-commit timer syncs.
  mutable std::mutex mu_;
  std::ofstream out_;
  std::size_t appended_ = 0;
  bool sync_on_commit_ = false;
  bool group_commit_ = false;
  bool dirty_ = false;  // records flushed but not yet fdatasync'd
  int sync_fd_ = -1;
};

}  // namespace khz::storage
