#include "storage/meta_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include "common/log.h"

namespace khz::storage {

namespace {

// Records are small (a descriptor, an address + version); anything huge is
// torn-tail garbage, not data.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

std::uint32_t fnv1a(const Bytes& data) {
  std::uint32_t h = 2166136261u;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

void put_u32(std::ofstream& out, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out.write(buf, 4);
}

bool read_u32(std::ifstream& in, std::uint32_t& v) {
  char buf[4];
  in.read(buf, 4);
  if (!in) return false;
  v = static_cast<std::uint8_t>(buf[0]) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[2])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[3])) << 24);
  return true;
}

}  // namespace

MetaJournal::MetaJournal(std::filesystem::path path) : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    KHZ_ERROR("journal: cannot open %s for append", path_.c_str());
  }
}

MetaJournal::~MetaJournal() {
  if (sync_fd_ >= 0) ::close(sync_fd_);
}

bool MetaJournal::sync_now() {
  if (sync_fd_ < 0) {
    // Same inode as out_: appends stay on the stream (buffered framing),
    // durability goes through this descriptor. The journal file is only
    // ever truncated in place (reset()), never replaced, so the fd stays
    // valid across compactions.
    sync_fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
    if (sync_fd_ < 0) {
      KHZ_ERROR("journal: cannot open %s for fdatasync", path_.c_str());
      return false;
    }
  }
  return ::fdatasync(sync_fd_) == 0;
}

Status MetaJournal::append(const Bytes& record) {
  std::lock_guard lock(mu_);
  if (!out_) return ErrorCode::kInternal;
  put_u32(out_, static_cast<std::uint32_t>(record.size()));
  put_u32(out_, fnv1a(record));
  out_.write(reinterpret_cast<const char*>(record.data()),
             static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) return ErrorCode::kInternal;
  if (sync_on_commit_) {
    if (group_commit_) {
      dirty_ = true;  // the next sync() covers this record
    } else if (!sync_now()) {
      return ErrorCode::kInternal;
    }
  }
  ++appended_;
  return {};
}

Status MetaJournal::sync() {
  std::lock_guard lock(mu_);
  if (!sync_on_commit_ || !dirty_) return {};
  dirty_ = false;
  return sync_now() ? Status{} : Status{ErrorCode::kInternal};
}

std::size_t MetaJournal::replay(
    const std::function<void(const Bytes&)>& cb) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;
  std::size_t n = 0;
  for (;;) {
    std::uint32_t len = 0;
    std::uint32_t sum = 0;
    if (!read_u32(in, len) || !read_u32(in, sum)) break;
    if (len > kMaxRecordBytes) break;
    Bytes payload(len);
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(len));
    if (!in) break;  // torn tail: the append was cut short by a crash
    if (fnv1a(payload) != sum) break;
    cb(payload);
    ++n;
  }
  return n;
}

Status MetaJournal::reset() {
  std::lock_guard lock(mu_);
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  const bool ok = static_cast<bool>(out_);
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::app);
  appended_ = 0;
  dirty_ = false;
  return ok && out_ ? Status{} : Status{ErrorCode::kInternal};
}

}  // namespace khz::storage
