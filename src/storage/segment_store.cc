#include "storage/segment_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/log.h"

namespace khz::storage {

namespace {

constexpr std::uint32_t kMagic = 0x4B5A5347;  // "KZSG"
constexpr std::uint8_t kKindPut = 1;
constexpr std::uint8_t kKindTombstone = 2;
// magic + kind + addr.hi + addr.lo + len + checksum.
constexpr std::uint64_t kHeaderBytes = 4 + 1 + 8 + 8 + 4 + 4;
// Pages are small; anything larger in a length field is torn-tail garbage.
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

/// write(2) until the whole span is on the fd (short writes, EINTR).
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ::ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SegmentStore::SegmentStore(std::filesystem::path dir, SegmentConfig cfg)
    : dir_(std::move(dir)), cfg_(cfg) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  std::lock_guard lock(mu_);
  // Rebuild the index: scan every segment in ascending id order so later
  // records win (newest state), as they would have at append time.
  std::vector<std::uint64_t> ids;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".seg") {
      continue;
    }
    try {
      ids.push_back(std::stoull(entry.path().stem().string(), nullptr, 16));
    } catch (const std::exception&) {
      // Not a segment file; leave it alone.
    }
  }
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    const std::uint64_t intact = scan_segment_locked(id);
    if (intact < segments_[id].size) {
      // Torn tail: a crash cut an append short. Drop the garbage so new
      // appends start from the last intact record.
      KHZ_WARN("segment %s: truncating torn tail at %llu (was %llu)",
               seg_path(id).c_str(), static_cast<unsigned long long>(intact),
               static_cast<unsigned long long>(segments_[id].size));
      std::filesystem::resize_file(seg_path(id), intact, ec);
      segments_[id].size = intact;
    }
  }
  open_head_locked(ids.empty() ? 0 : ids.back());
  update_gauge_locked();
}

SegmentStore::~SegmentStore() {
  std::lock_guard lock(mu_);
  // Flush (no sync): a destroyed store must leave a complete log on the
  // filesystem — sim-world "crash" destroys the Node, and restart tests
  // expect pre-crash pages back byte-identically.
  flush_buffer_locked();
  for (auto& [id, seg] : segments_) {
    if (seg.read_fd >= 0) ::close(seg.read_fd);
  }
  for (int fd : unsynced_fds_) ::close(fd);
  if (head_fd_ >= 0) ::close(head_fd_);
}

std::filesystem::path SegmentStore::seg_path(std::uint64_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.seg",
                static_cast<unsigned long long>(id));
  return dir_ / name;
}

void SegmentStore::open_head_locked(std::uint64_t id) {
  head_ = id;
  auto& seg = segments_[id];  // creates the entry for a fresh segment
  head_fd_ = ::open(seg_path(id).c_str(),
                    O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (head_fd_ < 0) {
    KHZ_ERROR("segment: cannot open %s for append", seg_path(id).c_str());
  }
  head_flushed_ = seg.size;
}

void SegmentStore::rotate_locked() {
  flush_buffer_locked();
  if (head_fd_ >= 0) {
    if (sync_on_commit_ && head_dirty_) {
      // The rotated-away file still holds uncommitted records; keep its fd
      // so the next group commit can fdatasync it.
      unsynced_fds_.push_back(head_fd_);
    } else {
      ::close(head_fd_);
    }
  }
  open_head_locked(head_ + 1);
  update_gauge_locked();
}

Status SegmentStore::append_locked(const GlobalAddress& addr,
                                   const Bytes* data) {
  if (head_fd_ < 0) return ErrorCode::kInternal;
  auto& head = segments_[head_];
  if (head.size >= cfg_.segment_bytes) {
    rotate_locked();
    return append_locked(addr, data);
  }
  const std::uint32_t len =
      data ? static_cast<std::uint32_t>(data->size()) : 0;
  Encoder e(std::move(buffer_));
  e.u32(kMagic);
  e.u8(data ? kKindPut : kKindTombstone);
  e.u64(addr.hi);
  e.u64(addr.lo);
  e.u32(len);
  e.u32(data ? fnv1a(data->data(), data->size()) : fnv1a(nullptr, 0));
  if (data) e.raw(*data);
  buffer_ = std::move(e).take();

  auto& seg = segments_[head_];
  drop_index_locked(addr);
  if (data) {
    index_[addr] = Locator{head_, seg.size + kHeaderBytes, len};
    seg.live_payload += len;
    ++pending_pages_;
  }
  seg.total_payload += len;
  seg.size += kHeaderBytes + len;
  pending_bytes_ += kHeaderBytes + len;
  head_dirty_ = true;
  if (buffer_.size() >= cfg_.flush_buffer_bytes) flush_buffer_locked();
  return {};
}

void SegmentStore::flush_buffer_locked() {
  if (buffer_.empty()) return;
  if (head_fd_ >= 0 && write_all(head_fd_, buffer_.data(), buffer_.size())) {
    head_flushed_ += buffer_.size();
  } else {
    KHZ_ERROR("segment: write to %s failed", seg_path(head_).c_str());
  }
  buffer_.clear();
}

void SegmentStore::drop_index_locked(const GlobalAddress& addr) {
  auto it = index_.find(addr);
  if (it == index_.end()) return;
  auto seg = segments_.find(it->second.seg);
  if (seg != segments_.end()) seg->second.live_payload -= it->second.len;
  index_.erase(it);
}

Status SegmentStore::put(const GlobalAddress& addr, const Bytes& data) {
  std::lock_guard lock(mu_);
  return append_locked(addr, &data);
}

Status SegmentStore::put_batch(std::vector<PageWrite> batch) {
  std::lock_guard lock(mu_);
  for (const PageWrite& w : batch) {
    if (Status s = append_locked(w.addr, &w.data); !s.ok()) return s;
  }
  return {};
}

bool SegmentStore::erase(const GlobalAddress& addr) {
  std::lock_guard lock(mu_);
  if (!index_.contains(addr)) return false;
  (void)append_locked(addr, nullptr);
  return true;
}

int SegmentStore::reader_locked(std::uint64_t id) {
  auto it = segments_.find(id);
  if (it == segments_.end()) return -1;
  if (it->second.read_fd < 0) {
    it->second.read_fd =
        ::open(seg_path(id).c_str(), O_RDONLY | O_CLOEXEC);
  }
  return it->second.read_fd;
}

std::optional<Bytes> SegmentStore::get(const GlobalAddress& addr) {
  std::lock_guard lock(mu_);
  auto it = index_.find(addr);
  if (it == index_.end()) return std::nullopt;
  const Locator loc = it->second;
  if (loc.seg == head_ && loc.offset + loc.len > head_flushed_) {
    // The record is still (partly) in the write-behind buffer; push it to
    // the file rather than stitching reads across buffer and fd.
    flush_buffer_locked();
  }
  const int fd = reader_locked(loc.seg);
  if (fd < 0) return std::nullopt;
  Bytes out(loc.len);
  std::size_t done = 0;
  while (done < out.size()) {
    const ::ssize_t r =
        ::pread(fd, out.data() + done, out.size() - done,
                static_cast<::off_t>(loc.offset + done));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return std::nullopt;
    done += static_cast<std::size_t>(r);
  }
  return out;
}

bool SegmentStore::contains(const GlobalAddress& addr) const {
  std::lock_guard lock(mu_);
  return index_.contains(addr);
}

std::size_t SegmentStore::live_pages() const {
  std::lock_guard lock(mu_);
  return index_.size();
}

std::vector<GlobalAddress> SegmentStore::scan() const {
  std::lock_guard lock(mu_);
  std::vector<GlobalAddress> out;
  out.reserve(index_.size());
  for (const auto& [addr, loc] : index_) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t SegmentStore::pending_bytes() const {
  std::lock_guard lock(mu_);
  return pending_bytes_;
}

std::uint64_t SegmentStore::pending_pages() const {
  std::lock_guard lock(mu_);
  return pending_pages_;
}

Status SegmentStore::commit() {
  std::lock_guard lock(mu_);
  return commit_locked();
}

Status SegmentStore::commit_locked() {
  if (buffer_.empty() && !head_dirty_ && unsynced_fds_.empty()) return {};
  flush_buffer_locked();
  if (group_commit_pages_ && pending_pages_ > 0) {
    group_commit_pages_->record(pending_pages_);
  }
  Status status;
  if (sync_on_commit_) {
    const std::uint64_t t0 = now_us();
    for (int fd : unsynced_fds_) {
      if (::fdatasync(fd) != 0) status = ErrorCode::kInternal;
      ::close(fd);
    }
    unsynced_fds_.clear();
    if (head_dirty_ && head_fd_ >= 0 && ::fdatasync(head_fd_) != 0) {
      status = ErrorCode::kInternal;
    }
    if (fsync_us_) fsync_us_->record(now_us() - t0);
  } else {
    for (int fd : unsynced_fds_) ::close(fd);
    unsynced_fds_.clear();
  }
  head_dirty_ = false;
  pending_bytes_ = 0;
  pending_pages_ = 0;
  return status;
}

std::uint64_t SegmentStore::scan_segment_locked(std::uint64_t id) {
  std::ifstream in(seg_path(id), std::ios::binary);
  Bytes raw;
  if (in) {
    in.seekg(0, std::ios::end);
    raw.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
  }
  auto& seg = segments_[id];
  seg.size = raw.size();
  std::uint64_t pos = 0;
  while (pos + kHeaderBytes <= raw.size()) {
    Decoder d(std::span<const std::uint8_t>(raw).subspan(pos, kHeaderBytes));
    const std::uint32_t magic = d.u32();
    const std::uint8_t kind = d.u8();
    GlobalAddress addr;
    addr.hi = d.u64();
    addr.lo = d.u64();
    const std::uint32_t len = d.u32();
    const std::uint32_t sum = d.u32();
    if (magic != kMagic || len > kMaxPayloadBytes ||
        (kind != kKindPut && kind != kKindTombstone) ||
        pos + kHeaderBytes + len > raw.size() ||
        fnv1a(raw.data() + pos + kHeaderBytes, len) != sum) {
      break;  // torn or corrupt: everything from here on is garbage
    }
    drop_index_locked(addr);
    if (kind == kKindPut) {
      index_[addr] = Locator{id, pos + kHeaderBytes, len};
      seg.live_payload += len;
    }
    seg.total_payload += len;
    pos += kHeaderBytes + len;
  }
  return pos;
}

std::size_t SegmentStore::compact(std::size_t max_pages) {
  std::lock_guard lock(mu_);
  flush_buffer_locked();
  // Cold candidates: every non-head segment less than half live. A fully
  // dead segment (live == 0) qualifies trivially and is just unlinked.
  std::vector<std::uint64_t> cold;
  for (const auto& [id, seg] : segments_) {
    if (id == head_) continue;
    if (seg.live_payload * 2 < seg.total_payload || seg.total_payload == 0) {
      cold.push_back(id);
    }
  }
  if (cold.empty()) return 0;
  // Copy the survivors into the head segment, newest home for old data.
  std::size_t rewritten = 0;
  std::vector<std::uint64_t> completed;
  for (std::uint64_t id : cold) {
    std::vector<std::pair<GlobalAddress, Locator>> live;
    for (const auto& [addr, loc] : index_) {
      if (loc.seg == id) live.emplace_back(addr, loc);
    }
    // Work cap: only take a segment when its whole live set fits in the
    // remaining budget — a half-rewritten segment could not be unlinked,
    // so partial work would be wasted. Fully dead segments cost nothing.
    if (max_pages > 0 && rewritten + live.size() > max_pages) continue;
    for (const auto& [addr, loc] : live) {
      const int fd = reader_locked(id);
      if (fd < 0) continue;
      Bytes data(loc.len);
      std::size_t done = 0;
      bool ok = true;
      while (done < data.size()) {
        const ::ssize_t r =
            ::pread(fd, data.data() + done, data.size() - done,
                    static_cast<::off_t>(loc.offset + done));
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) {
          ok = false;
          break;
        }
        done += static_cast<std::size_t>(r);
      }
      if (!ok) continue;
      (void)append_locked(addr, &data);
      ++rewritten;
    }
    completed.push_back(id);
  }
  // Commit the copies before unlinking their sources: a crash in between
  // must always leave at least one committed copy of every page.
  (void)commit_locked();
  std::error_code ec;
  for (std::uint64_t id : completed) {
    auto it = segments_.find(id);
    if (it == segments_.end() || id == head_) continue;
    if (it->second.read_fd >= 0) ::close(it->second.read_fd);
    std::filesystem::remove(seg_path(id), ec);
    segments_.erase(it);
  }
  if (compaction_pages_ && rewritten > 0) {
    compaction_pages_->inc(rewritten);
  }
  update_gauge_locked();
  return rewritten;
}

SegmentStats SegmentStore::stats() const {
  std::lock_guard lock(mu_);
  SegmentStats s;
  s.segments = segments_.size();
  for (const auto& [id, seg] : segments_) {
    s.live_bytes += seg.live_payload;
    s.dead_bytes += seg.total_payload - seg.live_payload;
  }
  return s;
}

void SegmentStore::update_gauge_locked() {
  if (segments_live_) {
    segments_live_->set(static_cast<std::int64_t>(segments_.size()));
  }
}

void SegmentStore::bind_metrics(obs::MetricsRegistry& m) {
  std::lock_guard lock(mu_);
  group_commit_pages_ = &m.histogram("storage.group_commit_pages");
  fsync_us_ = &m.histogram("storage.fsync_us");
  segments_live_ = &m.gauge("storage.segments_live");
  compaction_pages_ = &m.counter("storage.compaction_pages");
  update_gauge_locked();
}

}  // namespace khz::storage
