// Segment/extent page store: the durable data plane under DiskStore.
//
// The seed disk tier kept one file per 4 KiB page and re-opened it on every
// write — neither crash-safe (flush, no fdatasync) nor fast (an open/close
// pair and a metadata-heavy tiny file per write). This store replaces it
// with a log-structured extent layout borrowed from striped-storage systems
// (PAPERS.md: "Distributed Management of Massive Data"; DAOS VOS is the
// structural reference in SNIPPETS.md):
//
//   * Pages are appended as framed records into large segment files
//     (`<id>.seg`, default 8 MiB) through a write-behind buffer, so a page
//     write is a memcpy plus an occasional coalesced write(2).
//   * Durability is **group commit**: commit() flushes the buffer and
//     issues one fdatasync covering every record appended since the last
//     commit. The owner (core::Node) drains on a timer tick
//     (group_commit_us) or a pending-bytes threshold (group_commit_bytes),
//     amortizing one sync over a whole batch of page writes — and, through
//     DiskStore::commit(), the MetaJournal's records too.
//   * An in-memory index (address -> segment/offset/length) is the only
//     lookup structure; it is rebuilt on open by scanning the segments in
//     id order (newest record wins, tombstones delete). A torn tail — the
//     signature of a crash mid-append — fails the record checksum, ends
//     the scan of that segment, and is truncated away so new appends start
//     from the last intact record. Everything group-committed before the
//     crash is recovered byte-identically.
//   * compact() rewrites the live records out of mostly-dead cold segments
//     into the head segment and unlinks them (checkpoint/compaction pass;
//     Node runs it on its own timer rail so lane threads never block on
//     it). Sources are unlinked only after the copies are committed.
//
// Record framing (little-endian): u32 magic, u8 kind (put/tombstone),
// u64 addr.hi, u64 addr.lo, u32 payload length, u32 FNV-1a payload
// checksum, payload. All methods are thread-safe (one internal mutex): a
// multi-lane node funnels every lane's victimization and write-through
// traffic into the one shared store.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/global_address.h"
#include "common/result.h"
#include "common/serialize.h"
#include "obs/metrics.h"

namespace khz::storage {

/// One page write destined for the segment log (batched victimization
/// writeback hands the store a vector of these).
struct PageWrite {
  GlobalAddress addr;
  Bytes data;
};

struct SegmentConfig {
  /// Target segment file size; an append that pushes the head segment past
  /// this rotates to a fresh file.
  std::uint64_t segment_bytes = 8ull << 20;
  /// Write-behind buffer: records accumulate in memory and reach the file
  /// in one write(2) when the buffer fills (or at commit/rotation/read).
  std::size_t flush_buffer_bytes = 256u << 10;
};

/// Occupancy counters, for compaction policy and tests.
struct SegmentStats {
  std::size_t segments = 0;       // live segment files (incl. head)
  std::uint64_t live_bytes = 0;   // payload bytes reachable via the index
  std::uint64_t dead_bytes = 0;   // superseded/tombstoned payload bytes
};

class SegmentStore {
 public:
  /// Opens (creating if needed) the store under `dir` and rebuilds the
  /// index by scanning existing segments; truncates a torn tail.
  explicit SegmentStore(std::filesystem::path dir, SegmentConfig cfg = {});
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Appends one page record (write-behind; durable at the next committed
  /// group commit when sync-on-commit is enabled).
  Status put(const GlobalAddress& addr, const Bytes& data);
  /// Appends a batch of page records under one lock acquisition — the
  /// hierarchy's victimization writeback path.
  Status put_batch(std::vector<PageWrite> batch);
  /// Appends a tombstone; returns whether the page was present.
  bool erase(const GlobalAddress& addr);

  [[nodiscard]] std::optional<Bytes> get(const GlobalAddress& addr);
  [[nodiscard]] bool contains(const GlobalAddress& addr) const;
  [[nodiscard]] std::size_t live_pages() const;
  /// Every live page (sorted), for restart recovery.
  [[nodiscard]] std::vector<GlobalAddress> scan() const;

  /// Group commit: flushes the write-behind buffer and (when sync-on-commit
  /// is on) fdatasyncs every segment fd dirtied since the last commit —
  /// one sync for the whole batch. No-op when nothing is pending.
  Status commit();
  /// Enables fdatasync-on-commit (NodeConfig::sync_metadata). Off by
  /// default: sim tests only need crash-of-the-process durability, which
  /// the destructor's buffer flush provides.
  void set_sync_on_commit(bool on) { sync_on_commit_ = on; }

  /// Payload bytes appended since the last commit() — the owner's
  /// group_commit_bytes threshold input.
  [[nodiscard]] std::uint64_t pending_bytes() const;
  [[nodiscard]] std::uint64_t pending_pages() const;

  /// Checkpoint/compaction: rewrites the live records of cold segments
  /// (less than half their payload still live, plus fully-dead ones) into
  /// the head segment, commits the copies, then unlinks the sources.
  /// `max_pages` > 0 bounds the rewrite work of one pass: a cold segment
  /// is only processed when its whole live set fits in the remaining
  /// budget (partially rewritten segments cannot be unlinked), so a
  /// backlog drains across ticks instead of stalling one checkpoint.
  /// Returns pages rewritten.
  std::size_t compact(std::size_t max_pages = 0);

  [[nodiscard]] SegmentStats stats() const;

  /// Registers the storage.* instruments against `m` (docs/observability.md
  /// metric catalogue). Safe to skip: unbound stores simply do not record.
  void bind_metrics(obs::MetricsRegistry& m);

 private:
  struct Locator {
    std::uint64_t seg = 0;
    std::uint64_t offset = 0;  // of the payload, past the record header
    std::uint32_t len = 0;
  };
  struct Segment {
    std::uint64_t total_payload = 0;  // payload bytes ever appended
    std::uint64_t live_payload = 0;   // payload bytes still indexed
    std::uint64_t size = 0;           // file size incl. buffered tail
    int read_fd = -1;                 // lazy pread handle
  };

  [[nodiscard]] std::filesystem::path seg_path(std::uint64_t id) const;
  /// Serializes one record into the write-behind buffer and indexes it.
  Status append_locked(const GlobalAddress& addr, const Bytes* data);
  void flush_buffer_locked();
  Status commit_locked();
  void rotate_locked();
  void open_head_locked(std::uint64_t id);
  /// Scans one segment file into the index; returns the offset of the
  /// first torn/corrupt record (== intact file size).
  std::uint64_t scan_segment_locked(std::uint64_t id);
  void drop_index_locked(const GlobalAddress& addr);
  [[nodiscard]] int reader_locked(std::uint64_t id);
  void update_gauge_locked();

  std::filesystem::path dir_;
  SegmentConfig cfg_;
  bool sync_on_commit_ = false;

  mutable std::mutex mu_;
  std::unordered_map<GlobalAddress, Locator> index_;
  std::map<std::uint64_t, Segment> segments_;  // ordered: scan/compact order
  std::uint64_t head_ = 0;                     // current segment id
  int head_fd_ = -1;
  std::uint64_t head_flushed_ = 0;  // file bytes actually written to the fd
  Bytes buffer_;                    // write-behind tail of the head segment
  /// Rotated-away fds not yet fdatasync'd (closed at the next commit).
  std::vector<int> unsynced_fds_;
  bool head_dirty_ = false;
  std::uint64_t pending_bytes_ = 0;
  std::uint64_t pending_pages_ = 0;

  // Unbound-safe instrument pointers (docs/observability.md).
  obs::Histogram* group_commit_pages_ = nullptr;
  obs::Histogram* fsync_us_ = nullptr;
  obs::Gauge* segments_live_ = nullptr;
  obs::Counter* compaction_pages_ = nullptr;
};

}  // namespace khz::storage
