// Persistent level of the local storage hierarchy.
//
// Pages live in an append-only SegmentStore (storage/segment_store.h):
// large segment files fed through a write-behind buffer, durable at group
// commit. Alongside the page namespace the store keeps "<name>.meta"
// sidecar files for node-level persistent metadata blobs (the page
// directory's persistent entries, the node's reserved-pool state) and owns
// the write-ahead MetaJournal. Contents survive node restart — and, with
// sync-on-commit enabled, power loss up to the last group commit — which
// the crash/recovery tests exercise.
//
// Durability contract (docs/storage.md):
//   * put()/erase() append to the segment log write-behind; put_meta()
//     writes (and, when syncing, fsyncs) its sidecar immediately.
//   * commit() makes everything appended so far — segment records and
//     journal records — durable with one fdatasync per dirty file.
//   * maybe_commit() is the group-commit policy point: under group commit
//     it commits only past the bytes threshold (the owner's timer drains
//     the rest); without group commit but with sync-on-commit it commits
//     inline, which is the per-write-fdatasync baseline the bench measures
//     against.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/global_address.h"
#include "common/result.h"
#include "common/serialize.h"
#include "obs/metrics.h"
#include "storage/meta_journal.h"
#include "storage/segment_store.h"

namespace khz::storage {

class DiskStore {
 public:
  /// Opens (creating if needed) the store under `root`. capacity_pages == 0
  /// means unbounded. Pre-segment-store page files (`*.page`) found under
  /// the root are migrated into the segment log and removed.
  explicit DiskStore(std::filesystem::path root,
                     std::size_t capacity_pages = 0,
                     std::uint64_t segment_bytes = 8ull << 20);

  /// Appends the page to the segment log (write-behind; see the durability
  /// contract above). kNoSpace once the page capacity is reached.
  Status put(const GlobalAddress& page, const Bytes& data);
  /// Batch form: one lock acquisition for a whole victimization batch.
  Status put_batch(std::vector<PageWrite> batch);
  [[nodiscard]] std::optional<Bytes> get(const GlobalAddress& page) const;
  bool erase(const GlobalAddress& page);
  [[nodiscard]] bool contains(const GlobalAddress& page) const;

  /// Every page present on disk (sorted), for restart recovery.
  [[nodiscard]] std::vector<GlobalAddress> scan() const;

  [[nodiscard]] std::size_t size() const { return segments_->live_pages(); }
  /// Page capacity (0 = unbounded). The hierarchy's batched victimization
  /// uses it to budget a whole batch before appending.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const {
    return capacity_ != 0 && segments_->live_pages() >= capacity_;
  }

  /// Group commit: one fdatasync over every segment + journal record
  /// appended since the last commit. The owning node drains on its
  /// group-commit timer tick and at stop().
  Status commit();
  /// Policy point called after each durable append (see header comment).
  Status maybe_commit();
  /// Segment-log bytes awaiting commit (the group_commit_bytes input).
  [[nodiscard]] std::uint64_t pending_bytes() const {
    return segments_->pending_bytes();
  }

  /// Enables fdatasync-at-commit for pages, journal and meta sidecars
  /// (NodeConfig::sync_metadata).
  void set_sync_on_commit(bool on);
  /// Enables group commit: appends stop syncing inline and durability is
  /// deferred to commit()/maybe_commit(). `bytes_threshold` > 0 makes
  /// maybe_commit() drain once that much segment data is pending; 0 leaves
  /// draining entirely to the owner's timer.
  void set_group_commit(bool on, std::uint64_t bytes_threshold = 0);
  [[nodiscard]] bool group_commit() const { return group_commit_; }

  /// Checkpoint/compaction: rewrites live pages out of cold segments and
  /// unlinks them. Returns pages rewritten. Runs on the owner's checkpoint
  /// timer rail, never on a lane hot path.
  std::size_t compact(std::size_t max_pages = 0) {
    return segments_->compact(max_pages);
  }

  /// Registers the storage.* instruments (docs/observability.md).
  void bind_metrics(obs::MetricsRegistry& m) { segments_->bind_metrics(m); }

  /// Named metadata blobs (not part of the page namespace). With
  /// sync-on-commit enabled a put_meta is fsynced before returning: meta
  /// blobs are checkpoint snapshots, which must be durable before the
  /// journal they replace is truncated.
  Status put_meta(const std::string& name, const Bytes& data);
  [[nodiscard]] std::optional<Bytes> get_meta(const std::string& name) const;

  /// The store's write-ahead metadata journal ("meta.journal" under the
  /// root). The owning node appends mutation records here and replays them
  /// over the last snapshot on restart; see storage/meta_journal.h.
  [[nodiscard]] MetaJournal& journal() { return *journal_; }

  /// The underlying segment store (tests, stats).
  [[nodiscard]] SegmentStore& segments() { return *segments_; }

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path root_;
  std::size_t capacity_;
  bool sync_on_commit_ = false;
  bool group_commit_ = false;
  std::uint64_t group_commit_bytes_ = 0;
  std::unique_ptr<SegmentStore> segments_;
  std::unique_ptr<MetaJournal> journal_;
};

}  // namespace khz::storage
