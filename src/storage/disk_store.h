// Persistent level of the local storage hierarchy.
//
// One file per page under a node-specific root directory, named by the hex
// global address, plus a simple "<name>.meta" sidecar for node-level
// persistent metadata blobs (the page directory's persistent entries, the
// node's reserved-pool state). Contents survive node restart, which the
// crash/recovery tests exercise.
#pragma once

#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/global_address.h"
#include "common/result.h"
#include "common/serialize.h"
#include "storage/meta_journal.h"

namespace khz::storage {

class DiskStore {
 public:
  /// capacity_pages == 0 means unbounded.
  explicit DiskStore(std::filesystem::path root,
                     std::size_t capacity_pages = 0);

  Status put(const GlobalAddress& page, const Bytes& data);
  [[nodiscard]] std::optional<Bytes> get(const GlobalAddress& page) const;
  bool erase(const GlobalAddress& page);
  [[nodiscard]] bool contains(const GlobalAddress& page) const;

  /// Every page present on disk (sorted), for restart recovery.
  [[nodiscard]] std::vector<GlobalAddress> scan() const;

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return count_;
  }
  [[nodiscard]] bool full() const {
    std::lock_guard lk(mu_);
    return capacity_ != 0 && count_ >= capacity_;
  }

  /// Named metadata blobs (not part of the page namespace).
  Status put_meta(const std::string& name, const Bytes& data);
  [[nodiscard]] std::optional<Bytes> get_meta(const std::string& name) const;

  /// The store's write-ahead metadata journal ("meta.journal" under the
  /// root). The owning node appends mutation records here and replays them
  /// over the last snapshot on restart; see storage/meta_journal.h.
  [[nodiscard]] MetaJournal& journal() { return *journal_; }

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  [[nodiscard]] std::filesystem::path page_path(
      const GlobalAddress& page) const;

  std::filesystem::path root_;
  std::size_t capacity_;
  /// Guards count_: one DiskStore may be shared by a multi-lane node's
  /// per-lane hierarchies. Distinct-page file I/O needs no coordination
  /// (a page belongs to exactly one lane), only the occupancy counter does.
  mutable std::mutex mu_;
  std::size_t count_ = 0;
  std::unique_ptr<MetaJournal> journal_;
};

}  // namespace khz::storage
