#include "storage/disk_store.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/log.h"

namespace khz::storage {

namespace fs = std::filesystem;

DiskStore::DiskStore(fs::path root, std::size_t capacity_pages)
    : root_(std::move(root)), capacity_(capacity_pages) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    KHZ_ERROR("disk: cannot create %s: %s", root_.c_str(),
              ec.message().c_str());
  }
  count_ = scan().size();
  journal_ = std::make_unique<MetaJournal>(root_ / "meta.journal");
}

fs::path DiskStore::page_path(const GlobalAddress& page) const {
  char name[40];
  std::snprintf(name, sizeof(name), "%016llx_%016llx.page",
                static_cast<unsigned long long>(page.hi),
                static_cast<unsigned long long>(page.lo));
  return root_ / name;
}

Status DiskStore::put(const GlobalAddress& page, const Bytes& data) {
  const bool existed = contains(page);
  if (!existed && full()) return ErrorCode::kNoSpace;
  std::ofstream out(page_path(page), std::ios::binary | std::ios::trunc);
  if (!out) return ErrorCode::kInternal;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return ErrorCode::kInternal;
  if (!existed) {
    std::lock_guard lk(mu_);
    ++count_;
  }
  return {};
}

std::optional<Bytes> DiskStore::get(const GlobalAddress& page) const {
  std::ifstream in(page_path(page), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return std::nullopt;
  return data;
}

bool DiskStore::erase(const GlobalAddress& page) {
  std::error_code ec;
  if (fs::remove(page_path(page), ec)) {
    std::lock_guard lk(mu_);
    if (count_ > 0) --count_;
    return true;
  }
  return false;
}

bool DiskStore::contains(const GlobalAddress& page) const {
  std::error_code ec;
  return fs::exists(page_path(page), ec);
}

std::vector<GlobalAddress> DiskStore::scan() const {
  std::vector<GlobalAddress> pages;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".page")) continue;
    unsigned long long hi = 0;
    unsigned long long lo = 0;
    if (std::sscanf(name.c_str(), "%16llx_%16llx.page", &hi, &lo) == 2) {
      pages.emplace_back(hi, lo);
    }
  }
  std::sort(pages.begin(), pages.end());
  return pages;
}

Status DiskStore::put_meta(const std::string& name, const Bytes& data) {
  std::ofstream out(root_ / (name + ".meta"),
                    std::ios::binary | std::ios::trunc);
  if (!out) return ErrorCode::kInternal;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status{} : Status{ErrorCode::kInternal};
}

std::optional<Bytes> DiskStore::get_meta(const std::string& name) const {
  std::ifstream in(root_ / (name + ".meta"), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return std::nullopt;
  return data;
}

}  // namespace khz::storage
