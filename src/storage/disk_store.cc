#include "storage/disk_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "common/log.h"

namespace khz::storage {

namespace fs = std::filesystem;

DiskStore::DiskStore(fs::path root, std::size_t capacity_pages,
                     std::uint64_t segment_bytes)
    : root_(std::move(root)), capacity_(capacity_pages) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    KHZ_ERROR("disk: cannot create %s: %s", root_.c_str(),
              ec.message().c_str());
  }
  SegmentConfig cfg;
  cfg.segment_bytes = segment_bytes;
  segments_ = std::make_unique<SegmentStore>(root_ / "segments", cfg);
  // Migrate any pre-segment-store layout (one "<hi>_<lo>.page" file per
  // page) into the log, so a node upgraded in place keeps its data.
  std::size_t migrated = 0;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".page")) continue;
    unsigned long long hi = 0;
    unsigned long long lo = 0;
    if (std::sscanf(name.c_str(), "%16llx_%16llx.page", &hi, &lo) != 2) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary | std::ios::ate);
    if (!in) continue;
    Bytes data(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!in) continue;
    if (segments_->put(GlobalAddress{hi, lo}, data).ok()) {
      fs::remove(entry.path(), ec);
      ++migrated;
    }
  }
  if (migrated > 0) {
    (void)segments_->commit();
    KHZ_INFO("disk: migrated %zu legacy page files into the segment log",
             migrated);
  }
  journal_ = std::make_unique<MetaJournal>(root_ / "meta.journal");
}

Status DiskStore::put(const GlobalAddress& page, const Bytes& data) {
  if (!segments_->contains(page) && full()) return ErrorCode::kNoSpace;
  return segments_->put(page, data);
}

Status DiskStore::put_batch(std::vector<PageWrite> batch) {
  if (capacity_ != 0) {
    std::size_t fresh = 0;
    for (const PageWrite& w : batch) {
      if (!segments_->contains(w.addr)) ++fresh;
    }
    if (segments_->live_pages() + fresh > capacity_) {
      return ErrorCode::kNoSpace;
    }
  }
  return segments_->put_batch(std::move(batch));
}

std::optional<Bytes> DiskStore::get(const GlobalAddress& page) const {
  return segments_->get(page);
}

bool DiskStore::erase(const GlobalAddress& page) {
  return segments_->erase(page);
}

bool DiskStore::contains(const GlobalAddress& page) const {
  return segments_->contains(page);
}

std::vector<GlobalAddress> DiskStore::scan() const {
  return segments_->scan();
}

Status DiskStore::commit() {
  Status s = segments_->commit();
  if (Status j = journal_->sync(); !j.ok()) s = j;
  return s;
}

Status DiskStore::maybe_commit() {
  if (group_commit_) {
    if (group_commit_bytes_ > 0 &&
        segments_->pending_bytes() >= group_commit_bytes_) {
      return commit();
    }
    return {};  // the owner's group-commit timer drains the rest
  }
  if (sync_on_commit_) return commit();  // per-write fdatasync baseline
  return {};
}

void DiskStore::set_sync_on_commit(bool on) {
  sync_on_commit_ = on;
  segments_->set_sync_on_commit(on);
  journal_->set_sync_on_commit(on);
}

void DiskStore::set_group_commit(bool on, std::uint64_t bytes_threshold) {
  group_commit_ = on;
  group_commit_bytes_ = bytes_threshold;
  journal_->set_group_commit(on);
}

Status DiskStore::put_meta(const std::string& name, const Bytes& data) {
  const fs::path path = root_ / (name + ".meta");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return ErrorCode::kInternal;
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) return ErrorCode::kInternal;
  }
  if (sync_on_commit_) {
    // Meta blobs are checkpoint snapshots: they must hit the platter
    // before the journal they supersede is truncated.
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) return ErrorCode::kInternal;
    const bool ok = ::fdatasync(fd) == 0;
    ::close(fd);
    if (!ok) return ErrorCode::kInternal;
  }
  return {};
}

std::optional<Bytes> DiskStore::get_meta(const std::string& name) const {
  std::ifstream in(root_ / (name + ".meta"), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return std::nullopt;
  return data;
}

}  // namespace khz::storage
