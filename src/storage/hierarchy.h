// Two-level local storage hierarchy (paper, Section 3.4).
//
// "There may be different kinds of local storage - main memory, disk, ...
// organized into a storage hierarchy based on access speed. ... When memory
// is full, the local storage system can victimize pages from RAM to disk.
// When the disk cache wants to victimize a page, it must invoke the
// consistency protocol associated with the page to update the list of
// sharers, push any dirty data to remote nodes, etc."
//
// The hierarchy itself is policy-free about consistency: before a page
// leaves the node entirely it calls the evict hook, which the Khazana node
// wires to the page's consistency protocol (push dirty data, update the
// sharer list). A hook returning false vetoes the drop (e.g. the page is
// the last primary replica), in which case the store grows past capacity
// rather than lose data.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "storage/disk_store.h"
#include "storage/memory_store.h"

namespace khz::storage {

struct HierarchyStats {
  std::uint64_t ram_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t ram_to_disk = 0;
  std::uint64_t disk_promotions = 0;
  std::uint64_t evictions = 0;       // pages dropped from the node
  std::uint64_t eviction_vetoes = 0;

  void clear() { *this = HierarchyStats{}; }
};

/// Where a get() found the page.
enum class HitLevel { kRam, kDisk, kMiss };

class StorageHierarchy {
 public:
  /// `disk` may be null (diskless node: victims are dropped via the hook).
  /// Shared: a multi-lane node runs one hierarchy per lane over a single
  /// DiskStore (pages are lane-partitioned, so lanes never contend on one
  /// page; the store's own counters are internally synchronized).
  StorageHierarchy(std::size_t ram_capacity_pages,
                   std::shared_ptr<DiskStore> disk);

  /// Called before a page is dropped from the node entirely.
  /// Arguments: page address, current contents. Returns whether the drop
  /// may proceed.
  using EvictHook = std::function<bool(const GlobalAddress&, const Bytes&)>;
  void set_evict_hook(EvictHook hook) { evict_hook_ = std::move(hook); }

  /// Stores a page (RAM level), victimizing as needed.
  void put(const GlobalAddress& page, Bytes data);

  /// RAM first, then disk (with promotion to RAM). Null on miss.
  [[nodiscard]] const Bytes* get(const GlobalAddress& page);

  /// Mutable access for in-place writes. Promotes to RAM if on disk.
  [[nodiscard]] Bytes* get_mutable(const GlobalAddress& page);

  /// Which level holds the page right now (no promotion side effects).
  [[nodiscard]] HitLevel probe(const GlobalAddress& page) const;

  [[nodiscard]] bool contains(const GlobalAddress& page) const;
  void erase(const GlobalAddress& page);

  /// Pins hold a page in RAM (locked pages are not victimization
  /// candidates).
  void pin(const GlobalAddress& page) { ram_.pin(page); }
  void unpin(const GlobalAddress& page) { ram_.unpin(page); }

  /// Writes the page through to the disk level (durability for pages homed
  /// locally). No-op on diskless nodes.
  Status flush(const GlobalAddress& page);

  [[nodiscard]] const HierarchyStats& stats() const { return stats_; }
  HierarchyStats& stats() { return stats_; }
  [[nodiscard]] DiskStore* disk() { return disk_.get(); }
  [[nodiscard]] MemoryStore& ram() { return ram_; }

 private:
  void enforce_capacity();

  MemoryStore ram_;
  std::shared_ptr<DiskStore> disk_;
  EvictHook evict_hook_;
  HierarchyStats stats_;
};

}  // namespace khz::storage
