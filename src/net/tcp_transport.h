// Real-socket transport.
//
// TcpBus hosts one listening socket per node (localhost, distinct ports) and
// lazily opened client connections between them, with 4-byte-length-prefixed
// Message frames. Each endpoint owns N+1 threads:
//
//  * N lane executor threads (default 1) on which ALL of its callbacks run.
//    Each decoded inbound frame is demuxed straight onto target_lane(msg)'s
//    executor — the I/O thread never touches node state — and timers are
//    lane-affine (a timer fires on the lane that scheduled it). Callbacks on
//    one lane are serialized, preserving the single-writer execution model
//    that node logic assumes under the simulator; and
//  * an I/O thread multiplexing every socket — listener, inbound and
//    outbound — through one epoll instance. Outbound traffic goes through
//    per-peer non-blocking write queues, so a slow or dead peer can never
//    stall sends to healthy peers, and lost connections are re-established
//    with exponential backoff while frames wait (bounded) in the queue.
//
// This is the "real system" path: the integration tests run a full Khazana
// cluster over actual sockets to show the node logic is transport-agnostic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace khz::net {

class TcpBus;

class TcpTransport final : public Transport {
 public:
  /// Backoff policy for outbound reconnects: first retry is immediate,
  /// then delays double from kBackoffBase up to kBackoffMax.
  static constexpr Micros kBackoffBase = 10'000;     // 10 ms
  static constexpr Micros kBackoffMax = 1'000'000;   // 1 s
  /// Per-peer outbound backlog cap; frames beyond it are dropped (and
  /// counted) rather than growing memory without bound.
  static constexpr std::size_t kMaxPeerQueueBytes = 64u << 20;

  TcpTransport(TcpBus& bus, NodeId id, std::uint16_t port);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] NodeId local() const override { return id_; }
  void send(Message msg) override;
  void set_handler(Handler handler) override;
  std::uint64_t schedule(Micros delay, std::function<void()> fn) override;
  std::uint64_t schedule_on(unsigned lane, Micros delay,
                            std::function<void()> fn) override;
  void post(unsigned lane, std::function<void()> fn) override;
  void cancel(std::uint64_t timer_id) override;
  [[nodiscard]] const Clock& clock() const override;
  [[nodiscard]] unsigned lanes() const override { return lanes_n_; }
  /// Must be called before start(); ignored once the executors are running.
  void configure_lanes(unsigned n) override;

  /// Runs `fn` on lane 0's executor thread and returns once it completed.
  /// Used by synchronous client wrappers to call into node logic safely.
  void run_on_executor(std::function<void()> fn);
  /// Runs `fn` on `lane`'s executor thread and returns once it completed.
  /// Runs inline when already called from that lane's thread (re-entrant
  /// client wrappers would otherwise self-deadlock).
  void run_on_lane(unsigned lane, std::function<void()> fn);

  /// Snapshot of the wire-level counters (thread-safe).
  [[nodiscard]] TransportStats stats() const;

  /// Transport-level instruments; currently the tcp.send_queue_us
  /// histogram tracking how long frames sat in the per-peer write queues
  /// (kernel-refused or disconnected-peer residency).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// Timer-heap entries currently held, including cancelled tombstones
  /// awaiting compaction. Observability for leak tests.
  [[nodiscard]] std::size_t pending_timers() const;

  void start();
  void stop();

 private:
  struct Timer {
    Micros fire_at;
    std::uint64_t id;
    std::function<void()> fn;
    bool operator<(const Timer& o) const { return fire_at > o.fire_at; }
  };

  /// One framed buffer awaiting transmission, stamped with its enqueue
  /// time so completion can record queue residency.
  struct Frame {
    Bytes data;
    Micros enqueued_at = 0;
  };

  /// Outbound connection to one peer. The fd is non-blocking; frames that
  /// the kernel won't take immediately wait in `queue` and drain on
  /// EPOLLOUT from the I/O thread.
  struct PeerConn {
    int fd = -1;
    bool connecting = false;     // non-blocking connect() in flight
    bool was_connected = false;  // a later connect counts as a reconnect
    std::uint32_t armed = 0;     // epoll events currently registered
    std::deque<Frame> queue;     // framed (length-prefixed) buffers
    std::size_t queue_bytes = 0; // unsent bytes across `queue`
    std::size_t front_off = 0;   // bytes of queue.front() already written
    int backoff_exp = 0;         // consecutive failed connection attempts
    Micros next_attempt = 0;     // earliest time for the next connect
  };

  /// Inbound connection accepted from a peer; bytes accumulate in `buf`
  /// until whole frames can be peeled off.
  struct InConn {
    Bytes buf;
  };

  /// One lane's executor: serialized callbacks plus a timer heap, drained by
  /// a dedicated thread that lives inside a LaneScope for its lifetime.
  /// Timer ids are lane-strided (first id = lane + lanes, step = lanes) so
  /// id % lanes recovers the owning lane for cancel(); with one lane this
  /// degenerates to the historical 1, 2, 3, ... sequence.
  struct LaneExec {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> work;
    std::vector<Timer> timers;  // heap ordered by fire_at
    std::size_t tombstones = 0;  // cancelled entries still in timers
    std::uint64_t next_timer_id = 0;
    std::thread thr;
  };

  void executor_loop(unsigned lane);
  void enqueue_on(unsigned lane, std::function<void()> fn);
  void io_loop();
  void accept_ready();
  void inbound_ready(int fd, std::uint32_t events);
  void peer_event(NodeId peer, std::uint32_t events);
  void start_connect(NodeId peer);            // io_mu_ held
  void finish_connect(NodeId peer);           // io_mu_ held
  void connection_lost(NodeId peer);          // io_mu_ held
  bool flush_queue(PeerConn& p);              // io_mu_ held
  void update_peer_events(PeerConn& p);       // io_mu_ held
  void attempt_due_connects(Micros now);      // io_mu_ held
  [[nodiscard]] int backoff_timeout_ms();     // locks io_mu_
  void close_inbound(int fd);                 // io_mu_ held
  void wake_io();
  void dispatch(Message msg);                 // lane executor; locks handler_mu_

  TcpBus& bus_;
  NodeId id_;
  std::uint16_t port_;

  // The inbound handler may be installed after start() (the executors are
  // already dispatching frames by then), so both the slot and the
  // not-yet-handled backlog live under their own mutex. Frames that arrive
  // before set_handler() are parked, then replayed onto their lanes.
  mutable std::mutex handler_mu_;
  Handler handler_;                // guarded by handler_mu_
  std::vector<Message> pre_handler_backlog_;  // guarded by handler_mu_

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: send()/stop() nudge the I/O thread
  std::atomic<bool> running_{false};

  // Executor state (lock order: io_mu_ before any lane mu; never the
  // reverse). Fixed after start(): the vector itself is only mutated while
  // single-threaded.
  unsigned lanes_n_ = 1;
  std::vector<std::unique_ptr<LaneExec>> lane_exec_;

  // Socket state, shared between send() callers and the I/O thread.
  mutable std::mutex io_mu_;
  std::map<NodeId, PeerConn> peers_;
  std::map<int, NodeId> out_by_fd_;
  std::map<int, InConn> in_conns_;

  // Counters. Plain uint64 guarded by io_mu_ (all writers hold it).
  TransportStats counters_;

  // Latency instruments (histogram recording is internally wait-free).
  obs::MetricsRegistry metrics_;
  obs::Histogram* send_queue_us_;
  obs::Histogram* writev_frames_;  // frames per sendmsg() gather call

  std::thread io_;
};

/// A set of TcpTransport endpoints that know each other's ports.
class TcpBus {
 public:
  explicit TcpBus(std::uint16_t base_port) : base_port_(base_port) {}
  ~TcpBus();

  TcpBus(const TcpBus&) = delete;
  TcpBus& operator=(const TcpBus&) = delete;

  /// Creates and starts the endpoint for `id` on base_port + id, with
  /// `lanes` executor lanes (clamped to [1, kMaxLanes]).
  TcpTransport& add_node(NodeId id, unsigned lanes = 1);
  /// Stops and destroys the endpoint for `id` (simulates a process kill);
  /// the same id can later be re-added to simulate a restart.
  void remove_node(NodeId id);
  void stop_all();

  [[nodiscard]] std::uint16_t port_of(NodeId id) const {
    return static_cast<std::uint16_t>(base_port_ + id);
  }

 private:
  std::uint16_t base_port_;
  std::map<NodeId, std::unique_ptr<TcpTransport>> endpoints_;
};

}  // namespace khz::net
