// Real-socket transport.
//
// TcpBus hosts one listening socket per node (localhost, distinct ports) and
// lazily opened client connections between them, with 4-byte-length-prefixed
// Message frames. Each endpoint owns an executor thread on which ALL of its
// callbacks (inbound messages and timers) run, preserving the single-threaded
// execution model that node logic assumes under the simulator.
//
// This is the "real system" path: the integration tests run a full Khazana
// cluster over actual sockets to show the node logic is transport-agnostic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/transport.h"

namespace khz::net {

class TcpBus;

class TcpTransport final : public Transport {
 public:
  TcpTransport(TcpBus& bus, NodeId id, std::uint16_t port);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] NodeId local() const override { return id_; }
  void send(Message msg) override;
  void set_handler(Handler handler) override;
  std::uint64_t schedule(Micros delay, std::function<void()> fn) override;
  void cancel(std::uint64_t timer_id) override;
  [[nodiscard]] const Clock& clock() const override;

  /// Runs `fn` on the executor thread and returns once it completed.
  /// Used by synchronous client wrappers to call into node logic safely.
  void run_on_executor(std::function<void()> fn);

  void start();
  void stop();

 private:
  struct Timer {
    Micros fire_at;
    std::uint64_t id;
    std::function<void()> fn;
    bool operator<(const Timer& o) const { return fire_at > o.fire_at; }
  };

  void executor_loop();
  void accept_loop();
  void reader_loop(int fd);
  int connect_to(std::uint16_t port);
  void enqueue(std::function<void()> fn);

  TcpBus& bus_;
  NodeId id_;
  std::uint16_t port_;
  Handler handler_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> work_;
  std::vector<Timer> timers_;  // heap ordered by fire_at
  std::uint64_t next_timer_id_ = 1;

  std::mutex conn_mu_;
  std::map<NodeId, int> out_fds_;

  std::thread executor_;
  std::thread acceptor_;
  std::vector<std::thread> readers_;
  std::vector<int> in_fds_;  // accepted sockets, shut down on stop()
  std::mutex readers_mu_;
};

/// A set of TcpTransport endpoints that know each other's ports.
class TcpBus {
 public:
  explicit TcpBus(std::uint16_t base_port) : base_port_(base_port) {}
  ~TcpBus();

  TcpBus(const TcpBus&) = delete;
  TcpBus& operator=(const TcpBus&) = delete;

  /// Creates and starts the endpoint for `id` on base_port + id.
  TcpTransport& add_node(NodeId id);
  void stop_all();

  [[nodiscard]] std::uint16_t port_of(NodeId id) const {
    return static_cast<std::uint16_t>(base_port_ + id);
  }

 private:
  std::uint16_t base_port_;
  std::map<NodeId, std::unique_ptr<TcpTransport>> endpoints_;
};

}  // namespace khz::net
