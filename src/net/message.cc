#include "net/message.h"

namespace khz::net {

std::string_view to_string(MsgType t) {
  switch (t) {
    case MsgType::kJoinReq: return "JoinReq";
    case MsgType::kJoinResp: return "JoinResp";
    case MsgType::kNodeListGossip: return "NodeListGossip";
    case MsgType::kLeave: return "Leave";
    case MsgType::kReserveReq: return "ReserveReq";
    case MsgType::kReserveResp: return "ReserveResp";
    case MsgType::kUnreserveReq: return "UnreserveReq";
    case MsgType::kUnreserveResp: return "UnreserveResp";
    case MsgType::kSpaceReq: return "SpaceReq";
    case MsgType::kSpaceResp: return "SpaceResp";
    case MsgType::kDescLookupReq: return "DescLookupReq";
    case MsgType::kDescLookupResp: return "DescLookupResp";
    case MsgType::kHintQueryReq: return "HintQueryReq";
    case MsgType::kHintQueryResp: return "HintQueryResp";
    case MsgType::kHintPublish: return "HintPublish";
    case MsgType::kClusterWalkReq: return "ClusterWalkReq";
    case MsgType::kClusterWalkResp: return "ClusterWalkResp";
    case MsgType::kAllocReq: return "AllocReq";
    case MsgType::kAllocResp: return "AllocResp";
    case MsgType::kFreeReq: return "FreeReq";
    case MsgType::kFreeResp: return "FreeResp";
    case MsgType::kGetAttrReq: return "GetAttrReq";
    case MsgType::kGetAttrResp: return "GetAttrResp";
    case MsgType::kSetAttrReq: return "SetAttrReq";
    case MsgType::kSetAttrResp: return "SetAttrResp";
    case MsgType::kPageFetchReq: return "PageFetchReq";
    case MsgType::kPageFetchResp: return "PageFetchResp";
    case MsgType::kReplicaPush: return "ReplicaPush";
    case MsgType::kReplicaDrop: return "ReplicaDrop";
    case MsgType::kPageBatchFetchReq: return "PageBatchFetchReq";
    case MsgType::kPageBatchFetchResp: return "PageBatchFetchResp";
    case MsgType::kCm: return "Cm";
    case MsgType::kMapMutateReq: return "MapMutateReq";
    case MsgType::kMapMutateResp: return "MapMutateResp";
    case MsgType::kLocateReq: return "LocateReq";
    case MsgType::kLocateResp: return "LocateResp";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kObjInvokeReq: return "ObjInvokeReq";
    case MsgType::kObjInvokeResp: return "ObjInvokeResp";
    case MsgType::kMigrateReq: return "MigrateReq";
    case MsgType::kMigrateResp: return "MigrateResp";
    case MsgType::kMigrateData: return "MigrateData";
    case MsgType::kMigrateDataResp: return "MigrateDataResp";
    case MsgType::kReplicateToReq: return "ReplicateToReq";
    case MsgType::kReplicateToResp: return "ReplicateToResp";
    case MsgType::kNack: return "Nack";
    case MsgType::kStatsReq: return "StatsReq";
    case MsgType::kStatsResp: return "StatsResp";
    case MsgType::kHintSyncReq: return "HintSyncReq";
    case MsgType::kHintSyncResp: return "HintSyncResp";
  }
  return "?";
}

bool is_response(MsgType t) {
  switch (t) {
    case MsgType::kJoinResp:
    case MsgType::kReserveResp:
    case MsgType::kUnreserveResp:
    case MsgType::kSpaceResp:
    case MsgType::kDescLookupResp:
    case MsgType::kHintQueryResp:
    case MsgType::kClusterWalkResp:
    case MsgType::kAllocResp:
    case MsgType::kFreeResp:
    case MsgType::kGetAttrResp:
    case MsgType::kSetAttrResp:
    case MsgType::kPageFetchResp:
    case MsgType::kMapMutateResp:
    case MsgType::kLocateResp:
    case MsgType::kObjInvokeResp:
    case MsgType::kMigrateResp:
    case MsgType::kMigrateDataResp:
    case MsgType::kReplicateToResp:
    case MsgType::kPong:
    // Backpressure replies are rpc_id-correlated like responses; the
    // engine turns them into backoff + candidate rotation.
    case MsgType::kNack:
    case MsgType::kStatsResp:
    case MsgType::kHintSyncResp:
      return true;
    default:
      return false;
  }
}

Bytes Message::encode() const {
  Encoder e;
  e.u16(static_cast<std::uint16_t>(type));
  e.u32(src);
  e.u32(dst);
  e.u64(rpc_id);
  e.u64(trace_id);
  e.u64(span_id);
  e.u64(deadline);
  e.u64(route_key);
  e.bytes(payload);
  return std::move(e).take();
}

Bytes Message::encode_framed() const {
  Encoder e;
  e.u32(0);  // frame-length placeholder, patched below
  e.u16(static_cast<std::uint16_t>(type));
  e.u32(src);
  e.u32(dst);
  e.u64(rpc_id);
  e.u64(trace_id);
  e.u64(span_id);
  e.u64(deadline);
  e.u64(route_key);
  e.bytes(payload);
  Bytes out = std::move(e).take();
  const auto body_len = static_cast<std::uint32_t>(out.size() - 4);
  for (std::size_t i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  return out;
}

bool Message::decode(std::span<const std::uint8_t> wire, Message& out) {
  Decoder d(wire);
  out.type = static_cast<MsgType>(d.u16());
  out.src = d.u32();
  out.dst = d.u32();
  out.rpc_id = d.u64();
  out.trace_id = d.u64();
  out.span_id = d.u64();
  out.deadline = d.u64();
  out.route_key = d.u64();
  out.payload = d.bytes();
  return d.at_end();
}

}  // namespace khz::net
