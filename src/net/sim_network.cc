#include "net/sim_network.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace khz::net {

void SimTransport::send(Message msg) {
  msg.src = id_;
  net_.submit(std::move(msg));
}

std::uint64_t SimTransport::schedule(Micros delay, std::function<void()> fn) {
  // Timers are lane-affine: a callback fires on the lane that scheduled it.
  unsigned lane = current_lane();
  if (lane >= lanes_) lane = 0;
  return net_.schedule_timer(id_, lane, delay, std::move(fn));
}

std::uint64_t SimTransport::schedule_on(unsigned lane, Micros delay,
                                        std::function<void()> fn) {
  if (lane >= lanes_) lane = 0;
  return net_.schedule_timer(id_, lane, delay, std::move(fn));
}

void SimTransport::cancel(std::uint64_t timer_id) {
  net_.cancelled_timers_.insert(timer_id);
}

const Clock& SimTransport::clock() const { return net_.clock(); }

SimNetwork::SimNetwork(std::uint64_t seed) : rng_(seed) {}
SimNetwork::~SimNetwork() = default;

SimTransport& SimNetwork::add_node(NodeId id) {
  assert(!endpoints_.contains(id));
  auto ep = std::make_unique<SimTransport>(*this, id);
  auto& ref = *ep;
  endpoints_.emplace(id, std::move(ep));
  up_[id] = true;
  return ref;
}

void SimNetwork::set_link(NodeId src, NodeId dst, LinkProfile profile) {
  links_[{src, dst}] = profile;
}

void SimNetwork::set_link_pair(NodeId a, NodeId b, LinkProfile profile) {
  set_link(a, b, profile);
  set_link(b, a, profile);
}

void SimNetwork::set_node_up(NodeId id, bool up) {
  // A crash invalidates every timer the dying incarnation scheduled: their
  // callbacks capture objects that are destroyed with the node, so letting
  // them fire after a crash+restart would touch freed memory.
  if (!up && node_up(id)) ++crash_epoch_[id];
  up_[id] = up;
}

bool SimNetwork::node_up(NodeId id) const {
  auto it = up_.find(id);
  return it != up_.end() && it->second;
}

void SimNetwork::partition(const std::set<NodeId>& group_a,
                           const std::set<NodeId>& group_b) {
  // Assign two fresh group numbers; nodes not mentioned keep their group.
  const int ga = next_partition_group_++;
  const int gb = next_partition_group_++;
  for (NodeId n : group_a) partition_group_[n] = ga;
  for (NodeId n : group_b) partition_group_[n] = gb;
}

void SimNetwork::clear_partitions() { partition_group_.clear(); }

bool SimNetwork::partitioned(NodeId a, NodeId b) const {
  auto ia = partition_group_.find(a);
  auto ib = partition_group_.find(b);
  const int ga = ia == partition_group_.end() ? 0 : ia->second;
  const int gb = ib == partition_group_.end() ? 0 : ib->second;
  return ga != gb;
}

const LinkProfile& SimNetwork::link(NodeId src, NodeId dst) const {
  auto it = links_.find({src, dst});
  return it != links_.end() ? it->second : default_link_;
}

void SimNetwork::submit(Message msg) {
  stats_.messages_sent++;
  stats_.bytes_sent += msg.wire_size();
  stats_.per_type[msg.type]++;

  if (!node_up(msg.src) || !node_up(msg.dst) ||
      partitioned(msg.src, msg.dst)) {
    stats_.messages_dropped++;
    return;
  }
  const LinkProfile& lp = link(msg.src, msg.dst);
  if (lp.drop_probability > 0 && rng_.chance(lp.drop_probability)) {
    stats_.messages_dropped++;
    return;
  }
  // Transmission cost occupies the sender's side of the link: a fixed
  // per-message overhead plus the serialization time of the bytes. While
  // one message transmits, the next queues behind it (busy-until), which
  // is what rewards batching N pages into one message.
  Micros xmit = lp.per_message;
  if (lp.bytes_per_micro > 0) {
    xmit += static_cast<Micros>(static_cast<double>(msg.wire_size()) /
                                lp.bytes_per_micro);
  }
  Micros& busy = link_busy_until_[{msg.src, msg.dst}];
  const Micros start = std::max(clock_.now(), busy);
  busy = start + xmit;

  Micros delay = lp.latency;
  if (lp.jitter > 0) delay += rng_.between(0, lp.jitter);
  Event ev;
  ev.at = busy + delay;
  // FIFO per directed pair: a message never overtakes an earlier one on
  // the same connection.
  Micros& last = last_delivery_at_[{msg.src, msg.dst}];
  if (ev.at < last) ev.at = last;
  last = ev.at;
  ev.seq = next_seq_++;
  ev.node = msg.dst;

  if (lp.dup_probability > 0 && rng_.chance(lp.dup_probability)) {
    stats_.messages_duplicated++;
    Event dup;
    dup.at = ev.at + lp.latency + (lp.jitter > 0 ? rng_.between(0, lp.jitter)
                                                 : Micros{0});
    last = std::max(last, dup.at);
    dup.seq = next_seq_++;
    dup.node = msg.dst;
    dup.msg = msg;  // copy before the original is moved below
    queue_.push(std::move(dup));
  }

  ev.msg = std::move(msg);
  queue_.push(std::move(ev));
}

std::uint64_t SimNetwork::schedule_timer(NodeId node, unsigned lane,
                                         Micros delay,
                                         std::function<void()> fn) {
  Event ev;
  ev.at = clock_.now() + delay;
  ev.seq = next_seq_++;
  ev.node = node;
  ev.lane = lane;
  ev.fn = std::move(fn);
  ev.is_timer = true;
  ev.timer_id = next_timer_id_++;
  auto epoch_it = crash_epoch_.find(node);
  ev.epoch = epoch_it == crash_epoch_.end() ? 0 : epoch_it->second;
  const std::uint64_t id = ev.timer_id;
  queue_.push(std::move(ev));
  return id;
}

std::uint64_t SimNetwork::schedule_global(Micros delay,
                                          std::function<void()> fn) {
  Event ev;
  ev.at = clock_.now() + delay;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  ev.is_timer = true;
  ev.global = true;
  ev.timer_id = next_timer_id_++;
  const std::uint64_t id = ev.timer_id;
  queue_.push(std::move(ev));
  return id;
}

void SimNetwork::dispatch(Event& ev) {
  clock_.advance_to(ev.at);
  if (ev.is_timer) {
    if (cancelled_timers_.erase(ev.timer_id) > 0) return;
    // A crashed node's timers are suppressed, matching the loss of its
    // volatile state; they do not fire later on restart either — the
    // epoch check catches timers from a pre-crash incarnation even when
    // the node is already back up. Simulation-owned (global) timers are
    // exempt: fault scripts must fire regardless of node state.
    if (!ev.global) {
      if (!node_up(ev.node)) return;
      auto epoch_it = crash_epoch_.find(ev.node);
      if (ev.epoch != (epoch_it == crash_epoch_.end() ? 0 : epoch_it->second))
        return;
    }
    LaneScope scope(ev.lane);
    ev.fn();
    return;
  }
  // Delivery-time check: the destination may have crashed, or a partition
  // may have formed, while the message was in flight.
  if (!node_up(ev.node) || partitioned(ev.msg.src, ev.msg.dst)) {
    stats_.messages_dropped++;
    return;
  }
  auto it = endpoints_.find(ev.node);
  if (it == endpoints_.end() || !it->second->handler_) {
    stats_.messages_dropped++;
    return;
  }
  stats_.messages_delivered++;
  if (tap_) tap_(ev.at, ev.msg);
  // Deliver on the destination's owning lane, computed against the
  // receiver's own lane count (senders don't know it).
  LaneScope scope(target_lane(ev.msg, it->second->lanes_));
  it->second->handler_(std::move(ev.msg));
}

std::size_t SimNetwork::run(std::size_t limit) {
  std::size_t n = 0;
  while (!queue_.empty() && n < limit) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
    ++n;
  }
  return n;
}

std::size_t SimNetwork::run_for(Micros duration) {
  const Micros deadline = clock_.now() + duration;
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
    ++n;
  }
  clock_.advance_to(deadline);
  return n;
}

bool SimNetwork::run_until(const std::function<bool()>& done,
                           std::size_t limit) {
  if (done()) return true;
  std::size_t n = 0;
  while (!queue_.empty() && n < limit) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
    ++n;
    if (done()) return true;
  }
  return done();
}

SimTransport* SimNetwork::endpoint(NodeId id) {
  auto it = endpoints_.find(id);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> SimNetwork::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(endpoints_.size());
  for (const auto& [id, _] : endpoints_) ids.push_back(id);
  return ids;
}

}  // namespace khz::net
