#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace khz::net {

namespace {
const SteadyClock g_steady_clock;

constexpr std::uint32_t kMaxFrameLen = 64u << 20;  // sanity cap: 64 MiB

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
}  // namespace

TcpTransport::TcpTransport(TcpBus& bus, NodeId id, std::uint16_t port)
    : bus_(bus),
      id_(id),
      port_(port),
      send_queue_us_(&metrics_.histogram("tcp.send_queue_us")),
      writev_frames_(&metrics_.histogram("tcp.writev_frames")) {
  configure_lanes(1);
}

void TcpTransport::configure_lanes(unsigned n) {
  if (running_.load()) return;  // executors already own the lane vector
  lanes_n_ = n < 1 ? 1 : (n > kMaxLanes ? kMaxLanes : n);
  lane_exec_.clear();
  for (unsigned l = 0; l < lanes_n_; ++l) {
    auto le = std::make_unique<LaneExec>();
    // Strided ids: id % lanes == owning lane; 1, 2, 3, ... when lanes == 1.
    le->next_timer_id = l + lanes_n_;
    lane_exec_.push_back(std::move(le));
  }
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::set_handler(Handler handler) {
  std::vector<Message> backlog;
  {
    std::lock_guard lk(handler_mu_);
    handler_ = std::move(handler);
    backlog.swap(pre_handler_backlog_);
  }
  // Replay anything that arrived before the handler existed, back onto the
  // owning lanes so dispatch stays single-writer per lane.
  for (auto& m : backlog) {
    const unsigned lane = target_lane(m, lanes_n_);
    enqueue_on(lane, [this, m = std::move(m)]() mutable { dispatch(std::move(m)); });
  }
}

void TcpTransport::dispatch(Message msg) {
  Handler h;
  {
    std::lock_guard lk(handler_mu_);
    if (!handler_) {
      pre_handler_backlog_.push_back(std::move(msg));
      return;
    }
    h = handler_;
  }
  h(std::move(msg));
}

const Clock& TcpTransport::clock() const { return g_steady_clock; }

void TcpTransport::start() {
  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    // Still run (timers and outbound sends work); we just can't be reached.
    KHZ_ERROR("tcp: node %u failed to listen on port %u", id_, port_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  } else {
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  running_.store(true);
  for (unsigned l = 0; l < lanes_n_; ++l) {
    lane_exec_[l]->thr = std::thread([this, l] { executor_loop(l); });
  }
  io_ = std::thread([this] { io_loop(); });
}

void TcpTransport::stop() {
  bool was_running = running_.exchange(false);
  if (!was_running) return;
  wake_io();
  if (io_.joinable()) io_.join();
  {
    std::lock_guard lk(io_mu_);
    for (auto& [_, p] : peers_) {
      if (p.fd >= 0) ::close(p.fd);
      p.fd = -1;
    }
    peers_.clear();
    out_by_fd_.clear();
    for (auto& [fd, _] : in_conns_) ::close(fd);
    in_conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(wake_fd_);
    wake_fd_ = -1;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  for (auto& le : lane_exec_) le->cv.notify_all();
  for (auto& le : lane_exec_) {
    if (le->thr.joinable()) le->thr.join();
  }
}

void TcpTransport::wake_io() {
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] ssize_t r = ::write(wake_fd_, &one, sizeof(one));
  }
}

// ---------------------------------------------------------------------------
// I/O thread: one epoll over the listener, inbound and outbound sockets.
// ---------------------------------------------------------------------------

void TcpTransport::io_loop() {
  set_thread_log_node(id_);
  std::vector<epoll_event> events(64);
  while (running_.load()) {
    const int timeout = backoff_timeout_ms();
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard lk(io_mu_);
    if (!running_.load()) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t evs = events[i].events;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
      } else if (fd == listen_fd_) {
        accept_ready();
      } else if (auto it = out_by_fd_.find(fd); it != out_by_fd_.end()) {
        peer_event(it->second, evs);
      } else if (in_conns_.count(fd) != 0) {
        inbound_ready(fd, evs);
      }
    }
    attempt_due_connects(g_steady_clock.now());
  }
}

int TcpTransport::backoff_timeout_ms() {
  std::lock_guard lk(io_mu_);
  Micros soonest = -1;
  const Micros now = g_steady_clock.now();
  for (const auto& [_, p] : peers_) {
    if (p.fd >= 0 || p.queue.empty()) continue;
    const Micros wait = p.next_attempt > now ? p.next_attempt - now : 0;
    if (soonest < 0 || wait < soonest) soonest = wait;
  }
  if (soonest < 0) return -1;  // nothing pending: block until woken
  return static_cast<int>((soonest + 999) / 1000);
}

void TcpTransport::accept_ready() {
  while (true) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &len, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or listener gone
    set_nodelay(fd);
    in_conns_.emplace(fd, InConn{});
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpTransport::close_inbound(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  in_conns_.erase(fd);
}

void TcpTransport::inbound_ready(int fd, std::uint32_t events) {
  auto& conn = in_conns_.at(fd);
  bool closed = (events & (EPOLLHUP | EPOLLERR)) != 0;
  std::uint8_t tmp[64 * 1024];
  while (!closed) {
    const ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
    if (r > 0) {
      conn.buf.insert(conn.buf.end(), tmp, tmp + r);
      counters_.bytes_received += static_cast<std::uint64_t>(r);
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closed = true;  // EOF or hard error
  }
  // Peel off complete frames: 4-byte little-endian length + body.
  std::size_t off = 0;
  while (conn.buf.size() - off >= 4) {
    const std::uint32_t frame_len = read_le32(conn.buf.data() + off);
    if (frame_len > kMaxFrameLen) {
      KHZ_WARN("tcp: node %u dropping oversized frame (%u bytes)", id_,
               frame_len);
      closed = true;
      break;
    }
    if (conn.buf.size() - off < 4u + frame_len) break;
    Message msg;
    if (Message::decode({conn.buf.data() + off + 4, frame_len}, msg)) {
      ++counters_.messages_received;
      // Demux the decoded frame straight onto its owning lane: the I/O
      // thread never runs node logic itself.
      const unsigned lane = target_lane(msg, lanes_n_);
      enqueue_on(lane,
                 [this, m = std::move(msg)]() mutable { dispatch(std::move(m)); });
    } else {
      KHZ_WARN("tcp: node %u dropping undecodable frame", id_);
      ++counters_.frames_dropped;
    }
    off += 4u + frame_len;
  }
  if (off > 0) {
    conn.buf.erase(conn.buf.begin(),
                   conn.buf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  if (closed || (events & EPOLLRDHUP) != 0) close_inbound(fd);
}

// ---------------------------------------------------------------------------
// Outbound: per-peer non-blocking write queues + reconnect with backoff.
// ---------------------------------------------------------------------------

void TcpTransport::update_peer_events(PeerConn& p) {
  if (p.fd < 0) return;
  std::uint32_t want = EPOLLIN | EPOLLRDHUP;  // detect peer close
  if (p.connecting || !p.queue.empty()) want |= EPOLLOUT;
  if (want == p.armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = p.fd;
  const int op = p.armed == 0 ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
  ::epoll_ctl(epoll_fd_, op, p.fd, &ev);
  p.armed = want;
}

void TcpTransport::start_connect(NodeId peer) {
  auto& p = peers_[peer];
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(bus_.port_of(peer));
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    ++counters_.connect_failures;
    ++p.backoff_exp;
    const Micros delay = std::min<Micros>(
        kBackoffBase << std::min(p.backoff_exp - 1, 20), kBackoffMax);
    p.next_attempt = g_steady_clock.now() + delay;
    return;
  }
  p.fd = fd;
  p.armed = 0;
  out_by_fd_[fd] = peer;
  p.connecting = (rc != 0);
  if (p.connecting) {
    update_peer_events(p);
  } else {
    finish_connect(peer);
  }
}

void TcpTransport::finish_connect(NodeId peer) {
  auto& p = peers_[peer];
  int err = 0;
  socklen_t len = sizeof(err);
  ::getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  if (err != 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p.fd, nullptr);
    out_by_fd_.erase(p.fd);
    ::close(p.fd);
    p.fd = -1;
    p.armed = 0;
    p.connecting = false;
    ++counters_.connect_failures;
    ++p.backoff_exp;
    const Micros delay = std::min<Micros>(
        kBackoffBase << std::min(p.backoff_exp - 1, 20), kBackoffMax);
    p.next_attempt = g_steady_clock.now() + delay;
    return;
  }
  p.connecting = false;
  p.backoff_exp = 0;
  p.next_attempt = 0;
  set_nodelay(p.fd);
  ++counters_.connects;
  if (p.was_connected) ++counters_.reconnects;
  p.was_connected = true;
  if (!flush_queue(p)) {
    connection_lost(peer);
    return;
  }
  update_peer_events(p);
}

void TcpTransport::connection_lost(NodeId peer) {
  auto& p = peers_[peer];
  if (p.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p.fd, nullptr);
    out_by_fd_.erase(p.fd);
    ::close(p.fd);
  }
  p.fd = -1;
  p.armed = 0;
  p.connecting = false;
  // A partially written frame cannot be resumed on a new connection.
  if (p.front_off > 0 && !p.queue.empty()) {
    p.queue_bytes -= p.queue.front().data.size() - p.front_off;
    p.queue.pop_front();
    p.front_off = 0;
    ++counters_.frames_dropped;
  }
  // First retry is immediate; repeated failures back off exponentially.
  p.next_attempt = g_steady_clock.now();
}

bool TcpTransport::flush_queue(PeerConn& p) {
  // Scatter-gather drain: hand the kernel up to kIovBatch queued frames
  // per sendmsg() so a burst of small messages (e.g. a pipelined
  // multi-page lock) costs one syscall instead of one per frame.
  // writev() would do, but only sendmsg() takes MSG_NOSIGNAL.
  constexpr std::size_t kIovBatch = 64;
  while (!p.queue.empty()) {
    struct iovec iov[kIovBatch];
    const std::size_t n = std::min(p.queue.size(), kIovBatch);
    for (std::size_t i = 0; i < n; ++i) {
      const Bytes& frame = p.queue[i].data;
      const std::size_t off = (i == 0) ? p.front_off : 0;
      iov[i].iov_base = const_cast<std::uint8_t*>(frame.data() + off);
      iov[i].iov_len = frame.size() - off;
    }
    struct msghdr mh {};
    mh.msg_iov = iov;
    mh.msg_iovlen = n;
    ssize_t w;
    do {
      w = ::sendmsg(p.fd, &mh, MSG_NOSIGNAL);
    } while (w < 0 && errno == EINTR);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    counters_.bytes_sent += static_cast<std::uint64_t>(w);
    p.queue_bytes -= static_cast<std::size_t>(w);
    // Walk off the frames the kernel fully consumed.
    std::size_t remaining = static_cast<std::size_t>(w);
    std::uint64_t completed = 0;
    const Micros now = g_steady_clock.now();
    while (remaining > 0 && !p.queue.empty()) {
      const std::size_t left = p.queue.front().data.size() - p.front_off;
      if (remaining < left) {
        p.front_off += remaining;
        remaining = 0;
        break;
      }
      remaining -= left;
      send_queue_us_->record(now - p.queue.front().enqueued_at);
      p.queue.pop_front();
      p.front_off = 0;
      ++counters_.messages_sent;
      ++completed;
    }
    if (completed > 0) writev_frames_->record(completed);
  }
  return true;
}

void TcpTransport::peer_event(NodeId peer, std::uint32_t events) {
  auto& p = peers_[peer];
  if (p.connecting) {
    // Writability (or an error flag) resolves the pending connect().
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) finish_connect(peer);
    return;
  }
  if ((events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP | EPOLLIN)) != 0) {
    // Peers never send data on our outbound connections, so readability
    // means EOF (peer died) or an error.
    std::uint8_t probe[256];
    const ssize_t r = ::recv(p.fd, probe, sizeof(probe), 0);
    if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK) ||
        (events & (EPOLLERR | EPOLLHUP)) != 0) {
      connection_lost(peer);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) {
    if (!flush_queue(p)) {
      connection_lost(peer);
      return;
    }
    update_peer_events(p);
  }
}

void TcpTransport::attempt_due_connects(Micros now) {
  for (auto& [peer, p] : peers_) {
    if (p.fd < 0 && !p.queue.empty() && now >= p.next_attempt) {
      start_connect(peer);
    }
  }
}

void TcpTransport::send(Message msg) {
  if (!running_.load()) return;
  msg.src = id_;
  Bytes frame = msg.encode_framed();
  bool need_wake = false;
  {
    std::lock_guard lk(io_mu_);
    auto& p = peers_[msg.dst];
    if (p.queue_bytes + frame.size() > kMaxPeerQueueBytes) {
      ++counters_.frames_dropped;  // backlogged peer: shed, don't grow
      return;
    }
    const bool was_idle = p.queue.empty();
    p.queue_bytes += frame.size();
    p.queue.push_back(Frame{std::move(frame), g_steady_clock.now()});
    counters_.peak_queued_bytes =
        std::max<std::uint64_t>(counters_.peak_queued_bytes, p.queue_bytes);
    if (p.fd >= 0 && !p.connecting && was_idle) {
      // Opportunistic inline flush: skip the I/O-thread hop on the common
      // uncontended path. Leftovers drain via EPOLLOUT.
      if (!flush_queue(p)) {
        connection_lost(msg.dst);
        need_wake = true;
      } else {
        update_peer_events(p);
      }
    } else {
      // Disconnected or already backlogged: the I/O thread owns progress.
      need_wake = true;
    }
    if (need_wake) wake_io();
  }
}

// ---------------------------------------------------------------------------
// Lane executors: serialized callbacks + timer heap, one thread per lane.
// ---------------------------------------------------------------------------

void TcpTransport::enqueue_on(unsigned lane, std::function<void()> fn) {
  LaneExec& le = *lane_exec_[lane >= lanes_n_ ? 0 : lane];
  {
    std::lock_guard lk(le.mu);
    le.work.push_back(std::move(fn));
  }
  le.cv.notify_one();
}

void TcpTransport::post(unsigned lane, std::function<void()> fn) {
  // A direct enqueue rather than a zero-delay timer: cheaper, and FIFO with
  // inbound messages already queued on the target lane.
  enqueue_on(lane, std::move(fn));
}

std::uint64_t TcpTransport::schedule(Micros delay, std::function<void()> fn) {
  // Timers are lane-affine: the callback fires on the scheduling lane.
  return schedule_on(current_lane(), delay, std::move(fn));
}

std::uint64_t TcpTransport::schedule_on(unsigned lane, Micros delay,
                                        std::function<void()> fn) {
  LaneExec& le = *lane_exec_[lane >= lanes_n_ ? 0 : lane];
  std::lock_guard lk(le.mu);
  Timer t;
  t.fire_at = g_steady_clock.now() + delay;
  const std::uint64_t id = le.next_timer_id;
  le.next_timer_id += lanes_n_;
  t.id = id;
  t.fn = std::move(fn);
  le.timers.push_back(std::move(t));
  std::push_heap(le.timers.begin(), le.timers.end());
  le.cv.notify_one();
  // NOT le.timers.back().id: push_heap may have moved another timer there.
  return id;
}

void TcpTransport::cancel(std::uint64_t timer_id) {
  // Strided ids make the owning lane recoverable from the id alone.
  LaneExec& le = *lane_exec_[timer_id % lanes_n_];
  std::lock_guard lk(le.mu);
  for (auto& t : le.timers) {
    if (t.id == timer_id && t.fn) {
      t.fn = nullptr;  // fires as a no-op if not compacted first
      ++le.tombstones;
    }
  }
  // Lazy compaction: once tombstones dominate, rebuild the heap without
  // them so long-running schedule/cancel loops don't leak entries.
  if (le.tombstones * 2 > le.timers.size()) {
    std::erase_if(le.timers, [](const Timer& t) { return !t.fn; });
    std::make_heap(le.timers.begin(), le.timers.end());
    le.tombstones = 0;
  }
}

std::size_t TcpTransport::pending_timers() const {
  std::size_t n = 0;
  for (const auto& le : lane_exec_) {
    std::lock_guard lk(le->mu);
    n += le->timers.size();
  }
  return n;
}

TransportStats TcpTransport::stats() const {
  std::lock_guard lk(io_mu_);
  TransportStats s = counters_;
  s.queued_bytes = 0;
  for (const auto& [_, p] : peers_) s.queued_bytes += p.queue_bytes;
  return s;
}

void TcpTransport::run_on_executor(std::function<void()> fn) {
  run_on_lane(0, std::move(fn));
}

void TcpTransport::run_on_lane(unsigned lane, std::function<void()> fn) {
  if (lane >= lanes_n_) lane = 0;
  LaneExec& le = *lane_exec_[lane];
  if (le.thr.get_id() == std::this_thread::get_id()) {
    fn();  // already on the target lane: blocking would self-deadlock
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  enqueue_on(lane, [&] {
    fn();
    std::lock_guard lk(done_mu);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock lk(done_mu);
  done_cv.wait(lk, [&] { return done; });
}

void TcpTransport::executor_loop(unsigned lane) {
  // All node logic runs here; prefix log lines with the node id so the
  // interleaved output of a multi-node process stays attributable.
  set_thread_log_node(id_);
  // The whole thread lifetime is one LaneScope: every callback it runs
  // observes current_lane() == lane, so lane-owned shards resolve right.
  LaneScope scope(lane);
  LaneExec& le = *lane_exec_[lane];
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lk(le.mu);
      while (true) {
        if (!running_.load() && le.work.empty()) return;
        if (!le.work.empty()) {
          job = std::move(le.work.front());
          le.work.pop_front();
          break;
        }
        if (!le.timers.empty()) {
          const Micros now = g_steady_clock.now();
          if (le.timers.front().fire_at <= now) {
            std::pop_heap(le.timers.begin(), le.timers.end());
            job = std::move(le.timers.back().fn);
            le.timers.pop_back();
            if (!job) {
              if (le.tombstones > 0) --le.tombstones;
              continue;  // cancelled
            }
            break;
          }
          const Micros wait_us = le.timers.front().fire_at - now;
          le.cv.wait_for(lk, std::chrono::microseconds(wait_us));
          continue;
        }
        le.cv.wait(lk);
      }
    }
    job();
  }
}

TcpBus::~TcpBus() { stop_all(); }

TcpTransport& TcpBus::add_node(NodeId id, unsigned lanes) {
  auto ep = std::make_unique<TcpTransport>(*this, id, port_of(id));
  auto& ref = *ep;
  ref.configure_lanes(lanes);
  endpoints_[id] = std::move(ep);  // replaces (and stops) any prior endpoint
  ref.start();
  return ref;
}

void TcpBus::remove_node(NodeId id) { endpoints_.erase(id); }

void TcpBus::stop_all() {
  for (auto& [_, ep] : endpoints_) ep->stop();
  endpoints_.clear();
}

}  // namespace khz::net
