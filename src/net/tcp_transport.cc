#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace khz::net {

namespace {
const SteadyClock g_steady_clock;

bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not a
    // process-killing SIGPIPE.
    const ssize_t w = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (w <= 0) return false;
    put += static_cast<std::size_t>(w);
  }
  return true;
}
}  // namespace

TcpTransport::TcpTransport(TcpBus& bus, NodeId id, std::uint16_t port)
    : bus_(bus), id_(id), port_(port) {}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::set_handler(Handler handler) {
  handler_ = std::move(handler);
}

const Clock& TcpTransport::clock() const { return g_steady_clock; }

void TcpTransport::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    KHZ_ERROR("tcp: node %u failed to listen on port %u", id_, port_);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  running_.store(true);
  executor_ = std::thread([this] { executor_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TcpTransport::stop() {
  bool was_running = running_.exchange(false);
  if (!was_running) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  {
    std::lock_guard lk(conn_mu_);
    for (auto& [_, fd] : out_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    out_fds_.clear();
  }
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard lk(readers_mu_);
    // Unblock reader threads parked in read() on accepted sockets.
    for (int fd : in_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
    in_fds_.clear();
  }
  if (executor_.joinable()) executor_.join();
}

void TcpTransport::accept_loop() {
  while (running_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) break;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lk(readers_mu_);
    in_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TcpTransport::reader_loop(int fd) {
  while (running_.load()) {
    std::uint8_t hdr[4];
    if (!read_exact(fd, hdr, 4)) break;
    const std::uint32_t frame_len =
        static_cast<std::uint32_t>(hdr[0]) |
        static_cast<std::uint32_t>(hdr[1]) << 8 |
        static_cast<std::uint32_t>(hdr[2]) << 16 |
        static_cast<std::uint32_t>(hdr[3]) << 24;
    if (frame_len > 64u << 20) break;  // sanity cap: 64 MiB
    Bytes frame(frame_len);
    if (!read_exact(fd, frame.data(), frame_len)) break;
    Message msg;
    if (!Message::decode(frame, msg)) {
      KHZ_WARN("tcp: node %u dropping undecodable frame", id_);
      continue;
    }
    enqueue([this, m = std::move(msg)]() mutable {
      if (handler_) handler_(std::move(m));
    });
  }
  ::close(fd);
}

int TcpTransport::connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void TcpTransport::send(Message msg) {
  msg.src = id_;
  const Bytes body = msg.encode();
  int fd = -1;
  {
    std::lock_guard lk(conn_mu_);
    auto it = out_fds_.find(msg.dst);
    if (it != out_fds_.end()) fd = it->second;
  }
  if (fd < 0) {
    fd = connect_to(bus_.port_of(msg.dst));
    if (fd < 0) return;  // peer down: best-effort drop, retries handle it
    std::lock_guard lk(conn_mu_);
    auto [it, inserted] = out_fds_.emplace(msg.dst, fd);
    if (!inserted) {
      ::close(fd);
      fd = it->second;
    }
  }
  std::uint8_t hdr[4] = {
      static_cast<std::uint8_t>(body.size()),
      static_cast<std::uint8_t>(body.size() >> 8),
      static_cast<std::uint8_t>(body.size() >> 16),
      static_cast<std::uint8_t>(body.size() >> 24),
  };
  std::lock_guard lk(conn_mu_);
  if (!write_all(fd, hdr, 4) || !write_all(fd, body.data(), body.size())) {
    out_fds_.erase(msg.dst);
    ::close(fd);
  }
}

void TcpTransport::enqueue(std::function<void()> fn) {
  {
    std::lock_guard lk(mu_);
    work_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

std::uint64_t TcpTransport::schedule(Micros delay, std::function<void()> fn) {
  std::lock_guard lk(mu_);
  Timer t;
  t.fire_at = g_steady_clock.now() + delay;
  t.id = next_timer_id_++;
  t.fn = std::move(fn);
  timers_.push_back(std::move(t));
  std::push_heap(timers_.begin(), timers_.end());
  cv_.notify_one();
  return timers_.back().id;
}

void TcpTransport::cancel(std::uint64_t timer_id) {
  std::lock_guard lk(mu_);
  for (auto& t : timers_) {
    if (t.id == timer_id) t.fn = nullptr;  // fires as a no-op
  }
}

void TcpTransport::run_on_executor(std::function<void()> fn) {
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  enqueue([&] {
    fn();
    std::lock_guard lk(done_mu);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock lk(done_mu);
  done_cv.wait(lk, [&] { return done; });
}

void TcpTransport::executor_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      while (true) {
        if (!running_.load() && work_.empty()) return;
        if (!work_.empty()) {
          job = std::move(work_.front());
          work_.pop_front();
          break;
        }
        if (!timers_.empty()) {
          const Micros now = g_steady_clock.now();
          if (timers_.front().fire_at <= now) {
            std::pop_heap(timers_.begin(), timers_.end());
            job = std::move(timers_.back().fn);
            timers_.pop_back();
            if (!job) continue;  // cancelled
            break;
          }
          const Micros wait_us = timers_.front().fire_at - now;
          cv_.wait_for(lk, std::chrono::microseconds(wait_us));
          continue;
        }
        cv_.wait(lk);
      }
    }
    job();
  }
}

TcpBus::~TcpBus() { stop_all(); }

TcpTransport& TcpBus::add_node(NodeId id) {
  auto ep = std::make_unique<TcpTransport>(*this, id, port_of(id));
  auto& ref = *ep;
  endpoints_.emplace(id, std::move(ep));
  ref.start();
  return ref;
}

void TcpBus::stop_all() {
  for (auto& [_, ep] : endpoints_) ep->stop();
  endpoints_.clear();
}

}  // namespace khz::net
