// Transport abstraction.
//
// A Transport delivers Messages between nodes and runs deferred callbacks
// (timers) in the owning node's execution context. Node logic built on this
// interface runs unchanged over the deterministic simulator and over real
// TCP sockets — the paper's claim that only the messaging layer is
// system-dependent (Section 5), made concrete.
//
// Execution model: all callbacks for one node are partitioned across N
// execution lanes (default 1). Callbacks on one lane are serialized, so
// lane-owned node state needs no locking; a multi-lane transport dispatches
// each inbound message onto target_lane(msg) and keeps timers lane-affine
// (a timer fires on the lane that scheduled it). With lanes() == 1 this
// degenerates to the historical single-context model.
#pragma once

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "net/message.h"

namespace khz::net {

/// Wire-level counters for one transport endpoint (observability for tests
/// and benches, mirroring core::NodeStats). All values are cumulative since
/// start() except `queued_bytes`, a point-in-time gauge of the outbound
/// backlog across all peers.
struct TransportStats {
  std::uint64_t messages_sent = 0;      // frames fully handed to the kernel
  std::uint64_t messages_received = 0;  // frames decoded and dispatched
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_dropped = 0;   // queue overflow or undecodable frame
  std::uint64_t connects = 0;         // successful outbound connections
  std::uint64_t reconnects = 0;       // connects to a peer we had lost
  std::uint64_t connect_failures = 0; // failed outbound connection attempts
  std::uint64_t queued_bytes = 0;     // current outbound backlog (gauge)
  std::uint64_t peak_queued_bytes = 0;
};

class Transport {
 public:
  using Handler = std::function<void(Message)>;

  virtual ~Transport() = default;

  /// The node this endpoint belongs to.
  [[nodiscard]] virtual NodeId local() const = 0;

  /// Sends asynchronously; best-effort (messages may be lost or the peer
  /// may be down — Khazana's retry machinery owns reliability).
  virtual void send(Message msg) = 0;

  /// Installs the inbound-message callback. Must be set before any
  /// messages arrive.
  virtual void set_handler(Handler handler) = 0;

  /// Runs `fn` in this node's execution context after `delay` microseconds.
  /// Returns a timer id usable with cancel().
  virtual std::uint64_t schedule(Micros delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; no-op if it already fired.
  virtual void cancel(std::uint64_t timer_id) = 0;

  /// Time source consistent with schedule() delays.
  [[nodiscard]] virtual const Clock& clock() const = 0;

  // --- execution lanes (defaults keep single-lane transports unchanged) --

  /// Number of execution lanes this endpoint dispatches across.
  [[nodiscard]] virtual unsigned lanes() const { return 1; }

  /// Requests `n` lanes. Must be called before traffic flows; transports
  /// whose executors are already running may ignore it (TcpBus configures
  /// endpoints at add_node time instead).
  virtual void configure_lanes(unsigned n) { (void)n; }

  /// schedule(), but pinned to an explicit lane instead of the caller's.
  virtual std::uint64_t schedule_on(unsigned lane, Micros delay,
                                    std::function<void()> fn) {
    (void)lane;
    return schedule(delay, std::move(fn));
  }

  /// Runs `fn` on `lane` as soon as possible (a zero-delay lane-pinned
  /// timer). The cross-lane hop primitive.
  virtual void post(unsigned lane, std::function<void()> fn) {
    (void)schedule_on(lane, 0, std::move(fn));
  }
};

}  // namespace khz::net
