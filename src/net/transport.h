// Transport abstraction.
//
// A Transport delivers Messages between nodes and runs deferred callbacks
// (timers) in the owning node's execution context. Node logic built on this
// interface runs unchanged over the deterministic simulator and over real
// TCP sockets — the paper's claim that only the messaging layer is
// system-dependent (Section 5), made concrete.
//
// Execution model: all callbacks for one node (message handler, timers,
// posted functions) are serialized; node logic never needs internal locking.
#pragma once

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "net/message.h"

namespace khz::net {

/// Wire-level counters for one transport endpoint (observability for tests
/// and benches, mirroring core::NodeStats). All values are cumulative since
/// start() except `queued_bytes`, a point-in-time gauge of the outbound
/// backlog across all peers.
struct TransportStats {
  std::uint64_t messages_sent = 0;      // frames fully handed to the kernel
  std::uint64_t messages_received = 0;  // frames decoded and dispatched
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_dropped = 0;   // queue overflow or undecodable frame
  std::uint64_t connects = 0;         // successful outbound connections
  std::uint64_t reconnects = 0;       // connects to a peer we had lost
  std::uint64_t connect_failures = 0; // failed outbound connection attempts
  std::uint64_t queued_bytes = 0;     // current outbound backlog (gauge)
  std::uint64_t peak_queued_bytes = 0;
};

class Transport {
 public:
  using Handler = std::function<void(Message)>;

  virtual ~Transport() = default;

  /// The node this endpoint belongs to.
  [[nodiscard]] virtual NodeId local() const = 0;

  /// Sends asynchronously; best-effort (messages may be lost or the peer
  /// may be down — Khazana's retry machinery owns reliability).
  virtual void send(Message msg) = 0;

  /// Installs the inbound-message callback. Must be set before any
  /// messages arrive.
  virtual void set_handler(Handler handler) = 0;

  /// Runs `fn` in this node's execution context after `delay` microseconds.
  /// Returns a timer id usable with cancel().
  virtual std::uint64_t schedule(Micros delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; no-op if it already fired.
  virtual void cancel(std::uint64_t timer_id) = 0;

  /// Time source consistent with schedule() delays.
  [[nodiscard]] virtual const Clock& clock() const = 0;
};

}  // namespace khz::net
