// Inter-node message envelope.
//
// Every byte that crosses between Khazana daemons is a Message: a typed,
// optionally RPC-correlated envelope around a wire-format payload. The
// payload schemas live with the subsystems that own them (core/protocol.h,
// consistency/*), keeping this layer ignorant of Khazana semantics, exactly
// as the paper's messaging layer is the only system-dependent component
// (Section 5).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/serialize.h"
#include "common/types.h"

namespace khz::net {

enum class MsgType : std::uint16_t {
  // Membership
  kJoinReq = 1,
  kJoinResp,
  kNodeListGossip,
  kLeave,  // one-way: "I am departing; drop me from membership"

  // Address space management (client-node <-> home/manager node)
  kReserveReq,
  kReserveResp,
  kUnreserveReq,
  kUnreserveResp,
  kSpaceReq,   // ask cluster manager for a large chunk of unreserved space
  kSpaceResp,

  // Region descriptor / location lookup
  kDescLookupReq,
  kDescLookupResp,
  kHintQueryReq,   // ask cluster manager: who caches region at addr?
  kHintQueryResp,
  kHintPublish,    // one-way: "I now cache / no longer cache this region"
  kClusterWalkReq, // broadcast probe: "do you home/cache this region?"
  kClusterWalkResp,

  // Storage allocation
  kAllocReq,
  kAllocResp,
  kFreeReq,
  kFreeResp,

  // Attributes
  kGetAttrReq,
  kGetAttrResp,
  kSetAttrReq,
  kSetAttrResp,

  // Page data plane
  kPageFetchReq,
  kPageFetchResp,
  kReplicaPush,     // one-way: maintain min-replica count / eviction push
  kReplicaDrop,     // one-way: "I dropped my copy of this page"
  // Batched data plane: one message carries fetches/grants for a list of
  // pages (multi-page lock pipeline). Payload: u8 protocol id, then the
  // protocol's batch encoding. One-way in both directions — the per-page
  // protocol timers provide the retry path, not the RPC layer.
  kPageBatchFetchReq,
  kPageBatchFetchResp,

  // Consistency-manager channel (payload owned by the protocol module)
  kCm,

  // Address-map mutation (routed to the subtree's manager node)
  kMapMutateReq,
  kMapMutateResp,

  // "Where is this datum?" (explicit location query, Section 4.2)
  kLocateReq,
  kLocateResp,

  // Failure detection
  kPing,
  kPong,

  // Distributed-object runtime RPC (Section 4.2)
  kObjInvokeReq,
  kObjInvokeResp,

  // Region home migration (Section 3.2 anticipates migrating homes;
  // Section 8 lists migration policies as ongoing work)
  kMigrateReq,   // client/any node -> current home: please move to X
  kMigrateResp,
  kMigrateData,  // old home -> new home: descriptor + page state
  kMigrateDataResp,

  // Client guidance: "push copies of this region onto node X"
  kReplicateToReq,
  kReplicateToResp,
};

[[nodiscard]] std::string_view to_string(MsgType t);

struct Message {
  MsgType type{};
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  /// Non-zero when this message is an RPC request or its response.
  RpcId rpc_id = 0;
  /// Causal trace context (obs::TraceContext flattened into the envelope):
  /// the trace this message belongs to and the span that caused the send.
  /// Zero = untraced. Carried on the wire so a receiver can parent its own
  /// spans under the sender's, giving one cross-node trace per client op.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  Bytes payload;

  [[nodiscard]] std::size_t wire_size() const {
    return 2 + 4 + 4 + 8 + 8 + 8 + 4 + payload.size();
  }

  /// Flat wire encoding, used by the TCP transport.
  [[nodiscard]] Bytes encode() const;
  /// encode() preceded by the 4-byte little-endian frame length that stream
  /// transports use for delimiting — built in one buffer so the send path
  /// queues (and writes) a single contiguous frame.
  [[nodiscard]] Bytes encode_framed() const;
  static bool decode(std::span<const std::uint8_t> wire, Message& out);
};

}  // namespace khz::net
