// Inter-node message envelope.
//
// Every byte that crosses between Khazana daemons is a Message: a typed,
// optionally RPC-correlated envelope around a wire-format payload. The
// payload schemas live with the subsystems that own them (core/protocol.h,
// consistency/*), keeping this layer ignorant of Khazana semantics, exactly
// as the paper's messaging layer is the only system-dependent component
// (Section 5).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/lane.h"
#include "common/serialize.h"
#include "common/types.h"

namespace khz::net {

enum class MsgType : std::uint16_t {
  // Membership
  kJoinReq = 1,     // new node -> genesis node: admit me (addr + manager bit)
  kJoinResp,        // genesis -> joiner: current member list + manager set
  kNodeListGossip,  // one-way fanout: membership delta to every known peer
  kLeave,  // one-way: "I am departing; drop me from membership"

  // Address space management (client-node <-> home/manager node)
  kReserveReq,     // any node -> cluster manager: carve a region of N bytes
  kReserveResp,    // manager -> requester: region base or error
  kUnreserveReq,   // any node -> region home: return the region's space
  kUnreserveResp,  // home -> requester: acceptance (release-type op)
  kSpaceReq,   // ask cluster manager for a large chunk of unreserved space
  kSpaceResp,  // manager -> requester: granted slab (pool refill)

  // Region descriptor / location lookup
  kDescLookupReq,  // resolver -> candidate home: send me the descriptor
  kDescLookupResp, // home -> resolver: descriptor, or kNotFound if not home
  kHintQueryReq,   // ask cluster manager: who caches region at addr?
  kHintQueryResp,  // manager -> requester: hinted home list (may be stale)
  kHintPublish,    // one-way: "I now cache / no longer cache this region"
  kClusterWalkReq, // broadcast probe: "do you home/cache this region?"
  kClusterWalkResp,  // peer -> prober: descriptor if homed/cached here

  // Storage allocation
  kAllocReq,   // any node -> region home: back this range with storage
  kAllocResp,  // home -> requester: success or kNoSpace
  kFreeReq,    // any node -> region home: drop backing for this range
  kFreeResp,   // home -> requester: acceptance (release-type op)

  // Attributes
  kGetAttrReq,   // any node -> region home: send the attribute block
  kGetAttrResp,  // home -> requester: RegionAttrs
  kSetAttrReq,   // any node -> region home: replace the attribute block
  kSetAttrResp,  // home -> requester: acceptance (home journals the change)

  // Page data plane
  kPageFetchReq,   // CM/requester -> page home: send bytes (and/or ownership)
  kPageFetchResp,  // home -> requester: page bytes + version, or Nack
  kReplicaPush,     // one-way: maintain min-replica count / eviction push
  kReplicaDrop,     // one-way: "I dropped my copy of this page"
  // Batched data plane: one message carries fetches/grants for a list of
  // pages (multi-page lock pipeline). Payload: u8 protocol id, then the
  // protocol's batch encoding. One-way in both directions — the per-page
  // protocol timers provide the retry path, not the RPC layer.
  kPageBatchFetchReq,
  kPageBatchFetchResp,

  // Consistency-manager channel: opaque protocol payload (u8 protocol id +
  // protocol encoding), delivered to the page's CM on the receiving node.
  kCm,

  // Address-map mutation (routed to the subtree's manager node)
  kMapMutateReq,   // any node -> map manager: insert/erase/update-homes entry
  kMapMutateResp,  // manager -> requester: applied (release-type: retried)

  // "Where is this datum?" (explicit location query, Section 4.2)
  kLocateReq,   // any node -> cluster manager/home: resolve addr to homes
  kLocateResp,  // responder -> requester: current home-node list

  // Failure detection
  kPing,  // detector -> peer: liveness probe (untraced background traffic)
  kPong,  // peer -> detector: "alive"; 3 missed pongs => marked down

  // Distributed-object runtime RPC (Section 4.2)
  kObjInvokeReq,   // caller node -> replica holder: run method remotely
  kObjInvokeResp,  // holder -> caller: serialized return value or error

  // Region home migration (Section 3.2 anticipates migrating homes;
  // Section 8 lists migration policies as ongoing work)
  kMigrateReq,   // client/any node -> current home: please move to X
  kMigrateResp,  // old home -> requester: hand-off completed or error
  kMigrateData,  // old home -> new home: descriptor + page state
  kMigrateDataResp,  // new home -> old home: installed; old home demotes

  // Client guidance: "push copies of this region onto node X"
  kReplicateToReq,   // any node -> region home: add X to the copy set
  kReplicateToResp,  // home -> requester: replica pushed and recorded

  // Admission-control backpressure: the receiver shed the request before
  // handling it (queue full). Correlated by rpc_id like a response; the
  // payload carries a u8 ErrorCode (kOverloaded). The issuing engine backs
  // off and rotates candidates instead of waiting out an attempt timeout.
  kNack,

  // Telemetry scraping (docs/observability.md): any node (or an external
  // khz_stats endpoint) fetches a peer's full metrics registry — counter/
  // gauge values and raw histogram buckets, optionally the time-series ring
  // and slow-op dossiers (request payload: u8 flags). Untraced
  // protocol-class traffic: scrapes must drain ahead of a backed-up client
  // queue (observing an overloaded node is exactly when scraping matters)
  // without polluting the trace rings they export.
  kStatsReq,
  kStatsResp,  // u8 status, u32 node, u64 now, u8 flags, sections per flag

  // Manager hint anti-entropy (location fabric): periodic exchange of
  // signed hint-cache record sets, merged newest-wins on both ends.
  // Payload both ways: u64 signed digest, u32 n, n records of
  // {addr base, u64 size, u32 node, u64 stamp, u8 retracted}; the response
  // prefixes a u8 status and sends an empty set when the digests matched.
  kHintSyncReq,
  kHintSyncResp,
};

[[nodiscard]] std::string_view to_string(MsgType t);

struct Message {
  MsgType type{};
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  /// Non-zero when this message is an RPC request or its response.
  RpcId rpc_id = 0;
  /// Causal trace context (obs::TraceContext flattened into the envelope):
  /// the trace this message belongs to and the span that caused the send.
  /// Zero = untraced. Carried on the wire so a receiver can parent its own
  /// spans under the sender's, giving one cross-node trace per client op.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// Absolute deadline (microseconds on the shared clock) for the operation
  /// this message serves. Zero = no deadline. Carried on the wire so a
  /// server can drop work whose budget has already expired instead of
  /// computing an answer nobody is waiting for, and so nested RPCs issued
  /// while handling this request inherit the remaining budget.
  std::uint64_t deadline = 0;
  /// Lane routing key (docs/architecture.md, threading model): the region
  /// base address the message concerns, or 0 for control-plane traffic.
  /// The receiving transport demuxes the decoded frame directly onto
  /// lane_of(route_key) so the I/O thread never touches node state. Node-
  /// count independent: each receiver hashes the key against its own lane
  /// count.
  std::uint64_t route_key = 0;
  Bytes payload;

  [[nodiscard]] std::size_t wire_size() const {
    return 2 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + payload.size();
  }

  /// Flat wire encoding, used by the TCP transport.
  [[nodiscard]] Bytes encode() const;
  /// encode() preceded by the 4-byte little-endian frame length that stream
  /// transports use for delimiting — built in one buffer so the send path
  /// queues (and writes) a single contiguous frame.
  [[nodiscard]] Bytes encode_framed() const;
  static bool decode(std::span<const std::uint8_t> wire, Message& out);
};

/// True for rpc_id-correlated reply types (the issuing RpcEngine consumes
/// them). kNack counts: backpressure replies correlate like responses.
/// kPageBatchFetchResp does NOT: batch grants are one-way data-plane
/// messages replayed through the protocol handlers.
[[nodiscard]] bool is_response(MsgType t);

/// Which lane of a `lanes`-lane node should run this message's handler.
/// Responses follow the rpc_id (per-lane engines mint lane-strided ids, so
/// id % lanes is the issuing lane); everything else follows the route_key;
/// unkeyed traffic lands on lane 0.
[[nodiscard]] inline unsigned target_lane(const Message& m, unsigned lanes) {
  if (lanes <= 1) return 0;
  if (m.rpc_id != 0 && is_response(m.type)) {
    return static_cast<unsigned>(m.rpc_id % lanes);
  }
  return lane_of(m.route_key, lanes);
}

}  // namespace khz::net
