// Deterministic discrete-event network simulator.
//
// Substitute for the paper's live LAN/WAN testbed (see DESIGN.md §2): a
// virtual-time event queue delivering messages between registered endpoints
// with configurable per-link latency, bandwidth, jitter, loss, partitions
// and node crashes. All latency numbers reported by the benchmark harness
// are virtual time accumulated here, so results are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "net/transport.h"

namespace khz::net {

/// Latency/bandwidth model of one direction of one link.
struct LinkProfile {
  Micros latency = 100;        // propagation delay (default: 0.1 ms LAN)
  Micros jitter = 0;           // uniform extra delay in [0, jitter]
  double bytes_per_micro = 0;  // 0 = infinite bandwidth
  double drop_probability = 0;
  /// Fixed per-message cost (syscall + framing + scheduling), charged on
  /// the sender's side of the link before transmission starts. This is
  /// what makes one N-page batch cheaper than N single-page messages.
  Micros per_message = 0;
  /// Probability a delivered message arrives twice (models retransmit
  /// races); duplicates arrive after an extra jittered delay.
  double dup_probability = 0;

  static LinkProfile lan() { return {.latency = 100, .jitter = 10}; }
  static LinkProfile wan() {
    // ~40 ms one-way, ~1.5 MB/s, ~1 ms fixed per-message overhead: a
    // late-90s wide-area path.
    return {.latency = 40'000,
            .jitter = 4'000,
            .bytes_per_micro = 1.5,
            .per_message = 1'000};
  }
  static LinkProfile local_loop() { return {.latency = 5, .jitter = 0}; }
};

/// Aggregate traffic statistics, also broken down by message type.
struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t bytes_sent = 0;
  std::map<MsgType, std::uint64_t> per_type;

  void clear() { *this = NetStats{}; }
};

class SimNetwork;

/// One node's endpoint on the simulator.
class SimTransport final : public Transport {
 public:
  SimTransport(SimNetwork& net, NodeId id) : net_(net), id_(id) {}

  [[nodiscard]] NodeId local() const override { return id_; }
  void send(Message msg) override;
  void set_handler(Handler handler) override { handler_ = std::move(handler); }
  std::uint64_t schedule(Micros delay, std::function<void()> fn) override;
  std::uint64_t schedule_on(unsigned lane, Micros delay,
                            std::function<void()> fn) override;
  void cancel(std::uint64_t timer_id) override;
  [[nodiscard]] const Clock& clock() const override;
  /// Lanes are logical under the simulator (one pump thread): events carry
  /// a lane tag and dispatch inside a LaneScope, so node sharding behaves
  /// exactly as it would across real lane threads — deterministically.
  [[nodiscard]] unsigned lanes() const override { return lanes_; }
  void configure_lanes(unsigned n) override {
    lanes_ = n < 1 ? 1 : (n > kMaxLanes ? kMaxLanes : n);
  }

 private:
  friend class SimNetwork;
  SimNetwork& net_;
  NodeId id_;
  unsigned lanes_ = 1;
  Handler handler_;
};

class SimNetwork {
 public:
  explicit SimNetwork(std::uint64_t seed = 1);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Creates the endpoint for `id`. Each id may be registered once.
  SimTransport& add_node(NodeId id);

  // --- topology control -----------------------------------------------
  /// Default profile for links with no explicit override.
  void set_default_link(LinkProfile profile) { default_link_ = profile; }
  /// Directed override for src -> dst.
  void set_link(NodeId src, NodeId dst, LinkProfile profile);
  /// Symmetric override.
  void set_link_pair(NodeId a, NodeId b, LinkProfile profile);

  /// Crash / restart a node. Messages to or from a crashed node vanish;
  /// its pending timers are suppressed while down.
  void set_node_up(NodeId id, bool up);
  [[nodiscard]] bool node_up(NodeId id) const;

  /// Partition management: nodes in different partition groups cannot
  /// exchange messages. clear_partitions() restores full connectivity.
  void partition(const std::set<NodeId>& group_a,
                 const std::set<NodeId>& group_b);
  void clear_partitions();

  // --- execution --------------------------------------------------------
  /// Runs events until the queue is empty or `limit` events processed.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);
  /// Runs events with timestamp <= now + duration.
  std::size_t run_for(Micros duration);
  /// Runs until `done` returns true (checked after each event) or the
  /// queue empties. Returns true if `done` was satisfied.
  bool run_until(const std::function<bool()>& done,
                 std::size_t limit = SIZE_MAX);

  [[nodiscard]] Micros now() const { return clock_.now(); }
  [[nodiscard]] const Clock& clock() const { return clock_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  NetStats& stats() { return stats_; }

  [[nodiscard]] std::vector<NodeId> node_ids() const;

  /// Existing endpoint for `id`, or nullptr. Used to re-attach a restarted
  /// node to its persistent network identity.
  [[nodiscard]] SimTransport* endpoint(NodeId id);

  /// Optional tap observing every delivered message (protocol traces).
  using Tap = std::function<void(Micros, const Message&)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Schedules a callback owned by the simulation itself rather than any
  /// node: it fires even while nodes are down and survives crash-epoch
  /// bumps. Fault-injection scripts (scheduled kills, reboots, partitions)
  /// are built on this — a node-owned timer would be suppressed by the
  /// very crash it is supposed to orchestrate. Cancellable via the usual
  /// timer id.
  std::uint64_t schedule_global(Micros delay, std::function<void()> fn);

 private:
  friend class SimTransport;

  struct Event {
    Micros at;
    std::uint64_t seq;  // FIFO tie-break for determinism
    NodeId node;        // execution context
    Message msg;        // valid when is_timer == false
    std::function<void()> fn;
    bool is_timer = false;
    std::uint64_t timer_id = 0;
    /// Timer events carry the lane that scheduled them (LaneScope around
    /// dispatch); message events compute target_lane() at delivery time
    /// against the receiving endpoint's lane count.
    unsigned lane = 0;
    int epoch = 0;  // node incarnation the timer belongs to
    /// Simulation-owned timer: exempt from node-down / crash-epoch
    /// suppression (fault-injection scripts).
    bool global = false;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void submit(Message msg);
  std::uint64_t schedule_timer(NodeId node, unsigned lane, Micros delay,
                               std::function<void()> fn);
  [[nodiscard]] const LinkProfile& link(NodeId src, NodeId dst) const;
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;
  void dispatch(Event& ev);

  ManualClock clock_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::set<std::uint64_t> cancelled_timers_;

  std::unordered_map<NodeId, std::unique_ptr<SimTransport>> endpoints_;
  std::unordered_map<NodeId, bool> up_;
  // Bumped on every crash: timers scheduled by an earlier incarnation of a
  // node must never fire into a later one (their callbacks capture state
  // that died with the crash).
  std::unordered_map<NodeId, int> crash_epoch_;
  std::map<std::pair<NodeId, NodeId>, LinkProfile> links_;
  LinkProfile default_link_ = LinkProfile::lan();
  std::unordered_map<NodeId, int> partition_group_;  // absent = group 0
  int next_partition_group_ = 1;

  /// Per-(src,dst) FIFO: the messaging layer is connection-oriented (the
  /// TCP transport gives this for free), so later sends never overtake
  /// earlier ones on the same directed pair even under jitter.
  std::map<std::pair<NodeId, NodeId>, Micros> last_delivery_at_;
  /// Per-(src,dst) transmit serialization: a finite-bandwidth link is
  /// busy for per_message + size/bandwidth per send, so back-to-back
  /// messages queue behind each other instead of overlapping for free.
  std::map<std::pair<NodeId, NodeId>, Micros> link_busy_until_;

  NetStats stats_;
  Tap tap_;
};

}  // namespace khz::net
