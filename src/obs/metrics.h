// Per-node metrics: named counters and log2-bucketed latency histograms.
//
// The paper's evaluation is about *where time goes* when an operation
// crosses the resolve -> home-node -> consistency-manager chain. Flat
// counters (NodeStats) cannot attribute latency to a hop, so every node
// carries a MetricsRegistry of counters and histograms that the client-op,
// resolve, CREW and transport layers record into. Registries are cheap to
// read concurrently (atomics; the registry mutex only guards the name map),
// support snapshot/diff for "cost of this phase" measurements, and dump as
// aligned text or JSON for the bench harness.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"

namespace khz::obs {

/// Monotonic counter. add/set are wait-free; readers may observe slightly
/// stale values, which is fine for statistics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the value: used to mirror externally-maintained counters
  /// (e.g. TransportStats) into a registry at snapshot time.
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, pool size, inflight count): unlike a
/// Counter it moves both ways, so rate math over it is meaningless and
/// cluster rollups sum the instantaneous values instead of deltas. set/add/
/// sub are wait-free.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Number of histogram buckets: bucket i counts values whose floor(log2)
/// is i (bucket 0 additionally takes 0), so 64 buckets cover all of u64.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Point-in-time copy of a histogram, with percentile estimation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Estimated value at percentile `p` in [0,100], by linear interpolation
  /// inside the containing log2 bucket; clamped to the observed max.
  [[nodiscard]] double percentile(double p) const;
  /// This snapshot minus an `earlier` one of the same histogram. `max` is
  /// carried over from this snapshot (a maximum cannot be un-observed).
  [[nodiscard]] HistogramSnapshot diff(const HistogramSnapshot& earlier) const;
  /// Adds `other` bucket-by-bucket (count/sum add, max takes the larger).
  /// Because the buckets are merged raw — not reconstructed from
  /// percentiles — a rollup of N nodes' histograms is bucket-exact: it
  /// equals the histogram one node would have recorded seeing all samples.
  void merge(const HistogramSnapshot& other);

  /// Wire format (cluster stats scraping): count/sum/max then the nonzero
  /// buckets as sparse (index, count) pairs — latency histograms typically
  /// occupy under a dozen of the 64 buckets.
  void encode(Encoder& e) const;
  static HistogramSnapshot decode(Decoder& d);
};

/// Log2-bucketed histogram of non-negative values (latencies in micros by
/// convention). Recording is wait-free.
class Histogram {
 public:
  void record(std::uint64_t v);
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Bucket index for a value: floor(log2(v)), with 0 and 1 in bucket 0.
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t v);

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Per-name difference against an `earlier` snapshot. Names absent from
  /// `earlier` are treated as zero there. Gauges are levels, not
  /// accumulators: the diff carries this snapshot's value unchanged.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;
  /// Folds `other` in for a cluster rollup: counters and gauges add,
  /// histograms merge bucket-wise (see HistogramSnapshot::merge). Names
  /// missing on either side are treated as zero/empty.
  void merge(const MetricsSnapshot& other);
  /// Aligned human-readable dump: counters, then gauges (marked), then
  /// histograms.
  [[nodiscard]] std::string to_text() const;
  /// {"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,max,mean,p50,p95,p99}}}
  [[nodiscard]] std::string to_json() const;

  /// Wire format for kStatsResp: every counter, gauge and histogram with
  /// its full name and — for histograms — the raw buckets, so a remote
  /// scraper can roll up and re-derive percentiles exactly.
  void encode(Encoder& e) const;
  static MetricsSnapshot decode(Decoder& d);
};

/// One self-sampled interval of a node's registry: the delta of everything
/// that moved between `at - interval` and `at` (gauges carry their level at
/// `at`).
struct MetricsSample {
  Micros at = 0;
  MetricsSnapshot delta;
};

/// Bounded ring of periodic registry samples, newest kept, oldest
/// overwritten (drop-counted). Filled by the node's self-sampler on its
/// timer rail and exported through the stats scrape path, so a scraper gets
/// short-horizon time series without polling every node at high frequency.
/// Touched only from node context (single-threaded by construction).
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(std::size_t capacity = 64)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(MetricsSample s) {
    if (samples_.size() == capacity_) {
      samples_.pop_front();
      ++dropped_;
    }
    samples_.push_back(std::move(s));
  }

  /// Oldest first.
  [[nodiscard]] std::vector<MetricsSample> samples() const {
    return {samples_.begin(), samples_.end()};
  }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Samples overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() {
    samples_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<MetricsSample> samples_;
  std::uint64_t dropped_ = 0;
};

/// Named metric registry. counter()/histogram() return stable references
/// (std::map nodes never move), so hot paths resolve names once and keep
/// the pointer.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string dump_text() const { return snapshot().to_text(); }
  [[nodiscard]] std::string dump_json() const { return snapshot().to_json(); }

 private:
  mutable std::mutex mu_;  // guards map structure only, not the values
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace khz::obs
