// Per-node metrics: named counters and log2-bucketed latency histograms.
//
// The paper's evaluation is about *where time goes* when an operation
// crosses the resolve -> home-node -> consistency-manager chain. Flat
// counters (NodeStats) cannot attribute latency to a hop, so every node
// carries a MetricsRegistry of counters and histograms that the client-op,
// resolve, CREW and transport layers record into. Registries are cheap to
// read concurrently (atomics; the registry mutex only guards the name map),
// support snapshot/diff for "cost of this phase" measurements, and dump as
// aligned text or JSON for the bench harness.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace khz::obs {

/// Monotonic counter. add/set are wait-free; readers may observe slightly
/// stale values, which is fine for statistics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the value: used to mirror externally-maintained counters
  /// (e.g. TransportStats) into a registry at snapshot time.
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Number of histogram buckets: bucket i counts values whose floor(log2)
/// is i (bucket 0 additionally takes 0), so 64 buckets cover all of u64.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Point-in-time copy of a histogram, with percentile estimation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Estimated value at percentile `p` in [0,100], by linear interpolation
  /// inside the containing log2 bucket; clamped to the observed max.
  [[nodiscard]] double percentile(double p) const;
  /// This snapshot minus an `earlier` one of the same histogram. `max` is
  /// carried over from this snapshot (a maximum cannot be un-observed).
  [[nodiscard]] HistogramSnapshot diff(const HistogramSnapshot& earlier) const;
};

/// Log2-bucketed histogram of non-negative values (latencies in micros by
/// convention). Recording is wait-free.
class Histogram {
 public:
  void record(std::uint64_t v);
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Bucket index for a value: floor(log2(v)), with 0 and 1 in bucket 0.
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t v);

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Per-name difference against an `earlier` snapshot. Names absent from
  /// `earlier` are treated as zero there.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;
  /// Aligned human-readable dump, one metric per line.
  [[nodiscard]] std::string to_text() const;
  /// {"counters":{...},"histograms":{name:{count,sum,max,mean,p50,p95,p99}}}
  [[nodiscard]] std::string to_json() const;
};

/// Named metric registry. counter()/histogram() return stable references
/// (std::map nodes never move), so hot paths resolve names once and keep
/// the pointer.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string dump_text() const { return snapshot().to_text(); }
  [[nodiscard]] std::string dump_json() const { return snapshot().to_json(); }

 private:
  mutable std::mutex mu_;  // guards map structure only, not the values
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace khz::obs
