// Causal operation tracing.
//
// A TraceContext (trace id + span id) rides in every net::Message envelope,
// so one client lock() produces a single causally-linked trace spanning the
// directory resolve, the home-node RPC, the CREW invalidation round and the
// final grant — across nodes. Each node's Tracer keeps an ambient "current
// context" (the node runs single-threaded, so this is just a variable set
// around each dispatched message), opens child spans under it, and parks
// finished spans in a bounded ring buffer exportable as Chrome trace-event
// JSON (load the file in chrome://tracing or Perfetto).
//
// Ids are (node_id << 40 | sequence), so spans minted on different nodes
// never collide and still fit in the 2^53 doubles of JSON consumers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/lane.h"
#include "common/types.h"

namespace khz::obs {

/// The causal context carried in message envelopes: which trace the work
/// belongs to and which span caused it. Zero trace_id = not traced.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool active() const { return trace_id != 0; }
};

/// One finished unit of work inside a trace.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  NodeId node = 0;
  /// Execution lane the span was opened on (0 on single-lane nodes).
  unsigned lane = 0;
  Micros start = 0;
  Micros end = 0;
  std::string name;
};

/// Per-node span recorder. Thread-safe (the TCP executor and client threads
/// may both touch it); under the simulator everything is one thread anyway.
class Tracer {
 public:
  explicit Tracer(NodeId node, std::size_t capacity = 4096)
      : node_(node), capacity_(capacity == 0 ? 1 : capacity) {}

  /// Timestamps come from the node's transport clock (virtual time under
  /// the simulator, steady wall clock over TCP).
  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Opens a span. With an active parent the span joins the parent's
  /// trace; otherwise it roots a new trace. Returns the context to stamp
  /// on outgoing messages / pass to end_span.
  TraceContext begin_span(std::string_view name, TraceContext parent = {});
  /// Closes the span (no-op if unknown, e.g. already aged out).
  void end_span(const TraceContext& ctx);

  /// Ambient context of the work currently executing on the calling lane.
  /// One slot per execution lane: concurrent lanes each carry their own
  /// ambient trace without clobbering each other's.
  [[nodiscard]] TraceContext current() const;
  void set_current(TraceContext ctx);

  /// Finished spans, oldest first (at most `capacity`).
  [[nodiscard]] std::vector<Span> finished_spans() const;
  /// Finished spans overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

 private:
  [[nodiscard]] Micros now() const { return clock_ ? clock_->now() : 0; }
  std::uint64_t next_id();
  void push_finished(Span s);  // mu_ held

  mutable std::mutex mu_;
  NodeId node_;
  std::size_t capacity_;
  const Clock* clock_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::array<TraceContext, kMaxLanes> current_{};  // indexed by current_lane()
  std::map<std::uint64_t, Span> open_;  // span_id -> span in progress
  std::vector<Span> ring_;              // finished spans, bounded
  std::size_t ring_next_ = 0;           // overwrite cursor once full
  std::uint64_t dropped_ = 0;
};

/// RAII guard: installs `ctx` as the tracer's ambient context for a scope
/// and restores the previous one on exit.
class ScopedTraceContext {
 public:
  ScopedTraceContext(Tracer& tracer, TraceContext ctx)
      : tracer_(tracer), prev_(tracer.current()) {
    tracer_.set_current(ctx);
  }
  ~ScopedTraceContext() { tracer_.set_current(prev_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  Tracer& tracer_;
  TraceContext prev_;
};

/// Renders spans (typically concatenated from several nodes' tracers) as
/// Chrome trace-event JSON: "X" complete events, pid = node id, tid =
/// trace id, args carry the span/parent ids for causal reconstruction.
[[nodiscard]] std::string chrome_trace_json(const std::vector<Span>& spans);

}  // namespace khz::obs
