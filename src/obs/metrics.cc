#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace khz::obs {

std::size_t histogram_bucket(std::uint64_t v) {
  if (v < 2) return 0;
  return static_cast<std::size_t>(std::bit_width(v)) - 1;
}

void Histogram::record(std::uint64_t v) {
  buckets_[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) < rank) continue;
    // Interpolate inside [lo, hi], the value range of bucket i.
    const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << i);
    const double hi = static_cast<double>((1ull << i) * 2 - 1);
    const double frac = (rank - static_cast<double>(prev)) /
                        static_cast<double>(buckets[i]);
    const double v = lo + frac * (hi - lo);
    return std::min(v, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::diff(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  d.count = count - earlier.count;
  d.sum = sum - earlier.sum;
  d.max = max;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  return d;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

void HistogramSnapshot::encode(Encoder& e) const {
  e.u64(count);
  e.u64(sum);
  e.u64(max);
  std::uint8_t nonzero = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] != 0) ++nonzero;
  }
  e.u8(nonzero);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    e.u8(static_cast<std::uint8_t>(i));
    e.u64(buckets[i]);
  }
}

HistogramSnapshot HistogramSnapshot::decode(Decoder& d) {
  HistogramSnapshot s;
  s.count = d.u64();
  s.sum = d.u64();
  s.max = d.u64();
  const std::uint8_t n = d.u8();
  for (std::uint8_t i = 0; i < n && d.ok(); ++i) {
    const std::uint8_t idx = d.u8();
    const std::uint64_t c = d.u64();
    if (idx < kHistogramBuckets) s.buckets[idx] = c;
  }
  return s;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    auto it = earlier.counters.find(name);
    d.counters[name] = v - (it == earlier.counters.end() ? 0 : it->second);
  }
  // Gauges are instantaneous levels; "what changed this interval" is the
  // level itself, not a subtraction.
  d.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    auto it = earlier.histograms.find(name);
    d.histograms[name] =
        it == earlier.histograms.end() ? h : h.diff(it->second);
  }
  return d;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

void MetricsSnapshot::encode(Encoder& e) const {
  e.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, v] : counters) {
    e.str(name);
    e.u64(v);
  }
  e.u32(static_cast<std::uint32_t>(gauges.size()));
  for (const auto& [name, v] : gauges) {
    e.str(name);
    e.i64(v);
  }
  e.u32(static_cast<std::uint32_t>(histograms.size()));
  for (const auto& [name, h] : histograms) {
    e.str(name);
    h.encode(e);
  }
}

MetricsSnapshot MetricsSnapshot::decode(Decoder& d) {
  MetricsSnapshot s;
  const std::uint32_t nc = d.u32();
  for (std::uint32_t i = 0; i < nc && d.ok(); ++i) {
    std::string name = d.str();
    s.counters[std::move(name)] = d.u64();
  }
  const std::uint32_t ng = d.u32();
  for (std::uint32_t i = 0; i < ng && d.ok(); ++i) {
    std::string name = d.str();
    s.gauges[std::move(name)] = d.i64();
  }
  const std::uint32_t nh = d.u32();
  for (std::uint32_t i = 0; i < nh && d.ok(); ++i) {
    std::string name = d.str();
    s.histograms[std::move(name)] = HistogramSnapshot::decode(d);
  }
  return s;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "%-40s %lld (gauge)\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s count=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f "
                  "max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.percentile(50), h.percentile(95),
                  h.percentile(99), static_cast<unsigned long long>(h.max));
    out += line;
  }
  return out;
}

namespace {
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += esc;
    } else {
      out += c;
    }
  }
  out += '"';
}
}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[128];
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    std::snprintf(buf, sizeof(buf), ":%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    std::snprintf(buf, sizeof(buf), ":%lld", static_cast<long long>(v));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%llu,\"sum\":%llu,\"max\":%llu,"
                  "\"mean\":%.3f,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.max), h.mean(),
                  h.percentile(50), h.percentile(95), h.percentile(99));
    out += buf;
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple())
             .first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h.snapshot();
  return s;
}

}  // namespace khz::obs
