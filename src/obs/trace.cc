#include "obs/trace.h"

#include <cstdio>

namespace khz::obs {

namespace {
/// Open spans are bounded too: a span begun but never ended (e.g. a lock
/// whose callback is dropped by a test) must not leak forever.
constexpr std::size_t kMaxOpenSpans = 4096;
}  // namespace

std::uint64_t Tracer::next_id() {
  // (node << 40 | seq): unique across nodes, still exact in a double.
  return (static_cast<std::uint64_t>(node_) << 40) | (next_seq_++ & ((1ull << 40) - 1));
}

TraceContext Tracer::begin_span(std::string_view name, TraceContext parent) {
  std::lock_guard lk(mu_);
  Span s;
  s.span_id = next_id();
  s.trace_id = parent.active() ? parent.trace_id : s.span_id;
  s.parent_id = parent.active() ? parent.span_id : 0;
  s.node = node_;
  s.lane = current_lane();
  s.start = now();
  s.name.assign(name);
  if (open_.size() >= kMaxOpenSpans) {
    open_.erase(open_.begin());
    ++dropped_;
  }
  const TraceContext ctx{s.trace_id, s.span_id};
  open_.emplace(s.span_id, std::move(s));
  return ctx;
}

void Tracer::end_span(const TraceContext& ctx) {
  if (!ctx.active()) return;
  std::lock_guard lk(mu_);
  auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;
  Span s = std::move(it->second);
  open_.erase(it);
  s.end = now();
  push_finished(std::move(s));
}

void Tracer::push_finished(Span s) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(s));
    return;
  }
  ring_[ring_next_] = std::move(s);
  ring_next_ = (ring_next_ + 1) % capacity_;
  ++dropped_;
}

TraceContext Tracer::current() const {
  std::lock_guard lk(mu_);
  return current_[current_lane() % kMaxLanes];
}

void Tracer::set_current(TraceContext ctx) {
  std::lock_guard lk(mu_);
  current_[current_lane() % kMaxLanes] = ctx;
}

std::vector<Span> Tracer::finished_spans() const {
  std::lock_guard lk(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, ring_next_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
  ring_next_ = 0;
  open_.clear();
  dropped_ = 0;
  current_.fill({});
}

std::string chrome_trace_json(const std::vector<Span>& spans) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    for (char c : s.name) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    const Micros dur = s.end >= s.start ? s.end - s.start : 0;
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"khz\",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,"
                  "\"pid\":%u,\"tid\":%llu,\"args\":{\"trace\":%llu,"
                  "\"span\":%llu,\"parent\":%llu,\"lane\":%u}}",
                  static_cast<long long>(s.start),
                  static_cast<long long>(dur), s.node,
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id), s.lane);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace khz::obs
