#include "obs/flight_recorder.h"

#include <cstdio>

namespace khz::obs {

void OpDossier::encode(Encoder& e) const {
  e.str(op);
  e.u32(node);
  e.u64(trace_id);
  e.u64(static_cast<std::uint64_t>(start));
  e.u64(static_cast<std::uint64_t>(end));
  e.u64(deadline);
  e.u64(rpc_attempts);
  e.u64(rpc_steered);
  e.u64(depth_protocol);
  e.u64(depth_client);
  e.u64(depth_replication);
  e.u32(static_cast<std::uint32_t>(spans.size()));
  for (const Span& s : spans) {
    e.u64(s.trace_id);
    e.u64(s.span_id);
    e.u64(s.parent_id);
    e.u32(s.node);
    e.u32(s.lane);
    e.u64(static_cast<std::uint64_t>(s.start));
    e.u64(static_cast<std::uint64_t>(s.end));
    e.str(s.name);
  }
}

OpDossier OpDossier::decode(Decoder& d) {
  OpDossier out;
  out.op = d.str();
  out.node = d.u32();
  out.trace_id = d.u64();
  out.start = static_cast<Micros>(d.u64());
  out.end = static_cast<Micros>(d.u64());
  out.deadline = d.u64();
  out.rpc_attempts = d.u64();
  out.rpc_steered = d.u64();
  out.depth_protocol = d.u64();
  out.depth_client = d.u64();
  out.depth_replication = d.u64();
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
    Span s;
    s.trace_id = d.u64();
    s.span_id = d.u64();
    s.parent_id = d.u64();
    s.node = d.u32();
    s.lane = d.u32();
    s.start = static_cast<Micros>(d.u64());
    s.end = static_cast<Micros>(d.u64());
    s.name = d.str();
    out.spans.push_back(std::move(s));
  }
  return out;
}

namespace {
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += esc;
    } else {
      out += c;
    }
  }
  out += '"';
}
}  // namespace

std::string OpDossier::to_json() const {
  std::string out = "{\"op\":";
  append_json_string(out, op);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\"node\":%u,\"trace_id\":%llu,\"start\":%llu,"
                "\"end\":%llu,\"latency_us\":%llu,\"deadline\":%llu,"
                "\"rpc_attempts\":%llu,\"rpc_steered\":%llu,"
                "\"queue_depths\":{\"protocol\":%llu,\"client\":%llu,"
                "\"replication\":%llu},\"spans\":[",
                node, static_cast<unsigned long long>(trace_id),
                static_cast<unsigned long long>(start),
                static_cast<unsigned long long>(end),
                static_cast<unsigned long long>(end - start),
                static_cast<unsigned long long>(deadline),
                static_cast<unsigned long long>(rpc_attempts),
                static_cast<unsigned long long>(rpc_steered),
                static_cast<unsigned long long>(depth_protocol),
                static_cast<unsigned long long>(depth_client),
                static_cast<unsigned long long>(depth_replication));
  out += buf;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, s.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"span_id\":%llu,\"parent_id\":%llu,\"node\":%u,"
                  "\"lane\":%u,\"start\":%llu,\"end\":%llu}",
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id), s.node,
                  s.lane, static_cast<unsigned long long>(s.start),
                  static_cast<unsigned long long>(s.end));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string dossiers_json(const std::vector<OpDossier>& ds) {
  std::string out = "[";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i != 0) out += ',';
    out += ds[i].to_json();
  }
  out += "]";
  return out;
}

}  // namespace khz::obs
