// Slow-op flight recorder.
//
// Aggregate histograms say *that* a tail exists; they cannot say *why one
// particular op* was slow. The flight recorder closes that gap: when a
// client operation's latency crosses a configured threshold (absolute, or
// a fraction of its deadline budget), the node captures a dossier — the
// op's span tree lifted from the trace ring, the RPC attempt/steer counts
// it consumed, and the instantaneous admission queue depths at completion —
// into a bounded, drop-counted ring. Dossiers ride the same kStatsReq/
// kStatsResp scrape path as metrics, so a tail outlier in an overload or
// churn run arrives with its cause attached instead of needing a re-run
// with tracing cranked up.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "obs/trace.h"

namespace khz::obs {

/// Everything the node knew about one slow operation at completion time.
struct OpDossier {
  std::string op;           // "reserve" / "lock" / "getattr" / ...
  NodeId node = kNoNode;    // node the op was issued on
  std::uint64_t trace_id = 0;
  Micros start = 0;
  Micros end = 0;
  /// Absolute deadline the op ran under (0 = none).
  std::uint64_t deadline = 0;
  /// RPC attempts / candidate steers consumed node-wide while the op ran.
  /// Deltas of the node counters, so concurrent ops overlap — still a
  /// faithful "how stormy was the engine" signal for the slow period.
  std::uint64_t rpc_attempts = 0;
  std::uint64_t rpc_steered = 0;
  /// Instantaneous admission queue depths when the op completed.
  std::uint64_t depth_protocol = 0;
  std::uint64_t depth_client = 0;
  std::uint64_t depth_replication = 0;
  /// The op's span tree: every finished span of its trace still in the
  /// ring when the dossier was cut (root included, cross-node spans only
  /// if they were recorded on this node).
  std::vector<Span> spans;

  void encode(Encoder& e) const;
  static OpDossier decode(Decoder& d);
  /// One JSON object (spans inline) for tools and bench sidecars.
  [[nodiscard]] std::string to_json() const;
};

/// Bounded dossier ring: newest kept, oldest overwritten, drop-counted.
/// Internally locked — any lane's op completion may cut a dossier while
/// another lane scrapes.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 32)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(OpDossier d) {
    std::lock_guard<std::mutex> g(mu_);
    if (ring_.size() == capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
    ring_.push_back(std::move(d));
  }

  /// Oldest first.
  [[nodiscard]] std::vector<OpDossier> dossiers() const {
    std::lock_guard<std::mutex> g(mu_);
    return {ring_.begin(), ring_.end()};
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Dossiers overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> g(mu_);
    return dropped_;
  }
  void clear() {
    std::lock_guard<std::mutex> g(mu_);
    ring_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<OpDossier> ring_;
  std::uint64_t dropped_ = 0;
};

/// JSON array of dossiers, oldest first.
[[nodiscard]] std::string dossiers_json(const std::vector<OpDossier>& ds);

}  // namespace khz::obs
