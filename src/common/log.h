// Leveled logging.
//
// Lightweight printf-style logger; everything routes through a process-wide
// pluggable sink so tests can silence or capture output. Each line is
// prefixed with a monotonic timestamp (milliseconds since process start)
// and, when the emitting thread declared one, a node id. Default level is
// kWarn to keep benchmark output clean; protocol traces (e.g. the Figure 2
// step trace) use their own explicit channels rather than the logger.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace khz {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_internal {
void emit(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace log_internal

void set_log_level(LogLevel level);
LogLevel log_level();

/// A sink receives the fully formatted line (timestamp + optional node id +
/// level + message, no trailing newline). The default sink writes it to
/// stderr.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Installs `sink` and returns the previous one. Pass nullptr to restore
/// the default stderr sink.
LogSink set_log_sink(LogSink sink);

/// Tags log lines emitted from the calling thread with a node id (the TCP
/// executor threads use this; simulator logs embed ids in the message).
/// Pass kNoNode to clear.
void set_thread_log_node(std::uint32_t node);

/// Test helper: captures every log line emitted while alive, then restores
/// the previous sink. Also drops the threshold to `level` for the capture
/// window so the lines under test actually fire.
class LogCapture {
 public:
  explicit LogCapture(LogLevel level = LogLevel::kTrace);
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  [[nodiscard]] std::vector<std::string> lines() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  LogSink prev_sink_;
  LogLevel prev_level_;
};

#define KHZ_LOG(level, ...)                                 \
  do {                                                      \
    if (static_cast<int>(level) >=                          \
        static_cast<int>(::khz::log_level())) {             \
      ::khz::log_internal::emit((level), __VA_ARGS__);      \
    }                                                       \
  } while (0)

#define KHZ_TRACE(...) KHZ_LOG(::khz::LogLevel::kTrace, __VA_ARGS__)
#define KHZ_DEBUG(...) KHZ_LOG(::khz::LogLevel::kDebug, __VA_ARGS__)
#define KHZ_INFO(...) KHZ_LOG(::khz::LogLevel::kInfo, __VA_ARGS__)
#define KHZ_WARN(...) KHZ_LOG(::khz::LogLevel::kWarn, __VA_ARGS__)
#define KHZ_ERROR(...) KHZ_LOG(::khz::LogLevel::kError, __VA_ARGS__)

}  // namespace khz
