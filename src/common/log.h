// Leveled logging.
//
// Lightweight printf-style logger; everything routes through a process-wide
// sink so tests can silence or capture output. Default level is kWarn to
// keep benchmark output clean; protocol traces (e.g. the Figure 2 step
// trace) use their own explicit channels rather than the logger.
#pragma once

#include <cstdarg>
#include <string>

namespace khz {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_internal {
void emit(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace log_internal

void set_log_level(LogLevel level);
LogLevel log_level();

#define KHZ_LOG(level, ...)                                 \
  do {                                                      \
    if (static_cast<int>(level) >=                          \
        static_cast<int>(::khz::log_level())) {             \
      ::khz::log_internal::emit((level), __VA_ARGS__);      \
    }                                                       \
  } while (0)

#define KHZ_TRACE(...) KHZ_LOG(::khz::LogLevel::kTrace, __VA_ARGS__)
#define KHZ_DEBUG(...) KHZ_LOG(::khz::LogLevel::kDebug, __VA_ARGS__)
#define KHZ_INFO(...) KHZ_LOG(::khz::LogLevel::kInfo, __VA_ARGS__)
#define KHZ_WARN(...) KHZ_LOG(::khz::LogLevel::kWarn, __VA_ARGS__)
#define KHZ_ERROR(...) KHZ_LOG(::khz::LogLevel::kError, __VA_ARGS__)

}  // namespace khz
