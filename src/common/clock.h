// Clock abstraction.
//
// Node logic never reads wall time directly: in simulation the clock is the
// discrete-event scheduler's virtual time (deterministic tests, reproducible
// latency benchmarks); under the TCP transport it is the steady clock.
#pragma once

#include <chrono>

#include "common/types.h"

namespace khz {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds. Only differences are meaningful.
  [[nodiscard]] virtual Micros now() const = 0;
};

/// Real time, for the TCP transport path.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] Micros now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced time, owned by the simulator.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] Micros now() const override { return now_; }
  void advance_to(Micros t) {
    if (t > now_) now_ = t;
  }

 private:
  Micros now_ = 0;
};

}  // namespace khz
