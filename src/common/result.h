// Error codes and a small expected-style Result<T>.
//
// Khazana's failure-handling contract (paper, Section 3.5) distinguishes
// errors on resource-acquiring operations (reflected back to the client)
// from errors on resource-releasing operations (retried in the background).
// Every fallible API in this codebase returns Result<T> or reports an
// ErrorCode through a completion callback.
#pragma once

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

namespace khz {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kTimeout,          // operation retried until the failure timeout expired
  kNoSpace,          // no unreserved address space / no backing storage
  kNotReserved,      // address range is not part of any reserved region
  kNotAllocated,     // reserved but no physical storage allocated
  kAlreadyReserved,  // overlapping reservation exists
  kAccessDenied,     // region access-control check failed
  kBadLock,          // lock context invalid or mode insufficient for the op
  kConflict,         // consistency manager refused the lock (conflict)
  kUnreachable,      // no replica of the data or metadata is reachable
  kBadArgument,      // malformed request (size 0, unaligned page size, ...)
  kNotFound,         // named entity does not exist (kfs paths, objects)
  kExists,           // named entity already exists
  kCorrupt,          // on-disk or wire data failed validation
  kOverloaded,       // server shed the request (admission queue full)
  kInternal,         // invariant violation; indicates a bug
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCode e) {
  switch (e) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kNoSpace: return "no-space";
    case ErrorCode::kNotReserved: return "not-reserved";
    case ErrorCode::kNotAllocated: return "not-allocated";
    case ErrorCode::kAlreadyReserved: return "already-reserved";
    case ErrorCode::kAccessDenied: return "access-denied";
    case ErrorCode::kBadLock: return "bad-lock";
    case ErrorCode::kConflict: return "conflict";
    case ErrorCode::kUnreachable: return "unreachable";
    case ErrorCode::kBadArgument: return "bad-argument";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kExists: return "exists";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Minimal expected-style result: either a value or an ErrorCode.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}                   // NOLINT
  Result(ErrorCode e) : v_(e) { assert(e != ErrorCode::kOk); }  // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] ErrorCode error() const {
    return ok() ? ErrorCode::kOk : std::get<ErrorCode>(v_);
  }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, ErrorCode> v_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() : e_(ErrorCode::kOk) {}
  Status(ErrorCode e) : e_(e) {}  // NOLINT

  [[nodiscard]] bool ok() const { return e_ == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] ErrorCode error() const { return e_; }

  friend bool operator==(const Status&, const Status&) = default;

 private:
  ErrorCode e_;
};

}  // namespace khz
