// 128-bit global addresses.
//
// Khazana regions are "addressed" using 128-bit identifiers (paper,
// Section 2); there is no correspondence between Khazana addresses and a
// client's virtual addresses. This header provides the 128-bit address type
// with the arithmetic the rest of the system needs (offset math, page
// alignment, range overlap) plus parsing/formatting for diagnostics.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace khz {

/// A 128-bit Khazana global address.
struct GlobalAddress {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr GlobalAddress() = default;
  constexpr GlobalAddress(std::uint64_t high, std::uint64_t low)
      : hi(high), lo(low) {}
  /// Implicit widening from a 64-bit offset keeps call sites readable.
  constexpr GlobalAddress(std::uint64_t low) : hi(0), lo(low) {}  // NOLINT

  friend constexpr auto operator<=>(const GlobalAddress&,
                                    const GlobalAddress&) = default;

  [[nodiscard]] constexpr bool is_zero() const { return hi == 0 && lo == 0; }

  /// Address + byte offset, with carry into the high word.
  [[nodiscard]] constexpr GlobalAddress plus(std::uint64_t delta) const {
    GlobalAddress r{hi, lo + delta};
    if (r.lo < lo) ++r.hi;  // carry
    return r;
  }

  /// Address - byte offset, with borrow from the high word.
  [[nodiscard]] constexpr GlobalAddress minus(std::uint64_t delta) const {
    GlobalAddress r{hi, lo - delta};
    if (r.lo > lo) --r.hi;  // borrow
    return r;
  }

  /// Byte distance to `later`, which must not precede this address by more
  /// than 2^64 (all Khazana regions are far smaller).
  [[nodiscard]] constexpr std::uint64_t distance_to(
      const GlobalAddress& later) const {
    return later.lo - lo;  // modular arithmetic handles the carry correctly
  }

  /// Rounds down to a multiple of `page_size` (power of two).
  [[nodiscard]] constexpr GlobalAddress page_floor(
      std::uint32_t page_size) const {
    return {hi, lo & ~static_cast<std::uint64_t>(page_size - 1)};
  }

  /// Rounds up to a multiple of `page_size` (power of two).
  [[nodiscard]] constexpr GlobalAddress page_ceil(
      std::uint32_t page_size) const {
    return plus(page_size - 1).page_floor(page_size);
  }

  /// Formats as "hhhh...:llll..." hexadecimal.
  [[nodiscard]] std::string str() const;

  /// Parses the format produced by str().
  static std::optional<GlobalAddress> parse(const std::string& text);
};

/// A contiguous range [base, base+size) of global address space.
struct AddressRange {
  GlobalAddress base;
  std::uint64_t size = 0;

  friend constexpr bool operator==(const AddressRange&,
                                   const AddressRange&) = default;

  [[nodiscard]] constexpr GlobalAddress end() const { return base.plus(size); }

  [[nodiscard]] constexpr bool contains(const GlobalAddress& a) const {
    return base <= a && a < end();
  }

  [[nodiscard]] constexpr bool contains_range(const AddressRange& r) const {
    return base <= r.base && r.end() <= end();
  }

  [[nodiscard]] constexpr bool overlaps(const AddressRange& r) const {
    return base < r.end() && r.base < end();
  }

  [[nodiscard]] std::string str() const;
};

}  // namespace khz

template <>
struct std::hash<khz::GlobalAddress> {
  std::size_t operator()(const khz::GlobalAddress& a) const noexcept {
    // Splitmix-style combine of the two words.
    std::uint64_t x = a.lo + 0x9e3779b97f4a7c15ULL * (a.hi + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};
