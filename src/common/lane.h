// Execution lanes: the node-sharding primitives (see docs/architecture.md,
// threading model).
//
// A node partitions its region / consistency-manager / page-directory state
// by region hash across N single-writer lanes. Each lane is one executor
// context (a real thread under TcpTransport, a logical tag under the
// discrete-event simulator); all state owned by a lane is only ever touched
// while running on that lane, which preserves the historical
// no-data-races-per-region invariant without per-region locks.
//
// This header holds the pieces every layer shares: the current-lane TLS,
// the RAII scope transports use while dispatching onto a lane, and the
// region-key -> lane hash. It lives in common/ (the bottom of the include
// DAG) so net/, storage/, obs/ and core/ can all route by it.
#pragma once

#include <cstdint>

namespace khz {

/// Upper bound on lanes per node (config values are clamped to this).
inline constexpr unsigned kMaxLanes = 16;

namespace detail {
inline thread_local unsigned t_current_lane = 0;
}  // namespace detail

/// The lane the calling context is executing on. Defaults to 0 for threads
/// that never entered a LaneScope (external callers, the I/O thread before
/// demux, test main threads).
[[nodiscard]] inline unsigned current_lane() {
  return detail::t_current_lane;
}

/// RAII lane marker. Transports open one around every handler / timer
/// dispatch so lane-owned state accessors resolve to the right shard; lane
/// executor threads open one for their whole lifetime.
class LaneScope {
 public:
  explicit LaneScope(unsigned lane)
      : prev_(detail::t_current_lane) {
    detail::t_current_lane = lane;
  }
  ~LaneScope() { detail::t_current_lane = prev_; }

  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  unsigned prev_;
};

/// splitmix64: cheap, well-mixed 64-bit hash. Region base addresses are
/// strided allocations (low bits mostly zero), so lane selection needs a
/// real mixer, not a modulo.
[[nodiscard]] inline std::uint64_t lane_hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Which lane owns routing key `key` on a node with `lanes` lanes. Key 0 is
/// the control-plane key (membership, map, gossip, unkeyed traffic) and is
/// pinned to lane 0 — which also pins the well-known map region (base
/// address 0) to the lane that owns the manager role's state.
[[nodiscard]] inline unsigned lane_of(std::uint64_t key, unsigned lanes) {
  if (lanes <= 1 || key == 0) return 0;
  return static_cast<unsigned>(lane_hash(key) % lanes);
}

}  // namespace khz
