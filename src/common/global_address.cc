#include "common/global_address.h"

#include <cstdio>

namespace khz {

std::string GlobalAddress::str() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx:%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::optional<GlobalAddress> GlobalAddress::parse(const std::string& text) {
  unsigned long long h = 0;
  unsigned long long l = 0;
  if (std::sscanf(text.c_str(), "%16llx:%16llx", &h, &l) != 2) {
    return std::nullopt;
  }
  return GlobalAddress{h, l};
}

std::string AddressRange::str() const {
  return "[" + base.str() + " +" + std::to_string(size) + ")";
}

}  // namespace khz
