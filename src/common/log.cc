#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace khz {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace log_internal {

void emit(LogLevel level, const char* fmt, ...) {
  char line[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(line, sizeof(line), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[khz %s] %s\n", level_name(level), line);
}

}  // namespace log_internal
}  // namespace khz
