#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>

namespace khz {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

constexpr std::uint32_t kNoLogNode = std::numeric_limits<std::uint32_t>::max();
thread_local std::uint32_t t_log_node = kNoLogNode;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

/// Milliseconds since the first log call: monotonic, cheap, and small
/// enough to read at a glance.
double uptime_ms() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double, std::milli>(clock::now() - start)
      .count();
}

std::mutex& sink_mu() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_ref() {
  static LogSink sink;  // empty = default stderr behaviour
  return sink;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard lk(sink_mu());
  LogSink prev = std::move(sink_ref());
  sink_ref() = std::move(sink);
  return prev;
}

void set_thread_log_node(std::uint32_t node) { t_log_node = node; }

LogCapture::LogCapture(LogLevel level) : prev_level_(log_level()) {
  set_log_level(level);
  prev_sink_ = set_log_sink([this](LogLevel, const std::string& line) {
    std::lock_guard lk(mu_);
    lines_.push_back(line);
  });
}

LogCapture::~LogCapture() {
  (void)set_log_sink(std::move(prev_sink_));
  set_log_level(prev_level_);
}

std::vector<std::string> LogCapture::lines() const {
  std::lock_guard lk(mu_);
  return lines_;
}

namespace log_internal {

void emit(LogLevel level, const char* fmt, ...) {
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);

  char prefix[64];
  if (t_log_node != kNoLogNode) {
    std::snprintf(prefix, sizeof(prefix), "[khz %10.3fms n%u %s] ",
                  uptime_ms(), t_log_node, level_name(level));
  } else {
    std::snprintf(prefix, sizeof(prefix), "[khz %10.3fms %s] ", uptime_ms(),
                  level_name(level));
  }
  std::string line = std::string(prefix) + msg;

  std::lock_guard lk(sink_mu());
  if (sink_ref()) {
    sink_ref()(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace log_internal
}  // namespace khz
