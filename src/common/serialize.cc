// serialize.h is header-only; this translation unit exists so the common
// library has a home for any future out-of-line serialization helpers and to
// verify the header is self-contained.
#include "common/serialize.h"
