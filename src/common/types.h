// Basic scalar types shared across the Khazana implementation.
#pragma once

#include <cstdint>
#include <limits>

namespace khz {

/// Identifies one Khazana daemon (peer) in the system.
using NodeId = std::uint32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Identifies one cluster of closely-connected nodes.
using ClusterId = std::uint32_t;

/// Monotonic version counter attached to replicated page contents.
using Version = std::uint64_t;

/// Correlates an RPC request with its response.
using RpcId = std::uint64_t;

/// Simulated or real time, in microseconds.
using Micros = std::int64_t;

/// Default Khazana page size: 4 KiB, matching the most common VM page size
/// (paper, Section 2).
inline constexpr std::uint32_t kDefaultPageSize = 4096;

}  // namespace khz
