// Wire-format serialization.
//
// All Khazana inter-node messages and persistent structures (address-map
// tree nodes, region descriptors, KFS inodes) are encoded with this pair of
// classes. The format is little-endian fixed-width integers with
// length-prefixed strings/blobs: simple, versionable via message-level type
// tags, and byte-order independent so heterogeneous nodes interoperate
// (one of the paper's motivations for a common substrate).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/global_address.h"

namespace khz {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a byte buffer in wire format.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(Bytes initial) : buf_(std::move(initial)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void addr(const GlobalAddress& a) {
    u64(a.hi);
    u64(a.lo);
  }
  void range(const AddressRange& r) {
    addr(r.base);
    u64(r.size);
  }

  /// Length-prefixed blob.
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw append with no length prefix (caller knows the size).
  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads primitive values back out of a wire-format buffer.
///
/// A decode past the end of the buffer sets the error flag and returns
/// zeros; callers check ok() once after decoding a whole message rather
/// than after every field.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return get_le<std::uint8_t>(); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }

  GlobalAddress addr() {
    GlobalAddress a;
    a.hi = u64();
    a.lo = u64();
    return a;
  }
  AddressRange range() {
    AddressRange r;
    r.base = addr();
    r.size = u64();
    return r;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// Remaining undecoded bytes.
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return ok() ? data_.subspan(pos_) : std::span<const std::uint8_t>{};
  }

  [[nodiscard]] bool ok() const { return !error_; }
  [[nodiscard]] bool at_end() const { return ok() && pos_ == data_.size(); }

 private:
  bool check(std::size_t n) {
    if (error_ || data_.size() - pos_ < n) {
      error_ = true;
      return false;
    }
    return true;
  }

  template <typename T>
  T get_le() {
    if (!check(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool error_ = false;
};

}  // namespace khz
