#include "kfs/fs.h"

#include <algorithm>
#include <set>

namespace khz::kfs {

using consistency::LockContext;
using consistency::LockMode;
using core::RegionAttrs;

namespace {
constexpr std::uint32_t kSuperMagic = 0x4b465331;  // "KFS1"
constexpr std::uint32_t kInodeMagic = 0x4b494e31;  // "KIN1"

/// Metadata regions (superblock, inodes, directories) are strictly
/// consistent: namespace operations must serialize across nodes.
RegionAttrs meta_attrs() {
  RegionAttrs a;
  a.level = core::ConsistencyLevel::kStrict;
  a.protocol = consistency::ProtocolId::kCrew;
  return a;
}
}  // namespace

Result<std::vector<std::string>> split_path(const std::string& path) {
  if (path.empty() || path.front() != '/') return ErrorCode::kBadArgument;
  std::vector<std::string> parts;
  std::size_t i = 1;
  while (i < path.size()) {
    const std::size_t next = path.find('/', i);
    const std::size_t end = next == std::string::npos ? path.size() : next;
    if (end > i) {
      const std::string name = path.substr(i, end - i);
      if (name.size() > kMaxNameLen) return ErrorCode::kBadArgument;
      if (name == "." || name == "..") return ErrorCode::kBadArgument;
      parts.push_back(name);
    }
    i = end + 1;
  }
  return parts;
}

// ---------------------------------------------------------------------------
// Inode image
// ---------------------------------------------------------------------------

void FileSystem::Inode::encode(Encoder& e) const {
  e.u32(kInodeMagic);
  e.u8(static_cast<std::uint8_t>(type));
  e.u8(static_cast<std::uint8_t>(layout));
  e.u64(size);
  e.u32(nlink);
  e.i64(mtime);
  e.u32(static_cast<std::uint32_t>(direct.size()));
  for (const auto& b : direct) e.addr(b);
  e.addr(indirect);
  e.addr(contig);
  e.u64(contig_capacity);
}

std::optional<FileSystem::Inode> FileSystem::Inode::decode(Decoder& d) {
  if (d.u32() != kInodeMagic) return std::nullopt;
  Inode n;
  n.type = static_cast<FileType>(d.u8());
  n.layout = static_cast<FileLayout>(d.u8());
  n.size = d.u64();
  n.nlink = d.u32();
  n.mtime = d.i64();
  const std::uint32_t nblocks = d.u32();
  if (nblocks > kDirectBlocks) return std::nullopt;
  n.direct.reserve(nblocks);
  for (std::uint32_t i = 0; i < nblocks && d.ok(); ++i) {
    n.direct.push_back(d.addr());
  }
  n.indirect = d.addr();
  n.contig = d.addr();
  n.contig_capacity = d.u64();
  if (!d.ok()) return std::nullopt;
  return n;
}

Result<FileSystem::Inode> FileSystem::load_inode(const GlobalAddress& addr) {
  auto raw = client_->get({addr, kBlockSize});
  if (!raw) return raw.error();
  Decoder d(raw.value());
  auto inode = Inode::decode(d);
  if (!inode) return ErrorCode::kCorrupt;
  return *inode;
}

Status FileSystem::store_inode(const GlobalAddress& addr,
                               const Inode& inode) {
  Encoder e;
  inode.encode(e);
  Bytes img = std::move(e).take();
  img.resize(kBlockSize, 0);
  return client_->put({addr, kBlockSize}, img);
}

// ---------------------------------------------------------------------------
// Block mapping
// ---------------------------------------------------------------------------

Result<GlobalAddress> FileSystem::block_addr(const Inode& inode,
                                             std::uint32_t idx) {
  if (idx < kDirectBlocks) {
    if (idx >= inode.direct.size()) return GlobalAddress{};
    return inode.direct[idx];
  }
  const std::uint32_t ind = idx - kDirectBlocks;
  if (ind >= kIndirectEntries || inode.indirect.is_zero()) {
    return GlobalAddress{};
  }
  auto raw = client_->get({inode.indirect, kBlockSize});
  if (!raw) return raw.error();
  Decoder d(raw.value());
  for (std::uint32_t i = 0; i < ind; ++i) (void)d.addr();
  return d.addr();
}

Result<GlobalAddress> FileSystem::ensure_block(
    Inode& inode, const GlobalAddress& inode_addr, std::uint32_t idx) {
  (void)inode_addr;
  auto existing = block_addr(inode, idx);
  if (!existing) return existing;
  if (!existing.value().is_zero()) return existing;

  // Allocate a fresh 4 KiB block region with the file's own attributes
  // ("each block of the filesystem is allocated into a separate
  // 4-kilobyte region").
  auto attrs = client_->getattr(inode_addr);
  RegionAttrs block_attrs = attrs.ok() ? attrs.value() : meta_attrs();
  block_attrs.page_size = kDefaultPageSize;
  auto block = client_->create_region(kBlockSize, block_attrs);
  if (!block) return block;

  if (idx < kDirectBlocks) {
    if (inode.direct.size() <= idx) {
      inode.direct.resize(idx + 1, GlobalAddress{});
    }
    inode.direct[idx] = block.value();
    return block;
  }
  const std::uint32_t ind = idx - kDirectBlocks;
  if (ind >= kIndirectEntries) return ErrorCode::kNoSpace;
  if (inode.indirect.is_zero()) {
    auto indirect = client_->create_region(kBlockSize, meta_attrs());
    if (!indirect) return indirect;
    inode.indirect = indirect.value();
  }
  // Patch the indirect table in place.
  auto ctx = client_->lock({inode.indirect, kBlockSize}, LockMode::kWrite);
  if (!ctx) return ctx.error();
  Encoder e;
  e.addr(block.value());
  const Status s = client_->write(ctx.value(), ind * 16ull, e.data());
  client_->unlock(ctx.value());
  if (!s.ok()) return s.error();
  return block;
}

Status FileSystem::free_block_range(Inode& inode, std::uint32_t first_idx) {
  const std::uint32_t have = static_cast<std::uint32_t>(
      inode.direct.size() +
      (inode.indirect.is_zero() ? 0 : kIndirectEntries));
  for (std::uint32_t idx = first_idx; idx < have; ++idx) {
    auto addr = block_addr(inode, idx);
    if (!addr.ok() || addr.value().is_zero()) continue;
    (void)client_->unreserve(addr.value());
  }
  if (first_idx < inode.direct.size()) {
    inode.direct.resize(first_idx);
  }
  if (first_idx <= kDirectBlocks && !inode.indirect.is_zero()) {
    (void)client_->unreserve(inode.indirect);
    inode.indirect = GlobalAddress{};
  }
  return {};
}

// ---------------------------------------------------------------------------
// File I/O under an already-held inode lock
// ---------------------------------------------------------------------------

Result<Bytes> FileSystem::file_read(const GlobalAddress& inode_addr,
                                    std::uint64_t offset, std::uint64_t len) {
  auto inode = load_inode(inode_addr);
  if (!inode) return inode.error();
  const Inode& n = inode.value();
  if (offset >= n.size) return Bytes{};
  len = std::min(len, n.size - offset);
  if (n.layout == FileLayout::kContiguous) return contig_read(n, offset, len);

  Bytes out(len);
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = offset + done;
    const auto idx = static_cast<std::uint32_t>(pos / kBlockSize);
    const std::uint64_t in_block = pos % kBlockSize;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(len - done, kBlockSize - in_block);
    auto addr = block_addr(n, idx);
    if (!addr) return addr.error();
    if (addr.value().is_zero()) {
      // Hole: reads as zeros.
      std::fill_n(out.begin() + static_cast<long>(done), chunk, 0);
    } else {
      auto ctx = client_->lock({addr.value(), kBlockSize}, LockMode::kRead);
      if (!ctx) return ctx.error();
      auto data = client_->read(ctx.value(), in_block, chunk);
      client_->unlock(ctx.value());
      if (!data) return data.error();
      std::copy(data.value().begin(), data.value().end(),
                out.begin() + static_cast<long>(done));
    }
    done += chunk;
  }
  return out;
}

Status FileSystem::file_write(const GlobalAddress& inode_addr,
                              std::uint64_t offset,
                              std::span<const std::uint8_t> data) {
  {
    auto inode = load_inode(inode_addr);
    if (!inode) return inode.error();
    if (inode.value().layout == FileLayout::kContiguous) {
      return contig_write(inode_addr, inode.value(), offset, data);
    }
  }
  if (offset + data.size() > kMaxFileSize) return ErrorCode::kNoSpace;
  // The inode write lock serializes concurrent writers (and namespace
  // operations) across all nodes; Khazana's CREW protocol does the actual
  // work.
  auto ictx = client_->lock({inode_addr, kBlockSize}, LockMode::kWrite);
  if (!ictx) return ictx.error();
  auto raw = client_->read(ictx.value(), 0, kBlockSize);
  if (!raw) {
    client_->unlock(ictx.value());
    return raw.error();
  }
  Decoder d(raw.value());
  auto decoded = Inode::decode(d);
  if (!decoded) {
    client_->unlock(ictx.value());
    return ErrorCode::kCorrupt;
  }
  Inode inode = *decoded;

  std::uint64_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const auto idx = static_cast<std::uint32_t>(pos / kBlockSize);
    const std::uint64_t in_block = pos % kBlockSize;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(data.size() - done, kBlockSize - in_block);
    auto addr = ensure_block(inode, inode_addr, idx);
    if (!addr) {
      client_->unlock(ictx.value());
      return addr.error();
    }
    auto bctx = client_->lock({addr.value(), kBlockSize}, LockMode::kWrite);
    if (!bctx) {
      client_->unlock(ictx.value());
      return bctx.error();
    }
    const Status ws = client_->write(bctx.value(), in_block,
                                     data.subspan(done, chunk));
    client_->unlock(bctx.value());
    if (!ws.ok()) {
      client_->unlock(ictx.value());
      return ws;
    }
    done += chunk;
  }

  inode.size = std::max(inode.size, offset + data.size());
  Encoder e;
  inode.encode(e);
  Bytes img = std::move(e).take();
  img.resize(kBlockSize, 0);
  const Status s = client_->write(ictx.value(), 0, img);
  client_->unlock(ictx.value());
  return s;
}

Result<Bytes> FileSystem::contig_read(const Inode& inode,
                                      std::uint64_t offset,
                                      std::uint64_t len) {
  // Single lock over the touched range of the one data region.
  auto ctx = client_->lock({inode.contig.plus(offset), len},
                           LockMode::kRead);
  if (!ctx) return ctx.error();
  auto data = client_->read(ctx.value(), 0, len);
  client_->unlock(ctx.value());
  return data;
}

Status FileSystem::contig_write(const GlobalAddress& inode_addr, Inode inode,
                                std::uint64_t offset,
                                std::span<const std::uint8_t> data) {
  if (offset + data.size() > inode.contig_capacity) {
    // The paper notes this layout "would require the filesystem to resize
    // the region whenever the file size changes"; capacity is fixed here.
    return ErrorCode::kNoSpace;
  }
  auto ctx = client_->lock({inode.contig.plus(offset), data.size()},
                           LockMode::kWrite);
  if (!ctx) return ctx.error();
  const Status ws = client_->write(ctx.value(), 0, data);
  client_->unlock(ctx.value());
  if (!ws.ok()) return ws;
  if (offset + data.size() > inode.size) {
    inode.size = offset + data.size();
    return store_inode(inode_addr, inode);
  }
  return {};
}

// ---------------------------------------------------------------------------
// Directory content
// ---------------------------------------------------------------------------

Result<std::vector<DirEntry>> FileSystem::read_dir(
    const GlobalAddress& dir_inode) {
  auto inode = load_inode(dir_inode);
  if (!inode) return inode.error();
  if (inode.value().type != FileType::kDirectory) {
    return ErrorCode::kBadArgument;
  }
  auto raw = file_read(dir_inode, 0, inode.value().size);
  if (!raw) return raw.error();

  std::vector<DirEntry> entries;
  Decoder d(raw.value());
  const std::uint32_t count = d.u32();
  for (std::uint32_t i = 0; i < count && d.ok(); ++i) {
    DirEntry e;
    e.name = d.str();
    e.inode = d.addr();
    e.type = static_cast<FileType>(d.u8());
    entries.push_back(std::move(e));
  }
  if (!d.ok()) return ErrorCode::kCorrupt;
  return entries;
}

Status FileSystem::write_dir(const GlobalAddress& dir_inode,
                             const std::vector<DirEntry>& entries) {
  Encoder e;
  e.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& de : entries) {
    e.str(de.name);
    e.addr(de.inode);
    e.u8(static_cast<std::uint8_t>(de.type));
  }
  const Bytes img = e.data();

  // Rewrite contents, then shrink the recorded size if the directory got
  // smaller (file_write only ever grows it).
  const Status s = file_write(dir_inode, 0, img);
  if (!s.ok()) return s;
  auto ictx = client_->lock({dir_inode, kBlockSize}, LockMode::kWrite);
  if (!ictx) return ictx.error();
  auto raw = client_->read(ictx.value(), 0, kBlockSize);
  if (!raw) {
    client_->unlock(ictx.value());
    return raw.error();
  }
  Decoder d(raw.value());
  auto decoded = Inode::decode(d);
  if (!decoded) {
    client_->unlock(ictx.value());
    return ErrorCode::kCorrupt;
  }
  Inode inode = *decoded;
  inode.size = img.size();
  Encoder enc;
  inode.encode(enc);
  Bytes out = std::move(enc).take();
  out.resize(kBlockSize, 0);
  const Status ws = client_->write(ictx.value(), 0, out);
  client_->unlock(ictx.value());
  return ws;
}

// ---------------------------------------------------------------------------
// mkfs / mount
// ---------------------------------------------------------------------------

Result<GlobalAddress> FileSystem::mkfs(core::SyncClient& client) {
  FileSystem fs(client, {}, {});
  auto root = fs.alloc_inode(FileType::kDirectory, meta_attrs());
  if (!root) return root;

  auto super = client.create_region(kBlockSize, meta_attrs());
  if (!super) return super;
  Encoder e;
  e.u32(kSuperMagic);
  e.addr(root.value());
  Bytes img = std::move(e).take();
  img.resize(kBlockSize, 0);
  const Status s = client.put({super.value(), kBlockSize}, img);
  if (!s.ok()) return s.error();
  return super;
}

Result<FileSystem> FileSystem::mount(core::SyncClient& client,
                                     const GlobalAddress& superblock) {
  auto raw = client.get({superblock, kBlockSize});
  if (!raw) return raw.error();
  Decoder d(raw.value());
  if (d.u32() != kSuperMagic) return ErrorCode::kCorrupt;
  const GlobalAddress root = d.addr();
  return FileSystem(client, superblock, root);
}

Result<GlobalAddress> FileSystem::alloc_inode(FileType type,
                                              const RegionAttrs& attrs,
                                              const FileOptions* opts) {
  core::RegionAttrs inode_attrs = attrs;
  inode_attrs.page_size = kDefaultPageSize;
  auto region = client_->create_region(kBlockSize, inode_attrs);
  if (!region) return region;
  Inode inode;
  inode.type = type;
  if (opts != nullptr && opts->layout == FileLayout::kContiguous) {
    inode.layout = FileLayout::kContiguous;
    inode.contig_capacity = (opts->contiguous_capacity + kBlockSize - 1) /
                            kBlockSize * kBlockSize;
    auto data_region =
        client_->create_region(inode.contig_capacity, inode_attrs);
    if (!data_region) return data_region;
    inode.contig = data_region.value();
  }
  const Status s = store_inode(region.value(), inode);
  if (!s.ok()) return s.error();
  if (type == FileType::kDirectory) {
    const Status ds = write_dir(region.value(), {});
    if (!ds.ok()) return ds.error();
  }
  return region;
}

// ---------------------------------------------------------------------------
// Path resolution ("recursive descent of the filesystem directory tree")
// ---------------------------------------------------------------------------

Result<GlobalAddress> FileSystem::resolve(const std::string& path,
                                          bool want_parent,
                                          std::string* leaf) {
  auto parts = split_path(path);
  if (!parts) return parts.error();
  std::vector<std::string>& names = parts.value();
  if (want_parent) {
    if (names.empty()) return ErrorCode::kBadArgument;
    if (leaf != nullptr) *leaf = names.back();
    names.pop_back();
  }
  GlobalAddress cur = root_inode_;
  for (const auto& name : names) {
    auto entries = read_dir(cur);
    if (!entries) return entries.error();
    const auto it = std::find_if(
        entries.value().begin(), entries.value().end(),
        [&](const DirEntry& e) { return e.name == name; });
    if (it == entries.value().end()) return ErrorCode::kNotFound;
    if (it->type != FileType::kDirectory) return ErrorCode::kBadArgument;
    cur = it->inode;
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------------

Status FileSystem::mkdir(const std::string& path) {
  std::string name;
  auto parent = resolve(path, /*want_parent=*/true, &name);
  if (!parent) return parent.error();
  auto entries = read_dir(parent.value());
  if (!entries) return entries.error();
  for (const auto& e : entries.value()) {
    if (e.name == name) return ErrorCode::kExists;
  }
  auto inode = alloc_inode(FileType::kDirectory, meta_attrs());
  if (!inode) return inode.error();
  entries.value().push_back({name, inode.value(), FileType::kDirectory});
  return write_dir(parent.value(), entries.value());
}

Result<FileHandle> FileSystem::create(const std::string& path,
                                      const FileOptions& opts) {
  std::string name;
  auto parent = resolve(path, /*want_parent=*/true, &name);
  if (!parent) return parent.error();
  auto entries = read_dir(parent.value());
  if (!entries) return entries.error();
  for (const auto& e : entries.value()) {
    if (e.name == name) return ErrorCode::kExists;
  }
  auto inode = alloc_inode(FileType::kFile, opts.attrs, &opts);
  if (!inode) return inode.error();
  entries.value().push_back({name, inode.value(), FileType::kFile});
  const Status s = write_dir(parent.value(), entries.value());
  if (!s.ok()) return s.error();
  return FileHandle{inode.value(), FileType::kFile};
}

Result<FileHandle> FileSystem::open(const std::string& path) {
  auto parts = split_path(path);
  if (!parts) return parts.error();
  if (parts.value().empty()) {
    return FileHandle{root_inode_, FileType::kDirectory};
  }
  std::string name;
  auto parent = resolve(path, /*want_parent=*/true, &name);
  if (!parent) return parent.error();
  auto entries = read_dir(parent.value());
  if (!entries) return entries.error();
  for (const auto& e : entries.value()) {
    if (e.name == name) return FileHandle{e.inode, e.type};
  }
  return ErrorCode::kNotFound;
}

Status FileSystem::unlink(const std::string& path) {
  std::string name;
  auto parent = resolve(path, /*want_parent=*/true, &name);
  if (!parent) return parent.error();
  auto entries = read_dir(parent.value());
  if (!entries) return entries.error();
  auto& list = entries.value();
  const auto it = std::find_if(list.begin(), list.end(), [&](const DirEntry& e) {
    return e.name == name;
  });
  if (it == list.end()) return ErrorCode::kNotFound;
  const DirEntry victim = *it;
  if (victim.type == FileType::kDirectory) {
    auto children = read_dir(victim.inode);
    if (!children) return children.error();
    if (!children.value().empty()) return ErrorCode::kExists;  // not empty
  }
  list.erase(it);
  const Status s = write_dir(parent.value(), list);
  if (!s.ok()) return s;

  // Release the file's storage: blocks first, then the inode region.
  auto inode = load_inode(victim.inode);
  if (inode) {
    Inode n = inode.value();
    (void)free_block_range(n, 0);
    if (n.layout == FileLayout::kContiguous && !n.contig.is_zero()) {
      (void)client_->unreserve(n.contig);
    }
  }
  (void)client_->unreserve(victim.inode);
  return {};
}

Status FileSystem::rename(const std::string& from, const std::string& to) {
  std::string from_name;
  auto from_parent = resolve(from, /*want_parent=*/true, &from_name);
  if (!from_parent) return from_parent.error();
  std::string to_name;
  auto to_parent = resolve(to, /*want_parent=*/true, &to_name);
  if (!to_parent) return to_parent.error();

  auto from_entries = read_dir(from_parent.value());
  if (!from_entries) return from_entries.error();
  auto& src = from_entries.value();
  const auto it = std::find_if(src.begin(), src.end(), [&](const DirEntry& e) {
    return e.name == from_name;
  });
  if (it == src.end()) return ErrorCode::kNotFound;
  DirEntry moving = *it;

  // Refuse to move a directory into itself or its own subtree (the
  // destination parent resolution would have traversed the moving inode).
  if (moving.type == FileType::kDirectory &&
      to_parent.value() == moving.inode) {
    return ErrorCode::kBadArgument;
  }

  if (from_parent.value() == to_parent.value()) {
    // Same-directory rename: one read-modify-write.
    for (const auto& e : src) {
      if (e.name == to_name) return ErrorCode::kExists;
    }
    it->name = to_name;
    return write_dir(from_parent.value(), src);
  }

  auto to_entries = read_dir(to_parent.value());
  if (!to_entries) return to_entries.error();
  auto& dst = to_entries.value();
  for (const auto& e : dst) {
    if (e.name == to_name) return ErrorCode::kExists;
  }
  // Insert at the destination first, then remove from the source: a crash
  // between the two leaves the file reachable (twice) rather than lost.
  moving.name = to_name;
  dst.push_back(moving);
  const Status s1 = write_dir(to_parent.value(), dst);
  if (!s1.ok()) return s1;
  src.erase(std::find_if(src.begin(), src.end(), [&](const DirEntry& e) {
    return e.name == from_name;
  }));
  return write_dir(from_parent.value(), src);
}

Result<std::vector<DirEntry>> FileSystem::readdir(const std::string& path) {
  auto dir = resolve(path, /*want_parent=*/false, nullptr);
  if (!dir) return dir.error();
  return read_dir(dir.value());
}

Result<Stat> FileSystem::stat(const std::string& path) {
  auto fh = open(path);
  if (!fh) return fh.error();
  auto inode = load_inode(fh.value().inode);
  if (!inode) return inode.error();
  Stat st;
  st.type = inode.value().type;
  st.size = inode.value().size;
  st.nlink = inode.value().nlink;
  st.inode = fh.value().inode;
  auto attrs = client_->getattr(fh.value().inode);
  if (attrs) st.attrs = attrs.value();
  return st;
}

// ---------------------------------------------------------------------------
// fsck
// ---------------------------------------------------------------------------

void FileSystem::fsck_walk(const GlobalAddress& inode_addr,
                           const std::string& path, FsckReport& report,
                           int depth) {
  if (depth > 64) {
    report.errors.push_back(path + ": directory nesting too deep (cycle?)");
    return;
  }
  auto inode = load_inode(inode_addr);
  if (!inode) {
    report.errors.push_back(path + ": unreadable or corrupt inode");
    return;
  }
  const Inode& n = inode.value();

  if (n.type == FileType::kDirectory) {
    ++report.directories;
    auto entries = read_dir(inode_addr);
    if (!entries) {
      report.errors.push_back(path + ": undecodable directory contents");
      return;
    }
    std::set<std::string> seen;
    for (const auto& e : entries.value()) {
      if (e.name.empty() || e.name.size() > kMaxNameLen) {
        report.errors.push_back(path + ": bad entry name");
        continue;
      }
      if (!seen.insert(e.name).second) {
        report.errors.push_back(path + "/" + e.name + ": duplicate entry");
        continue;
      }
      fsck_walk(e.inode, path + "/" + e.name, report, depth + 1);
    }
    return;
  }

  ++report.files;
  report.bytes += n.size;
  if (n.layout == FileLayout::kContiguous) {
    if (n.contig.is_zero() || n.size > n.contig_capacity) {
      report.errors.push_back(path + ": bad contiguous extent");
    } else {
      report.blocks += (n.size + kBlockSize - 1) / kBlockSize;
      // The data region must be reachable.
      if (!client_->get({n.contig, 1}).ok()) {
        report.errors.push_back(path + ": contiguous data unreachable");
      }
    }
    return;
  }
  const auto needed_blocks =
      static_cast<std::uint32_t>((n.size + kBlockSize - 1) / kBlockSize);
  for (std::uint32_t idx = 0; idx < needed_blocks; ++idx) {
    auto addr = block_addr(n, idx);
    if (!addr.ok()) {
      report.errors.push_back(path + ": unreadable block map");
      break;
    }
    if (addr.value().is_zero()) continue;  // hole
    ++report.blocks;
    if (!client_->get({addr.value(), 1}).ok()) {
      report.errors.push_back(path + ": block " + std::to_string(idx) +
                              " unreachable");
    }
  }
}

Result<FileSystem::FsckReport> FileSystem::fsck() {
  FsckReport report;
  fsck_walk(root_inode_, "", report, 0);
  // The root itself was counted as a directory; sanity-check the
  // superblock too.
  auto raw = client_->get({superblock_, kBlockSize});
  if (!raw) {
    report.errors.push_back("superblock unreachable");
  } else {
    Decoder d(raw.value());
    if (d.u32() != kSuperMagic) {
      report.errors.push_back("superblock magic mismatch");
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Public file I/O
// ---------------------------------------------------------------------------

Result<Bytes> FileSystem::read(const FileHandle& fh, std::uint64_t offset,
                               std::uint64_t len) {
  return file_read(fh.inode, offset, len);
}

Status FileSystem::write(const FileHandle& fh, std::uint64_t offset,
                         std::span<const std::uint8_t> data) {
  if (fh.type != FileType::kFile) return ErrorCode::kBadArgument;
  return file_write(fh.inode, offset, data);
}

Status FileSystem::truncate(const FileHandle& fh, std::uint64_t new_size) {
  auto inode = load_inode(fh.inode);
  if (!inode) return inode.error();
  Inode n = inode.value();
  if (new_size < n.size) {
    const auto first_dead = static_cast<std::uint32_t>(
        (new_size + kBlockSize - 1) / kBlockSize);
    (void)free_block_range(n, first_dead);
  }
  n.size = new_size;
  return store_inode(fh.inode, n);
}

}  // namespace khz::kfs
