// KFS: a wide-area distributed filesystem on Khazana (paper, Section 4.1).
//
// "The filesystem treats the entire Khazana space as a single disk... At
// the time of file system creation, the creator allocates a superblock and
// an inode for the root of the filesystem. Mounting this filesystem only
// requires the Khazana address of the superblock. Creating a file involves
// the creation of an inode and directory entry for the file. Each inode is
// allocated as a region of its own. ... In the current implementation,
// each block of the filesystem is allocated into a separate 4-kilobyte
// region. ... Opening a file is as simple as finding the inode address for
// the file by a recursive descent of the filesystem directory tree from
// the root and caching that address."
//
// The filesystem contains no distribution logic of its own: multiple
// FileSystem instances mounted on different nodes share all state through
// Khazana — consistency, replication and location are entirely Khazana's
// business. Per-file attributes (replica count, consistency level, access
// modes) map directly onto the region attributes of the file's inode and
// block regions, exactly as the paper's "parameters specified at file
// creation time" describe.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/client.h"

namespace khz::kfs {

inline constexpr std::uint32_t kBlockSize = 4096;
inline constexpr std::uint32_t kDirectBlocks = 200;
inline constexpr std::uint32_t kIndirectEntries = kBlockSize / 16;
/// Maximum file size: direct + single-indirect blocks.
inline constexpr std::uint64_t kMaxFileSize =
    static_cast<std::uint64_t>(kDirectBlocks + kIndirectEntries) * kBlockSize;
inline constexpr std::size_t kMaxNameLen = 255;

enum class FileType : std::uint8_t { kFile = 1, kDirectory = 2 };

struct Stat {
  FileType type = FileType::kFile;
  std::uint64_t size = 0;
  std::uint32_t nlink = 1;
  GlobalAddress inode;
  core::RegionAttrs attrs;  // region attributes of the inode (per-file knobs)
};

struct DirEntry {
  std::string name;
  GlobalAddress inode;
  FileType type = FileType::kFile;
};

/// Cached handle to an open file ("caching that address").
struct FileHandle {
  GlobalAddress inode;
  FileType type = FileType::kFile;
};

/// On-disk layout of a file's data (paper, Section 4.1): "each block of
/// the filesystem is allocated into a separate 4-kilobyte region. An
/// alternative would be for the filesystem to allocate each file into a
/// single contiguous region."
enum class FileLayout : std::uint8_t {
  /// One region per 4 KiB block (the paper's current implementation):
  /// fine-grained sharing, per-block location/replication.
  kBlockPerRegion = 0,
  /// One contiguous region per file (the paper's alternative): fewer
  /// regions and single-lock I/O, at a fixed capacity chosen at creation
  /// (the resize the paper mentions is out of scope, as it was for them).
  kContiguous = 1,
};

/// Per-file creation parameters (paper: replicas, consistency level,
/// access modes at file-creation time).
struct FileOptions {
  core::RegionAttrs attrs;
  FileLayout layout = FileLayout::kBlockPerRegion;
  /// Capacity of a kContiguous file (rounded up to whole blocks).
  std::uint64_t contiguous_capacity = 1 << 20;
};

class FileSystem {
 public:
  /// Formats a new filesystem; returns the superblock address, the only
  /// thing needed to mount it anywhere.
  static Result<GlobalAddress> mkfs(core::SyncClient& client);

  /// Mounts an existing filesystem by superblock address.
  static Result<FileSystem> mount(core::SyncClient& client,
                                  const GlobalAddress& superblock);

  // --- namespace operations ----------------------------------------------
  Status mkdir(const std::string& path);
  Result<FileHandle> create(const std::string& path,
                            const FileOptions& opts = {});
  Result<FileHandle> open(const std::string& path);
  Status unlink(const std::string& path);
  /// Moves a file or (possibly non-empty) directory to a new path. The
  /// inode address never changes — only directory entries move, so open
  /// handles stay valid (names are paths, identity is the Khazana
  /// address).
  Status rename(const std::string& from, const std::string& to);
  Result<std::vector<DirEntry>> readdir(const std::string& path);
  Result<Stat> stat(const std::string& path);

  // --- file I/O ------------------------------------------------------------
  Result<Bytes> read(const FileHandle& fh, std::uint64_t offset,
                     std::uint64_t len);
  Status write(const FileHandle& fh, std::uint64_t offset,
               std::span<const std::uint8_t> data);
  Status truncate(const FileHandle& fh, std::uint64_t new_size);

  /// Filesystem integrity report from fsck().
  struct FsckReport {
    std::uint64_t directories = 0;
    std::uint64_t files = 0;
    std::uint64_t blocks = 0;
    std::uint64_t bytes = 0;
    std::vector<std::string> errors;  // human-readable findings

    [[nodiscard]] bool clean() const { return errors.empty(); }
  };

  /// Walks the whole tree from the root verifying inode magic/shape,
  /// directory encoding, block reachability and size accounting.
  Result<FsckReport> fsck();

  [[nodiscard]] const GlobalAddress& superblock() const {
    return superblock_;
  }
  [[nodiscard]] const GlobalAddress& root() const { return root_inode_; }

 private:
  FileSystem(core::SyncClient& client, GlobalAddress superblock,
             GlobalAddress root)
      : client_(&client), superblock_(superblock), root_inode_(root) {}

  /// On-Khazana inode image (one 4 KiB region per inode).
  struct Inode {
    FileType type = FileType::kFile;
    FileLayout layout = FileLayout::kBlockPerRegion;
    std::uint64_t size = 0;
    std::uint32_t nlink = 1;
    std::int64_t mtime = 0;
    std::vector<GlobalAddress> direct;  // up to kDirectBlocks
    GlobalAddress indirect;             // region of kIndirectEntries addrs
    // kContiguous layout: the single data region.
    GlobalAddress contig;
    std::uint64_t contig_capacity = 0;

    void encode(Encoder& e) const;
    static std::optional<Inode> decode(Decoder& d);
  };

  Result<Inode> load_inode(const GlobalAddress& addr);
  Status store_inode(const GlobalAddress& addr, const Inode& inode);

  /// Address of block index `idx` (resolving the indirect block), or
  /// zero-address if the block is not allocated.
  Result<GlobalAddress> block_addr(const Inode& inode, std::uint32_t idx);
  /// Ensures block `idx` exists, allocating block (and indirect) regions
  /// with the inode's attributes as needed; updates `inode` in memory.
  Result<GlobalAddress> ensure_block(Inode& inode,
                                     const GlobalAddress& inode_addr,
                                     std::uint32_t idx);
  Status free_block_range(Inode& inode, std::uint32_t first_idx);

  /// Creates a fresh inode region with `attrs`; returns its address.
  Result<GlobalAddress> alloc_inode(FileType type,
                                    const core::RegionAttrs& attrs,
                                    const FileOptions* opts = nullptr);
  Result<Bytes> contig_read(const Inode& inode, std::uint64_t offset,
                            std::uint64_t len);
  Status contig_write(const GlobalAddress& inode_addr, Inode inode,
                      std::uint64_t offset,
                      std::span<const std::uint8_t> data);

  // Directory content helpers (directory data lives in the dir's blocks,
  // encoded as a flat entry list).
  Result<std::vector<DirEntry>> read_dir(const GlobalAddress& dir_inode);
  Status write_dir(const GlobalAddress& dir_inode,
                   const std::vector<DirEntry>& entries);

  /// Resolves `path` by recursive descent from the root. When
  /// `want_parent` is true, returns the parent directory's inode and
  /// stores the final component in `leaf`.
  Result<GlobalAddress> resolve(const std::string& path, bool want_parent,
                                std::string* leaf);

  void fsck_walk(const GlobalAddress& inode_addr, const std::string& path,
                 FsckReport& report, int depth);
  Result<Bytes> file_read(const GlobalAddress& inode_addr,
                          std::uint64_t offset, std::uint64_t len);
  Status file_write(const GlobalAddress& inode_addr, std::uint64_t offset,
                    std::span<const std::uint8_t> data);

  core::SyncClient* client_;
  GlobalAddress superblock_;
  GlobalAddress root_inode_;
};

/// Splits "/a/b/c" into components; rejects empty names and names over
/// kMaxNameLen. Exposed for tests.
Result<std::vector<std::string>> split_path(const std::string& path);

}  // namespace khz::kfs
