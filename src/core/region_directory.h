// Compatibility forwarder: RegionDirectory moved to the location
// subsystem (src/location/region_directory.h).
#pragma once

#include "location/region_directory.h"

namespace khz::core {
using location::RegionDirectory;
}  // namespace khz::core
