#include "core/node.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace khz::core {

using consistency::LockContext;
using consistency::LockMode;
using consistency::ProtocolId;
using net::Message;
using net::MsgType;
using storage::PageState;

namespace {

bool is_response(MsgType t) {
  switch (t) {
    case MsgType::kJoinResp:
    case MsgType::kReserveResp:
    case MsgType::kUnreserveResp:
    case MsgType::kSpaceResp:
    case MsgType::kDescLookupResp:
    case MsgType::kHintQueryResp:
    case MsgType::kClusterWalkResp:
    case MsgType::kAllocResp:
    case MsgType::kFreeResp:
    case MsgType::kGetAttrResp:
    case MsgType::kSetAttrResp:
    case MsgType::kPageFetchResp:
    case MsgType::kMapMutateResp:
    case MsgType::kLocateResp:
    case MsgType::kObjInvokeResp:
    case MsgType::kMigrateResp:
    case MsgType::kMigrateDataResp:
    case MsgType::kReplicateToResp:
    case MsgType::kPong:
    // Backpressure replies are rpc_id-correlated like responses; the
    // engine turns them into backoff + candidate rotation.
    case MsgType::kNack:
    case MsgType::kStatsResp:
      return true;
    default:
      return false;
  }
}

/// Span names like "rpc:DescLookupReq" / "rx:Cm".
std::string span_name(const char* kind, MsgType t) {
  std::string out(kind);
  out += ':';
  out += net::to_string(t);
  return out;
}

/// The engine's retry policy is derived from the node's config: the legacy
/// rpc_timeout/max_retries knobs keep their meaning (per-attempt timeout;
/// total attempts = 1 + retries), and the backoff ladder scales with the
/// timeout so sim configs with tight timeouts back off proportionally.
RpcPolicy make_policy(const NodeConfig& c) {
  RpcPolicy p;
  p.attempt_timeout = c.rpc_timeout;
  p.max_attempts = c.max_retries + 1;
  p.backoff_base = std::max<Micros>(c.rpc_timeout / 8, 1);
  p.backoff_cap = 4 * c.rpc_timeout;
  return p;
}

AdmissionConfig make_admission(const NodeConfig& c) {
  AdmissionConfig a;
  a.client_queue_limit = c.admission_client_queue;
  a.protocol_queue_limit = c.admission_protocol_queue;
  a.replication_queue_limit = c.admission_replication_queue;
  a.service_us = c.admission_service_us;
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / bootstrap
// ---------------------------------------------------------------------------

Node::Node(NodeConfig config, net::Transport& transport)
    : config_(std::move(config)),
      transport_(transport),
      rng_(config_.seed + config_.id * 7919),
      storage_(config_.ram_pages,
               config_.disk_dir.empty()
                   ? nullptr
                   : std::make_unique<storage::DiskStore>(config_.disk_dir,
                                                          config_.disk_pages)),
      regions_(1024),
      tracer_(config_.id),
      flight_(config_.flight_recorder_capacity),
      series_(config_.stats_series_capacity),
      engine_(*this, make_policy(config_), metrics_),
      resolver_(*this, engine_, metrics_),
      meta_(storage_, config_.id, [this] { return snapshot_state(); }),
      admission_(*this, make_admission(config_), metrics_) {
  consistency::register_builtin_protocols();
  if (config_.sync_metadata && storage_.disk() != nullptr) {
    storage_.disk()->journal().set_sync_on_commit(true);
  }
  tracer_.set_clock(&transport_.clock());
  regions_.bind_metrics(metrics_);
  ins_.reserves = &metrics_.counter("node.reserves");
  ins_.locks_granted = &metrics_.counter("node.locks_granted");
  ins_.locks_failed = &metrics_.counter("node.locks_failed");
  ins_.reads = &metrics_.counter("node.reads");
  ins_.writes = &metrics_.counter("node.writes");
  ins_.resolve_cache_hits = &metrics_.counter("node.resolve_cache_hits");
  ins_.resolve_manager_hits = &metrics_.counter("node.resolve_manager_hits");
  ins_.resolve_map_walks = &metrics_.counter("node.resolve_map_walks");
  ins_.resolve_cluster_walks = &metrics_.counter("node.resolve_cluster_walks");
  ins_.replica_pushes = &metrics_.counter("node.replica_pushes");
  ins_.background_retries = &metrics_.counter("node.background_retries");
  ins_.deadline_expired = &metrics_.counter("rpc.deadline_expired.server");
  ins_.reserve_us = &metrics_.histogram("op.reserve_us");
  ins_.lock_read_us = &metrics_.histogram("op.lock.read_us");
  ins_.lock_write_us = &metrics_.histogram("op.lock.write_us");
  ins_.lock_write_shared_us = &metrics_.histogram("op.lock.write_shared_us");
  ins_.read_us = &metrics_.histogram("op.read_us");
  ins_.write_us = &metrics_.histogram("op.write_us");
  ins_.resolve_region_dir_us = &metrics_.histogram("resolve.region_dir_us");
  ins_.resolve_manager_hint_us =
      &metrics_.histogram("resolve.manager_hint_us");
  ins_.resolve_map_walk_us = &metrics_.histogram("resolve.map_walk_us");
  ins_.resolve_cluster_walk_us =
      &metrics_.histogram("resolve.cluster_walk_us");
  ins_.lock_pages = &metrics_.histogram("op.lock.pages");
  ins_.lock_window = &metrics_.histogram("op.lock.window_occupancy");
  ins_.scrapes_served = &metrics_.counter("telemetry.scrapes_served");
  ins_.samples = &metrics_.counter("telemetry.samples");
  ins_.slow_ops = &metrics_.counter("node.slow_ops");
  ins_.rpc_attempts = &metrics_.counter("rpc.attempts");
  ins_.rpc_steered = &metrics_.counter("rpc.steered");
  ins_.getattr_us = &metrics_.histogram("op.getattr_us");
  members_.insert(config_.id);
  for (NodeId p : config_.peers) members_.insert(p);
  storage_.set_evict_hook([this](const GlobalAddress& page,
                                 const Bytes& data) {
    return evict_hook(page, data);
  });
  transport_.set_handler([this](Message m) { on_message(std::move(m)); });
}

Node::~Node() { stop(); }

void Node::stop() {
  // Engine first: it cancels every pending RPC-attempt, backoff and
  // reliable-send timer, all of which capture `this`.
  engine_.shutdown();
  admission_.shutdown();
  if (ping_timer_ != 0) {
    transport_.cancel(ping_timer_);
    ping_timer_ = 0;
  }
  if (sample_timer_ != 0) {
    transport_.cancel(sample_timer_);
    sample_timer_ = 0;
  }
}

NodeStats Node::stats() const {
  NodeStats s;
  s.reserves = ins_.reserves->value();
  s.locks_granted = ins_.locks_granted->value();
  s.locks_failed = ins_.locks_failed->value();
  s.reads = ins_.reads->value();
  s.writes = ins_.writes->value();
  s.resolve_cache_hits = ins_.resolve_cache_hits->value();
  s.resolve_manager_hits = ins_.resolve_manager_hits->value();
  s.resolve_map_walks = ins_.resolve_map_walks->value();
  s.resolve_cluster_walks = ins_.resolve_cluster_walks->value();
  s.replica_pushes = ins_.replica_pushes->value();
  s.background_retries = ins_.background_retries->value();
  return s;
}

obs::Histogram* Node::lock_hist(LockMode mode) {
  switch (mode) {
    case LockMode::kWrite: return ins_.lock_write_us;
    case LockMode::kWriteShared: return ins_.lock_write_shared_us;
    default: return ins_.lock_read_us;
  }
}
void Node::start() {
  if (started_) return;
  started_ = true;
  recover_meta();

  if (config_.id == config_.genesis) {
    // Bootstrap region 0: the address map lives in Khazana itself
    // (Section 3.1). On restart an already formatted map is recovered from
    // the persistent store.
    map_store_ = std::make_unique<LocalMapStore>(*this);
    map_ = std::make_unique<AddressMap>(*map_store_);
    homed_regions_[kMapRegionBase] = map_region_descriptor(config_.genesis);
    if (!map_->formatted()) {
      AddressMap::format(*map_store_);
      (void)map_->insert({kMapRegionBase, kMapRegionSize},
                         {config_.genesis});
    }
  } else {
    // Join the system through the genesis node (best-effort; static
    // membership from config.peers already covers the common case).
    rpc(config_.genesis, MsgType::kJoinReq, {},
        [this](bool ok, Decoder& d) {
          if (!ok) return;
          const std::uint32_t n = d.u32();
          for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
            members_.insert(d.u32());
          }
        });
  }

  if (config_.ping_interval > 0) {
    ping_timer_ =
        transport_.schedule(config_.ping_interval, [this] { ping_tick(); });
  }
  if (config_.stats_sample_interval > 0) {
    // Baseline for the first delta; ticks re-arm themselves.
    last_sample_ = metrics_.snapshot();
    sample_timer_ = transport_.schedule(config_.stats_sample_interval,
                                        [this] { sample_tick(); });
  }
}

// ---------------------------------------------------------------------------
// CmHost implementation
// ---------------------------------------------------------------------------

void Node::send_cm(NodeId peer, ProtocolId protocol, const GlobalAddress& page,
                   Bytes payload) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(protocol));
  e.addr(page);
  e.raw(payload);
  Message m;
  m.type = MsgType::kCm;
  m.dst = peer;
  m.payload = std::move(e).take();
  send_msg(std::move(m));
}

void Node::send_page_batch(NodeId peer, ProtocolId protocol, bool request,
                           Bytes payload) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(protocol));
  e.raw(payload);
  Message m;
  m.type =
      request ? MsgType::kPageBatchFetchReq : MsgType::kPageBatchFetchResp;
  m.dst = peer;
  m.payload = std::move(e).take();
  send_msg(std::move(m));
}

storage::PageInfo& Node::page_info(const GlobalAddress& page) {
  return pages_.ensure(page);
}

const Bytes* Node::page_data(const GlobalAddress& page) {
  return storage_.get(page);
}

void Node::store_page(const GlobalAddress& page, Bytes data) {
  storage_.put(page, std::move(data));
  if (pages_.ensure(page).homed_locally) {
    // Write-through for pages this node homes: their latest contents must
    // survive a restart (the page directory's persistent subset,
    // Section 3.4). Journal the version so recovery re-serves the page.
    (void)storage_.flush(page);
    journal_page(page);
  }
}

void Node::drop_page(const GlobalAddress& page) { storage_.erase(page); }

NodeId Node::home_of(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    return config_.genesis;
  }
  auto it = homed_regions_.upper_bound(page);
  if (it != homed_regions_.begin()) {
    auto& [base, desc] = *std::prev(it);
    if (desc.range.contains(page)) return config_.id;
  }
  if (auto desc = regions_.lookup(page)) return desc->primary_home();
  // Last resort: the cluster manager can route or Nack; retries recover.
  return config_.cluster_manager;
}

bool Node::is_home(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    return config_.id == config_.genesis;
  }
  auto it = homed_regions_.upper_bound(page);
  return it != homed_regions_.begin() &&
         std::prev(it)->second.range.contains(page);
}

std::vector<NodeId> Node::alternate_homes(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) return {};
  auto it = homed_regions_.upper_bound(page);
  if (it != homed_regions_.begin()) {
    auto& [base, desc] = *std::prev(it);
    if (desc.range.contains(page)) return desc.alternates();
  }
  if (auto desc = regions_.lookup(page)) return desc->alternates();
  return {};
}

std::uint32_t Node::page_size_of(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    return kDefaultPageSize;
  }
  auto it = homed_regions_.upper_bound(page);
  if (it != homed_regions_.begin()) {
    auto& [base, desc] = *std::prev(it);
    if (desc.range.contains(page)) return desc.attrs.page_size;
  }
  if (auto desc = regions_.lookup(page)) return desc->attrs.page_size;
  return kDefaultPageSize;
}

std::uint32_t Node::min_replicas_of(const GlobalAddress& page) {
  auto it = homed_regions_.upper_bound(page);
  if (it != homed_regions_.begin()) {
    auto& [base, desc] = *std::prev(it);
    if (desc.range.contains(page)) return desc.attrs.min_replicas;
  }
  if (auto desc = regions_.lookup(page)) return desc->attrs.min_replicas;
  return 1;
}

std::vector<NodeId> Node::membership() {
  std::vector<NodeId> out;
  for (NodeId n : members_) {
    if (!down_nodes_.contains(n)) out.push_back(n);
  }
  return out;
}

bool Node::write_gated(const GlobalAddress& page) {
  if (recovering_regions_.empty()) return false;
  auto it = homed_regions_.upper_bound(page);
  if (it == homed_regions_.begin()) return false;
  const RegionDescriptor& desc = std::prev(it)->second;
  if (!desc.range.contains(page)) return false;
  if (!recovering_regions_.contains(desc.range.base)) return false;
  // The guarantee is satisfiable only up to the live membership size; a
  // two-node system with min_replicas=3 must not gate forever.
  const auto target = std::min<std::size_t>(desc.attrs.min_replicas,
                                            membership().size());
  const std::uint32_t psz = desc.attrs.page_size;
  for (GlobalAddress p = desc.range.base; p < desc.range.end();
       p = p.plus(psz)) {
    const auto* info = pages_.find(p);
    std::size_t live = 0;
    if (info != nullptr) {
      for (NodeId s : info->sharers) {
        if (!down_nodes_.contains(s)) ++live;
      }
    }
    if (live < target) return true;  // still rebuilding: hold the write
  }
  // Every page of the region meets the replica floor again; lift the gate.
  recovering_regions_.erase(desc.range.base);
  return false;
}

void Node::note_copyset_change(const GlobalAddress& page) {
  // Defer so replica maintenance never runs inside a protocol handler.
  transport_.schedule(0, [this, page] { maintain_replicas(page); });
}

Micros Node::now() const { return transport_.clock().now(); }

std::uint64_t Node::schedule(Micros delay, std::function<void()> fn) {
  return transport_.schedule(delay, std::move(fn));
}

void Node::cancel(std::uint64_t timer_id) { transport_.cancel(timer_id); }

consistency::ConsistencyManager* Node::cm_for(ProtocolId protocol) {
  auto it = cms_.find(protocol);
  if (it != cms_.end()) return it->second.get();
  auto cm = consistency::ProtocolRegistry::instance().create(protocol, *this);
  if (!cm) return nullptr;
  auto* raw = cm.get();
  cms_.emplace(protocol, std::move(cm));
  return raw;
}

// ---------------------------------------------------------------------------
// Storage integration
// ---------------------------------------------------------------------------

bool Node::evict_hook(const GlobalAddress& page, const Bytes& data) {
  (void)data;
  // "it must invoke the consistency protocol associated with the page to
  // update the list of sharers, push any dirty data to remote nodes"
  // (Section 3.4).
  auto* info = pages_.find(page);
  if (info == nullptr) return true;  // untracked page: free to drop
  // Map region pages use the release protocol.
  ProtocolId protocol = ProtocolId::kRelease;
  if (!AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    auto desc = regions_.lookup(page);
    if (!desc) {
      auto it = homed_regions_.upper_bound(page);
      if (it != homed_regions_.begin() &&
          std::prev(it)->second.range.contains(page)) {
        desc = std::prev(it)->second;
      }
    }
    if (desc) protocol = desc->attrs.protocol;
  }
  auto* cm = cm_for(protocol);
  if (cm == nullptr) return true;
  const bool allowed = cm->on_evict(page);
  if (allowed) pages_.erase(page);
  return allowed;
}

void Node::materialize_region_pages(const RegionDescriptor& desc,
                                    const AddressRange& range) {
  const std::uint32_t psz = desc.attrs.page_size;
  for (GlobalAddress p = range.base.page_floor(psz); p < range.end();
       p = p.plus(psz)) {
    auto& info = pages_.ensure(p);
    info.homed_locally = true;
    info.home = config_.id;
    if (storage_.get(p) == nullptr) {
      info.owner = config_.id;
      info.state = PageState::kShared;
      info.sharers.insert(config_.id);
      store_page(p, Bytes(psz, 0));
    }
    if (desc.attrs.min_replicas > 1) maintain_replicas(p);
  }
}

void Node::release_region_pages(const RegionDescriptor& desc,
                                const AddressRange& range) {
  const std::uint32_t psz = desc.attrs.page_size;
  for (GlobalAddress p = range.base.page_floor(psz); p < range.end();
       p = p.plus(psz)) {
    if (auto* info = pages_.find(p)) {
      for (NodeId sharer : info->sharers) {
        if (sharer == config_.id) continue;
        Message m;
        m.type = MsgType::kReplicaDrop;
        m.dst = sharer;
        Encoder e;
        e.addr(p);
        m.payload = std::move(e).take();
        send_msg(std::move(m));
      }
    }
    storage_.erase(p);
    pages_.erase(p);
  }
}

// ---------------------------------------------------------------------------
// LocalMapStore: address-map pages live in region 0 of this very store
// ---------------------------------------------------------------------------

Bytes Node::LocalMapStore::read_page(std::uint32_t index) {
  const GlobalAddress addr = kMapRegionBase.plus(
      static_cast<std::uint64_t>(index) * kDefaultPageSize);
  if (const Bytes* data = node_.storage_.get(addr)) return *data;
  return Bytes(kDefaultPageSize, 0);
}

void Node::LocalMapStore::write_page(std::uint32_t index, const Bytes& data) {
  const GlobalAddress addr = kMapRegionBase.plus(
      static_cast<std::uint64_t>(index) * kDefaultPageSize);
  auto* cm = node_.cm_for(ProtocolId::kRelease);
  // At the map's home node the release protocol grants synchronously.
  bool granted = false;
  cm->acquire(addr, LockMode::kWrite, [&granted](Status s) {
    granted = s.ok();
  });
  assert(granted);
  auto& info = node_.pages_.ensure(addr);
  info.homed_locally = true;
  info.home = node_.config_.id;
  if (info.owner == kNoNode) info.owner = node_.config_.id;
  node_.store_page(addr, data);
  cm->release(addr, LockMode::kWrite, /*dirty=*/true);
}

// ---------------------------------------------------------------------------
// Messaging plumbing
// ---------------------------------------------------------------------------

void Node::route(Message m) {
  if (m.dst == config_.id) {
    // Self-sends loop back through the scheduler so handlers are never
    // re-entered from within themselves.
    m.src = config_.id;
    transport_.schedule(0, [this, m = std::move(m)]() mutable {
      on_message(std::move(m));
    });
    return;
  }
  transport_.send(std::move(m));
}

void Node::send_msg(Message m) {
  const obs::TraceContext ctx = tracer_.current();
  m.trace_id = ctx.trace_id;
  m.span_id = ctx.span_id;
  route(std::move(m));
}

void Node::on_message(Message msg) {
  if (down_nodes_.contains(msg.src)) mark_node_up(msg.src);

  if (is_response(msg.type)) {
    engine_.on_response(msg);
    return;
  }

  // Drop work whose propagated deadline has already expired: the client's
  // engine has reflected the failure, nobody is waiting for this answer
  // (Section 3.5's "retried then reflected" — the reflection happened).
  if (msg.deadline != 0 && now() > msg.deadline) {
    ins_.deadline_expired->inc();
    return;
  }

  // Admission control: when enabled, queueable classes park in bounded
  // per-class queues (shedding with kNack backpressure under overload) and
  // dispatch from the drain pump. Bypass classes — and everything when
  // admission is off — keep the synchronous path.
  if (admission_.offer(msg)) return;
  dispatch_request(msg);
}

void Node::dispatch_request(const Message& msg) {
  // Nested RPCs issued while serving this request inherit what remains of
  // the caller's budget.
  RpcEngine::DeadlineScope dscope(engine_, msg.deadline);

  // Server side of a hop: everything this request triggers is parented to
  // the caller's wire context. Untraced messages stay untraced.
  const obs::TraceContext wire{msg.trace_id, msg.span_id};
  if (!wire.active()) {
    obs::ScopedTraceContext scope(tracer_, {});
    handle_request(msg);
    return;
  }
  const obs::TraceContext rx =
      tracer_.begin_span(span_name("rx", msg.type), wire);
  {
    obs::ScopedTraceContext scope(tracer_, rx);
    handle_request(msg);
  }
  tracer_.end_span(rx);
}

void Node::dispatch(const net::Message& m) {
  // The admission pump already dropped client-class work that expired in
  // the queue; anything handed here is still worth serving.
  dispatch_request(m);
}

void Node::nack(const net::Message& req) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(ErrorCode::kOverloaded));
  respond(req, MsgType::kNack, std::move(e).take());
}

void Node::handle_request(const Message& msg) {
  switch (msg.type) {
    case MsgType::kCm: {
      Decoder d(msg.payload);
      const auto protocol = static_cast<ProtocolId>(d.u8());
      const GlobalAddress page = d.addr();
      if (auto* cm = cm_for(protocol)) cm->on_message(msg.src, page, d);
      return;
    }
    case MsgType::kPageBatchFetchReq:
    case MsgType::kPageBatchFetchResp: {
      Decoder d(msg.payload);
      const auto protocol = static_cast<ProtocolId>(d.u8());
      if (auto* cm = cm_for(protocol)) {
        if (msg.type == MsgType::kPageBatchFetchReq) {
          cm->on_batch_fetch(msg.src, d);
        } else {
          cm->on_batch_grant(msg.src, d);
        }
      }
      return;
    }
    case MsgType::kPing: {
      respond(msg, MsgType::kPong, {});
      return;
    }
    case MsgType::kJoinReq: return on_join_req(msg);
    case MsgType::kReserveReq: return on_reserve_req(msg);
    case MsgType::kUnreserveReq: return on_unreserve_req(msg);
    case MsgType::kSpaceReq: return on_space_req(msg);
    case MsgType::kMapMutateReq: return on_map_mutate_req(msg);
    case MsgType::kDescLookupReq: return on_desc_lookup_req(msg);
    case MsgType::kHintQueryReq: return on_hint_query_req(msg);
    case MsgType::kHintPublish: return on_hint_publish(msg);
    case MsgType::kClusterWalkReq: return on_cluster_walk_req(msg);
    case MsgType::kAllocReq: return on_alloc_req(msg);
    case MsgType::kFreeReq: return on_free_req(msg);
    case MsgType::kGetAttrReq: return on_attr_req(msg, /*set=*/false);
    case MsgType::kSetAttrReq: return on_attr_req(msg, /*set=*/true);
    case MsgType::kLocateReq: return on_locate_req(msg);
    case MsgType::kStatsReq: return on_stats_req(msg);
    case MsgType::kReplicaPush: return on_replica_push(msg);
    case MsgType::kReplicaDrop: return on_replica_drop(msg);
    case MsgType::kObjInvokeReq: {
      if (obj_handler_) obj_handler_(msg);
      return;
    }
    case MsgType::kMigrateReq: return on_migrate_req(msg);
    case MsgType::kReplicateToReq: return on_replicate_to_req(msg);
    case MsgType::kMigrateData: return on_migrate_data(msg);
    case MsgType::kLeave: {
      members_.erase(msg.src);
      down_nodes_.erase(msg.src);
      missed_pongs_.erase(msg.src);
      for (auto& [_, cm] : cms_) cm->on_node_down(msg.src);
      return;
    }
    case MsgType::kNodeListGossip: {
      Decoder d(msg.payload);
      const std::uint32_t n = d.u32();
      for (std::uint32_t i = 0; i < n && d.ok(); ++i) members_.insert(d.u32());
      return;
    }
    default:
      KHZ_WARN("node %u: unhandled message type %u from %u", config_.id,
               static_cast<unsigned>(msg.type), msg.src);
  }
}

void Node::rpc(NodeId dst, MsgType type, Bytes payload, RespHandler handler) {
  // Single-attempt semantics on purpose: pings must pace with the detector
  // (and must reach nodes marked down so recovery is noticed), joins and
  // cluster-walk probes have their own fallbacks.
  RpcEngine::CallOptions opts;
  opts.max_attempts = 1;
  opts.ignore_down = true;
  engine_.call({dst}, type, std::move(payload), std::move(handler),
               std::move(opts));
}

void Node::respond(const Message& req, MsgType type, Bytes payload) {
  Message m;
  m.type = type;
  m.dst = req.src;
  m.rpc_id = req.rpc_id;
  m.payload = std::move(payload);
  send_msg(std::move(m));
}

void Node::app_rpc(NodeId dst, net::MsgType type, Bytes payload,
                   AppRespHandler handler) {
  rpc(dst, type, std::move(payload), std::move(handler));
}

void Node::app_respond(const net::Message& req, net::MsgType type,
                       Bytes payload) {
  respond(req, type, std::move(payload));
}

// ---------------------------------------------------------------------------
// Telemetry plane: stats scraping, self-sampling, slow-op flight recorder
// (docs/observability.md)
// ---------------------------------------------------------------------------

void Node::on_stats_req(const Message& m) {
  Decoder req(m.payload);
  const std::uint8_t flags = req.u8();
  ins_.scrapes_served->inc();

  Encoder e;
  e.u8(static_cast<std::uint8_t>(ErrorCode::kOk));
  e.u32(config_.id);
  e.u64(static_cast<std::uint64_t>(now()));
  e.u8(flags);
  metrics_.snapshot().encode(e);
  if ((flags & kScrapeSeries) != 0) {
    e.u64(series_.dropped());
    const auto samples = series_.samples();
    e.u32(static_cast<std::uint32_t>(samples.size()));
    for (const auto& s : samples) {
      e.u64(static_cast<std::uint64_t>(s.at));
      s.delta.encode(e);
    }
  }
  if ((flags & kScrapeDossiers) != 0) {
    e.u64(flight_.dropped());
    const auto ds = flight_.dossiers();
    e.u32(static_cast<std::uint32_t>(ds.size()));
    for (const auto& od : ds) od.encode(e);
  }
  respond(m, MsgType::kStatsResp, std::move(e).take());
}

void Node::scrape_stats(NodeId peer, std::uint8_t flags, ScrapeCb cb) {
  Encoder e;
  e.u8(flags);
  // Issued untraced on purpose: the scrape must not pollute the span ring
  // it is about to export (the engine stamps the ambient context on every
  // attempt it sends).
  obs::ScopedTraceContext untraced(tracer_, {});
  engine_.call({peer}, MsgType::kStatsReq, std::move(e).take(),
               [cb = std::move(cb)](bool ok, Decoder& d) {
                 if (!ok) {
                   cb(ErrorCode::kTimeout);
                   return;
                 }
                 RemoteStats rs;
                 const ErrorCode ec = decode_stats_payload(d, rs);
                 if (ec != ErrorCode::kOk) {
                   cb(ec);
                   return;
                 }
                 cb(std::move(rs));
               });
}

ErrorCode Node::decode_stats_payload(Decoder& d, RemoteStats& out) {
  const auto status = static_cast<ErrorCode>(d.u8());
  if (status != ErrorCode::kOk) return status;
  out.node = d.u32();
  out.at = static_cast<Micros>(d.u64());
  const std::uint8_t got = d.u8();
  out.snapshot = obs::MetricsSnapshot::decode(d);
  if ((got & kScrapeSeries) != 0) {
    out.series_dropped = d.u64();
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
      obs::MetricsSample s;
      s.at = static_cast<Micros>(d.u64());
      s.delta = obs::MetricsSnapshot::decode(d);
      out.series.push_back(std::move(s));
    }
  }
  if ((got & kScrapeDossiers) != 0) {
    out.dossiers_dropped = d.u64();
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
      out.dossiers.push_back(obs::OpDossier::decode(d));
    }
  }
  return d.ok() ? ErrorCode::kOk : ErrorCode::kCorrupt;
}

void Node::sample_tick() {
  ins_.samples->inc();
  obs::MetricsSnapshot cur = metrics_.snapshot();
  obs::MetricsSample s;
  s.at = now();
  s.delta = cur.diff(last_sample_);
  last_sample_ = std::move(cur);
  series_.push(std::move(s));
  sample_timer_ = transport_.schedule(config_.stats_sample_interval,
                                      [this] { sample_tick(); });
}

Node::OpWatch Node::watch_op() const {
  OpWatch w;
  w.t0 = now();
  w.deadline = engine_.ambient_deadline();
  w.attempts0 = ins_.rpc_attempts->value();
  w.steered0 = ins_.rpc_steered->value();
  return w;
}

void Node::maybe_record_slow_op(const char* op, const OpWatch& w,
                                std::uint64_t trace_id) {
  const bool abs_on = config_.slow_op_threshold_us > 0;
  const bool frac_on = config_.slow_op_deadline_fraction > 0.0 &&
                       w.deadline > static_cast<std::uint64_t>(w.t0);
  if (!abs_on && !frac_on) return;
  const Micros end = now();
  const auto elapsed = static_cast<std::uint64_t>(end - w.t0);
  bool slow =
      abs_on &&
      elapsed >= static_cast<std::uint64_t>(config_.slow_op_threshold_us);
  if (!slow && frac_on) {
    const auto budget = static_cast<double>(w.deadline - w.t0);
    slow = static_cast<double>(elapsed) >=
           config_.slow_op_deadline_fraction * budget;
  }
  if (!slow) return;
  ins_.slow_ops->inc();
  obs::OpDossier d;
  d.op = op;
  d.node = config_.id;
  d.trace_id = trace_id;
  d.start = w.t0;
  d.end = end;
  d.deadline = w.deadline;
  d.rpc_attempts = ins_.rpc_attempts->value() - w.attempts0;
  d.rpc_steered = ins_.rpc_steered->value() - w.steered0;
  d.depth_protocol = admission_.depth(OpClass::kProtocol);
  d.depth_client = admission_.depth(OpClass::kClient);
  d.depth_replication = admission_.depth(OpClass::kReplication);
  if (trace_id != 0) {
    for (auto& s : tracer_.finished_spans()) {
      if (s.trace_id == trace_id) d.spans.push_back(std::move(s));
    }
  }
  flight_.record(std::move(d));
}

// ---------------------------------------------------------------------------
// Resolver::Host glue + metadata persistence glue
// ---------------------------------------------------------------------------

std::optional<RegionDescriptor> Node::homed_descriptor(
    const GlobalAddress& addr) {
  auto it = homed_regions_.upper_bound(addr);
  if (it != homed_regions_.begin()) {
    const auto& [base, desc] = *std::prev(it);
    if (desc.range.contains(addr)) return desc;
  }
  return std::nullopt;
}

void Node::fetch_map_page(std::uint32_t index,
                          std::function<void(Result<Bytes>)> cb) {
  if (map_ != nullptr) {
    cb(map_store_->read_page(index));
    return;
  }
  const GlobalAddress addr = kMapRegionBase.plus(
      static_cast<std::uint64_t>(index) * kDefaultPageSize);
  auto* cm = cm_for(ProtocolId::kRelease);
  cm->acquire(addr, LockMode::kRead, [this, addr, cb = std::move(cb)](
                                         Status s) mutable {
    if (!s.ok()) {
      cb(s.error());
      return;
    }
    const Bytes* data = storage_.get(addr);
    Bytes copy = data != nullptr ? *data : Bytes(kDefaultPageSize, 0);
    cm_for(ProtocolId::kRelease)->release(addr, LockMode::kRead, false);
    cb(std::move(copy));
  });
}

MetaLog::Snapshot Node::snapshot_state() {
  MetaLog::Snapshot snap;
  snap.granted_bytes = granted_bytes_;
  snap.pool = pool_;
  snap.regions = homed_regions_;
  for (const auto& p : pages_.homed_pages()) {
    const auto* info = pages_.find(p);
    snap.page_versions[p] = info != nullptr ? info->version : 0;
  }
  return snap;
}

void Node::journal_page(const GlobalAddress& page) {
  const auto* info = pages_.find(page);
  meta_.record_page(page, info != nullptr ? info->version : 0);
}

void Node::recover_meta() {
  auto* disk = storage_.disk();
  if (disk == nullptr) return;
  MetaLog::Snapshot snap = meta_.recover();

  // Install the recovered state.
  granted_bytes_ = snap.granted_bytes;
  pool_ = std::move(snap.pool);
  for (const auto& [base, desc] : snap.regions) {
    homed_regions_[base] = desc;
    regions_.insert(desc);
  }
  for (const auto& [p, v] : snap.page_versions) {
    auto& info = pages_.ensure(p);
    info.homed_locally = true;
    info.home = config_.id;
    info.owner = config_.id;
    info.version = v;
    // Volatile copies elsewhere died with the crash from this node's point
    // of view; the copyset restarts at just us.
    info.state = disk->contains(p) ? PageState::kShared : PageState::kInvalid;
    info.sharers = {config_.id};
  }
}

}  // namespace khz::core
