#include "core/node.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace khz::core {

using consistency::LockContext;
using consistency::LockMode;
using consistency::ProtocolId;
using net::Message;
using net::MsgType;
using storage::PageState;

namespace {

/// Span names like "rpc:DescLookupReq" / "rx:Cm".
std::string span_name(const char* kind, MsgType t) {
  std::string out(kind);
  out += ':';
  out += net::to_string(t);
  return out;
}

/// The engine's retry policy is derived from the node's config: the legacy
/// rpc_timeout/max_retries knobs keep their meaning (per-attempt timeout;
/// total attempts = 1 + retries), and the backoff ladder scales with the
/// timeout so sim configs with tight timeouts back off proportionally.
RpcPolicy make_policy(const NodeConfig& c) {
  RpcPolicy p;
  p.attempt_timeout = c.rpc_timeout;
  p.max_attempts = c.max_retries + 1;
  p.backoff_base = std::max<Micros>(c.rpc_timeout / 8, 1);
  p.backoff_cap = 4 * c.rpc_timeout;
  return p;
}

AdmissionConfig make_admission(const NodeConfig& c) {
  AdmissionConfig a;
  a.client_queue_limit = c.admission_client_queue;
  a.protocol_queue_limit = c.admission_protocol_queue;
  a.replication_queue_limit = c.admission_replication_queue;
  a.service_us = c.admission_service_us;
  return a;
}

location::FabricConfig make_fabric(const NodeConfig& c, unsigned lanes) {
  location::FabricConfig f;
  f.hint_sync_interval = c.hint_sync_interval;
  f.refresh_interval = c.refresh_interval;
  f.refresh_age_us = c.refresh_age_us;
  f.refresh_hot_accesses = c.refresh_hot_accesses;
  f.free_space_ttl = c.free_space_ttl;
  f.lanes = lanes;
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / bootstrap
// ---------------------------------------------------------------------------

Node::Node(NodeConfig config, net::Transport& transport)
    : config_(std::move(config)),
      transport_(transport),
      lanes_(std::clamp(config_.lanes, 1u, kMaxLanes)),
      rngs_([&] {
        // Lane 0 seeds exactly like the legacy single-lane node; further
        // lanes perturb by lane index so they draw independent streams.
        std::vector<Rng> v;
        for (unsigned l = 0; l < lanes_; ++l) {
          v.emplace_back(config_.seed + config_.id * 7919 +
                         l * 0x9e3779b9ULL);
        }
        return v;
      }()),
      disk_(config_.disk_dir.empty()
                ? nullptr
                : std::make_shared<storage::DiskStore>(
                      config_.disk_dir, config_.disk_pages,
                      config_.segment_bytes)),
      storages_([&] {
        // One RAM level per lane over the shared disk store. lanes=1
        // degenerates to the legacy full-size cache.
        const std::size_t ram =
            lanes_ > 1 ? std::max<std::size_t>(1, config_.ram_pages / lanes_)
                       : config_.ram_pages;
        std::vector<std::unique_ptr<storage::StorageHierarchy>> v;
        for (unsigned l = 0; l < lanes_; ++l) {
          v.push_back(std::make_unique<storage::StorageHierarchy>(ram, disk_));
        }
        return v;
      }()),
      pages_v_([&] {
        std::vector<std::unique_ptr<storage::PageDirectory>> v;
        for (unsigned l = 0; l < lanes_; ++l) {
          v.push_back(std::make_unique<storage::PageDirectory>());
        }
        return v;
      }()),
      tracer_(config_.id),
      flight_(config_.flight_recorder_capacity),
      series_(config_.stats_series_capacity),
      fabric_(std::make_unique<location::Fabric>(
          *this, metrics_, make_fabric(config_, lanes_))),
      regions_(fabric_->regions()),
      cluster_(fabric_->cluster()),
      engines_([&] {
        std::vector<std::unique_ptr<RpcEngine>> v;
        for (unsigned l = 0; l < lanes_; ++l) {
          v.push_back(std::make_unique<RpcEngine>(*this, make_policy(config_),
                                                  metrics_));
          // Lane-strided rpc ids: id % lanes recovers the issuing lane, so
          // responses demux onto the right lane without shared state.
          // lanes=1 yields the legacy 1,2,3… sequence.
          v.back()->configure_ids(l + lanes_, lanes_);
        }
        return v;
      }()),
      meta_(*storages_[0], config_.id, [this] { return snapshot_state(); }),
      admissions_([&] {
        std::vector<std::unique_ptr<AdmissionController>> v;
        for (unsigned l = 0; l < lanes_; ++l) {
          v.push_back(std::make_unique<AdmissionController>(
              *this, make_admission(config_), metrics_));
        }
        return v;
      }()) {
  consistency::register_builtin_protocols();
  cms_v_.resize(lanes_);
  active_locks_v_.resize(lanes_);
  for (unsigned l = 0; l < lanes_; ++l) next_lock_ids_.push_back(l + lanes_);
  if (disk_ != nullptr) configure_disk();
  transport_.configure_lanes(lanes_);
  tracer_.set_clock(&transport_.clock());
  lane_stats_.bind(metrics_, lanes_);
  ins_.reserves = &metrics_.counter("node.reserves");
  ins_.locks_granted = &metrics_.counter("node.locks_granted");
  ins_.locks_failed = &metrics_.counter("node.locks_failed");
  ins_.reads = &metrics_.counter("node.reads");
  ins_.writes = &metrics_.counter("node.writes");
  ins_.resolve_cache_hits = &metrics_.counter("node.resolve_cache_hits");
  ins_.resolve_manager_hits = &metrics_.counter("node.resolve_manager_hits");
  ins_.resolve_map_walks = &metrics_.counter("node.resolve_map_walks");
  ins_.resolve_cluster_walks = &metrics_.counter("node.resolve_cluster_walks");
  ins_.replica_pushes = &metrics_.counter("node.replica_pushes");
  ins_.background_retries = &metrics_.counter("node.background_retries");
  ins_.deadline_expired = &metrics_.counter("rpc.deadline_expired.server");
  ins_.reserve_us = &metrics_.histogram("op.reserve_us");
  ins_.lock_read_us = &metrics_.histogram("op.lock.read_us");
  ins_.lock_write_us = &metrics_.histogram("op.lock.write_us");
  ins_.lock_write_shared_us = &metrics_.histogram("op.lock.write_shared_us");
  ins_.read_us = &metrics_.histogram("op.read_us");
  ins_.write_us = &metrics_.histogram("op.write_us");
  ins_.resolve_region_dir_us = &metrics_.histogram("resolve.region_dir_us");
  ins_.resolve_manager_hint_us =
      &metrics_.histogram("resolve.manager_hint_us");
  ins_.resolve_map_walk_us = &metrics_.histogram("resolve.map_walk_us");
  ins_.resolve_cluster_walk_us =
      &metrics_.histogram("resolve.cluster_walk_us");
  ins_.lock_pages = &metrics_.histogram("op.lock.pages");
  ins_.lock_window = &metrics_.histogram("op.lock.window_occupancy");
  ins_.scrapes_served = &metrics_.counter("telemetry.scrapes_served");
  ins_.samples = &metrics_.counter("telemetry.samples");
  ins_.slow_ops = &metrics_.counter("node.slow_ops");
  ins_.rpc_attempts = &metrics_.counter("rpc.attempts");
  ins_.rpc_steered = &metrics_.counter("rpc.steered");
  ins_.getattr_us = &metrics_.histogram("op.getattr_us");
  members_.insert(config_.id);
  for (NodeId p : config_.peers) members_.insert(p);
  for (auto& s : storages_) {
    s->set_evict_hook(
        [this](const GlobalAddress& page, const Bytes& data) {
          return evict_hook(page, data);
        });
  }
  transport_.set_handler([this](Message m) { on_message(std::move(m)); });
}

Node::~Node() { stop(); }

void Node::stop() {
  // Engines first: they cancel every pending RPC-attempt, backoff and
  // reliable-send timer, all of which capture `this`. Callers over a live
  // multi-lane TCP transport must quiesce the lane executors first
  // (TcpWorld does); under the simulator everything is one thread.
  for (auto& e : engines_) e->shutdown();
  for (auto& a : admissions_) a->shutdown();
  if (fabric_) fabric_->stop();
  if (ping_timer_ != 0) {
    transport_.cancel(ping_timer_);
    ping_timer_ = 0;
  }
  if (sample_timer_ != 0) {
    transport_.cancel(sample_timer_);
    sample_timer_ = 0;
  }
  stop_storage_timers();
}

NodeStats Node::stats() const {
  NodeStats s;
  s.reserves = ins_.reserves->value();
  s.locks_granted = ins_.locks_granted->value();
  s.locks_failed = ins_.locks_failed->value();
  s.reads = ins_.reads->value();
  s.writes = ins_.writes->value();
  s.resolve_cache_hits = ins_.resolve_cache_hits->value();
  s.resolve_manager_hits = ins_.resolve_manager_hits->value();
  s.resolve_map_walks = ins_.resolve_map_walks->value();
  s.resolve_cluster_walks = ins_.resolve_cluster_walks->value();
  s.replica_pushes = ins_.replica_pushes->value();
  s.background_retries = ins_.background_retries->value();
  return s;
}

obs::Histogram* Node::lock_hist(LockMode mode) {
  switch (mode) {
    case LockMode::kWrite: return ins_.lock_write_us;
    case LockMode::kWriteShared: return ins_.lock_write_shared_us;
    default: return ins_.lock_read_us;
  }
}
void Node::start() {
  if (started_) return;
  started_ = true;
  recover_meta();

  if (config_.id == config_.genesis) {
    // Bootstrap region 0: the address map lives in Khazana itself
    // (Section 3.1). On restart an already formatted map is recovered from
    // the persistent store. Map pages are control-plane (route key 0), so
    // all of this state is touched from lane 0 only.
    map_store_ = std::make_unique<LocalMapStore>(*this);
    map_ = std::make_unique<AddressMap>(*map_store_);
    {
      std::lock_guard lk(state_mu_);
      homed_regions_[kMapRegionBase] = map_region_descriptor(config_.genesis);
    }
    if (!map_->formatted()) {
      AddressMap::format(*map_store_);
      (void)map_->insert({kMapRegionBase, kMapRegionSize},
                         {config_.genesis});
    }
  } else {
    // Join the system through the genesis node (best-effort; static
    // membership from config.peers already covers the common case).
    rpc(config_.genesis, MsgType::kJoinReq, {},
        [this](bool ok, Decoder& d) {
          if (!ok) return;
          const std::uint32_t n = d.u32();
          std::lock_guard lk(state_mu_);
          for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
            members_.insert(d.u32());
          }
        });
  }

  if (config_.ping_interval > 0) {
    ping_timer_ =
        transport_.schedule(config_.ping_interval, [this] { ping_tick(); });
  }
  if (config_.stats_sample_interval > 0) {
    // Baseline for the first delta; ticks re-arm themselves.
    last_sample_ = metrics_.snapshot();
    sample_timer_ = transport_.schedule(config_.stats_sample_interval,
                                        [this] { sample_tick(); });
  }
  start_storage_timers();
  fabric_->start();
}

// ---------------------------------------------------------------------------
// CmHost implementation
// ---------------------------------------------------------------------------

void Node::send_cm(NodeId peer, ProtocolId protocol, const GlobalAddress& page,
                   Bytes payload) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(protocol));
  e.addr(page);
  e.raw(payload);
  Message m;
  m.type = MsgType::kCm;
  m.dst = peer;
  m.route_key = route_key_of(page);
  m.payload = std::move(e).take();
  send_msg(std::move(m));
}

void Node::send_page_batch(NodeId peer, ProtocolId protocol, bool request,
                           Bytes payload, std::uint64_t route_key) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(protocol));
  e.raw(payload);
  Message m;
  m.type =
      request ? MsgType::kPageBatchFetchReq : MsgType::kPageBatchFetchResp;
  m.dst = peer;
  m.route_key = route_key;
  m.payload = std::move(e).take();
  send_msg(std::move(m));
}

std::uint64_t Node::route_key_of(const GlobalAddress& page) {
  // Map-region pages are control-plane: key 0 confines them to lane 0.
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) return 0;
  if (auto desc = homed_descriptor(page)) {
    return region_key(desc->range.base);
  }
  if (auto desc = regions_.lookup(page)) {
    return region_key(desc->range.base);
  }
  return 0;
}

storage::PageInfo& Node::page_info(const GlobalAddress& page) {
  return pages_().ensure(page);
}

const Bytes* Node::page_data(const GlobalAddress& page) {
  return storage_().get(page);
}

void Node::store_page(const GlobalAddress& page, Bytes data) {
  storage_().put(page, std::move(data));
  if (pages_().ensure(page).homed_locally) {
    // Write-through for pages this node homes: their latest contents must
    // survive a restart (the page directory's persistent subset,
    // Section 3.4). Journal the version so recovery re-serves the page.
    (void)storage_().flush(page);
    journal_page(page);
  }
}

void Node::drop_page(const GlobalAddress& page) { storage_().erase(page); }

NodeId Node::home_of(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    return config_.genesis;
  }
  if (homed_descriptor(page)) return config_.id;
  if (auto desc = regions_.lookup(page)) return desc->primary_home();
  // Last resort: the cluster manager can route or Nack; retries recover.
  return config_.cluster_manager;
}

bool Node::is_home(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    return config_.id == config_.genesis;
  }
  return homed_descriptor(page).has_value();
}

std::vector<NodeId> Node::alternate_homes(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) return {};
  if (auto desc = homed_descriptor(page)) return desc->alternates();
  if (auto desc = regions_.lookup(page)) return desc->alternates();
  return {};
}

std::uint32_t Node::page_size_of(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    return kDefaultPageSize;
  }
  if (auto desc = homed_descriptor(page)) return desc->attrs.page_size;
  if (auto desc = regions_.lookup(page)) return desc->attrs.page_size;
  return kDefaultPageSize;
}

std::uint32_t Node::min_replicas_of(const GlobalAddress& page) {
  if (auto desc = homed_descriptor(page)) return desc->attrs.min_replicas;
  if (auto desc = regions_.lookup(page)) return desc->attrs.min_replicas;
  return 1;
}

std::vector<NodeId> Node::membership() {
  std::lock_guard lk(state_mu_);
  std::vector<NodeId> out;
  for (NodeId n : members_) {
    if (!down_nodes_.contains(n)) out.push_back(n);
  }
  return out;
}

bool Node::write_gated(const GlobalAddress& page) {
  std::lock_guard lk(state_mu_);
  if (recovering_regions_.empty()) return false;
  auto it = homed_regions_.upper_bound(page);
  if (it == homed_regions_.begin()) return false;
  const RegionDescriptor& desc = std::prev(it)->second;
  if (!desc.range.contains(page)) return false;
  if (!recovering_regions_.contains(desc.range.base)) return false;
  // The guarantee is satisfiable only up to the live membership size; a
  // two-node system with min_replicas=3 must not gate forever. Only the
  // page's owning lane asks (its CM), so pages_() below is its own shard.
  const auto target = std::min<std::size_t>(desc.attrs.min_replicas,
                                            membership().size());
  const std::uint32_t psz = desc.attrs.page_size;
  for (GlobalAddress p = desc.range.base; p < desc.range.end();
       p = p.plus(psz)) {
    const auto* info = pages_().find(p);
    std::size_t live = 0;
    if (info != nullptr) {
      for (NodeId s : info->sharers) {
        if (!down_nodes_.contains(s)) ++live;
      }
    }
    if (live < target) return true;  // still rebuilding: hold the write
  }
  // Every page of the region meets the replica floor again; lift the gate.
  recovering_regions_.erase(desc.range.base);
  return false;
}

void Node::note_copyset_change(const GlobalAddress& page) {
  // Defer so replica maintenance never runs inside a protocol handler.
  transport_.schedule(0, [this, page] { maintain_replicas(page); });
}

Micros Node::now() const { return transport_.clock().now(); }

std::uint64_t Node::schedule(Micros delay, std::function<void()> fn) {
  return transport_.schedule(delay, std::move(fn));
}

void Node::cancel(std::uint64_t timer_id) { transport_.cancel(timer_id); }

consistency::ConsistencyManager* Node::cm_for(ProtocolId protocol) {
  auto it = cms_().find(protocol);
  if (it != cms_().end()) return it->second.get();
  auto cm = consistency::ProtocolRegistry::instance().create(protocol, *this);
  if (!cm) return nullptr;
  auto* raw = cm.get();
  cms_().emplace(protocol, std::move(cm));
  return raw;
}

// ---------------------------------------------------------------------------
// Messaging plumbing
// ---------------------------------------------------------------------------

void Node::route(Message m) {
  if (m.dst == config_.id) {
    // Self-sends loop back through the scheduler so handlers are never
    // re-entered from within themselves — onto the lane that would have
    // received the message off the wire, so self-sends and remote sends
    // land on identical state.
    m.src = config_.id;
    const unsigned target = net::target_lane(m, lanes_);
    transport_.schedule_on(target, 0, [this, m = std::move(m)]() mutable {
      on_message(std::move(m));
    });
    return;
  }
  transport_.send(std::move(m));
}

void Node::post_to_lane(unsigned lane, std::function<void()> fn) {
  lane_stats_.enqueued(lane);
  const Micros t0 = now();
  transport_.post(lane, [this, lane, t0, fn = std::move(fn)] {
    lane_stats_.dispatched(lane, now() - t0);
    fn();
  });
}

void Node::run_on_region_lane(const GlobalAddress& base,
                              std::function<void()> fn) {
  const unsigned target = region_lane(base);
  if (target == lane()) {
    fn();
    return;
  }
  // Carry the ambient deadline and trace context across the hop; they
  // re-open against the TARGET lane's engine/tracer slot inside the post.
  const Micros dl = engine_().ambient_deadline();
  const obs::TraceContext ctx = tracer_.current();
  post_to_lane(target, [this, dl, ctx, fn = std::move(fn)] {
    RpcEngine::DeadlineScope dscope(engine_(), dl);
    obs::ScopedTraceContext tscope(tracer_, ctx);
    fn();
  });
}

bool Node::hop_home(const Message& m, const GlobalAddress& addr) {
  if (lanes_ <= 1) return false;
  auto desc = homed_descriptor(addr);
  // Not homed here: the handler's miss path touches only metadata-plane
  // state (mutex-guarded), which any lane may serve.
  if (!desc) return false;
  const unsigned target = region_lane(desc->range.base);
  if (target == lane()) return false;
  Message copy = m;
  copy.route_key = region_key(desc->range.base);
  post_to_lane(target, [this, copy = std::move(copy)]() mutable {
    dispatch_request(copy);
  });
  return true;
}

void Node::send_msg(Message m) {
  const obs::TraceContext ctx = tracer_.current();
  m.trace_id = ctx.trace_id;
  m.span_id = ctx.span_id;
  route(std::move(m));
}

void Node::on_message(Message msg) {
  if (is_down(msg.src)) mark_node_up(msg.src);

  if (is_response(msg.type)) {
    engine_().on_response(msg);
    return;
  }

  // Drop work whose propagated deadline has already expired: the client's
  // engine has reflected the failure, nobody is waiting for this answer
  // (Section 3.5's "retried then reflected" — the reflection happened).
  if (msg.deadline != 0 && now() > msg.deadline) {
    ins_.deadline_expired->inc();
    return;
  }

  // Admission control: when enabled, queueable classes park in bounded
  // per-class queues (shedding with kNack backpressure under overload) and
  // dispatch from the drain pump. Bypass classes — and everything when
  // admission is off — keep the synchronous path.
  if (admission_().offer(msg)) return;
  dispatch_request(msg);
}

void Node::dispatch_request(const Message& msg) {
  // Nested RPCs issued while serving this request inherit what remains of
  // the caller's budget.
  RpcEngine::DeadlineScope dscope(engine_(), msg.deadline);

  // Server side of a hop: everything this request triggers is parented to
  // the caller's wire context. Untraced messages stay untraced.
  const obs::TraceContext wire{msg.trace_id, msg.span_id};
  if (!wire.active()) {
    obs::ScopedTraceContext scope(tracer_, {});
    handle_request(msg);
    return;
  }
  const obs::TraceContext rx =
      tracer_.begin_span(span_name("rx", msg.type), wire);
  {
    obs::ScopedTraceContext scope(tracer_, rx);
    handle_request(msg);
  }
  tracer_.end_span(rx);
}

void Node::dispatch(const net::Message& m) {
  // The admission pump already dropped client-class work that expired in
  // the queue; anything handed here is still worth serving.
  dispatch_request(m);
}

void Node::nack(const net::Message& req) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(ErrorCode::kOverloaded));
  respond(req, MsgType::kNack, std::move(e).take());
}

void Node::handle_request(const Message& msg) {
  switch (msg.type) {
    case MsgType::kCm: {
      Decoder d(msg.payload);
      const auto protocol = static_cast<ProtocolId>(d.u8());
      const GlobalAddress page = d.addr();
      if (lanes_ > 1) {
        // Safety net: the local resolution of the page's region is
        // authoritative (the sender's key may be stale or 0 when it had no
        // descriptor); fall back to the wire key when we know nothing.
        std::uint64_t key = route_key_of(page);
        if (key == 0) key = msg.route_key;
        const unsigned target = lane_of(key, lanes_);
        if (target != lane()) {
          Message copy = msg;
          copy.route_key = key;
          post_to_lane(target, [this, copy = std::move(copy)]() mutable {
            dispatch_request(copy);
          });
          return;
        }
      }
      if (auto* cm = cm_for(protocol)) cm->on_message(msg.src, page, d);
      return;
    }
    case MsgType::kPageBatchFetchReq:
    case MsgType::kPageBatchFetchResp: {
      Decoder d(msg.payload);
      const auto protocol = static_cast<ProtocolId>(d.u8());
      if (auto* cm = cm_for(protocol)) {
        if (msg.type == MsgType::kPageBatchFetchReq) {
          cm->on_batch_fetch(msg.src, d);
        } else {
          cm->on_batch_grant(msg.src, d);
        }
      }
      return;
    }
    case MsgType::kPing: {
      respond(msg, MsgType::kPong, {});
      return;
    }
    case MsgType::kJoinReq: return on_join_req(msg);
    case MsgType::kReserveReq: return on_reserve_req(msg);
    case MsgType::kUnreserveReq: return on_unreserve_req(msg);
    case MsgType::kSpaceReq: return on_space_req(msg);
    case MsgType::kMapMutateReq: return on_map_mutate_req(msg);
    case MsgType::kDescLookupReq: return on_desc_lookup_req(msg);
    case MsgType::kHintQueryReq: return on_hint_query_req(msg);
    case MsgType::kHintPublish: return on_hint_publish(msg);
    case MsgType::kHintSyncReq: return on_hint_sync_req(msg);
    case MsgType::kClusterWalkReq: return on_cluster_walk_req(msg);
    case MsgType::kAllocReq: return on_alloc_req(msg);
    case MsgType::kFreeReq: return on_free_req(msg);
    case MsgType::kGetAttrReq: return on_attr_req(msg, /*set=*/false);
    case MsgType::kSetAttrReq: return on_attr_req(msg, /*set=*/true);
    case MsgType::kLocateReq: return on_locate_req(msg);
    case MsgType::kStatsReq: return on_stats_req(msg);
    case MsgType::kReplicaPush: return on_replica_push(msg);
    case MsgType::kReplicaDrop: return on_replica_drop(msg);
    case MsgType::kObjInvokeReq: {
      if (obj_handler_) obj_handler_(msg);
      return;
    }
    case MsgType::kMigrateReq: return on_migrate_req(msg);
    case MsgType::kReplicateToReq: return on_replicate_to_req(msg);
    case MsgType::kMigrateData: return on_migrate_data(msg);
    case MsgType::kLeave: {
      {
        std::lock_guard lk(state_mu_);
        members_.erase(msg.src);
        down_nodes_.erase(msg.src);
        missed_pongs_.erase(msg.src);
      }
      // Every lane's CMs clean up protocol state for the departed peer, on
      // their own lane. The calling lane (0: kLeave is control-plane) runs
      // inline so lanes=1 keeps the legacy synchronous behavior.
      const NodeId who = msg.src;
      for (unsigned l = 0; l < lanes_; ++l) {
        if (l == lane()) {
          for (auto& [_, cm] : cms_v_[l]) cm->on_node_down(who);
        } else {
          post_to_lane(l, [this, who, l] {
            for (auto& [_, cm] : cms_v_[l]) cm->on_node_down(who);
          });
        }
      }
      return;
    }
    case MsgType::kNodeListGossip: {
      Decoder d(msg.payload);
      const std::uint32_t n = d.u32();
      std::lock_guard lk(state_mu_);
      for (std::uint32_t i = 0; i < n && d.ok(); ++i) members_.insert(d.u32());
      return;
    }
    default:
      KHZ_WARN("node %u: unhandled message type %u from %u", config_.id,
               static_cast<unsigned>(msg.type), msg.src);
  }
}

void Node::rpc(NodeId dst, MsgType type, Bytes payload, RespHandler handler) {
  // Single-attempt semantics on purpose: pings must pace with the detector
  // (and must reach nodes marked down so recovery is noticed), joins and
  // cluster-walk probes have their own fallbacks.
  RpcEngine::CallOptions opts;
  opts.max_attempts = 1;
  opts.ignore_down = true;
  engine_().call({dst}, type, std::move(payload), std::move(handler),
               std::move(opts));
}

void Node::call(std::vector<NodeId> candidates, net::MsgType type,
                Bytes payload, location::Resolver::Host::CallHandler handler,
                location::Resolver::Host::CallSpec spec) {
  RpcEngine::CallOptions opts;
  opts.max_attempts = spec.max_attempts;
  opts.accept = std::move(spec.accept);
  engine_().call(std::move(candidates), type, std::move(payload),
                 std::move(handler), std::move(opts));
}

void Node::respond(const Message& req, MsgType type, Bytes payload) {
  Message m;
  m.type = type;
  m.dst = req.src;
  m.rpc_id = req.rpc_id;
  // Echo the request's routing key: responses demux by rpc_id, but one-way
  // reply types (batch grants) still need the region key on the wire.
  m.route_key = req.route_key;
  m.payload = std::move(payload);
  send_msg(std::move(m));
}

void Node::app_rpc(NodeId dst, net::MsgType type, Bytes payload,
                   AppRespHandler handler) {
  rpc(dst, type, std::move(payload), std::move(handler));
}

void Node::app_respond(const net::Message& req, net::MsgType type,
                       Bytes payload) {
  respond(req, type, std::move(payload));
}


}  // namespace khz::core
