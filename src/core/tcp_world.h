// TcpWorld: a Khazana deployment over real localhost TCP sockets.
//
// The same Node code as SimWorld, but each node runs on its own executor
// thread and messages travel through the kernel's TCP stack. TcpClient
// provides the blocking SyncClient surface by posting operations onto the
// node's executor and waiting on a condition variable. Used by the
// integration tests to demonstrate that the node logic is genuinely
// transport-agnostic (paper, Section 5: "only the messaging layer is
// system dependent").
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/client.h"
#include "core/node.h"
#include "net/tcp_transport.h"

namespace khz::core {

struct TcpWorldOptions {
  std::size_t nodes = 3;
  std::uint16_t base_port = 39000;
  std::size_t ram_pages = 4096;
  std::filesystem::path disk_root;
  Micros rpc_timeout = 500'000;
  int max_retries = 3;
  Micros ping_interval = 0;
  /// Admission-control knobs, forwarded to every NodeConfig (see
  /// docs/overload.md). Defaults keep admission off.
  std::size_t admission_client_queue = 0;
  std::size_t admission_protocol_queue = 0;
  std::size_t admission_replication_queue = 0;
  Micros admission_service_us = 0;
  /// fdatasync the metadata journal on commit (power-loss durability).
  bool sync_metadata = false;
  /// Segment-store data plane knobs, forwarded to every NodeConfig
  /// (docs/storage.md).
  std::uint64_t segment_bytes = 8ull << 20;
  Micros group_commit_us = 0;
  std::uint64_t group_commit_bytes = 0;
  Micros checkpoint_interval = 0;
  /// Telemetry knobs, forwarded to every NodeConfig (see
  /// docs/observability.md).
  Micros slow_op_threshold_us = 0;
  double slow_op_deadline_fraction = 0.0;
  std::size_t flight_recorder_capacity = 32;
  Micros stats_sample_interval = 0;
  std::size_t stats_series_capacity = 64;
  /// Executor lanes per node (docs/architecture.md, threading model). Each
  /// lane is its own executor thread; 1 keeps the legacy single-executor
  /// node.
  unsigned lanes = 1;
  std::uint64_t seed = 1;
};

class TcpWorld {
 public:
  explicit TcpWorld(TcpWorldOptions opts = {});
  ~TcpWorld();

  TcpWorld(const TcpWorld&) = delete;
  TcpWorld& operator=(const TcpWorld&) = delete;

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] net::TcpTransport& transport(NodeId id) {
    return *transports_.at(id);
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Wire-level counters of one node's endpoint, the transport analogue of
  /// Node::stats().
  [[nodiscard]] net::TransportStats transport_stats(NodeId id) const {
    return transports_.at(id)->stats();
  }
  /// Sum of transport_stats() across the whole deployment.
  [[nodiscard]] net::TransportStats total_transport_stats() const;

  // --- observability ----------------------------------------------------
  /// Chrome trace-event JSON of every node's finished spans, merged.
  /// Each node's span ring is read on its own executor thread.
  [[nodiscard]] std::string trace_json();
  /// One node's metric registry with its endpoint's wire counters
  /// mirrored in under tcp.* and the transport's own instruments
  /// (tcp.send_queue_us) merged into the dump.
  [[nodiscard]] std::string metrics_text(NodeId id);
  [[nodiscard]] std::string metrics_json(NodeId id);

  /// Blocking remote-stats scrape: node `via` fetches `peer`'s registry
  /// (plus the sections in `flags`) over real TCP. Issued on `via`'s
  /// executor; the calling thread blocks until the response arrives.
  Result<Node::RemoteStats> scrape(NodeId via, NodeId peer,
                                   std::uint8_t flags = 0);

  /// Scrapes every node over the wire and emits one cluster-wide rollup
  /// (counters/gauges summed, histograms merged bucket-wise) plus the
  /// per-node breakdown: {"cluster":{...},"nodes":{"0":{...},...}}. Each
  /// endpoint's tcp.* wire counters are mirrored into its node registry
  /// first, and the transport's own instruments are folded into both
  /// sides, so the per-node objects match metrics_json(id).
  [[nodiscard]] std::string cluster_metrics_json();

 private:
  /// Mirrors the endpoint's TransportStats into the node registry's tcp.*
  /// counters (Counter::set is atomic — safe from any thread).
  void mirror_wire_counters(NodeId id);
  [[nodiscard]] obs::MetricsSnapshot merged_snapshot(NodeId id);

  net::TcpBus bus_;
  std::vector<net::TcpTransport*> transports_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// Blocking SyncClient over a TcpWorld node. Operations are posted to the
/// node's executor thread; the calling thread blocks until the completion
/// callback fires.
class TcpClient final : public SyncClient {
 public:
  TcpClient(TcpWorld& world, NodeId node) : world_(world), node_(node) {}

  Result<GlobalAddress> reserve(std::uint64_t size,
                                const RegionAttrs& attrs) override {
    return wait<Result<GlobalAddress>>([&](auto done) {
      world_.node(node_).reserve(size, attrs, done);
    });
  }
  Status unreserve(const GlobalAddress& base) override {
    return wait<Status>([&](auto done) {
      world_.node(node_).unreserve(base, done);
    });
  }
  Status allocate(const AddressRange& range) override {
    return wait<Status>([&](auto done) {
      world_.node(node_).allocate(range, done);
    });
  }
  Status deallocate(const AddressRange& range) override {
    return wait<Status>([&](auto done) {
      world_.node(node_).deallocate(range, done);
    });
  }
  Result<consistency::LockContext> lock(
      const AddressRange& range, consistency::LockMode mode) override {
    return wait<Result<consistency::LockContext>>([&](auto done) {
      world_.node(node_).lock(range, mode, done);
    });
  }
  void unlock(const consistency::LockContext& ctx) override {
    world_.transport(node_).run_on_lane(
        lock_lane(ctx), [&] { world_.node(node_).unlock(ctx); });
  }
  Result<Bytes> read(const consistency::LockContext& ctx,
                     std::uint64_t offset, std::uint64_t len) override {
    std::optional<Result<Bytes>> out;
    world_.transport(node_).run_on_lane(
        lock_lane(ctx),
        [&] { out = world_.node(node_).read(ctx, offset, len); });
    return std::move(out).value();
  }
  Status write(const consistency::LockContext& ctx, std::uint64_t offset,
               std::span<const std::uint8_t> data) override {
    std::optional<Status> out;
    world_.transport(node_).run_on_lane(
        lock_lane(ctx),
        [&] { out = world_.node(node_).write(ctx, offset, data); });
    return out.value();
  }
  Result<RegionAttrs> getattr(const GlobalAddress& base) override {
    return wait<Result<RegionAttrs>>([&](auto done) {
      world_.node(node_).getattr(base, done);
    });
  }
  Status setattr(const GlobalAddress& base,
                 const RegionAttrs& attrs) override {
    return wait<Status>([&](auto done) {
      world_.node(node_).setattr(base, attrs, done);
    });
  }
  Result<std::vector<NodeId>> locate(const GlobalAddress& addr) override {
    return wait<Result<std::vector<NodeId>>>([&](auto done) {
      world_.node(node_).locate(addr, done);
    });
  }
  [[nodiscard]] NodeId node_id() const override { return node_; }

 private:
  /// Lock state lives on the lane that minted the lock's id (ids are
  /// lane-strided), so unlock/read/write must run on that lane's thread.
  [[nodiscard]] unsigned lock_lane(const consistency::LockContext& ctx) {
    const unsigned lanes = world_.node(node_).lanes();
    return lanes <= 1 ? 0u : static_cast<unsigned>(ctx.id % lanes);
  }

  /// Posts `start(done)` to the node executor; blocks until `done(result)`
  /// fires (possibly much later, from a different executor callback).
  template <typename R, typename Start>
  R wait(Start start) {
    auto state = std::make_shared<WaitState<R>>();
    world_.transport(node_).run_on_executor([&] {
      start([state](R r) {
        std::lock_guard lk(state->mu);
        state->result = std::move(r);
        state->cv.notify_one();
      });
    });
    std::unique_lock lk(state->mu);
    state->cv.wait(lk, [&] { return state->result.has_value(); });
    return std::move(*state->result);
  }

  template <typename R>
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<R> result;
  };

  TcpWorld& world_;
  NodeId node_;
};

}  // namespace khz::core
