#include "core/tcp_world.h"

#include <algorithm>

namespace khz::core {

TcpWorld::TcpWorld(TcpWorldOptions opts) : bus_(opts.base_port) {
  transports_.reserve(opts.nodes);
  nodes_.reserve(opts.nodes);
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    transports_.push_back(&bus_.add_node(id));
  }
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    NodeConfig cfg;
    cfg.id = id;
    cfg.genesis = 0;
    cfg.cluster_manager = 0;
    for (std::size_t p = 0; p < opts.nodes; ++p) {
      cfg.peers.push_back(static_cast<NodeId>(p));
    }
    cfg.ram_pages = opts.ram_pages;
    if (!opts.disk_root.empty()) {
      cfg.disk_dir = opts.disk_root / ("node" + std::to_string(id));
    }
    cfg.rpc_timeout = opts.rpc_timeout;
    cfg.max_retries = opts.max_retries;
    cfg.ping_interval = opts.ping_interval;
    cfg.seed = opts.seed;
    nodes_.push_back(std::make_unique<Node>(std::move(cfg), *transports_[i]));
  }
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    transports_[i]->run_on_executor([&, id] { nodes_[id]->start(); });
  }
}

net::TransportStats TcpWorld::total_transport_stats() const {
  net::TransportStats sum;
  for (const auto* t : transports_) {
    const net::TransportStats s = t->stats();
    sum.messages_sent += s.messages_sent;
    sum.messages_received += s.messages_received;
    sum.bytes_sent += s.bytes_sent;
    sum.bytes_received += s.bytes_received;
    sum.frames_dropped += s.frames_dropped;
    sum.connects += s.connects;
    sum.reconnects += s.reconnects;
    sum.connect_failures += s.connect_failures;
    sum.queued_bytes += s.queued_bytes;
    sum.peak_queued_bytes =
        std::max(sum.peak_queued_bytes, s.peak_queued_bytes);
  }
  return sum;
}

TcpWorld::~TcpWorld() {
  // Stop transports first so no executor callback touches a dead Node.
  bus_.stop_all();
  nodes_.clear();
}

}  // namespace khz::core
