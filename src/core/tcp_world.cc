#include "core/tcp_world.h"

namespace khz::core {

TcpWorld::TcpWorld(TcpWorldOptions opts) : bus_(opts.base_port) {
  transports_.reserve(opts.nodes);
  nodes_.reserve(opts.nodes);
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    transports_.push_back(&bus_.add_node(id));
  }
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    NodeConfig cfg;
    cfg.id = id;
    cfg.genesis = 0;
    cfg.cluster_manager = 0;
    for (std::size_t p = 0; p < opts.nodes; ++p) {
      cfg.peers.push_back(static_cast<NodeId>(p));
    }
    cfg.ram_pages = opts.ram_pages;
    if (!opts.disk_root.empty()) {
      cfg.disk_dir = opts.disk_root / ("node" + std::to_string(id));
    }
    cfg.rpc_timeout = opts.rpc_timeout;
    cfg.max_retries = opts.max_retries;
    cfg.ping_interval = opts.ping_interval;
    cfg.seed = opts.seed;
    nodes_.push_back(std::make_unique<Node>(std::move(cfg), *transports_[i]));
  }
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    transports_[i]->run_on_executor([&, id] { nodes_[id]->start(); });
  }
}

TcpWorld::~TcpWorld() {
  // Stop transports first so no executor callback touches a dead Node.
  bus_.stop_all();
  nodes_.clear();
}

}  // namespace khz::core
