#include "core/tcp_world.h"

#include <algorithm>

namespace khz::core {

TcpWorld::TcpWorld(TcpWorldOptions opts) : bus_(opts.base_port) {
  transports_.reserve(opts.nodes);
  nodes_.reserve(opts.nodes);
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    transports_.push_back(&bus_.add_node(id, opts.lanes));
  }
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    NodeConfig cfg;
    cfg.id = id;
    cfg.genesis = 0;
    cfg.cluster_manager = 0;
    for (std::size_t p = 0; p < opts.nodes; ++p) {
      cfg.peers.push_back(static_cast<NodeId>(p));
    }
    cfg.ram_pages = opts.ram_pages;
    if (!opts.disk_root.empty()) {
      cfg.disk_dir = opts.disk_root / ("node" + std::to_string(id));
    }
    cfg.rpc_timeout = opts.rpc_timeout;
    cfg.max_retries = opts.max_retries;
    cfg.ping_interval = opts.ping_interval;
    cfg.admission_client_queue = opts.admission_client_queue;
    cfg.admission_protocol_queue = opts.admission_protocol_queue;
    cfg.admission_replication_queue = opts.admission_replication_queue;
    cfg.admission_service_us = opts.admission_service_us;
    cfg.sync_metadata = opts.sync_metadata;
    cfg.segment_bytes = opts.segment_bytes;
    cfg.group_commit_us = opts.group_commit_us;
    cfg.group_commit_bytes = opts.group_commit_bytes;
    cfg.checkpoint_interval = opts.checkpoint_interval;
    cfg.slow_op_threshold_us = opts.slow_op_threshold_us;
    cfg.slow_op_deadline_fraction = opts.slow_op_deadline_fraction;
    cfg.flight_recorder_capacity = opts.flight_recorder_capacity;
    cfg.stats_sample_interval = opts.stats_sample_interval;
    cfg.stats_series_capacity = opts.stats_series_capacity;
    cfg.lanes = opts.lanes;
    cfg.seed = opts.seed;
    nodes_.push_back(std::make_unique<Node>(std::move(cfg), *transports_[i]));
  }
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    transports_[i]->run_on_executor([&, id] { nodes_[id]->start(); });
  }
}

net::TransportStats TcpWorld::total_transport_stats() const {
  net::TransportStats sum;
  for (const auto* t : transports_) {
    const net::TransportStats s = t->stats();
    sum.messages_sent += s.messages_sent;
    sum.messages_received += s.messages_received;
    sum.bytes_sent += s.bytes_sent;
    sum.bytes_received += s.bytes_received;
    sum.frames_dropped += s.frames_dropped;
    sum.connects += s.connects;
    sum.reconnects += s.reconnects;
    sum.connect_failures += s.connect_failures;
    sum.queued_bytes += s.queued_bytes;
    sum.peak_queued_bytes =
        std::max(sum.peak_queued_bytes, s.peak_queued_bytes);
  }
  return sum;
}

std::string TcpWorld::trace_json() {
  std::vector<obs::Span> spans;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // The tracer ring is only touched from the node's executor thread, so
    // snapshot it there rather than racing with in-flight operations.
    std::vector<obs::Span> local;
    transports_[i]->run_on_executor(
        [&] { local = nodes_[i]->tracer().finished_spans(); });
    spans.insert(spans.end(), std::make_move_iterator(local.begin()),
                 std::make_move_iterator(local.end()));
  }
  return obs::chrome_trace_json(spans);
}

void TcpWorld::mirror_wire_counters(NodeId id) {
  auto& reg = node(id).metrics();
  const net::TransportStats s = transports_.at(id)->stats();
  reg.counter("tcp.messages_sent").set(s.messages_sent);
  reg.counter("tcp.messages_received").set(s.messages_received);
  reg.counter("tcp.bytes_sent").set(s.bytes_sent);
  reg.counter("tcp.bytes_received").set(s.bytes_received);
  reg.counter("tcp.frames_dropped").set(s.frames_dropped);
  reg.counter("tcp.connects").set(s.connects);
  reg.counter("tcp.reconnects").set(s.reconnects);
  reg.counter("tcp.connect_failures").set(s.connect_failures);
  reg.counter("tcp.peak_queued_bytes").set(s.peak_queued_bytes);
}

obs::MetricsSnapshot TcpWorld::merged_snapshot(NodeId id) {
  mirror_wire_counters(id);
  obs::MetricsSnapshot snap = node(id).metrics().snapshot();
  const obs::MetricsSnapshot wire = transports_.at(id)->metrics().snapshot();
  for (const auto& [name, value] : wire.counters) snap.counters[name] = value;
  for (const auto& [name, hist] : wire.histograms) {
    snap.histograms[name] = hist;
  }
  return snap;
}

std::string TcpWorld::metrics_text(NodeId id) {
  return merged_snapshot(id).to_text();
}

std::string TcpWorld::metrics_json(NodeId id) {
  return merged_snapshot(id).to_json();
}

Result<Node::RemoteStats> TcpWorld::scrape(NodeId via, NodeId peer,
                                           std::uint8_t flags) {
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result<Node::RemoteStats>> result;
  };
  auto state = std::make_shared<State>();
  transports_.at(via)->run_on_executor([&] {
    nodes_.at(via)->scrape_stats(
        peer, flags, [state](Result<Node::RemoteStats> r) {
          std::lock_guard lk(state->mu);
          state->result = std::move(r);
          state->cv.notify_one();
        });
  });
  std::unique_lock lk(state->mu);
  state->cv.wait(lk, [&] { return state->result.has_value(); });
  return std::move(*state->result);
}

std::string TcpWorld::cluster_metrics_json() {
  // Mirror every endpoint's wire counters first so the over-the-wire
  // snapshots carry tcp.*.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    mirror_wire_counters(static_cast<NodeId>(i));
  }
  obs::MetricsSnapshot cluster;
  std::string nodes_json = "{";
  bool first = true;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    auto rs = scrape(/*via=*/0, id, 0);
    if (!rs.ok()) continue;
    obs::MetricsSnapshot snap = std::move(rs.value().snapshot);
    // Fold in the transport's own instruments (tcp.send_queue_us etc.),
    // which live in the endpoint's registry, not the node's, so the
    // per-node objects match metrics_json(id).
    snap.merge(transports_.at(id)->metrics().snapshot());
    cluster.merge(snap);
    if (!first) nodes_json += ',';
    first = false;
    nodes_json += '"' + std::to_string(id) + "\":" + snap.to_json();
  }
  nodes_json += '}';
  return "{\"cluster\":" + cluster.to_json() + ",\"nodes\":" + nodes_json +
         '}';
}

TcpWorld::~TcpWorld() {
  // Cancel every node timer (RPC engine, failure detector) on the node's
  // own executor while its transport is still alive — stop_all() destroys
  // the endpoints, and a later cancel would touch a dead transport.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    transports_[i]->run_on_executor([&, i] { nodes_[i]->stop(); });
  }
  // Then stop transports so no executor callback touches a dead Node.
  bus_.stop_all();
  nodes_.clear();
}

}  // namespace khz::core
