// Region home migration, client-guided replication and graceful
// departure for core::Node. Split out of node_handlers.cc so each core
// TU stays one subsystem.
#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/node.h"

namespace khz::core {

using consistency::LockContext;
using consistency::LockMode;
using consistency::ProtocolId;
using consistency::is_write;
using net::Message;
using net::MsgType;
using storage::PageState;

namespace {
std::uint8_t to_wire(ErrorCode e) { return static_cast<std::uint8_t>(e); }
ErrorCode from_wire(std::uint8_t b) { return static_cast<ErrorCode>(b); }

Bytes status_payload(ErrorCode e) {
  Encoder enc;
  enc.u8(to_wire(e));
  return std::move(enc).take();
}
}  // namespace

// ---------------------------------------------------------------------------
// Region home migration
// ---------------------------------------------------------------------------

void Node::on_migrate_req(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress base = d.addr();
  const NodeId new_home = d.u32();

  if (hop_home(m, base)) return;  // packaging reads the region lane's pages
  RegionDescriptor desc;
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    auto it = homed_regions_.find(base);
    if (it == homed_regions_.end()) {
      respond(m, MsgType::kMigrateResp, status_payload(ErrorCode::kNotFound));
      return;
    }
    if (new_home == config_.id) {  // no-op move
      respond(m, MsgType::kMigrateResp, status_payload(ErrorCode::kOk));
      return;
    }
    desc = it->second;
  }

  // Refuse while any page is locked here (migration needs local
  // quiescence; remote holders are fine — their CREW state rides along).
  const std::uint32_t psz = desc.attrs.page_size;
  for (GlobalAddress p = desc.range.base; p < desc.range.end();
       p = p.plus(psz)) {
    if (auto* info = pages_().find(p); info != nullptr && info->locked()) {
      respond(m, MsgType::kMigrateResp,
              status_payload(ErrorCode::kConflict));
      return;
    }
  }

  // Package the descriptor plus per-page directory state and whatever
  // current page contents this node holds.
  desc.home_nodes.erase(
      std::remove(desc.home_nodes.begin(), desc.home_nodes.end(), new_home),
      desc.home_nodes.end());
  desc.home_nodes.insert(desc.home_nodes.begin(), new_home);
  Encoder e;
  desc.encode(e);
  std::vector<GlobalAddress> page_list;
  for (GlobalAddress p = desc.range.base; p < desc.range.end();
       p = p.plus(psz)) {
    if (pages_().find(p) != nullptr) page_list.push_back(p);
  }
  e.u32(static_cast<std::uint32_t>(page_list.size()));
  for (const auto& p : page_list) {
    const auto* info = pages_().find(p);
    e.addr(p);
    e.u64(info->version);
    e.u32(info->owner == config_.id ? new_home : info->owner);
    std::set<NodeId> sharers = info->sharers;
    if (sharers.erase(config_.id) > 0) sharers.insert(new_home);
    e.u32(static_cast<std::uint32_t>(sharers.size()));
    for (NodeId s : sharers) e.u32(s);
    const bool valid_here = info->state != PageState::kInvalid;
    const Bytes* data = valid_here ? storage_().get(p) : nullptr;
    e.boolean(data != nullptr);
    if (data != nullptr) e.bytes(*data);
  }

  engine_().call({new_home}, MsgType::kMigrateData, std::move(e).take(),
            [this, m, base, new_home](bool ok, Decoder& resp) {
              if (!ok || from_wire(resp.u8()) != ErrorCode::kOk) {
                respond(m, MsgType::kMigrateResp,
                        status_payload(ErrorCode::kUnreachable));
                return;
              }
              // Hand-off complete: drop authority, keep a fresh cache
              // entry pointing at the new home, release local page state.
              // Runs on the same lane the request did (engine callbacks
              // fire on the issuing lane), so page state is ours to drop.
              std::unique_lock<std::recursive_mutex> g(state_mu_);
              auto it2 = homed_regions_.find(base);
              if (it2 != homed_regions_.end()) {
                RegionDescriptor moved = it2->second;
                homed_regions_.erase(it2);
                meta_.record_region_erase(base);
                g.unlock();
                const std::uint32_t psz2 = moved.attrs.page_size;
                for (GlobalAddress p = moved.range.base;
                     p < moved.range.end(); p = p.plus(psz2)) {
                  storage_().erase(p);
                  pages_().erase(p);
                }
                moved.home_nodes.erase(
                    std::remove(moved.home_nodes.begin(),
                                moved.home_nodes.end(), new_home),
                    moved.home_nodes.end());
                moved.home_nodes.insert(moved.home_nodes.begin(), new_home);
                regions_.insert(moved);

                // Update the map and the manager's hints.
                Encoder map_req;
                map_req.u8(3);  // update_homes
                map_req.range(moved.range);
                map_req.u32(
                    static_cast<std::uint32_t>(moved.home_nodes.size()));
                for (NodeId h : moved.home_nodes) map_req.u32(h);
                engine_().send_reliable(config_.genesis, MsgType::kMapMutateReq,
                              std::move(map_req).take());
                publish_hint(moved.range, /*retract=*/true);
              }
              respond(m, MsgType::kMigrateResp,
                      status_payload(ErrorCode::kOk));
            });
}

void Node::on_migrate_data(const Message& m) {
  Decoder d(m.payload);
  RegionDescriptor desc = RegionDescriptor::decode(d);
  if (!d.ok() || desc.primary_home() != config_.id) {
    respond(m, MsgType::kMigrateDataResp,
            status_payload(ErrorCode::kBadArgument));
    return;
  }
  // The region is not homed here yet, so hop_home cannot route this; the
  // incoming descriptor says which lane will own it.
  if (lanes_ > 1) {
    const unsigned target = region_lane(desc.range.base);
    if (target != lane()) {
      post_to_lane(target, [this, mc = m] { on_migrate_data(mc); });
      return;
    }
  }
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    homed_regions_[desc.range.base] = desc;
  }
  regions_.insert(desc);

  const std::uint32_t npages = d.u32();
  for (std::uint32_t i = 0; i < npages && d.ok(); ++i) {
    const GlobalAddress p = d.addr();
    const Version version = d.u64();
    const NodeId owner = d.u32();
    std::set<NodeId> sharers;
    const std::uint32_t nsharers = d.u32();
    for (std::uint32_t s = 0; s < nsharers && d.ok(); ++s) {
      sharers.insert(d.u32());
    }
    const bool has_data = d.boolean();
    Bytes data;
    if (has_data) data = d.bytes();
    if (!d.ok()) break;

    auto& info = pages_().ensure(p);
    info.homed_locally = true;
    info.home = config_.id;
    info.version = std::max(info.version, version);
    info.owner = owner;
    info.sharers = std::move(sharers);
    if (has_data) {
      info.state = PageState::kShared;
      store_page(p, std::move(data));
    } else if (info.state == PageState::kInvalid && owner == config_.id) {
      // We are recorded owner but got no bytes (old home had none):
      // materialize zeros so reads have something to serve.
      store_page(p, Bytes(desc.attrs.page_size, 0));
      info.state = PageState::kShared;
    }
  }
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    meta_.record_region(desc);
  }

  // Advertise the new home.
  publish_hint(desc.range, /*retract=*/false);

  respond(m, MsgType::kMigrateDataResp, status_payload(ErrorCode::kOk));
}

// ---------------------------------------------------------------------------
// Client-guided replication (the Section 2 "hooks")
// ---------------------------------------------------------------------------

void Node::on_replicate_to_req(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress base = d.addr();
  const NodeId target = d.u32();

  if (hop_home(m, base)) return;  // reads the region lane's pages
  const auto found = homed_descriptor(base);
  if (!found || found->range.base != base) {
    respond(m, MsgType::kReplicateToResp,
            status_payload(ErrorCode::kNotFound));
    return;
  }
  const RegionDescriptor desc = *found;
  if (target == config_.id) {
    respond(m, MsgType::kReplicateToResp, status_payload(ErrorCode::kOk));
    return;
  }
  // Batch every resident page of the region into as few kReplicaPush
  // messages as the byte cap allows: bulk replication is where the
  // multi-page encoding pays off.
  constexpr std::size_t kPushBytesCap = 1u << 20;
  const std::uint32_t psz = desc.attrs.page_size;
  Encoder batch;
  std::uint32_t batch_n = 0;
  auto flush = [&] {
    if (batch_n == 0) return;
    Encoder e;
    desc.encode(e);
    e.u32(batch_n);
    e.raw(batch.data());
    Message push;
    push.type = MsgType::kReplicaPush;
    push.dst = target;
    push.payload = std::move(e).take();
    send_msg(std::move(push));
    batch = Encoder{};
    batch_n = 0;
  };
  for (GlobalAddress p = desc.range.base; p < desc.range.end();
       p = p.plus(psz)) {
    auto* info = pages_().find(p);
    if (info == nullptr || info->state == PageState::kInvalid) {
      continue;  // no current copy here (an exclusive owner holds it)
    }
    const Bytes* data = storage_().get(p);
    if (data == nullptr) continue;
    batch.addr(p);
    batch.u64(info->version);
    batch.boolean(false);
    batch.bytes(*data);
    ++batch_n;
    info->sharers.insert(target);
    // A pushed copy means the page is no longer exclusive here.
    if (info->state == PageState::kExclusive) {
      info->state = PageState::kShared;
    }
    ins_.replica_pushes->inc();
    if (batch.size() >= kPushBytesCap) flush();
  }
  flush();
  respond(m, MsgType::kReplicateToResp, status_payload(ErrorCode::kOk));
}

// ---------------------------------------------------------------------------
// Graceful departure
// ---------------------------------------------------------------------------

void Node::leave(StatusCb cb) {
  if (config_.id == config_.genesis) {
    cb(ErrorCode::kBadArgument);  // the map authority cannot depart
    return;
  }
  // Round-robin migration targets among the other live members.
  std::vector<NodeId> targets;
  for (NodeId n : membership()) {
    if (n != config_.id) targets.push_back(n);
  }
  if (targets.empty()) {
    cb(ErrorCode::kUnreachable);
    return;
  }
  auto bases = std::make_shared<std::vector<GlobalAddress>>();
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    for (const auto& [base, _] : homed_regions_) bases->push_back(base);
  }

  auto finish = [this, cb]() {
    std::vector<NodeId> peers;
    {
      std::lock_guard<std::recursive_mutex> g(state_mu_);
      for (NodeId n : members_) {
        if (n != config_.id) peers.push_back(n);
      }
    }
    for (NodeId n : peers) {
      Message lm;
      lm.type = MsgType::kLeave;
      lm.dst = n;
      send_msg(std::move(lm));
    }
    cb(Status{});
  };

  // Migrate homed regions one at a time; a failed hand-off aborts the
  // departure (the operator can retry — data must never be orphaned).
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, bases, targets, finish, step, cb](std::size_t i) {
    if (i >= bases->size()) {
      finish();
      return;
    }
    const NodeId target = targets[i % targets.size()];
    migrate((*bases)[i], target, [this, i, step, cb](Status s) {
      if (!s.ok()) {
        cb(s);
        return;
      }
      (*step)(i + 1);
    });
  };
  (*step)(0);
}

}  // namespace khz::core
