#include "core/cluster.h"

namespace khz::core {

void ClusterState::publish(const GlobalAddress& base, std::uint64_t size,
                           NodeId node) {
  std::lock_guard lk(mu_);
  Hint& h = hints_[base];
  h.size = size;
  h.nodes.insert(node);
}

void ClusterState::retract(const GlobalAddress& base, NodeId node) {
  std::lock_guard lk(mu_);
  auto it = hints_.find(base);
  if (it == hints_.end()) return;
  it->second.nodes.erase(node);
  if (it->second.nodes.empty()) hints_.erase(it);
}

std::vector<NodeId> ClusterState::hint(const GlobalAddress& addr) const {
  std::lock_guard lk(mu_);
  auto it = hints_.upper_bound(addr);
  if (it == hints_.begin()) return {};
  --it;
  const AddressRange range{it->first, it->second.size};
  if (!range.contains(addr)) return {};
  return {it->second.nodes.begin(), it->second.nodes.end()};
}

void ClusterState::report_free_space(NodeId node, std::uint64_t pool_bytes) {
  std::lock_guard lk(mu_);
  free_space_[node] = pool_bytes;
}

std::uint64_t ClusterState::free_space_of(NodeId node) const {
  std::lock_guard lk(mu_);
  auto it = free_space_.find(node);
  return it == free_space_.end() ? 0 : it->second;
}

std::optional<NodeId> ClusterState::best_pool_node(
    std::uint64_t min_bytes) const {
  std::lock_guard lk(mu_);
  std::optional<NodeId> best;
  std::uint64_t best_size = min_bytes;
  for (const auto& [node, size] : free_space_) {
    if (size >= best_size) {
      best = node;
      best_size = size;
    }
  }
  return best;
}

}  // namespace khz::core
