// Client-side RPC substrate: one engine per node owning every retry loop.
//
// Khazana's failure model (Section 3.5) says acquire-type operations are
// retried a bounded number of times and then reflected to the caller, while
// release-type operations are retried in the background until they succeed.
// Before this engine existed those two sentences were implemented by eight
// hand-rolled retry sites in node_ops.cc, a bespoke candidate loop in the
// resolver, and a fixed-interval background queue — each with its own timer
// bookkeeping and its own bugs. The engine centralizes:
//
//   - request/response correlation (rpc_id allocation, duplicate-reply
//     tolerance: every attempt of a call stays routable until the call
//     completes, so a slow reply to attempt 1 still completes the call
//     after attempt 2 was issued),
//   - per-attempt timeouts derived from a per-operation deadline that rides
//     the Message envelope (servers drop expired work; nested RPCs inherit
//     the remaining budget via DeadlineScope),
//   - capped jittered exponential backoff between attempts,
//   - multi-candidate failover: attempts rotate through a candidate list,
//     and an application-level accept predicate can bounce a well-formed
//     reply ("not the home") to steer to the next candidate immediately,
//   - down-node short-circuiting: candidates the failure detector has
//     declared dead are skipped without burning an attempt timeout,
//   - per-destination retry budgets (token buckets): retries withdraw from
//     a bucket that only first attempts refill, so a saturated server sees
//     a bounded retry tax instead of congestion collapse; admission Nacks
//     from an overloaded server rotate candidates after backoff,
//   - the reliable-send background queue, with backoff, down-peer pausing
//     instead of blind fixed-interval hammering, and a per-destination
//     depth bound (oldest-first drop) so a long-down peer cannot
//     accumulate unbounded state.
//
// The engine sees its node through the narrow Host interface below, so it
// unit-tests against a fake with manual time and captured sends.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/types.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace khz::core {

/// Retry/timeout policy for every call issued through an engine. One struct,
/// one place: changing retry behavior is a policy edit, not an N-site audit.
struct RpcPolicy {
  /// How long a single attempt may wait for its response.
  Micros attempt_timeout = 200'000;
  /// Default total attempts (first try + retries) when the caller does not
  /// override. Calls with more candidates than this get one attempt per
  /// candidate so every replica is probed at least once.
  int max_attempts = 4;
  /// First backoff delay; doubles per subsequent attempt.
  Micros backoff_base = 25'000;
  /// Ceiling for the exponential growth.
  Micros backoff_cap = 800'000;
  /// Each delay is drawn uniformly from [d*(1-jitter), d*(1+jitter)] so
  /// synchronized clients do not retry in lockstep.
  double jitter = 0.5;

  /// Retry budget (per destination, token bucket): every *first* attempt
  /// deposits this many tokens, every retry withdraws one. Under overload
  /// the sustained retry rate is thus capped at ratio * request rate, so
  /// retries cannot amplify a saturated server into congestion collapse.
  double retry_budget_ratio = 0.2;
  /// Bucket ceiling (and initial fill): a burst of retries against a fresh
  /// or long-idle destination may spend up to this many before the ratio
  /// governs. 0 disables budgeting entirely.
  double retry_budget_cap = 50;
  /// Maximum queued reliable sends per destination. A long-down peer stops
  /// accumulating past this: the oldest pending delivery to it is dropped
  /// (counted as rpc.reliable_dropped). 0 = unbounded (legacy behavior).
  std::size_t reliable_queue_limit = 256;
};

class RpcEngine {
 public:
  /// What the engine needs from the node it lives in. Narrow by design:
  /// a test host is ~30 lines.
  class Host {
   public:
    virtual ~Host() = default;
    /// Delivers a fully-formed message (self-sends must loop back through
    /// the scheduler, never re-enter handlers synchronously).
    virtual void route(net::Message m) = 0;
    [[nodiscard]] virtual Micros now() const = 0;
    virtual std::uint64_t schedule(Micros delay,
                                   std::function<void()> fn) = 0;
    virtual void cancel(std::uint64_t timer_id) = 0;
    /// Failure-detector verdict; down candidates are skipped.
    [[nodiscard]] virtual bool is_down(NodeId node) = 0;
    [[nodiscard]] virtual Rng& rng() = 0;
    [[nodiscard]] virtual obs::Tracer& tracer() = 0;
  };

  /// Delivery continuation: ok=false means the call failed (every attempt
  /// timed out, all candidates down, or the deadline expired) and `d` is
  /// empty. ok=true hands the accepted response payload.
  using Handler = std::function<void(bool ok, Decoder& d)>;
  /// Application-level steering predicate, run on each well-formed reply.
  /// Returning false bounces the reply ("I'm not the home") and moves to
  /// the next candidate immediately — no backoff, mirroring how the old
  /// fetch_descriptor walked its candidate list.
  using AcceptFn = std::function<bool(Decoder d)>;

  struct CallOptions {
    /// Total attempts; 0 = max(policy.max_attempts, candidates.size()).
    int max_attempts = 0;
    /// Absolute deadline; 0 inherits the ambient deadline (DeadlineScope),
    /// which is itself 0 ("none") outside any scope.
    Micros deadline = 0;
    /// Probe semantics: send even to candidates marked down. The failure
    /// detector's pings need this — a down node can only be noticed as
    /// back up if somebody still talks to it.
    bool ignore_down = false;
    AcceptFn accept;
  };

  RpcEngine(Host& host, RpcPolicy policy, obs::MetricsRegistry& metrics);
  ~RpcEngine();

  RpcEngine(const RpcEngine&) = delete;
  RpcEngine& operator=(const RpcEngine&) = delete;

  /// Issues an RPC against an ordered candidate list. Attempt k goes to
  /// candidates[k mod size] (skipping down nodes unless ignore_down); the
  /// handler fires exactly once.
  void call(std::vector<NodeId> candidates, net::MsgType type, Bytes payload,
            Handler handler, CallOptions opts);
  void call(std::vector<NodeId> candidates, net::MsgType type, Bytes payload,
            Handler handler) {
    call(std::move(candidates), type, std::move(payload), std::move(handler),
         CallOptions());
  }

  /// Background until-it-sticks delivery (Section 3.5 release ops): retried
  /// with capped jittered backoff, paused while the destination is marked
  /// down and re-kicked by on_node_up().
  void send_reliable(NodeId dst, net::MsgType type, Bytes payload);

  /// Resumes reliable sends that were paused because `node` was down.
  void on_node_up(NodeId node);

  /// Pending background (reliable) deliveries.
  [[nodiscard]] std::size_t reliable_queue_depth() const {
    return reliable_.size();
  }

  /// In-flight foreground calls (issued, not yet finished). The overload
  /// soak asserts this stays bounded at 2x saturation offered load.
  [[nodiscard]] std::size_t inflight_calls() const { return calls_.size(); }

  /// Routes a response message to its call. Returns false for strays:
  /// duplicates of an already-completed call or replies that outlived it.
  bool on_response(const net::Message& msg);

  /// Backoff delay before attempt `attempt + 1` (attempt is 1-based count
  /// of attempts already made). Exposed so protocol retry paths (CREW
  /// rounds) share the exact policy without issuing through the engine.
  [[nodiscard]] Micros backoff(int attempt);

  /// Cancels every pending timer and drops all in-flight state. Handlers
  /// are NOT invoked — this is shutdown, not failure. Safe to call twice.
  void shutdown();

  /// The deadline calls inherit when CallOptions.deadline == 0.
  [[nodiscard]] Micros ambient_deadline() const { return ambient_deadline_; }

  /// Lane-strided rpc-id minting: ids run first, first+step, first+2*step…
  /// A multi-lane node hands lane L's engine (first = L + lanes, step =
  /// lanes) so that rpc_id % lanes recovers the issuing lane — transports
  /// demux responses onto the right lane without shared state. The default
  /// (1, 1) is the legacy single-lane sequence. Call before any traffic.
  void configure_ids(RpcId first, RpcId step) {
    next_rpc_id_ = first;
    rpc_id_step_ = step == 0 ? 1 : step;
  }

  /// RAII ambient-deadline window. A server opens one around request
  /// handling (from the envelope's deadline field) so nested RPCs inherit
  /// the remaining budget; the engine itself opens one around each call's
  /// continuation so chained calls (resolve, then allocate) stay under the
  /// original operation's deadline. Nested scopes only ever tighten.
  class DeadlineScope {
   public:
    DeadlineScope(RpcEngine& engine, Micros deadline)
        : engine_(engine), prev_(engine.ambient_deadline_) {
      if (deadline != 0 && (prev_ == 0 || deadline < prev_)) {
        engine_.ambient_deadline_ = deadline;
      }
    }
    ~DeadlineScope() { engine_.ambient_deadline_ = prev_; }
    DeadlineScope(const DeadlineScope&) = delete;
    DeadlineScope& operator=(const DeadlineScope&) = delete;

   private:
    RpcEngine& engine_;
    Micros prev_;
  };

  [[nodiscard]] const RpcPolicy& policy() const { return policy_; }

 private:
  struct Call {
    std::vector<NodeId> candidates;
    std::size_t cursor = 0;  // next candidate index (pre-rotation)
    net::MsgType type{};
    Bytes payload;
    Handler handler;
    AcceptFn accept;
    int attempts_left = 0;
    int attempts_made = 0;
    Micros deadline = 0;
    bool ignore_down = false;
    std::uint64_t timer = 0;  // attempt timeout OR backoff wait
    /// Every rpc_id this call has issued; all stay registered until the
    /// call completes (duplicate / late-reply tolerance).
    std::vector<RpcId> issued;
    obs::TraceContext issue_ctx;
    obs::TraceContext span;  // current attempt's client-side span
  };

  struct ReliableSend {
    NodeId dst = kNoNode;
    net::MsgType type{};
    Bytes payload;
    int failures = 0;
    std::uint64_t retry_timer = 0;  // backoff wait between attempts
    /// Destination known down: attempts stop until on_node_up().
    bool paused = false;
  };

  void start_attempt(std::uint64_t call_id);
  void on_attempt_timeout(std::uint64_t call_id);
  /// Common retry tail (timeout and Nack paths): rotate to the next
  /// candidate and re-attempt after backoff, unless the remaining deadline
  /// cannot cover the wait.
  void schedule_retry(std::uint64_t call_id);
  /// Token-bucket accounting for attempts against `dst`. Returns false
  /// when `retry` is true and the destination's budget is empty — the
  /// caller must fast-fail instead of retrying.
  bool budget_attempt(NodeId dst, bool retry);
  /// Next not-down candidate at/after cursor, or kNoNode if all are down.
  [[nodiscard]] NodeId pick_candidate(Call& c) const;
  void finish(std::uint64_t call_id, bool ok, const Bytes* payload);
  void reliable_attempt(std::uint64_t rid);

  Host& host_;
  RpcPolicy policy_;
  Micros ambient_deadline_ = 0;

  std::unordered_map<std::uint64_t, Call> calls_;
  std::unordered_map<RpcId, std::uint64_t> rpc_to_call_;
  std::uint64_t next_call_id_ = 1;
  RpcId next_rpc_id_ = 1;
  RpcId rpc_id_step_ = 1;

  std::map<std::uint64_t, ReliableSend> reliable_;
  std::uint64_t next_reliable_id_ = 1;

  /// Per-destination retry budgets (Finagle-style token buckets). Buckets
  /// start full so a cold start can absorb a retry burst; steady-state
  /// refill comes only from first attempts.
  std::map<NodeId, double> budget_;

  struct {
    obs::Counter* attempts = nullptr;
    obs::Counter* steered = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* duplicate_replies = nullptr;
    obs::Counter* down_short_circuits = nullptr;
    obs::Counter* background_retries = nullptr;
    obs::Counter* nacks = nullptr;
    obs::Counter* budget_exhausted = nullptr;
    obs::Counter* reliable_dropped = nullptr;
    obs::Histogram* backoff_us = nullptr;
  } ins_;
};

}  // namespace khz::core
