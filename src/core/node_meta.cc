// Resolver::Host glue and metadata persistence glue for core::Node:
// homed-descriptor lookup, map page fetch (with its lane-0 double hop),
// meta-log snapshot/journal and crash recovery.
#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/node.h"

namespace khz::core {

using consistency::LockContext;
using consistency::LockMode;
using consistency::ProtocolId;
using net::Message;
using net::MsgType;
using storage::PageState;

// ---------------------------------------------------------------------------
// Resolver::Host glue + metadata persistence glue
// ---------------------------------------------------------------------------

std::optional<RegionDescriptor> Node::homed_descriptor(
    const GlobalAddress& addr) {
  std::lock_guard lk(state_mu_);
  auto it = homed_regions_.upper_bound(addr);
  if (it != homed_regions_.begin()) {
    const auto& [base, desc] = *std::prev(it);
    if (desc.range.contains(addr)) return desc;
  }
  return std::nullopt;
}

void Node::fetch_map_page(std::uint32_t index,
                          std::function<void(Result<Bytes>)> cb) {
  // Map pages (and their release CM) are lane-0 state. A resolver walking
  // from another lane double-hops: do the fetch on lane 0, deliver the
  // callback back on the asking lane (where the resolve continues).
  if (lanes_ > 1 && lane() != 0) {
    const unsigned origin = lane();
    const Micros dl = engine_().ambient_deadline();
    const obs::TraceContext ctx = tracer_.current();
    post_to_lane(0, [this, index, origin, dl, ctx,
                        cb = std::move(cb)]() mutable {
      RpcEngine::DeadlineScope dscope(engine_(), dl);
      obs::ScopedTraceContext tscope(tracer_, ctx);
      fetch_map_page(index, [this, origin, dl, ctx, cb = std::move(cb)](
                                Result<Bytes> r) mutable {
        post_to_lane(origin, [this, dl, ctx, cb = std::move(cb),
                                 r = std::move(r)]() mutable {
          RpcEngine::DeadlineScope dscope(engine_(), dl);
          obs::ScopedTraceContext tscope(tracer_, ctx);
          cb(std::move(r));
        });
      });
    });
    return;
  }
  if (map_ != nullptr) {
    cb(map_store_->read_page(index));
    return;
  }
  const GlobalAddress addr = kMapRegionBase.plus(
      static_cast<std::uint64_t>(index) * kDefaultPageSize);
  auto* cm = cm_for(ProtocolId::kRelease);
  cm->acquire(addr, LockMode::kRead, [this, addr, cb = std::move(cb)](
                                         Status s) mutable {
    if (!s.ok()) {
      cb(s.error());
      return;
    }
    const Bytes* data = storage_().get(addr);
    Bytes copy = data != nullptr ? *data : Bytes(kDefaultPageSize, 0);
    cm_for(ProtocolId::kRelease)->release(addr, LockMode::kRead, false);
    cb(std::move(copy));
  });
}

MetaLog::Snapshot Node::snapshot_state() {
  // Called from under a record_*/checkpoint (state_mu_ already held —
  // recursive). Page versions come from the journaled mirror, never from
  // another lane's page-directory shard.
  std::lock_guard lk(state_mu_);
  MetaLog::Snapshot snap;
  snap.granted_bytes = granted_bytes_;
  snap.pool = pool_;
  snap.regions = homed_regions_;
  snap.page_versions = journaled_pages_;
  return snap;
}

void Node::journal_page(const GlobalAddress& page) {
  const auto* info = pages_().find(page);
  const Version v = info != nullptr ? info->version : 0;
  {
    std::lock_guard lk(state_mu_);
    journaled_pages_[page] = v;
    meta_.record_page(page, v);
  }
  // Group-commit policy point: every durable page write funnels through
  // here (store_page, unlock write-back, fail-over promotion), so this one
  // call covers the whole write-through path. Inline per-write fdatasync
  // without group commit; bytes-threshold drain with it; otherwise the
  // commit timer picks the batch up.
  if (disk_ != nullptr) (void)disk_->maybe_commit();
}

// ---------------------------------------------------------------------------
// Segment-store data plane (docs/storage.md)
// ---------------------------------------------------------------------------

void Node::configure_disk() {
  disk_->bind_metrics(metrics_);
  if (config_.sync_metadata) disk_->set_sync_on_commit(true);
  if (config_.group_commit_us > 0 || config_.group_commit_bytes > 0) {
    disk_->set_group_commit(true, config_.group_commit_bytes);
  }
}

void Node::start_storage_timers() {
  if (disk_ == nullptr) return;
  if (config_.group_commit_us > 0 && commit_timer_ == 0) {
    commit_timer_ =
        transport_.schedule(config_.group_commit_us, [this] { commit_tick(); });
  }
  if (config_.checkpoint_interval > 0 && checkpoint_timer_ == 0) {
    checkpoint_timer_ = transport_.schedule(config_.checkpoint_interval,
                                            [this] { checkpoint_tick(); });
  }
}

void Node::stop_storage_timers() {
  if (commit_timer_ != 0) {
    transport_.cancel(commit_timer_);
    commit_timer_ = 0;
  }
  if (checkpoint_timer_ != 0) {
    transport_.cancel(checkpoint_timer_);
    checkpoint_timer_ = 0;
  }
  // A stopping node must not leave acknowledged writes in the pending
  // batch: drain it one last time.
  if (disk_ != nullptr) (void)disk_->commit();
}

void Node::commit_tick() {
  (void)disk_->commit();
  commit_timer_ =
      transport_.schedule(config_.group_commit_us, [this] { commit_tick(); });
}

void Node::checkpoint_tick() {
  {
    // checkpoint() pulls snapshot_state() re-entrantly; both sides of the
    // metadata plane run under state_mu_.
    std::lock_guard lk(state_mu_);
    meta_.checkpoint();
  }
  (void)disk_->compact(config_.compaction_pages_per_tick);
  checkpoint_timer_ = transport_.schedule(config_.checkpoint_interval,
                                          [this] { checkpoint_tick(); });
}

void Node::recover_meta() {
  if (disk_ == nullptr) return;
  MetaLog::Snapshot snap = meta_.recover();

  // Install the recovered state. Runs from start() before any traffic, so
  // the per-lane shards can be written from here; the lock still brackets
  // it for the benefit of restarted-while-cluster-lives scenarios.
  std::lock_guard lk(state_mu_);
  granted_bytes_ = snap.granted_bytes;
  pool_ = std::move(snap.pool);
  for (const auto& [base, desc] : snap.regions) {
    homed_regions_[base] = desc;
    regions_.insert(desc);
  }
  journaled_pages_ = snap.page_versions;
  for (const auto& [p, v] : snap.page_versions) {
    // Each recovered page lands in the shard of the lane that owns its
    // region, keyed exactly like live routing (map region -> lane 0).
    unsigned l = 0;
    if (!AddressRange{kMapRegionBase, kMapRegionSize}.contains(p)) {
      auto it = homed_regions_.upper_bound(p);
      if (it != homed_regions_.begin() &&
          std::prev(it)->second.range.contains(p)) {
        l = region_lane(std::prev(it)->second.range.base);
      }
    }
    auto& info = pages_v_[l]->ensure(p);
    info.homed_locally = true;
    info.home = config_.id;
    info.owner = config_.id;
    info.version = v;
    // Volatile copies elsewhere died with the crash from this node's point
    // of view; the copyset restarts at just us.
    info.state = disk_->contains(p) ? PageState::kShared : PageState::kInvalid;
    info.sharers = {config_.id};
  }
}

}  // namespace khz::core
