// Failure detection and home fail-over for core::Node (Section 3.5,
// docs/recovery.md). Split out of node_handlers.cc so each core TU stays
// one subsystem.
#include <algorithm>

#include "common/log.h"
#include "core/node.h"

namespace khz::core {

using net::MsgType;
using storage::PageState;

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

void Node::ping_tick() {
  std::vector<NodeId> peers;
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    for (NodeId n : members_) {
      if (n != config_.id) peers.push_back(n);
    }
  }
  for (NodeId n : peers) {
    rpc(n, MsgType::kPing, {}, [this, n](bool ok, Decoder&) {
      if (ok) {
        bool was_down = false;
        {
          std::lock_guard<std::recursive_mutex> g(state_mu_);
          missed_pongs_[n] = 0;
          was_down = down_nodes_.contains(n);
        }
        if (was_down) mark_node_up(n);
        return;
      }
      bool newly_down = false;
      {
        std::lock_guard<std::recursive_mutex> g(state_mu_);
        newly_down = ++missed_pongs_[n] >= 3 && !down_nodes_.contains(n);
      }
      if (newly_down) mark_node_down(n);
    });
  }
  ping_timer_ =
      transport_.schedule(config_.ping_interval, [this] { ping_tick(); });
}

void Node::mark_node_down(NodeId node) {
  KHZ_INFO("node %u: peer %u presumed down", config_.id, node);
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    down_nodes_.insert(node);
  }
  // Detector verdict reaches the location plane first: tombstone the dead
  // node out of the hint cache so no lookup is steered at it, and so the
  // retraction propagates to the other managers on the next sync round.
  fabric_->on_node_down(node);
  // Promote before the protocol cleanup: the CMs' on_node_down reclaims
  // ownership for homed pages, and promotion may have just made this node
  // the home of regions the dead peer owned.
  maybe_promote_regions(node);
  // Per-lane protocol cleanup: each lane's CMs scrub their own page shard.
  // Inline on the calling lane (so lanes=1 keeps the legacy synchronous
  // order), posted to the others.
  for (unsigned l = 0; l < lanes_; ++l) {
    if (l == lane()) {
      for (auto& [_, cm] : cms_v_[l]) cm->on_node_down(node);
    } else {
      post_to_lane(l, [this, l, node] {
        for (auto& [_, cm] : cms_v_[l]) cm->on_node_down(node);
      });
    }
  }
}

void Node::mark_node_up(NodeId node) {
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    down_nodes_.erase(node);
    missed_pongs_[node] = 0;
  }
  // Reliable sends to this peer paused while it was down; every lane's
  // engine resumes its own queue.
  for (unsigned l = 0; l < lanes_; ++l) {
    if (l == lane()) {
      engines_[l]->on_node_up(node);
    } else {
      post_to_lane(l, [this, l, node] { engines_[l]->on_node_up(node); });
    }
  }
}

// ---------------------------------------------------------------------------
// Home fail-over (docs/recovery.md)
// ---------------------------------------------------------------------------

void Node::maybe_promote_regions(NodeId dead) {
  // Scan every descriptor this node knows about. The election needs no
  // coordination round: the copy set is listed in the descriptor, the rule
  // ("highest surviving node id in home_nodes") is deterministic, and every
  // surviving node applies it to the same list — so they all converge on
  // the same heir, and only the heir promotes itself.
  std::set<NodeId> down;
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    down = down_nodes_;
  }
  for (RegionDescriptor desc : regions_.snapshot()) {
    if (desc.primary_home() != dead) continue;
    if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(
            desc.range.base)) {
      continue;  // the map region's authority is pinned to genesis
    }
    NodeId heir = kNoNode;
    for (NodeId n : desc.home_nodes) {
      if (n == dead || down.contains(n)) continue;
      if (heir == kNoNode || n > heir) heir = n;
    }
    if (heir == kNoNode) continue;  // no surviving copy-set member

    // Repoint the local cache at the heir so this node's own retries go to
    // the new home immediately instead of bouncing off the corpse.
    desc.home_nodes.erase(
        std::remove(desc.home_nodes.begin(), desc.home_nodes.end(), dead),
        desc.home_nodes.end());
    desc.home_nodes.erase(
        std::remove(desc.home_nodes.begin(), desc.home_nodes.end(), heir),
        desc.home_nodes.end());
    desc.home_nodes.insert(desc.home_nodes.begin(), heir);
    regions_.insert(desc);

    if (heir == config_.id) {
      // Promotion installs page state into the region's shard; run there.
      run_on_region_lane(desc.range.base,
                         [this, desc, dead] { promote_region(desc, dead); });
    }
  }
}

void Node::promote_region(RegionDescriptor desc, NodeId dead) {
  std::set<NodeId> down;
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    if (homed_regions_.contains(desc.range.base)) return;  // already home
    desc.allocated = true;  // replicas only exist for allocated pages
    homed_regions_[desc.range.base] = desc;
    meta_.record_region(desc);
    down = down_nodes_;
  }
  KHZ_INFO("node %u: promoting to home of region %016llx_%016llx (home %u "
           "presumed dead)",
           config_.id, static_cast<unsigned long long>(desc.range.base.hi),
           static_cast<unsigned long long>(desc.range.base.lo), dead);
  regions_.insert(desc);
  metrics_.counter("node.promotions").inc();

  const std::uint32_t psz = desc.attrs.page_size;
  for (GlobalAddress p = desc.range.base; p < desc.range.end();
       p = p.plus(psz)) {
    auto& info = pages_().ensure(p);
    info.homed_locally = true;
    info.home = config_.id;
    info.sharers.erase(dead);
    const bool have_copy =
        info.state != PageState::kInvalid && storage_().get(p) != nullptr;
    if (have_copy) {
      info.sharers.insert(config_.id);
      if (info.owner == dead || info.owner == kNoNode ||
          info.owner == config_.id) {
        info.owner = config_.id;
      }
      // A live exclusive owner elsewhere keeps its authority: its
      // owner-side replica push (from_owner) will reach this node — its
      // cache was repointed by its own maybe_promote_regions — and hand
      // ownership back here with the newest bytes.
      if (info.state == PageState::kExclusive) info.state = PageState::kShared;
      (void)storage_().flush(p);
      journal_page(p);
    } else {
      if (info.owner == dead) info.owner = kNoNode;
      NodeId live_holder = kNoNode;
      for (NodeId s : info.sharers) {
        if (s != config_.id && !down.contains(s)) live_holder = s;
      }
      if (info.owner == kNoNode && live_holder != kNoNode) {
        info.owner = live_holder;  // protocol fetches from there on demand
      } else if (info.owner == kNoNode) {
        // Nobody left with a copy (the replica push never reached us):
        // the page's last write is lost with the old home. Re-materialize
        // zeros so the region stays usable.
        KHZ_WARN("node %u: page %016llx_%016llx lost with home %u; "
                 "re-materializing zeros",
                 config_.id, static_cast<unsigned long long>(p.hi),
                 static_cast<unsigned long long>(p.lo), dead);
        info.owner = config_.id;
        info.state = PageState::kShared;
        info.sharers.insert(config_.id);
        store_page(p, Bytes(psz, 0));
      }
    }
  }

  // Advertise the new home: hints to the cluster managers, home list to
  // the address map (release-type: retried in the background).
  publish_hint(desc.range, /*retract=*/false);
  Encoder map_req;
  map_req.u8(3);  // update_homes
  map_req.range(desc.range);
  map_req.u32(static_cast<std::uint32_t>(desc.home_nodes.size()));
  for (NodeId h : desc.home_nodes) map_req.u32(h);
  engine_().send_reliable(config_.genesis, MsgType::kMapMutateReq,
                std::move(map_req).take());

  // Honor min_replicas before accepting new writes: gate write grants
  // (write_gated) and kick replica maintenance to rebuild the copyset.
  if (desc.attrs.min_replicas > 1) {
    {
      std::lock_guard<std::recursive_mutex> g(state_mu_);
      recovering_regions_.insert(desc.range.base);
    }
    for (GlobalAddress p = desc.range.base; p < desc.range.end();
         p = p.plus(psz)) {
      note_copyset_change(p);
    }
  }
}

}  // namespace khz::core
