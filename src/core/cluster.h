// Cluster-manager role state (paper, Section 3.1).
//
// "Each cluster has one or more designated cluster managers, nodes
// responsible for being aware of other cluster locations, caching hint
// information about regions stored in the local cluster, and representing
// the local cluster during inter-cluster communication... Each cluster
// manager maintains hints of the sizes of free address space (total size,
// maximum free region size, etc) managed by other nodes in its cluster."
//
// The current prototype, like the paper's, is single-cluster: one node
// (configurable, default the genesis node) carries this state. It is pure
// bookkeeping — all message handling lives in core::Node.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "common/global_address.h"
#include "common/types.h"

namespace khz::core {

class ClusterState {
 public:
  /// --- location hints: region base -> nodes believed to cache/home it ---
  void publish(const GlobalAddress& base, std::uint64_t size, NodeId node);
  void retract(const GlobalAddress& base, NodeId node);

  /// Nodes believed to hold the region containing `addr` (may be stale).
  [[nodiscard]] std::vector<NodeId> hint(const GlobalAddress& addr) const;

  /// --- free-space hints: node -> unreserved pool size it reported ---
  void report_free_space(NodeId node, std::uint64_t pool_bytes);
  [[nodiscard]] std::uint64_t free_space_of(NodeId node) const;
  /// Node with the largest reported pool, if any reported > min_bytes.
  [[nodiscard]] std::optional<NodeId> best_pool_node(
      std::uint64_t min_bytes) const;

  [[nodiscard]] std::size_t hint_count() const {
    std::lock_guard lk(mu_);
    return hints_.size();
  }

  /// Drops all hint and free-space state (tests simulate a manager whose
  /// hint cache was lost).
  void clear() {
    std::lock_guard lk(mu_);
    hints_.clear();
    free_space_.clear();
  }

 private:
  struct Hint {
    std::uint64_t size = 0;
    std::set<NodeId> nodes;
  };
  /// Hint state is read/written from every execution lane of the manager
  /// node (publishes arrive region-routed; queries arrive control-routed),
  /// so it synchronizes internally.
  mutable std::mutex mu_;
  std::map<GlobalAddress, Hint> hints_;  // keyed by region base
  std::map<NodeId, std::uint64_t> free_space_;
};

}  // namespace khz::core
