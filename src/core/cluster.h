// Compatibility forwarder: ClusterState moved to the location subsystem
// (src/location/cluster.h).
#pragma once

#include "location/cluster.h"

namespace khz::core {
using location::ClusterState;
}  // namespace khz::core
