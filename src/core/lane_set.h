// Per-lane executor telemetry.
//
// Every cross-lane hop in the node goes through Node::post_to_lane, which
// feeds this instrument set: one queue-depth gauge per lane (how many
// posted continuations are waiting to run there) and one shared dispatch
// histogram (how long a continuation sat queued before its lane ran it).
// Under the simulator posts run at the same virtual instant, so
// lane.dispatch_us stays at zero and lane.depth.* spikes only transiently;
// over TCP the gauges expose a hot lane (skewed region hash) and the
// histogram exposes executor scheduling delay — the first thing to look at
// when a lane sweep stops scaling.
#pragma once

#include <string>
#include <vector>

#include "common/lane.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace khz::core {

/// Instruments for one node's lane executor set. Bind once at node
/// construction; enqueue/dispatch are called from Node::post_to_lane.
/// Gauge/Histogram operations are atomic, so any thread may call them.
class LaneStats {
 public:
  void bind(obs::MetricsRegistry& m, unsigned lanes) {
    depth_.clear();
    // Lane 0 is registered with a literal name so the metric-catalogue
    // lint sees a `lane.depth.*` sibling; further lanes join the family
    // with runtime-assembled names.
    depth_.push_back(&m.gauge("lane.depth.0"));
    for (unsigned l = 1; l < lanes && l < kMaxLanes; ++l) {
      depth_.push_back(&m.gauge("lane.depth." + std::to_string(l)));
    }
    dispatch_us_ = &m.histogram("lane.dispatch_us");
  }

  /// A continuation was posted to `lane` and is now queued.
  void enqueued(unsigned lane) { depth_at(lane)->add(1); }

  /// The continuation started running on its lane after `queued_us` in
  /// the queue.
  void dispatched(unsigned lane, Micros queued_us) {
    depth_at(lane)->sub(1);
    dispatch_us_->record(queued_us);
  }

 private:
  [[nodiscard]] obs::Gauge* depth_at(unsigned lane) {
    return depth_[lane < depth_.size() ? lane : 0];
  }

  std::vector<obs::Gauge*> depth_;
  obs::Histogram* dispatch_us_ = nullptr;
};

}  // namespace khz::core
