#include "core/sim_world.h"

namespace khz::core {

namespace {
NodeConfig make_config(const SimWorldOptions& opts, NodeId id,
                       std::size_t count) {
  NodeConfig cfg;
  cfg.id = id;
  cfg.genesis = 0;
  cfg.cluster_manager = 0;
  for (std::size_t m = 0; m < opts.managers && m < count; ++m) {
    cfg.cluster_managers.push_back(static_cast<NodeId>(m));
  }
  for (std::size_t p = 0; p < count; ++p) {
    cfg.peers.push_back(static_cast<NodeId>(p));
  }
  cfg.ram_pages = opts.ram_pages;
  if (!opts.disk_root.empty()) {
    cfg.disk_dir = opts.disk_root / ("node" + std::to_string(id));
    cfg.disk_pages = opts.disk_pages;
  }
  cfg.rpc_timeout = opts.rpc_timeout;
  cfg.max_retries = opts.max_retries;
  cfg.ping_interval = opts.ping_interval;
  cfg.admission_client_queue = opts.admission_client_queue;
  cfg.admission_protocol_queue = opts.admission_protocol_queue;
  cfg.admission_replication_queue = opts.admission_replication_queue;
  cfg.admission_service_us = opts.admission_service_us;
  cfg.sync_metadata = opts.sync_metadata;
  cfg.segment_bytes = opts.segment_bytes;
  cfg.group_commit_us = opts.group_commit_us;
  cfg.group_commit_bytes = opts.group_commit_bytes;
  cfg.checkpoint_interval = opts.checkpoint_interval;
  cfg.slow_op_threshold_us = opts.slow_op_threshold_us;
  cfg.slow_op_deadline_fraction = opts.slow_op_deadline_fraction;
  cfg.flight_recorder_capacity = opts.flight_recorder_capacity;
  cfg.stats_sample_interval = opts.stats_sample_interval;
  cfg.stats_series_capacity = opts.stats_series_capacity;
  cfg.hint_sync_interval = opts.hint_sync_interval;
  cfg.refresh_interval = opts.refresh_interval;
  cfg.refresh_age_us = opts.refresh_age_us;
  cfg.refresh_hot_accesses = opts.refresh_hot_accesses;
  cfg.free_space_ttl = opts.free_space_ttl;
  cfg.map_rebalance_every = opts.map_rebalance_every;
  cfg.compaction_pages_per_tick = opts.compaction_pages_per_tick;
  cfg.lanes = opts.lanes;
  cfg.seed = opts.seed;
  return cfg;
}
}  // namespace

SimWorld::SimWorld(SimWorldOptions opts)
    : opts_(std::move(opts)), net_(opts_.seed) {
  net_.set_default_link(opts_.link);
  nodes_.reserve(opts_.nodes);
  for (std::size_t i = 0; i < opts_.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    auto& transport = net_.add_node(id);
    nodes_.push_back(
        std::make_unique<Node>(make_config(opts_, id, opts_.nodes),
                               transport));
  }
  for (auto& n : nodes_) n->start();
  // Let joins/bootstrap settle.
  net_.run_for(opts_.rpc_timeout);
}

SimWorld::~SimWorld() = default;

void SimWorld::crash_node(NodeId id) {
  net_.set_node_up(id, false);
  nodes_[id] = nullptr;  // volatile state dies with the process
}

void SimWorld::restart_node(NodeId id, bool settle) {
  // Model a crash+reboot: the Node object (all volatile state) is rebuilt
  // from the persistent store; the SimTransport endpoint keeps the node's
  // network identity across the restart. set_node_up(false) is a no-op if
  // the node was already crashed via crash_node (the epoch bumps only on
  // an up->down transition).
  net_.set_node_up(id, false);
  nodes_[id] = nullptr;  // crash: volatile state gone
  net_.set_node_up(id, true);
  auto* ep = net_.endpoint(id);
  nodes_[id] =
      std::make_unique<Node>(make_config(opts_, id, nodes_.size()), *ep);
  nodes_[id]->start();
  if (settle) net_.run_for(opts_.rpc_timeout);
}

void SimWorld::schedule_crash(Micros delay, NodeId id) {
  net_.schedule_global(delay, [this, id] { crash_node(id); });
}

void SimWorld::schedule_restart(Micros delay, NodeId id) {
  // settle=false: the script fires inside a pump; nesting another run_for
  // there would re-enter the event loop.
  net_.schedule_global(delay,
                       [this, id] { restart_node(id, /*settle=*/false); });
}

void SimWorld::schedule_partition(Micros delay, std::set<NodeId> a,
                                  std::set<NodeId> b) {
  net_.schedule_global(delay, [this, a = std::move(a), b = std::move(b)] {
    net_.partition(a, b);
  });
}

void SimWorld::schedule_heal(Micros delay) {
  net_.schedule_global(delay, [this] { net_.clear_partitions(); });
}

bool SimWorld::pump_until(const std::function<bool()>& done,
                          std::size_t limit) {
  return net_.run_until(done, limit);
}

// ---------------------------------------------------------------------------
// Blocking wrappers
// ---------------------------------------------------------------------------

Result<GlobalAddress> SimWorld::reserve(NodeId n, std::uint64_t size,
                                        const RegionAttrs& attrs) {
  std::optional<Result<GlobalAddress>> out;
  node(n).reserve(size, attrs, [&](Result<GlobalAddress> r) {
    out = std::move(r);
  });
  pump_until([&] { return out.has_value(); });
  return out.value_or(Result<GlobalAddress>{ErrorCode::kTimeout});
}

Status SimWorld::unreserve(NodeId n, const GlobalAddress& base) {
  std::optional<Status> out;
  node(n).unreserve(base, [&](Status s) { out = s; });
  pump_until([&] { return out.has_value(); });
  return out.value_or(ErrorCode::kTimeout);
}

Status SimWorld::allocate(NodeId n, const AddressRange& range) {
  std::optional<Status> out;
  node(n).allocate(range, [&](Status s) { out = s; });
  pump_until([&] { return out.has_value(); });
  return out.value_or(ErrorCode::kTimeout);
}

Status SimWorld::deallocate(NodeId n, const AddressRange& range) {
  std::optional<Status> out;
  node(n).deallocate(range, [&](Status s) { out = s; });
  pump_until([&] { return out.has_value(); });
  return out.value_or(ErrorCode::kTimeout);
}

Result<consistency::LockContext> SimWorld::lock(NodeId n,
                                                const AddressRange& range,
                                                consistency::LockMode mode) {
  std::optional<Result<consistency::LockContext>> out;
  node(n).lock(range, mode, [&](Result<consistency::LockContext> r) {
    out = std::move(r);
  });
  pump_until([&] { return out.has_value(); });
  return out.value_or(
      Result<consistency::LockContext>{ErrorCode::kTimeout});
}

void SimWorld::unlock(NodeId n, const consistency::LockContext& ctx) {
  node(n).unlock(ctx);
  // Drain the release-side protocol traffic this triggered.
  net_.run_for(1);
}

Result<Bytes> SimWorld::read(NodeId n, const consistency::LockContext& ctx,
                             std::uint64_t offset, std::uint64_t len) {
  return node(n).read(ctx, offset, len);
}

Status SimWorld::write(NodeId n, const consistency::LockContext& ctx,
                       std::uint64_t offset,
                       std::span<const std::uint8_t> data) {
  return node(n).write(ctx, offset, data);
}

Result<RegionAttrs> SimWorld::getattr(NodeId n, const GlobalAddress& base) {
  std::optional<Result<RegionAttrs>> out;
  node(n).getattr(base, [&](Result<RegionAttrs> r) { out = std::move(r); });
  pump_until([&] { return out.has_value(); });
  return out.value_or(Result<RegionAttrs>{ErrorCode::kTimeout});
}

Status SimWorld::setattr(NodeId n, const GlobalAddress& base,
                         const RegionAttrs& attrs) {
  std::optional<Status> out;
  node(n).setattr(base, attrs, [&](Status s) { out = s; });
  pump_until([&] { return out.has_value(); });
  return out.value_or(ErrorCode::kTimeout);
}

Result<std::vector<NodeId>> SimWorld::locate(NodeId n,
                                             const GlobalAddress& addr) {
  std::optional<Result<std::vector<NodeId>>> out;
  node(n).locate(addr, [&](Result<std::vector<NodeId>> r) {
    out = std::move(r);
  });
  pump_until([&] { return out.has_value(); });
  return out.value_or(Result<std::vector<NodeId>>{ErrorCode::kTimeout});
}

Status SimWorld::migrate(NodeId n, const GlobalAddress& base,
                         NodeId new_home) {
  std::optional<Status> out;
  node(n).migrate(base, new_home, [&](Status s) { out = s; });
  pump_until([&] { return out.has_value(); });
  return out.value_or(ErrorCode::kTimeout);
}

Status SimWorld::replicate_to(NodeId n, const GlobalAddress& base,
                              NodeId target) {
  std::optional<Status> out;
  node(n).replicate_to(base, target, [&](Status s) { out = s; });
  pump_until([&] { return out.has_value(); });
  return out.value_or(ErrorCode::kTimeout);
}

Result<Node::RemoteStats> SimWorld::scrape(NodeId n, NodeId peer,
                                           std::uint8_t flags) {
  std::optional<Result<Node::RemoteStats>> out;
  node(n).scrape_stats(peer, flags, [&](Result<Node::RemoteStats> r) {
    out = std::move(r);
  });
  pump_until([&] { return out.has_value(); });
  return out.value_or(Result<Node::RemoteStats>{ErrorCode::kTimeout});
}

// ---------------------------------------------------------------------------
// Composites
// ---------------------------------------------------------------------------

Result<GlobalAddress> SimWorld::create_region(NodeId n, std::uint64_t size,
                                              const RegionAttrs& attrs) {
  auto base = reserve(n, size, attrs);
  if (!base) return base;
  const std::uint64_t aligned =
      (size + attrs.page_size - 1) / attrs.page_size * attrs.page_size;
  const Status s = allocate(n, {base.value(), aligned});
  if (!s.ok()) return s.error();
  return base;
}

Status SimWorld::put(NodeId n, const AddressRange& range,
                     std::span<const std::uint8_t> data) {
  auto ctx = lock(n, range, consistency::LockMode::kWrite);
  if (!ctx) return ctx.error();
  const Status s = write(n, ctx.value(), 0, data);
  unlock(n, ctx.value());
  return s;
}

Result<Bytes> SimWorld::get(NodeId n, const AddressRange& range) {
  auto ctx = lock(n, range, consistency::LockMode::kRead);
  if (!ctx) return ctx.error();
  auto r = read(n, ctx.value(), 0, range.size);
  unlock(n, ctx.value());
  return r;
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

std::string SimWorld::trace_json() const {
  std::vector<obs::Span> spans;
  for (const auto& n : nodes_) {
    if (!n) continue;
    auto s = n->tracer().finished_spans();
    spans.insert(spans.end(), std::make_move_iterator(s.begin()),
                 std::make_move_iterator(s.end()));
  }
  return obs::chrome_trace_json(spans);
}

void SimWorld::sync_net_metrics(NodeId n) {
  auto& reg = node(n).metrics();
  const net::NetStats& s = net_.stats();
  reg.counter("net.messages_sent").set(s.messages_sent);
  reg.counter("net.messages_delivered").set(s.messages_delivered);
  reg.counter("net.messages_dropped").set(s.messages_dropped);
  reg.counter("net.messages_duplicated").set(s.messages_duplicated);
  reg.counter("net.bytes_sent").set(s.bytes_sent);
}

std::string SimWorld::metrics_text(NodeId n) {
  sync_net_metrics(n);
  return node(n).metrics().dump_text();
}

std::string SimWorld::metrics_json(NodeId n) {
  sync_net_metrics(n);
  return node(n).metrics().dump_json();
}

std::string SimWorld::cluster_metrics_json() {
  NodeId scraper = kNoNode;
  for (const auto& n : nodes_) {
    if (n) {
      scraper = n->id();
      break;
    }
  }
  if (scraper == kNoNode) return "{\"cluster\":{},\"nodes\":{}}";
  // The simulator counts traffic globally, not per endpoint. Mirror the
  // net.* counters into the scraper node and zero any stale mirror a prior
  // metrics_text/json call left on another node, so the rollup counts the
  // wire exactly once.
  for (const auto& n : nodes_) {
    if (!n) continue;
    if (n->id() == scraper) {
      sync_net_metrics(scraper);
    } else {
      auto& reg = n->metrics();
      reg.counter("net.messages_sent").set(0);
      reg.counter("net.messages_delivered").set(0);
      reg.counter("net.messages_dropped").set(0);
      reg.counter("net.messages_duplicated").set(0);
      reg.counter("net.bytes_sent").set(0);
    }
  }
  obs::MetricsSnapshot cluster;
  std::string nodes_json = "{";
  bool first = true;
  for (const auto& n : nodes_) {
    if (!n) continue;
    auto rs = scrape(scraper, n->id(), 0);
    if (!rs.ok()) continue;
    cluster.merge(rs.value().snapshot);
    if (!first) nodes_json += ',';
    first = false;
    nodes_json += '"' + std::to_string(n->id()) +
                  "\":" + rs.value().snapshot.to_json();
  }
  nodes_json += '}';
  return "{\"cluster\":" + cluster.to_json() + ",\"nodes\":" + nodes_json +
         '}';
}

}  // namespace khz::core
