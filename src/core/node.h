// The Khazana daemon (paper, Sections 2-3).
//
// "the Khazana service is implemented by a dynamically changing set of
// cooperating daemon processes... there is no notion of a 'server' in a
// Khazana system — all Khazana nodes are peers that cooperate to provide
// the illusion of a unified resource."
//
// One Node is one peer. It owns the local storage hierarchy, the per-node
// page and region directories, the consistency managers for every protocol
// in use, the client operation suite (reserve / allocate / lock / read /
// write / attributes), the three-level location lookup of Section 3.2, the
// cluster-manager role when so configured, and the failure-handling
// machinery of Section 3.5 (acquire ops retried then reflected; release ops
// retried in the background until they succeed).
//
// Execution model (docs/architecture.md, threading model): the node's
// region, consistency-manager and page-directory state is partitioned by
// region hash across NodeConfig.lanes single-writer execution lanes. Each
// lane owns its shard exclusively — messages, timers and client entry
// points for a region run on lane_of(region base), so per-region state
// needs no locks. Cross-lane work hops via posted continuations; the
// node-wide metadata plane (homed descriptors, pool, membership, meta
// journal) is guarded by one coarse mutex. lanes = 1 (the default) is the
// legacy single-threaded node, byte for byte. The SimWorld / TcpWorld
// wrappers provide blocking convenience APIs on top.
#pragma once

#include <algorithm>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/lane.h"

#include "common/result.h"
#include "common/rng.h"
#include "consistency/cm.h"
#include "core/address_map.h"
#include "core/admission.h"
#include "core/cluster.h"
#include "core/meta_log.h"
#include "core/lane_set.h"
#include "core/region.h"
#include "core/region_directory.h"
#include "core/resolver.h"
#include "core/rpc_engine.h"
#include "location/fabric.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/hierarchy.h"
#include "storage/page_directory.h"

namespace khz::core {

struct NodeConfig {
  NodeId id = 0;
  /// The node that bootstraps region 0 / the address map and (by default)
  /// acts as the single cluster's manager.
  NodeId genesis = 0;
  NodeId cluster_manager = 0;
  /// "Each cluster has one or more designated cluster managers"
  /// (Section 3.1). When non-empty this overrides cluster_manager; entry 0
  /// is the primary. Every manager accumulates location hints; address
  /// space is partitioned between them (manager k grants chunk numbers
  /// congruent to k mod M) so grants never collide. The address map's
  /// authority remains the genesis node.
  std::vector<NodeId> cluster_managers;
  /// Initial membership (all peers, including self).
  std::vector<NodeId> peers;

  std::size_t ram_pages = 4096;
  /// Empty: diskless node (no persistence). Otherwise the DiskStore root.
  std::filesystem::path disk_dir;
  std::size_t disk_pages = 0;  // 0 = unbounded

  Micros rpc_timeout = 200'000;  // per-exchange timeout before a retry
  int max_retries = 3;           // acquire-side retries before failing back
  /// 0 disables the failure-detector ping loop.
  Micros ping_interval = 0;

  /// Admission control (docs/overload.md): bounded per-op-class request
  /// queues with deadline-sorted shedding and kNack backpressure. A limit
  /// of 0 disables admission for that class; all zero (the default) keeps
  /// the synchronous pre-admission dispatch path.
  std::size_t admission_client_queue = 0;
  std::size_t admission_protocol_queue = 0;
  std::size_t admission_replication_queue = 0;
  /// Paced drain: one admitted message per this many micros of scheduler
  /// time (0 = drain unpaced on the next tick). This is what makes a
  /// simulated node saturate — sim handlers take zero virtual time.
  Micros admission_service_us = 0;

  /// fdatasync the metadata journal on every commit, so acknowledged
  /// metadata survives power loss, not just a process crash. Off by
  /// default: sim tests journal thousands of records and only need
  /// crash-of-the-process durability.
  bool sync_metadata = false;

  /// Segment-store data plane (docs/storage.md). Target size of one
  /// append-only segment file in the DiskStore's page log.
  std::uint64_t segment_bytes = 8ull << 20;
  /// Group commit (amortizes one fdatasync over a batch of page + journal
  /// writes). group_commit_us > 0 arms a timer that commits the pending
  /// batch every tick; group_commit_bytes > 0 additionally commits as soon
  /// as that many segment bytes are pending. Both zero (the default):
  /// every durable write commits inline when sync_metadata is set — the
  /// per-write-fdatasync baseline.
  Micros group_commit_us = 0;
  std::uint64_t group_commit_bytes = 0;
  /// > 0: every interval, checkpoint the metadata journal into a fresh
  /// snapshot and compact cold segments, on the node's timer rail.
  Micros checkpoint_interval = 0;

  /// Telemetry plane (docs/observability.md). Slow-op flight recorder: a
  /// client op is "slow" when its latency exceeds slow_op_threshold_us
  /// (absolute, 0 = off) or slow_op_deadline_fraction of the deadline
  /// budget it started with (0 = off). Either trigger cuts a dossier into
  /// the bounded dossier ring.
  Micros slow_op_threshold_us = 0;
  double slow_op_deadline_fraction = 0.0;
  std::size_t flight_recorder_capacity = 32;
  /// Self-sampler: every interval the node diffs its registry against the
  /// previous sample and appends the delta to the time-series ring
  /// (0 = sampler off).
  Micros stats_sample_interval = 0;
  std::size_t stats_series_capacity = 64;

  /// Location fabric (docs/location.md). Manager-to-manager hint
  /// anti-entropy period (0 = off: hints spread only via client misses,
  /// the pre-fabric behaviour).
  Micros hint_sync_interval = 0;
  /// Proactive descriptor refresh: sweep period (0 = off), the descriptor
  /// age that makes a hot region worth re-fetching (0 = any age), and the
  /// per-sweep access count that makes a region "hot".
  Micros refresh_interval = 0;
  Micros refresh_age_us = 0;
  std::uint32_t refresh_hot_accesses = 4;
  /// Free-space offers older than this are ignored by pool placement
  /// (0 = offers never expire — the legacy behaviour).
  Micros free_space_ttl = 0;
  /// Genesis only: run an address-map rebalance pass (split pages above
  /// half occupancy) every this many map mutations (0 = never).
  std::uint32_t map_rebalance_every = 0;

  /// Checkpoint-tick compaction budget: at most this many pages rewritten
  /// per segment-compaction pass (0 = unbounded, the legacy full sweep).
  std::size_t compaction_pages_per_tick = 0;

  std::uint64_t seed = 42;
  std::uint32_t principal = 0;  // identity for ACL checks

  /// Parallel execution lanes (docs/architecture.md, threading model).
  /// Region/CM/page-directory state is partitioned by region hash across
  /// this many single-writer lanes; the transport runs one executor per
  /// lane (under the simulator the lanes are logical tags on one event
  /// thread). Clamped to [1, kMaxLanes]. 1 = the legacy single-threaded
  /// node, byte for byte.
  unsigned lanes = 1;
};

/// Per-node operation counters (observability for tests and benches).
/// Since the obs::MetricsRegistry migration this is a *snapshot* struct:
/// Node::stats() synthesizes it from the node's registry counters, so the
/// legacy field-by-field consumers keep working while new code reads the
/// registry (which also carries latency histograms).
struct NodeStats {
  std::uint64_t reserves = 0;
  std::uint64_t locks_granted = 0;
  std::uint64_t locks_failed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t resolve_cache_hits = 0;   // region-directory hit
  std::uint64_t resolve_manager_hits = 0; // cluster-manager hint hit
  std::uint64_t resolve_map_walks = 0;    // address-map tree walks
  std::uint64_t resolve_cluster_walks = 0;
  std::uint64_t replica_pushes = 0;
  std::uint64_t background_retries = 0;
};

class Node final : public consistency::CmHost,
                   public RpcEngine::Host,
                   public location::Fabric::Host,
                   public AdmissionController::Host {
 public:
  Node(NodeConfig config, net::Transport& transport);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Bootstraps the node: the genesis node formats (or recovers) the
  /// address map; all nodes recover persistent state from disk and start
  /// background loops.
  void start();

  /// Tears down background machinery: cancels the failure-detector timer
  /// and every pending RPC / reliable-send timer in the engine, so a node
  /// with in-flight RPCs can be destroyed while its transport lives on.
  /// Idempotent; also called by the destructor.
  void stop();

  // --- client operations (asynchronous; callbacks fire in node context) --
  using StatusCb = std::function<void(Status)>;
  using ReserveCb = std::function<void(Result<GlobalAddress>)>;
  using LockCb = std::function<void(Result<consistency::LockContext>)>;
  using AttrCb = std::function<void(Result<RegionAttrs>)>;
  using LocateCb = std::function<void(Result<std::vector<NodeId>>)>;

  /// Reserves `size` bytes of global address space as a new region homed
  /// on this node (Section 2: reserve/unreserve).
  void reserve(std::uint64_t size, const RegionAttrs& attrs, ReserveCb cb);

  /// Releases a reservation. Release-type: always accepted; remote errors
  /// are retried in the background (Section 3.5).
  void unreserve(const GlobalAddress& base, StatusCb cb);

  /// Allocates backing storage for (part of) a reserved region.
  void allocate(const AddressRange& range, StatusCb cb);

  /// Frees backing storage. Release-type.
  void deallocate(const AddressRange& range, StatusCb cb);

  /// Locks [range) in `mode`; returns a lock context on success. The
  /// consistency protocol of the enclosing region decides when the grant
  /// is safe (Section 3.3).
  void lock(const AddressRange& range, consistency::LockMode mode,
            LockCb cb);

  /// Releases a lock context. Local effects are immediate; propagation is
  /// the protocol's business (and is retried in the background on
  /// failure).
  void unlock(const consistency::LockContext& ctx);

  /// Reads from the locked range. Synchronous: locked pages are resident
  /// and pinned.
  [[nodiscard]] Result<Bytes> read(const consistency::LockContext& ctx,
                                   std::uint64_t offset, std::uint64_t len);

  /// Writes into the locked range (requires a write-mode context).
  Status write(const consistency::LockContext& ctx, std::uint64_t offset,
               std::span<const std::uint8_t> data);

  void getattr(const GlobalAddress& base, AttrCb cb);
  void setattr(const GlobalAddress& base, const RegionAttrs& attrs,
               StatusCb cb);

  /// Where is this datum? Returns the nodes holding copies (home +
  /// sharers), for clients that explicitly query location (Section 2:
  /// replicate-vs-RPC decisions in the object runtime).
  void locate(const GlobalAddress& addr, LocateCb cb);

  /// Moves a region's home (directory authority, descriptor and resident
  /// page copies) to `new_home`. Stale descriptors elsewhere recover via
  /// the normal bounce + re-resolve path ("regions do not migrate home
  /// nodes often, so the cached value is most likely accurate",
  /// Section 3.2). The region's address never changes.
  void migrate(const GlobalAddress& base, NodeId new_home, StatusCb cb);

  /// Client guidance hook ("Khazana is responsive to guidance from its
  /// clients", Section 1; "Flexibility: Khazana must provide 'hooks'",
  /// Section 2): asks the region's home to push current copies of the
  /// region's pages onto `target`, e.g. ahead of a workload shift. The
  /// copies join the page copysets like any replica.
  void replicate_to(const GlobalAddress& base, NodeId target, StatusCb cb);

  /// Gracefully departs the system ("Machines can dynamically enter and
  /// leave Khazana and contribute/reclaim local resources", Section 3):
  /// every region homed here migrates to a surviving peer (round-robin),
  /// hints are retracted, and peers drop this node from membership. The
  /// genesis node cannot leave (it is the map's authority — a limitation
  /// the paper's single-cluster prototype shares).
  void leave(StatusCb cb);

  // --- telemetry scraping (docs/observability.md) -----------------------
  /// kStatsReq flag bits: which optional sections the responder appends
  /// after the registry snapshot (the snapshot itself always ships).
  static constexpr std::uint8_t kScrapeSeries = 1u << 0;
  static constexpr std::uint8_t kScrapeDossiers = 1u << 1;

  /// A peer's telemetry as decoded from one kStatsResp.
  struct RemoteStats {
    NodeId node = kNoNode;
    /// The responder's clock when the snapshot was cut.
    Micros at = 0;
    obs::MetricsSnapshot snapshot;
    std::vector<obs::MetricsSample> series;      // kScrapeSeries
    std::uint64_t series_dropped = 0;            // kScrapeSeries
    std::vector<obs::OpDossier> dossiers;        // kScrapeDossiers
    std::uint64_t dossiers_dropped = 0;          // kScrapeDossiers
  };
  using ScrapeCb = std::function<void(Result<RemoteStats>)>;

  /// Fetches `peer`'s full registry (plus the sections in `flags`) over
  /// the wire. Works against self too (the request loops through the
  /// scheduler like any self-send). Issued untraced on purpose — scraping
  /// must not pollute the span rings it exports.
  void scrape_stats(NodeId peer, std::uint8_t flags, ScrapeCb cb);

  /// Decodes a kStatsResp payload. Returns kOk and fills `out` on success,
  /// the carried error status if the responder reported one, kCorrupt if
  /// the payload fails to parse. Static so external scrapers (khz_stats)
  /// that are not Nodes share the one wire-format reader.
  static ErrorCode decode_stats_payload(Decoder& d, RemoteStats& out);

  // --- introspection ----------------------------------------------------
  /// This node's id (stable for the node's lifetime; reused on restart).
  [[nodiscard]] NodeId id() const { return config_.id; }
  /// The configuration the node was constructed with, verbatim.
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  /// Snapshot of the legacy counter block, synthesized from metrics().
  [[nodiscard]] NodeStats stats() const;
  /// Causal span recorder for this node (spans export via the worlds'
  /// trace_json helpers).
  [[nodiscard]] obs::Tracer& tracer() override { return tracer_; }
  /// The calling lane's RPC substrate (retries, deadlines, backoff).
  /// Exposed so tests and advanced clients can issue deadline-scoped calls
  /// directly; external threads (no lane context) see lane 0's engine.
  [[nodiscard]] RpcEngine& rpc_engine() { return engine_(); }
  /// The calling lane's admission queues (bounded, deadline-shedding).
  /// Tests and benches inspect depths; configuration comes from NodeConfig.
  [[nodiscard]] AdmissionController& admission() { return admission_(); }
  /// The calling lane's two-level (RAM over disk) local page store.
  [[nodiscard]] storage::StorageHierarchy& storage() { return storage_(); }
  /// The calling lane's page metadata: sharers, owner, dirty, lock holds.
  [[nodiscard]] storage::PageDirectory& page_directory() { return pages_(); }
  /// Lane count this node actually runs with (config clamped).
  [[nodiscard]] unsigned lanes() const { return lanes_; }
  /// The location fabric: resolver, caches, hint anti-entropy and the
  /// proactive-refresh pass behind one facade (docs/location.md).
  [[nodiscard]] location::Fabric& fabric() { return *fabric_; }
  /// LRU cache of recently used region descriptors (location level 1).
  [[nodiscard]] RegionDirectory& region_directory() { return regions_; }
  /// Current cluster membership as this node believes it (includes self).
  /// By value: membership mutates on lane 0 while any lane may ask.
  [[nodiscard]] std::set<NodeId> members() const {
    std::lock_guard lk(state_mu_);
    return members_;
  }
  /// All cluster managers, primary first.
  [[nodiscard]] std::vector<NodeId> managers() const override {
    if (!config_.cluster_managers.empty()) return config_.cluster_managers;
    return {config_.cluster_manager};
  }
  /// True when this node serves the cluster-manager role.
  [[nodiscard]] bool is_manager() const override {
    const auto ms = managers();
    return std::find(ms.begin(), ms.end(), config_.id) != ms.end();
  }
  /// Manager-side address map (null elsewhere). Tests/benches inspect it.
  [[nodiscard]] AddressMap* address_map() { return map_.get(); }
  /// Liveness view (up/down verdicts) maintained by the failure detector.
  [[nodiscard]] ClusterState& cluster_state() { return cluster_; }
  /// Slow-op dossier ring (docs/observability.md); bounded, drop-counted.
  [[nodiscard]] obs::FlightRecorder& flight_recorder() { return flight_; }
  /// Self-sampled metric-delta time series (empty unless
  /// stats_sample_interval > 0).
  [[nodiscard]] obs::TimeSeriesRing& stats_series() { return series_; }

  /// Pending background (release-side) retry operations, across all lanes.
  [[nodiscard]] std::size_t background_queue_depth() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->reliable_queue_depth();
    return n;
  }

  // --- application-layer messaging (distributed object runtime) ---------
  using AppRespHandler = std::function<void(bool ok, Decoder& d)>;
  /// Handler for kObjInvokeReq messages (installed by obj::ObjectRuntime).
  void set_obj_invoke_handler(
      std::function<void(const net::Message&)> handler) {
    obj_handler_ = std::move(handler);
  }
  /// RPC / response plumbing exposed to the object runtime.
  void app_rpc(NodeId dst, net::MsgType type, Bytes payload,
               AppRespHandler handler);
  void app_respond(const net::Message& req, net::MsgType type, Bytes payload);

  // --- CmHost -----------------------------------------------------------
  [[nodiscard]] NodeId self() const override { return config_.id; }
  void send_cm(NodeId peer, consistency::ProtocolId protocol,
               const GlobalAddress& page, Bytes payload) override;
  void send_page_batch(NodeId peer, consistency::ProtocolId protocol,
                       bool request, Bytes payload,
                       std::uint64_t route_key) override;
  [[nodiscard]] std::uint64_t route_key_of(const GlobalAddress& page) override;
  storage::PageInfo& page_info(const GlobalAddress& page) override;
  const Bytes* page_data(const GlobalAddress& page) override;
  void store_page(const GlobalAddress& page, Bytes data) override;
  void drop_page(const GlobalAddress& page) override;
  [[nodiscard]] NodeId home_of(const GlobalAddress& page) override;
  [[nodiscard]] bool is_home(const GlobalAddress& page) override;
  [[nodiscard]] std::vector<NodeId> alternate_homes(
      const GlobalAddress& page) override;
  [[nodiscard]] std::uint32_t page_size_of(const GlobalAddress& page) override;
  [[nodiscard]] std::uint32_t min_replicas_of(
      const GlobalAddress& page) override;
  std::vector<NodeId> membership() override;
  [[nodiscard]] bool write_gated(const GlobalAddress& page) override;
  void note_copyset_change(const GlobalAddress& page) override;
  [[nodiscard]] Micros now() const override;
  std::uint64_t schedule(Micros delay, std::function<void()> fn) override;
  void cancel(std::uint64_t timer_id) override;
  [[nodiscard]] Rng& rng() override { return rngs_[lane()]; }
  [[nodiscard]] Micros rpc_timeout() const override {
    return config_.rpc_timeout;
  }
  [[nodiscard]] int max_retries() const override {
    return config_.max_retries;
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() override { return metrics_; }
  /// Failure-detector verdict, shared by the RPC engine (down-node
  /// short-circuit) and the consistency protocols (request steering).
  [[nodiscard]] bool is_down(NodeId node) override {
    std::lock_guard lk(state_mu_);
    return down_nodes_.contains(node);
  }
  /// Protocol retries share the engine's capped jittered backoff policy.
  [[nodiscard]] Micros retry_backoff(int attempt) override {
    return engine_().backoff(attempt);
  }

  // --- AdmissionController::Host (now/schedule/cancel shared with CmHost)
  void dispatch(const net::Message& m) override;
  void nack(const net::Message& m) override;

  // --- location::Fabric::Host -------------------------------------------
  [[nodiscard]] NodeId genesis() const override { return config_.genesis; }
  [[nodiscard]] std::optional<RegionDescriptor> homed_descriptor(
      const GlobalAddress& addr) override;
  /// One location-plane RPC, backed by the calling lane's engine (the
  /// fabric's CallSpec maps onto the engine's attempt/steer policy).
  void call(std::vector<NodeId> candidates, net::MsgType type, Bytes payload,
            location::Resolver::Host::CallHandler handler,
            location::Resolver::Host::CallSpec spec) override;

 private:
  // -- map page store over region-0 pages (manager side) ------------------
  class LocalMapStore final : public MapPageStore {
   public:
    explicit LocalMapStore(Node& node) : node_(node) {}
    [[nodiscard]] Bytes read_page(std::uint32_t index) override;
    void write_page(std::uint32_t index, const Bytes& data) override;
    [[nodiscard]] std::uint32_t page_size() const override {
      return kDefaultPageSize;
    }

   private:
    Node& node_;
  };

  using RespHandler = std::function<void(bool ok, Decoder& d)>;

  // Messaging.
  void on_message(net::Message msg);
  /// Deadline scope + rx-span bracketing around handle_request; requests
  /// reach it either synchronously from on_message or deferred through the
  /// admission queues.
  void dispatch_request(const net::Message& msg);
  void handle_request(const net::Message& msg);
  /// Routes a fully-built message: self-sends loop back through the
  /// scheduler (handlers are never re-entered), everything else goes to
  /// the transport. Does not touch the trace fields.
  void route(net::Message m) override;
  /// Stamps the message with the tracer's current context, then route().
  void send_msg(net::Message m);
  /// Single-attempt RPC (probes, joins, walk fan-outs). Retrying callers
  /// use engine_.call() directly with a candidate list.
  void rpc(NodeId dst, net::MsgType type, Bytes payload, RespHandler handler);
  void respond(const net::Message& req, net::MsgType type, Bytes payload);

  // Request handlers (by message type).
  void on_reserve_req(const net::Message& m);
  void on_unreserve_req(const net::Message& m);
  void on_space_req(const net::Message& m);
  void on_map_mutate_req(const net::Message& m);
  void on_desc_lookup_req(const net::Message& m);
  void on_hint_query_req(const net::Message& m);
  void on_hint_publish(const net::Message& m);
  void on_hint_sync_req(const net::Message& m);
  void on_cluster_walk_req(const net::Message& m);
  void on_alloc_req(const net::Message& m);
  void on_free_req(const net::Message& m);
  void on_attr_req(const net::Message& m, bool set);
  void on_locate_req(const net::Message& m);
  void on_replica_push(const net::Message& m);
  void on_replica_drop(const net::Message& m);
  void on_join_req(const net::Message& m);
  void on_migrate_req(const net::Message& m);
  void on_migrate_data(const net::Message& m);
  void on_replicate_to_req(const net::Message& m);

  // Map page access for the Resolver's tree walk (readers replicate map
  // pages via the release protocol).
  void fetch_map_page(std::uint32_t index,
                      std::function<void(Result<Bytes>)> cb) override;

  // Local reservation machinery.
  /// Publishes (or retracts) a location hint for `range` held by this node
  /// to every cluster manager, piggybacking the current pool size.
  void publish_hint(const AddressRange& range, bool retract);
  [[nodiscard]] std::optional<GlobalAddress> carve_from_pool(
      std::uint64_t size);
  void finish_reserve(const AddressRange& range, const RegionAttrs& attrs,
                      ReserveCb cb);
  [[nodiscard]] std::uint64_t pool_bytes() const;

  // Lock machinery. Acquisition is two-phase: a windowed prefetch fan-out
  // warms every page (parallel remote rounds, no holds taken), then holds
  // are taken in strict ascending address order (deadlock avoidance).
  void start_lock_op(const RegionDescriptor& desc, const AddressRange& range,
                     consistency::LockMode mode, LockCb cb);
  void lock_prefetch_pump(const std::shared_ptr<struct LockOp>& op);
  void lock_next_page(std::shared_ptr<struct LockOp> op);
  [[nodiscard]] consistency::ConsistencyManager* cm_for(
      consistency::ProtocolId protocol);

  // Storage integration.
  bool evict_hook(const GlobalAddress& page, const Bytes& data);
  void materialize_region_pages(const RegionDescriptor& desc,
                                const AddressRange& range);
  void release_region_pages(const RegionDescriptor& desc,
                            const AddressRange& range);

  // Replica maintenance (Section 3.5: minimum primary replicas).
  void maintain_replicas(const GlobalAddress& page);

  // Failure detection.
  void ping_tick();
  void mark_node_down(NodeId node);
  void mark_node_up(NodeId node);

  // Telemetry plane (docs/observability.md).
  void on_stats_req(const net::Message& m);
  /// Self-sampler tick: diffs the registry against the previous sample and
  /// appends the delta to the time-series ring.
  void sample_tick();
  /// Captured at client-op start; compared at completion to decide whether
  /// the op was slow enough to deserve a dossier. attempts0/steered0 are the
  /// engine's cumulative counters at t0, so the dossier carries per-op
  /// deltas (single-threaded node: no other op mutates them mid-flight).
  struct OpWatch {
    Micros t0 = 0;
    std::uint64_t deadline = 0;
    std::uint64_t attempts0 = 0;
    std::uint64_t steered0 = 0;
  };
  [[nodiscard]] OpWatch watch_op();
  /// Cuts a dossier into the flight recorder when the op crossed either
  /// slow-op trigger. Must run after the op's root span ends (the dossier
  /// harvests the span tree from the trace ring by trace_id).
  void maybe_record_slow_op(const char* op, const OpWatch& w,
                            std::uint64_t trace_id);

  // Home fail-over (docs/recovery.md): when the failure detector declares
  // a region's home dead, the surviving copy-set member with the highest
  // node id promotes itself to home, re-registers hints/map entries, and
  // re-replicates to min_replicas before accepting new writes.
  void maybe_promote_regions(NodeId dead);
  void promote_region(RegionDescriptor desc, NodeId dead);

  // Persistence of node metadata across restarts lives in MetaLog; the
  // node supplies the snapshot (for compaction) and installs what
  // recover() returns.
  [[nodiscard]] MetaLog::Snapshot snapshot_state();
  void recover_meta();
  /// Journals the page's current directory version (write-through pages)
  /// and runs the disk store's group-commit policy point.
  void journal_page(const GlobalAddress& page);

  // Segment-store data plane (docs/storage.md); all in node_meta.cc.
  /// Applies the NodeConfig durability knobs to the shared DiskStore
  /// (sync-on-commit, group commit, metric binding). Constructor-time.
  void configure_disk();
  /// Arms the group-commit and checkpoint timers per config (start()).
  void start_storage_timers();
  /// Cancels them and drains any pending commit (stop()).
  void stop_storage_timers();
  /// Group-commit timer tick: commits the pending batch, re-arms.
  void commit_tick();
  /// Checkpoint timer tick: snapshots + truncates the metadata journal and
  /// compacts cold segments, then re-arms.
  void checkpoint_tick();

  // --- lane plumbing (docs/architecture.md, threading model) ------------
  /// Clamped calling-lane index. External threads (no lane context) and
  /// single-lane nodes resolve to lane 0.
  [[nodiscard]] unsigned lane() const {
    const unsigned l = current_lane();
    return l < lanes_ ? l : 0;
  }
  // The calling lane's shard of each partitioned subsystem. Named with the
  // trailing underscore of the members they replaced so call sites read
  // unchanged (engine_() where engine_ once stood).
  [[nodiscard]] RpcEngine& engine_() { return *engines_[lane()]; }
  [[nodiscard]] AdmissionController& admission_() {
    return *admissions_[lane()];
  }
  [[nodiscard]] storage::StorageHierarchy& storage_() {
    return *storages_[lane()];
  }
  [[nodiscard]] storage::PageDirectory& pages_() { return *pages_v_[lane()]; }
  [[nodiscard]] auto& cms_() { return cms_v_[lane()]; }
  [[nodiscard]] auto& active_locks_() { return active_locks_v_[lane()]; }

  /// Node-count-independent lane routing key for the region based at
  /// `base`: 0 for the map region (control plane, lane 0), else a stable
  /// hash of the base address. Every node hashes the same key against its
  /// own lane count, so sender and receiver lane counts need not match.
  [[nodiscard]] static std::uint64_t region_key(const GlobalAddress& base) {
    if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(base)) return 0;
    return std::hash<GlobalAddress>{}(base);
  }
  /// The lane owning the region based at `base` on THIS node.
  [[nodiscard]] unsigned region_lane(const GlobalAddress& base) const {
    return lane_of(region_key(base), lanes_);
  }
  /// The lane that granted lock `ctx` — lock ids are lane-strided, so the
  /// residue mod lanes_ recovers the owner.
  [[nodiscard]] unsigned lock_lane(const consistency::LockContext& ctx) const {
    return lanes_ <= 1 ? 0u : static_cast<unsigned>(ctx.id % lanes_);
  }

  /// Posts `fn` onto `lane`'s executor, feeding the lane.depth.* gauges
  /// and the lane.dispatch_us queueing histogram. Every cross-lane hop in
  /// the node funnels through here.
  void post_to_lane(unsigned lane, std::function<void()> fn);
  /// Posts `fn` onto the lane owning region `base`, carrying the caller's
  /// ambient deadline and trace context across the hop (they re-open inside
  /// the target lane's engine/tracer). Runs inline when already there.
  void run_on_region_lane(const GlobalAddress& base, std::function<void()> fn);
  /// Re-posts a decoded request onto the lane owning the region homed at
  /// `addr`. True = message re-posted, the caller must return immediately;
  /// false = already on the owning lane (or the region is not homed here,
  /// a pure-metadata miss path any lane may serve).
  bool hop_home(const net::Message& m, const GlobalAddress& addr);

  NodeConfig config_;
  net::Transport& transport_;
  /// Lane count this node actually runs with (config_.lanes clamped to
  /// [1, kMaxLanes]).
  unsigned lanes_ = 1;
  /// Per-lane deterministic RNGs (lane 0 seeds exactly like the legacy
  /// single-lane node).
  std::vector<Rng> rngs_;

  /// One DiskStore shared by every lane's hierarchy: pages are
  /// lane-partitioned so lanes never contend on a page; the store's
  /// occupancy counter synchronizes internally. Null = diskless.
  std::shared_ptr<storage::DiskStore> disk_;
  std::vector<std::unique_ptr<storage::StorageHierarchy>> storages_;
  std::vector<std::unique_ptr<storage::PageDirectory>> pages_v_;

  /// Coarse metadata-plane lock: guards homed_regions_, pool_,
  /// granted_bytes_, members_, down_nodes_, missed_pongs_,
  /// recovering_regions_, journaled_pages_ and every meta_ record/
  /// checkpoint call. Recursive because checkpoint() pulls
  /// snapshot_state() re-entrantly from under a record_* call. The data
  /// plane (page contents, CM state, per-lane directories) never takes
  /// it — that is what the lanes exist to avoid.
  mutable std::recursive_mutex state_mu_;

  /// Regions homed on this node: authoritative descriptors.
  std::map<GlobalAddress, RegionDescriptor> homed_regions_;
  /// Locally reserved-but-unused address space pool (Section 3.1).
  std::vector<AddressRange> pool_;
  /// Manager only: bytes granted so far out of this manager's private
  /// slab of the global space (manager k owns a disjoint slab, so
  /// concurrent managers never hand out overlapping chunks).
  std::uint64_t granted_bytes_ = 0;
  /// Mirror of every locally-journaled page version, maintained beside the
  /// per-lane page directories so snapshot_state() (metadata plane) never
  /// walks another lane's shard.
  std::map<GlobalAddress, Version> journaled_pages_;

  std::unique_ptr<LocalMapStore> map_store_;
  std::unique_ptr<AddressMap> map_;
  /// Genesis only: map mutations since start, driving the periodic
  /// rebalance pass (config_.map_rebalance_every). Lane 0 only.
  std::uint32_t map_mutations_ = 0;

  /// Per-lane consistency managers: lane L's CMs only ever see pages whose
  /// region hashes to L (the address map's release CM lives on lane 0).
  std::vector<std::map<consistency::ProtocolId,
                       std::unique_ptr<consistency::ConsistencyManager>>>
      cms_v_;

  // Active lock contexts.
  struct ActiveLock {
    consistency::LockContext ctx;
    consistency::ProtocolId protocol;
    std::vector<GlobalAddress> pages;
    std::set<GlobalAddress> dirty;
    std::uint32_t page_size = kDefaultPageSize;
  };
  /// Per-lane lock tables; ids are lane-strided (id % lanes = owning lane)
  /// so unlock/read/write route home from the context alone.
  std::vector<std::unordered_map<std::uint64_t, ActiveLock>> active_locks_v_;
  std::vector<std::uint64_t> next_lock_ids_;

  std::set<NodeId> members_;
  std::set<NodeId> down_nodes_;
  std::map<NodeId, int> missed_pongs_;
  /// Region bases this node promoted itself to home of and whose
  /// min-replica guarantee is still being rebuilt; write grants are gated
  /// (write_gated) until the copyset recovers.
  std::set<GlobalAddress> recovering_regions_;
  std::function<void(const net::Message&)> obj_handler_;

  // Observability. `ins_` pre-binds the hot-path instruments so counting
  // never takes the registry's name-lookup mutex.
  obs::MetricsRegistry metrics_;
  /// Per-lane depth gauges + dispatch histogram fed by post_to_lane.
  LaneStats lane_stats_;
  obs::Tracer tracer_;
  /// Telemetry plane (docs/observability.md): slow-op dossier ring and the
  /// self-sampled metric-delta time series, both exported through the
  /// kStatsReq scrape path.
  obs::FlightRecorder flight_;
  obs::TimeSeriesRing series_;
  /// Registry snapshot at the previous sampler tick (delta baseline).
  obs::MetricsSnapshot last_sample_;

  /// The location fabric: region-directory cache, cluster hint state, the
  /// resolver, and the anti-entropy / proactive-refresh loops behind one
  /// facade; the node is its Host. Declared after metrics_ (instruments
  /// bind at construction). regions_/cluster_ alias its internals so the
  /// pre-fabric call sites read unchanged.
  std::unique_ptr<location::Fabric> fabric_;
  RegionDirectory& regions_;
  ClusterState& cluster_;

  /// RPC substrate + the subsystems split out of the old god object, one
  /// shard per lane. All see the node only through narrow host interfaces.
  /// Declared after metrics_ (their instruments bind at construction);
  /// engines mint lane-strided rpc ids so responses route by id % lanes.
  std::vector<std::unique_ptr<RpcEngine>> engines_;
  /// Bound to lane 0's hierarchy (all journal I/O funnels through the
  /// shared DiskStore); every record_*/checkpoint call holds state_mu_.
  MetaLog meta_;
  std::vector<std::unique_ptr<AdmissionController>> admissions_;
  /// Failure-detector loop timer; cancelled by stop().
  std::uint64_t ping_timer_ = 0;
  /// Self-sampler loop timer; cancelled by stop().
  std::uint64_t sample_timer_ = 0;
  /// Group-commit drain timer (config_.group_commit_us); cancelled by
  /// stop(), which also commits whatever is still pending.
  std::uint64_t commit_timer_ = 0;
  /// Checkpoint/compaction timer (config_.checkpoint_interval); cancelled
  /// by stop().
  std::uint64_t checkpoint_timer_ = 0;

  struct Instruments {
    obs::Counter* reserves = nullptr;
    obs::Counter* locks_granted = nullptr;
    obs::Counter* locks_failed = nullptr;
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* resolve_cache_hits = nullptr;
    obs::Counter* resolve_manager_hits = nullptr;
    obs::Counter* resolve_map_walks = nullptr;
    obs::Counter* resolve_cluster_walks = nullptr;
    obs::Counter* replica_pushes = nullptr;
    obs::Counter* background_retries = nullptr;
    /// Server-side drops of expired work (rpc.deadline_expired.server);
    /// the engine counts client-side expiries separately under
    /// rpc.deadline_expired.client, so shed-rate attribution works.
    obs::Counter* deadline_expired = nullptr;
    obs::Histogram* reserve_us = nullptr;
    obs::Histogram* lock_read_us = nullptr;
    obs::Histogram* lock_write_us = nullptr;
    obs::Histogram* lock_write_shared_us = nullptr;
    obs::Histogram* read_us = nullptr;
    obs::Histogram* write_us = nullptr;
    obs::Histogram* resolve_region_dir_us = nullptr;
    obs::Histogram* resolve_manager_hint_us = nullptr;
    obs::Histogram* resolve_map_walk_us = nullptr;
    obs::Histogram* resolve_cluster_walk_us = nullptr;
    /// Pages per multi-page lock op, and the prefetch window's occupancy
    /// sampled at each issue (how much of the pipeline is actually used).
    obs::Histogram* lock_pages = nullptr;
    obs::Histogram* lock_window = nullptr;
    /// Telemetry plane.
    obs::Counter* scrapes_served = nullptr;
    obs::Counter* samples = nullptr;
    obs::Counter* slow_ops = nullptr;
    /// The engine's own rpc.attempts / rpc.steered instruments (same
    /// Counter objects via registry name lookup); read by the slow-op
    /// watch to attribute per-op retry/steer deltas.
    obs::Counter* rpc_attempts = nullptr;
    obs::Counter* rpc_steered = nullptr;
    obs::Histogram* getattr_us = nullptr;
  } ins_;
  [[nodiscard]] obs::Histogram* lock_hist(consistency::LockMode mode);

  bool started_ = false;
};

}  // namespace khz::core
