// Storage-tier integration for core::Node: the eviction hook that runs
// the consistency protocol before a page leaves the local hierarchy,
// page materialization/release for homed regions, and the LocalMapStore
// bridge that keeps the address-map tree's pages in region 0 of this
// very store. Split out of node.cc so each core TU stays one subsystem.
#include <cassert>

#include "core/node.h"

namespace khz::core {

using consistency::LockMode;
using consistency::ProtocolId;
using net::Message;
using net::MsgType;
using storage::PageState;

// ---------------------------------------------------------------------------
// Storage integration
// ---------------------------------------------------------------------------

bool Node::evict_hook(const GlobalAddress& page, const Bytes& data) {
  (void)data;
  // "it must invoke the consistency protocol associated with the page to
  // update the list of sharers, push any dirty data to remote nodes"
  // (Section 3.4).
  auto* info = pages_().find(page);
  if (info == nullptr) return true;  // untracked page: free to drop
  // Map region pages use the release protocol.
  ProtocolId protocol = ProtocolId::kRelease;
  if (!AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) {
    auto desc = regions_.lookup(page);
    if (!desc) desc = homed_descriptor(page);
    if (desc) protocol = desc->attrs.protocol;
  }
  auto* cm = cm_for(protocol);
  if (cm == nullptr) return true;
  const bool allowed = cm->on_evict(page);
  if (allowed) pages_().erase(page);
  return allowed;
}

void Node::materialize_region_pages(const RegionDescriptor& desc,
                                    const AddressRange& range) {
  const std::uint32_t psz = desc.attrs.page_size;
  for (GlobalAddress p = range.base.page_floor(psz); p < range.end();
       p = p.plus(psz)) {
    auto& info = pages_().ensure(p);
    info.homed_locally = true;
    info.home = config_.id;
    if (storage_().get(p) == nullptr) {
      info.owner = config_.id;
      info.state = PageState::kShared;
      info.sharers.insert(config_.id);
      store_page(p, Bytes(psz, 0));
    }
    if (desc.attrs.min_replicas > 1) maintain_replicas(p);
  }
}

void Node::release_region_pages(const RegionDescriptor& desc,
                                const AddressRange& range) {
  const std::uint32_t psz = desc.attrs.page_size;
  const std::uint64_t key = region_key(desc.range.base);
  for (GlobalAddress p = range.base.page_floor(psz); p < range.end();
       p = p.plus(psz)) {
    if (auto* info = pages_().find(p)) {
      for (NodeId sharer : info->sharers) {
        if (sharer == config_.id) continue;
        Message m;
        m.type = MsgType::kReplicaDrop;
        m.dst = sharer;
        m.route_key = key;
        Encoder e;
        e.addr(p);
        m.payload = std::move(e).take();
        send_msg(std::move(m));
      }
    }
    storage_().erase(p);
    pages_().erase(p);
  }
  std::lock_guard lk(state_mu_);
  for (GlobalAddress p = range.base.page_floor(psz); p < range.end();
       p = p.plus(psz)) {
    journaled_pages_.erase(p);
  }
}

// ---------------------------------------------------------------------------
// LocalMapStore: address-map pages live in region 0 of this very store
// ---------------------------------------------------------------------------

Bytes Node::LocalMapStore::read_page(std::uint32_t index) {
  const GlobalAddress addr = kMapRegionBase.plus(
      static_cast<std::uint64_t>(index) * kDefaultPageSize);
  if (const Bytes* data = node_.storage_().get(addr)) return *data;
  return Bytes(kDefaultPageSize, 0);
}

void Node::LocalMapStore::write_page(std::uint32_t index, const Bytes& data) {
  const GlobalAddress addr = kMapRegionBase.plus(
      static_cast<std::uint64_t>(index) * kDefaultPageSize);
  auto* cm = node_.cm_for(ProtocolId::kRelease);
  // At the map's home node the release protocol grants synchronously.
  bool granted = false;
  cm->acquire(addr, LockMode::kWrite, [&granted](Status s) {
    granted = s.ok();
  });
  assert(granted);
  auto& info = node_.pages_().ensure(addr);
  info.homed_locally = true;
  info.home = node_.config_.id;
  if (info.owner == kNoNode) info.owner = node_.config_.id;
  node_.store_page(addr, data);
  cm->release(addr, LockMode::kWrite, /*dirty=*/true);
}


}  // namespace khz::core
