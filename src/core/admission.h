// Deadline-aware admission control for a node's request plane.
//
// Khazana's motivating deployments (web-cache-style services, Section 1)
// put one daemon in front of many independent clients, so a node must
// survive offered load past its service capacity. Without admission
// control every arriving request is handled in arrival order: queues grow
// without bound, every queued request eventually blows its deadline, and
// goodput collapses to zero exactly when the system is busiest. This
// controller gives the request plane the classic overload shape instead:
//
//   - arriving work is classified into three bounded queues — protocol
//     rounds (CM traffic, page fetches: drives forward progress of grants
//     other nodes are waiting on), client ops (rpc_id-bearing requests),
//     and replication (copyset maintenance pushes, the FunnelKVS-style
//     write-behind class that must never sit on the admission-critical
//     path);
//   - the client queue dispatches earliest-deadline-first and sheds
//     latest-deadline-first when full, so the requests most likely to
//     still matter are the ones that get served;
//   - shedding an rpc_id-bearing request sends a kNack backpressure reply
//     (payload: u8 ErrorCode::kOverloaded) so the caller's engine backs
//     off immediately instead of waiting out an attempt timeout;
//   - protocol messages keep FIFO order within their class (the CREW
//     protocols are ordering-sensitive) and overflow drops the newest
//     arrival — the per-page protocol timers recover, exactly like a lost
//     message;
//   - replication overflow drops oldest-first (the newest push carries the
//     freshest state);
//   - drain order is strict priority: protocol > client > replication.
//
// service_us > 0 paces the drain at one message per service_us, modelling
// a server whose handler work takes real CPU time. The discrete-event
// simulator needs this to exhibit saturation at all (handlers consume zero
// virtual time), and it is how bench_overload positions its knee. With
// service_us == 0 queued work drains on the next scheduler tick.
//
// All limits 0 (the default) disables admission entirely: offer() refuses
// every message and the node dispatches synchronously, byte-for-byte the
// pre-admission behavior.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/types.h"
#include "net/message.h"
#include "obs/metrics.h"

namespace khz::core {

/// Which admission queue a message belongs to. kBypass messages are never
/// queued: responses (the engine correlates them), liveness probes (delay
/// would cause false down verdicts), membership and one-way hint traffic.
enum class OpClass : std::uint8_t {
  kBypass,
  kProtocol,
  kClient,
  kReplication,
};

struct AdmissionConfig {
  /// Per-class queue bounds. 0 = admission disabled for that class (the
  /// message dispatches synchronously). All three 0 = controller off.
  std::size_t client_queue_limit = 0;
  std::size_t protocol_queue_limit = 0;
  std::size_t replication_queue_limit = 0;
  /// Pacing: one dispatched message per service_us of scheduler time.
  /// 0 = drain the whole backlog on the next tick.
  Micros service_us = 0;
};

class AdmissionController {
 public:
  /// What the controller needs from its node. Narrow so the shed-ordering
  /// unit tests run against a fake with manual time.
  class Host {
   public:
    virtual ~Host() = default;
    [[nodiscard]] virtual Micros now() const = 0;
    virtual std::uint64_t schedule(Micros delay,
                                   std::function<void()> fn) = 0;
    virtual void cancel(std::uint64_t timer_id) = 0;
    /// Hands an admitted message to the request plane (the node re-opens
    /// its deadline scope and trace span here).
    virtual void dispatch(const net::Message& m) = 0;
    /// Sends the kNack backpressure reply for a shed rpc_id-bearing
    /// request. One-way messages are shed silently.
    virtual void nack(const net::Message& m) = 0;
  };

  AdmissionController(Host& host, AdmissionConfig config,
                      obs::MetricsRegistry& metrics);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// The queue a message of this type is admitted through.
  [[nodiscard]] static OpClass classify(net::MsgType t);

  /// Offers an arriving request to the controller. Returns true when the
  /// message was consumed (queued, or shed with backpressure) — `msg` is
  /// moved from in that case. False means the message was not touched and
  /// the caller must dispatch it synchronously (bypass class, or admission
  /// disabled for the class).
  bool offer(net::Message& msg);

  [[nodiscard]] std::size_t depth(OpClass c) const;
  [[nodiscard]] std::size_t total_depth() const {
    return protocol_.size() + client_.size() + replication_.size();
  }

  /// Cancels the drain timer and drops all queued work (node shutdown).
  void shutdown();

 private:
  struct Pending {
    net::Message msg;
    Micros enqueued_at = 0;
  };

  [[nodiscard]] std::size_t limit_for(OpClass c) const;
  void enqueue_client(Pending p);
  void shed(Pending p, OpClass c);
  void arm_pump();
  void pump();
  /// Pops the highest-priority admitted message; false when all queues are
  /// empty. Expired client entries are dropped here, not served.
  bool pop_next(Pending& out);
  void update_depth_gauges();

  Host& host_;
  AdmissionConfig config_;

  std::deque<Pending> protocol_;
  /// EDF order: keyed by effective deadline (0 = none, sorts last — work
  /// nobody put a budget on has the least claim to a saturated server).
  std::multimap<std::uint64_t, Pending> client_;
  std::deque<Pending> replication_;

  std::uint64_t pump_timer_ = 0;

  struct {
    obs::Counter* enq_protocol = nullptr;
    obs::Counter* enq_client = nullptr;
    obs::Counter* enq_replication = nullptr;
    obs::Counter* shed_protocol = nullptr;
    obs::Counter* shed_client = nullptr;
    obs::Counter* shed_replication = nullptr;
    obs::Counter* shed_total = nullptr;
    obs::Counter* nacks_sent = nullptr;
    obs::Counter* expired_in_queue = nullptr;
    /// Current depth per class (first-class gauges: levels, not rates).
    obs::Gauge* depth_protocol = nullptr;
    obs::Gauge* depth_client = nullptr;
    obs::Gauge* depth_replication = nullptr;
    obs::Histogram* queue_us = nullptr;
  } ins_;

  /// Last depths this controller contributed to the (node-wide, shared
  /// across lanes) gauges; update_depth_gauges applies deltas against
  /// these so per-lane controllers aggregate instead of clobbering.
  std::int64_t reported_protocol_ = 0;
  std::int64_t reported_client_ = 0;
  std::int64_t reported_replication_ = 0;
};

}  // namespace khz::core
