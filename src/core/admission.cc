#include "core/admission.h"

#include <limits>
#include <utility>

namespace khz::core {

namespace {

/// Sort key for the client EDF queue: no deadline sorts after every real
/// one.
std::uint64_t edf_key(const net::Message& m) {
  return m.deadline == 0 ? std::numeric_limits<std::uint64_t>::max()
                         : m.deadline;
}

}  // namespace

AdmissionController::AdmissionController(Host& host, AdmissionConfig config,
                                         obs::MetricsRegistry& metrics)
    : host_(host), config_(config) {
  ins_.enq_protocol = &metrics.counter("admission.enqueued.protocol");
  ins_.enq_client = &metrics.counter("admission.enqueued.client");
  ins_.enq_replication = &metrics.counter("admission.enqueued.replication");
  ins_.shed_protocol = &metrics.counter("admission.shed.protocol");
  ins_.shed_client = &metrics.counter("admission.shed.client");
  ins_.shed_replication = &metrics.counter("admission.shed.replication");
  ins_.shed_total = &metrics.counter("admission.shed");
  ins_.nacks_sent = &metrics.counter("admission.nacks_sent");
  ins_.expired_in_queue = &metrics.counter("admission.expired_in_queue");
  ins_.depth_protocol = &metrics.gauge("admission.depth.protocol");
  ins_.depth_client = &metrics.gauge("admission.depth.client");
  ins_.depth_replication = &metrics.gauge("admission.depth.replication");
  ins_.queue_us = &metrics.histogram("admission.queue_us");
}

OpClass AdmissionController::classify(net::MsgType t) {
  using net::MsgType;
  switch (t) {
    // Protocol rounds: other nodes block on these grants; they also keep
    // FIFO order within the class (the CREW protocols are
    // ordering-sensitive across a connection).
    case MsgType::kCm:
    case MsgType::kPageFetchReq:
    case MsgType::kPageBatchFetchReq:
    case MsgType::kPageBatchFetchResp:
    // Telemetry scrapes ride the protocol class on purpose: the whole point
    // of scraping is to observe a node in trouble, so the scrape must drain
    // ahead of the backed-up client queue it is trying to measure.
    case MsgType::kStatsReq:
    // Hint anti-entropy keeps location metadata converging under exactly
    // the overload/churn conditions that back up the client queue.
    case MsgType::kHintSyncReq:
      return OpClass::kProtocol;

    // Copyset maintenance: one-way pushes that must never sit on the
    // admission-critical path (write-behind semantics).
    case MsgType::kReplicaPush:
    case MsgType::kReplicaDrop:
      return OpClass::kReplication;

    // rpc_id-bearing client operations: sheddable with backpressure.
    case MsgType::kReserveReq:
    case MsgType::kUnreserveReq:
    case MsgType::kSpaceReq:
    case MsgType::kMapMutateReq:
    case MsgType::kDescLookupReq:
    case MsgType::kHintQueryReq:
    case MsgType::kClusterWalkReq:
    case MsgType::kAllocReq:
    case MsgType::kFreeReq:
    case MsgType::kGetAttrReq:
    case MsgType::kSetAttrReq:
    case MsgType::kLocateReq:
    case MsgType::kObjInvokeReq:
    case MsgType::kMigrateReq:
    case MsgType::kMigrateData:
    case MsgType::kReplicateToReq:
      return OpClass::kClient;

    // Everything else — responses (the engine owns them), liveness probes
    // (queueing delay would fabricate down verdicts), membership and
    // one-way hint gossip — bypasses admission.
    default:
      return OpClass::kBypass;
  }
}

std::size_t AdmissionController::limit_for(OpClass c) const {
  switch (c) {
    case OpClass::kProtocol: return config_.protocol_queue_limit;
    case OpClass::kClient: return config_.client_queue_limit;
    case OpClass::kReplication: return config_.replication_queue_limit;
    default: return 0;
  }
}

std::size_t AdmissionController::depth(OpClass c) const {
  switch (c) {
    case OpClass::kProtocol: return protocol_.size();
    case OpClass::kClient: return client_.size();
    case OpClass::kReplication: return replication_.size();
    default: return 0;
  }
}

void AdmissionController::update_depth_gauges() {
  // Tracked deltas, not absolute set(): with one controller per lane the
  // gauges aggregate every lane's depth, and a set() from one lane would
  // clobber the others' contribution. At one lane the arithmetic reduces
  // to the old absolute behavior.
  const auto p = static_cast<std::int64_t>(protocol_.size());
  const auto c = static_cast<std::int64_t>(client_.size());
  const auto r = static_cast<std::int64_t>(replication_.size());
  ins_.depth_protocol->add(p - reported_protocol_);
  ins_.depth_client->add(c - reported_client_);
  ins_.depth_replication->add(r - reported_replication_);
  reported_protocol_ = p;
  reported_client_ = c;
  reported_replication_ = r;
}

bool AdmissionController::offer(net::Message& msg) {
  const OpClass c = classify(msg.type);
  const std::size_t limit = limit_for(c);
  if (c == OpClass::kBypass || limit == 0) return false;

  Pending p{std::move(msg), host_.now()};
  switch (c) {
    case OpClass::kProtocol:
      if (protocol_.size() >= limit) {
        // Tail drop: queued protocol messages keep their FIFO order, the
        // newest arrival is the loss. Protocol timers re-drive it exactly
        // like a dropped packet.
        shed(std::move(p), c);
      } else {
        protocol_.push_back(std::move(p));
        ins_.enq_protocol->inc();
      }
      break;
    case OpClass::kClient:
      enqueue_client(std::move(p));
      break;
    case OpClass::kReplication:
      if (replication_.size() >= limit) {
        // Drop oldest: the newest push carries the freshest page state.
        shed(std::move(replication_.front()), c);
        replication_.pop_front();
      }
      replication_.push_back(std::move(p));
      ins_.enq_replication->inc();
      break;
    default:
      return false;
  }
  update_depth_gauges();
  arm_pump();
  return true;
}

void AdmissionController::enqueue_client(Pending p) {
  const std::size_t limit = limit_for(OpClass::kClient);
  if (client_.size() >= limit) {
    // Deadline-sorted shedding: the victim is whichever request — queued
    // or arriving — can wait the longest (latest deadline; no deadline
    // loses to any deadline). The urgent work keeps its place.
    auto worst = std::prev(client_.end());
    if (edf_key(p.msg) >= worst->first) {
      shed(std::move(p), OpClass::kClient);
      return;
    }
    Pending victim = std::move(worst->second);
    client_.erase(worst);
    shed(std::move(victim), OpClass::kClient);
  }
  client_.emplace(edf_key(p.msg), std::move(p));
  ins_.enq_client->inc();
}

void AdmissionController::shed(Pending p, OpClass c) {
  ins_.shed_total->inc();
  switch (c) {
    case OpClass::kProtocol: ins_.shed_protocol->inc(); break;
    case OpClass::kClient: ins_.shed_client->inc(); break;
    case OpClass::kReplication: ins_.shed_replication->inc(); break;
    default: break;
  }
  if (p.msg.rpc_id != 0) {
    ins_.nacks_sent->inc();
    host_.nack(p.msg);
  }
}

void AdmissionController::arm_pump() {
  if (pump_timer_ != 0) return;
  // service_us paces the drain; 0 drains on the next tick (the hop through
  // the scheduler keeps "handlers are never re-entered" intact).
  pump_timer_ = host_.schedule(config_.service_us, [this] {
    pump_timer_ = 0;
    pump();
  });
}

bool AdmissionController::pop_next(Pending& out) {
  // Strict priority: protocol rounds unblock other nodes' grants, client
  // ops pay the bills, replication is deferrable by construction.
  if (!protocol_.empty()) {
    out = std::move(protocol_.front());
    protocol_.pop_front();
    return true;
  }
  while (!client_.empty()) {
    auto first = client_.begin();
    Pending p = std::move(first->second);
    client_.erase(first);
    if (p.msg.deadline != 0 &&
        static_cast<std::uint64_t>(host_.now()) > p.msg.deadline) {
      // Its budget expired while it queued; serving it now computes an
      // answer nobody is waiting for. Counted separately from shed — this
      // is the queueing delay itself doing the damage.
      ins_.expired_in_queue->inc();
      continue;
    }
    out = std::move(p);
    return true;
  }
  if (!replication_.empty()) {
    out = std::move(replication_.front());
    replication_.pop_front();
    return true;
  }
  return false;
}

void AdmissionController::pump() {
  Pending p;
  if (config_.service_us == 0) {
    // Unpaced: drain everything queued right now in one tick.
    while (pop_next(p)) {
      ins_.queue_us->record(host_.now() - p.enqueued_at);
      host_.dispatch(p.msg);
    }
    update_depth_gauges();
    if (total_depth() > 0) arm_pump();  // dispatch enqueued more work
    return;
  }
  if (pop_next(p)) {
    ins_.queue_us->record(host_.now() - p.enqueued_at);
    host_.dispatch(p.msg);
  }
  update_depth_gauges();
  if (total_depth() > 0) arm_pump();
}

void AdmissionController::shutdown() {
  if (pump_timer_ != 0) {
    host_.cancel(pump_timer_);
    pump_timer_ = 0;
  }
  protocol_.clear();
  client_.clear();
  replication_.clear();
  update_depth_gauges();
}

}  // namespace khz::core
