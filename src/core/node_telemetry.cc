// Telemetry plane for core::Node: stats scraping, self-sampling and the
// slow-op flight recorder (docs/observability.md). Split out of node.cc
// so each core TU stays one subsystem.
#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/node.h"

namespace khz::core {

using consistency::LockContext;
using consistency::LockMode;
using consistency::ProtocolId;
using net::Message;
using net::MsgType;
using storage::PageState;

// ---------------------------------------------------------------------------
// Telemetry plane: stats scraping, self-sampling, slow-op flight recorder
// (docs/observability.md)
// ---------------------------------------------------------------------------

void Node::on_stats_req(const Message& m) {
  Decoder req(m.payload);
  const std::uint8_t flags = req.u8();
  ins_.scrapes_served->inc();

  Encoder e;
  e.u8(static_cast<std::uint8_t>(ErrorCode::kOk));
  e.u32(config_.id);
  e.u64(static_cast<std::uint64_t>(now()));
  e.u8(flags);
  metrics_.snapshot().encode(e);
  if ((flags & kScrapeSeries) != 0) {
    e.u64(series_.dropped());
    const auto samples = series_.samples();
    e.u32(static_cast<std::uint32_t>(samples.size()));
    for (const auto& s : samples) {
      e.u64(static_cast<std::uint64_t>(s.at));
      s.delta.encode(e);
    }
  }
  if ((flags & kScrapeDossiers) != 0) {
    e.u64(flight_.dropped());
    const auto ds = flight_.dossiers();
    e.u32(static_cast<std::uint32_t>(ds.size()));
    for (const auto& od : ds) od.encode(e);
  }
  respond(m, MsgType::kStatsResp, std::move(e).take());
}

void Node::scrape_stats(NodeId peer, std::uint8_t flags, ScrapeCb cb) {
  Encoder e;
  e.u8(flags);
  // Issued untraced on purpose: the scrape must not pollute the span ring
  // it is about to export (the engine stamps the ambient context on every
  // attempt it sends).
  obs::ScopedTraceContext untraced(tracer_, {});
  engine_().call({peer}, MsgType::kStatsReq, std::move(e).take(),
               [cb = std::move(cb)](bool ok, Decoder& d) {
                 if (!ok) {
                   cb(ErrorCode::kTimeout);
                   return;
                 }
                 RemoteStats rs;
                 const ErrorCode ec = decode_stats_payload(d, rs);
                 if (ec != ErrorCode::kOk) {
                   cb(ec);
                   return;
                 }
                 cb(std::move(rs));
               });
}

ErrorCode Node::decode_stats_payload(Decoder& d, RemoteStats& out) {
  const auto status = static_cast<ErrorCode>(d.u8());
  if (status != ErrorCode::kOk) return status;
  out.node = d.u32();
  out.at = static_cast<Micros>(d.u64());
  const std::uint8_t got = d.u8();
  out.snapshot = obs::MetricsSnapshot::decode(d);
  if ((got & kScrapeSeries) != 0) {
    out.series_dropped = d.u64();
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
      obs::MetricsSample s;
      s.at = static_cast<Micros>(d.u64());
      s.delta = obs::MetricsSnapshot::decode(d);
      out.series.push_back(std::move(s));
    }
  }
  if ((got & kScrapeDossiers) != 0) {
    out.dossiers_dropped = d.u64();
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
      out.dossiers.push_back(obs::OpDossier::decode(d));
    }
  }
  return d.ok() ? ErrorCode::kOk : ErrorCode::kCorrupt;
}

void Node::sample_tick() {
  ins_.samples->inc();
  obs::MetricsSnapshot cur = metrics_.snapshot();
  obs::MetricsSample s;
  s.at = now();
  s.delta = cur.diff(last_sample_);
  last_sample_ = std::move(cur);
  series_.push(std::move(s));
  sample_timer_ = transport_.schedule(config_.stats_sample_interval,
                                      [this] { sample_tick(); });
}

Node::OpWatch Node::watch_op() {
  OpWatch w;
  w.t0 = now();
  w.deadline = engine_().ambient_deadline();
  w.attempts0 = ins_.rpc_attempts->value();
  w.steered0 = ins_.rpc_steered->value();
  return w;
}

void Node::maybe_record_slow_op(const char* op, const OpWatch& w,
                                std::uint64_t trace_id) {
  const bool abs_on = config_.slow_op_threshold_us > 0;
  const bool frac_on = config_.slow_op_deadline_fraction > 0.0 &&
                       w.deadline > static_cast<std::uint64_t>(w.t0);
  if (!abs_on && !frac_on) return;
  const Micros end = now();
  const auto elapsed = static_cast<std::uint64_t>(end - w.t0);
  bool slow =
      abs_on &&
      elapsed >= static_cast<std::uint64_t>(config_.slow_op_threshold_us);
  if (!slow && frac_on) {
    const auto budget = static_cast<double>(w.deadline - w.t0);
    slow = static_cast<double>(elapsed) >=
           config_.slow_op_deadline_fraction * budget;
  }
  if (!slow) return;
  ins_.slow_ops->inc();
  obs::OpDossier d;
  d.op = op;
  d.node = config_.id;
  d.trace_id = trace_id;
  d.start = w.t0;
  d.end = end;
  d.deadline = w.deadline;
  d.rpc_attempts = ins_.rpc_attempts->value() - w.attempts0;
  d.rpc_steered = ins_.rpc_steered->value() - w.steered0;
  d.depth_protocol = admission_().depth(OpClass::kProtocol);
  d.depth_client = admission_().depth(OpClass::kClient);
  d.depth_replication = admission_().depth(OpClass::kReplication);
  if (trace_id != 0) {
    for (auto& s : tracer_.finished_spans()) {
      if (s.trace_id == trace_id) d.spans.push_back(std::move(s));
    }
  }
  flight_.record(std::move(d));
}


}  // namespace khz::core
