// SimWorld: a whole Khazana deployment on the discrete-event simulator,
// with blocking convenience wrappers around the asynchronous node API.
//
// This is the workhorse for tests, benchmarks and examples: construct a
// world of N peers, then call reserve/allocate/lock/read/write/unlock as
// plain blocking functions — each one issues the async operation and pumps
// the simulator until its completion callback fires, so virtual time and
// message counts accumulate exactly as they would in a real run.
#pragma once

#include <filesystem>
#include <memory>
#include <set>
#include <vector>

#include "core/node.h"
#include "net/sim_network.h"

namespace khz::core {

struct SimWorldOptions {
  std::size_t nodes = 3;
  /// Number of cluster managers (node ids 0..managers-1).
  std::size_t managers = 1;
  net::LinkProfile link = net::LinkProfile::lan();
  std::size_t ram_pages = 4096;
  /// Non-empty: every node gets a DiskStore under <disk_root>/node<i>.
  std::filesystem::path disk_root;
  std::size_t disk_pages = 0;
  Micros rpc_timeout = 200'000;
  int max_retries = 3;
  Micros ping_interval = 0;
  /// Admission-control knobs, forwarded verbatim to every NodeConfig
  /// (see docs/overload.md). Defaults keep admission off.
  std::size_t admission_client_queue = 0;
  std::size_t admission_protocol_queue = 0;
  std::size_t admission_replication_queue = 0;
  Micros admission_service_us = 0;
  /// fdatasync the metadata journal on commit (power-loss durability).
  bool sync_metadata = false;
  /// Segment-store data plane knobs, forwarded verbatim to every
  /// NodeConfig (docs/storage.md).
  std::uint64_t segment_bytes = 8ull << 20;
  Micros group_commit_us = 0;
  std::uint64_t group_commit_bytes = 0;
  Micros checkpoint_interval = 0;
  /// Telemetry knobs, forwarded verbatim to every NodeConfig (see
  /// docs/observability.md). Defaults: flight recorder armed but never
  /// triggered, self-sampler off.
  Micros slow_op_threshold_us = 0;
  double slow_op_deadline_fraction = 0.0;
  std::size_t flight_recorder_capacity = 32;
  Micros stats_sample_interval = 0;
  std::size_t stats_series_capacity = 64;
  /// Location-fabric knobs, forwarded verbatim to every NodeConfig (see
  /// docs/location.md). Defaults keep anti-entropy, proactive refresh and
  /// map rebalancing off — the pre-fabric resolver behaviour.
  Micros hint_sync_interval = 0;
  Micros refresh_interval = 0;
  Micros refresh_age_us = 0;
  std::uint32_t refresh_hot_accesses = 4;
  Micros free_space_ttl = 0;
  std::uint32_t map_rebalance_every = 0;
  /// Checkpoint-tick compaction budget (0 = unbounded).
  std::size_t compaction_pages_per_tick = 0;
  /// Execution lanes per node (docs/architecture.md, threading model).
  /// Under the simulator lanes are logical tags on the single event loop;
  /// 1 (the default) is byte-for-byte the legacy single-lane node.
  unsigned lanes = 1;
  std::uint64_t seed = 1;
};

class SimWorld {
 public:
  explicit SimWorld(SimWorldOptions opts = {});
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  [[nodiscard]] net::SimNetwork& net() { return net_; }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Kills a node mid-run (kill -9 semantics): the Node object and all its
  /// volatile state are destroyed, in-flight messages to or from it vanish,
  /// and its timers are suppressed. The disk directory survives. Pair with
  /// restart_node to reboot it.
  void crash_node(NodeId id);

  /// (Re)starts a node with fresh volatile state (same disk): crashes it
  /// first if it is still up, then rebuilds the Node from its persistent
  /// store on the same network endpoint. Requires a disk_root for state to
  /// survive (otherwise the node comes back empty). `settle` pumps one rpc
  /// timeout of virtual time so the reboot's join traffic drains; pass
  /// false from scheduled scripts (the surrounding pump is already
  /// running).
  void restart_node(NodeId id, bool settle = true);

  /// True if `id` currently has a live Node object (i.e. not crashed).
  [[nodiscard]] bool node_alive(NodeId id) const {
    return nodes_.at(id) != nullptr;
  }

  // --- fault-injection scripting (docs/recovery.md) ---------------------
  // Each schedules an action at now+delay of virtual time on the
  // simulator's global timer rail (exempt from crash suppression), so a
  // whole kill/reboot/partition scenario can be scripted up front and then
  // driven by a single pump_for/pump_until while clients keep operating.
  void schedule_crash(Micros delay, NodeId id);
  void schedule_restart(Micros delay, NodeId id);
  void schedule_partition(Micros delay, std::set<NodeId> a,
                          std::set<NodeId> b);
  void schedule_heal(Micros delay);

  /// Pumps the network until `done` is true; returns false if the event
  /// queue drained or `limit` events ran first.
  bool pump_until(const std::function<bool()>& done,
                  std::size_t limit = 5'000'000);
  /// Pumps everything currently queued within `duration` of virtual time.
  void pump_for(Micros duration) { net_.run_for(duration); }

  // --- blocking operation wrappers (issue on node `n`, pump to done) ----
  Result<GlobalAddress> reserve(NodeId n, std::uint64_t size,
                                const RegionAttrs& attrs = {});
  Status unreserve(NodeId n, const GlobalAddress& base);
  Status allocate(NodeId n, const AddressRange& range);
  Status deallocate(NodeId n, const AddressRange& range);
  Result<consistency::LockContext> lock(NodeId n, const AddressRange& range,
                                        consistency::LockMode mode);
  void unlock(NodeId n, const consistency::LockContext& ctx);
  Result<Bytes> read(NodeId n, const consistency::LockContext& ctx,
                     std::uint64_t offset, std::uint64_t len);
  Status write(NodeId n, const consistency::LockContext& ctx,
               std::uint64_t offset, std::span<const std::uint8_t> data);
  Result<RegionAttrs> getattr(NodeId n, const GlobalAddress& base);
  Status setattr(NodeId n, const GlobalAddress& base,
                 const RegionAttrs& attrs);
  Result<std::vector<NodeId>> locate(NodeId n, const GlobalAddress& addr);
  Status migrate(NodeId n, const GlobalAddress& base, NodeId new_home);
  Status replicate_to(NodeId n, const GlobalAddress& base, NodeId target);
  /// Blocking remote-stats scrape: node `n` fetches `peer`'s registry (plus
  /// the sections in `flags`) over the simulated wire.
  Result<Node::RemoteStats> scrape(NodeId n, NodeId peer,
                                   std::uint8_t flags = 0);

  // --- composite conveniences -------------------------------------------
  /// reserve + allocate in one step.
  Result<GlobalAddress> create_region(NodeId n, std::uint64_t size,
                                      const RegionAttrs& attrs = {});
  /// lock(write) + write + unlock.
  Status put(NodeId n, const AddressRange& range,
             std::span<const std::uint8_t> data);
  /// lock(read) + read + unlock.
  Result<Bytes> get(NodeId n, const AddressRange& range);

  // --- observability ----------------------------------------------------
  /// Chrome trace-event JSON of every node's finished spans, merged.
  /// Load the output in chrome://tracing or https://ui.perfetto.dev.
  [[nodiscard]] std::string trace_json() const;
  /// One node's metric registry, with the deployment-wide SimNetwork
  /// counters mirrored in under net.* (the simulator counts traffic
  /// globally, not per endpoint).
  [[nodiscard]] std::string metrics_text(NodeId n);
  [[nodiscard]] std::string metrics_json(NodeId n);
  /// Scrapes every live node over the wire and emits one cluster-wide
  /// rollup (counters/gauges summed, histograms merged bucket-wise) plus
  /// the per-node breakdown:
  ///   {"cluster":{...},"nodes":{"0":{...},...}}
  /// The deployment-global net.* counters are attributed to exactly one
  /// node so the rollup counts them once.
  [[nodiscard]] std::string cluster_metrics_json();

 private:
  void sync_net_metrics(NodeId n);

  SimWorldOptions opts_;
  net::SimNetwork net_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace khz::core
