#include "core/meta_log.h"

#include <utility>

#include "common/log.h"
#include "common/serialize.h"

namespace khz::core {

// Journal record tags (first byte of each record):
//   1  region upsert        (encoded RegionDescriptor)
//   2  region erase         (base address)
//   3  pool snapshot        (u64 granted_bytes, u32 count, count ranges)
//   4  homed page version   (page address, u64 version)
//   5  homed page erase     (page address)
namespace {
constexpr std::uint8_t kJnlRegion = 1;
constexpr std::uint8_t kJnlRegionErase = 2;
constexpr std::uint8_t kJnlPool = 3;
constexpr std::uint8_t kJnlPage = 4;
constexpr std::uint8_t kJnlPageErase = 5;
}  // namespace

MetaLog::MetaLog(storage::StorageHierarchy& storage, NodeId id,
                 SnapshotFn snapshot)
    : storage_(storage), id_(id), snapshot_(std::move(snapshot)) {}

void MetaLog::checkpoint() {
  auto* disk = storage_.disk();
  if (disk == nullptr) return;
  const Snapshot snap = snapshot_();
  Encoder e;
  e.u64(snap.granted_bytes);
  e.u32(static_cast<std::uint32_t>(snap.pool.size()));
  for (const auto& r : snap.pool) e.range(r);
  e.u32(static_cast<std::uint32_t>(snap.regions.size()));
  for (const auto& [base, desc] : snap.regions) desc.encode(e);
  e.u32(static_cast<std::uint32_t>(snap.page_versions.size()));
  for (const auto& [p, v] : snap.page_versions) {
    e.addr(p);
    e.u64(v);
  }
  (void)disk->put_meta("node_state", e.data());
  // The snapshot now covers everything the journal recorded; start fresh.
  (void)disk->journal().reset();
}

void MetaLog::append(const Bytes& record) {
  auto* disk = storage_.disk();
  if (disk == nullptr) return;
  (void)disk->journal().append(record);
  if (disk->journal().appended() >= kCompactThreshold) checkpoint();
}

void MetaLog::record_region(const RegionDescriptor& desc) {
  if (storage_.disk() == nullptr) return;
  Encoder e;
  e.u8(kJnlRegion);
  desc.encode(e);
  append(e.data());
}

void MetaLog::record_region_erase(const GlobalAddress& base) {
  if (storage_.disk() == nullptr) return;
  Encoder e;
  e.u8(kJnlRegionErase);
  e.addr(base);
  append(e.data());
}

void MetaLog::record_pool(std::uint64_t granted_bytes,
                          const std::vector<AddressRange>& pool) {
  if (storage_.disk() == nullptr) return;
  Encoder e;
  e.u8(kJnlPool);
  e.u64(granted_bytes);
  e.u32(static_cast<std::uint32_t>(pool.size()));
  for (const auto& r : pool) e.range(r);
  append(e.data());
}

void MetaLog::record_page(const GlobalAddress& page, Version version) {
  if (storage_.disk() == nullptr) return;
  Encoder e;
  e.u8(kJnlPage);
  e.addr(page);
  e.u64(version);
  append(e.data());
}

void MetaLog::record_page_erase(const GlobalAddress& page) {
  if (storage_.disk() == nullptr) return;
  Encoder e;
  e.u8(kJnlPageErase);
  e.addr(page);
  append(e.data());
}

MetaLog::Snapshot MetaLog::recover() {
  Snapshot out;
  auto* disk = storage_.disk();
  if (disk == nullptr) return out;

  if (const auto blob = disk->get_meta("node_state")) {
    Decoder d(*blob);
    out.granted_bytes = d.u64();
    const std::uint32_t npool = d.u32();
    for (std::uint32_t i = 0; i < npool && d.ok(); ++i) {
      out.pool.push_back(d.range());
    }
    const std::uint32_t nregions = d.u32();
    for (std::uint32_t i = 0; i < nregions && d.ok(); ++i) {
      RegionDescriptor desc = RegionDescriptor::decode(d);
      out.regions[desc.range.base] = desc;
    }
    const std::uint32_t npages = d.u32();
    for (std::uint32_t i = 0; i < npages && d.ok(); ++i) {
      const GlobalAddress p = d.addr();
      out.page_versions[p] = d.u64();
    }
    if (!d.ok()) {
      KHZ_WARN("node %u: corrupt node_state metadata ignored", id_);
      return Snapshot{};
    }
  }

  // Replay mutations journalled after the snapshot.
  const std::size_t replayed = disk->journal().replay([&](const Bytes& rec) {
    Decoder d(rec);
    switch (d.u8()) {
      case kJnlRegion: {
        RegionDescriptor desc = RegionDescriptor::decode(d);
        if (d.ok()) out.regions[desc.range.base] = desc;
        break;
      }
      case kJnlRegionErase: {
        const GlobalAddress base = d.addr();
        if (!d.ok()) break;
        auto it = out.regions.find(base);
        if (it != out.regions.end()) {
          // The region's pages died with it.
          const AddressRange range = it->second.range;
          out.page_versions.erase(
              out.page_versions.lower_bound(range.base),
              out.page_versions.lower_bound(range.end()));
          out.regions.erase(it);
        }
        break;
      }
      case kJnlPool: {
        const std::uint64_t g = d.u64();
        std::vector<AddressRange> p;
        const std::uint32_t n = d.u32();
        for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
          p.push_back(d.range());
        }
        if (d.ok()) {
          out.granted_bytes = g;
          out.pool = std::move(p);
        }
        break;
      }
      case kJnlPage: {
        const GlobalAddress p = d.addr();
        const Version v = d.u64();
        if (d.ok()) out.page_versions[p] = v;
        break;
      }
      case kJnlPageErase: {
        const GlobalAddress p = d.addr();
        if (d.ok()) out.page_versions.erase(p);
        break;
      }
      default:
        KHZ_WARN("node %u: unknown journal record skipped", id_);
        break;
    }
  });
  if (replayed > 0) {
    KHZ_INFO("node %u: replayed %zu journal records", id_, replayed);
  }
  return out;
}

}  // namespace khz::core
