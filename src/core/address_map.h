// Compatibility forwarder: the address-map tree moved to the location
// subsystem (src/location/address_map.h).
#pragma once

#include "location/address_map.h"

namespace khz::core {
using location::AddressMap;
using location::MapEntry;
using location::MapPageStore;
}  // namespace khz::core
