#include "core/rpc_engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace khz::core {

namespace {

std::string attempt_span_name(net::MsgType type) {
  return std::string("rpc:") + std::string(net::to_string(type));
}

}  // namespace

RpcEngine::RpcEngine(Host& host, RpcPolicy policy,
                     obs::MetricsRegistry& metrics)
    : host_(host), policy_(policy) {
  ins_.attempts = &metrics.counter("rpc.attempts");
  ins_.steered = &metrics.counter("rpc.steered");
  // Client-side expiries only; the node counts server-side drops of
  // expired work under rpc.deadline_expired.server, so shed-rate
  // attribution can tell "my budget ran out" from "the server shed me".
  ins_.deadline_expired = &metrics.counter("rpc.deadline_expired.client");
  ins_.duplicate_replies = &metrics.counter("rpc.duplicate_replies");
  ins_.down_short_circuits = &metrics.counter("rpc.down_short_circuits");
  // Legacy name: NodeStats has always exposed background (reliable-send)
  // retries under this counter.
  ins_.background_retries = &metrics.counter("node.background_retries");
  ins_.nacks = &metrics.counter("rpc.nacks");
  ins_.budget_exhausted = &metrics.counter("rpc.retry_budget_exhausted");
  ins_.reliable_dropped = &metrics.counter("rpc.reliable_dropped");
  ins_.backoff_us = &metrics.histogram("rpc.backoff_us");
}

RpcEngine::~RpcEngine() { shutdown(); }

Micros RpcEngine::backoff(int attempt) {
  // Exponential from base, capped, then jittered +/- policy.jitter.
  Micros d = policy_.backoff_base;
  for (int i = 1; i < attempt && d < policy_.backoff_cap; ++i) d *= 2;
  d = std::min(d, policy_.backoff_cap);
  const auto jitter = static_cast<Micros>(static_cast<double>(d) *
                                          policy_.jitter);
  const Micros lo = d - jitter;
  return lo + host_.rng().below(2 * jitter + 1);
}

void RpcEngine::call(std::vector<NodeId> candidates, net::MsgType type,
                     Bytes payload, Handler handler, CallOptions opts) {
  if (candidates.empty()) {
    Decoder empty(std::span<const std::uint8_t>{});
    handler(false, empty);
    return;
  }
  const std::uint64_t id = next_call_id_++;
  Call& c = calls_[id];
  c.candidates = std::move(candidates);
  c.type = type;
  c.payload = std::move(payload);
  c.handler = std::move(handler);
  c.accept = std::move(opts.accept);
  c.attempts_left =
      opts.max_attempts > 0
          ? opts.max_attempts
          : std::max(policy_.max_attempts,
                     static_cast<int>(c.candidates.size()));
  c.deadline = opts.deadline != 0 ? opts.deadline : ambient_deadline_;
  c.ignore_down = opts.ignore_down;
  c.issue_ctx = host_.tracer().current();
  start_attempt(id);
}

NodeId RpcEngine::pick_candidate(Call& c) const {
  for (std::size_t i = 0; i < c.candidates.size(); ++i) {
    const std::size_t idx = (c.cursor + i) % c.candidates.size();
    const NodeId cand = c.candidates[idx];
    if (c.ignore_down || !host_.is_down(cand)) {
      c.cursor = idx;
      return cand;
    }
  }
  return kNoNode;
}

void RpcEngine::start_attempt(std::uint64_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& c = it->second;
  const Micros now = host_.now();
  if (c.deadline != 0 && now >= c.deadline) {
    ins_.deadline_expired->inc();
    finish(call_id, false, nullptr);
    return;
  }
  const NodeId target = pick_candidate(c);
  if (target == kNoNode) {
    // Every candidate is marked down: fail now instead of burning attempt
    // timeouts against peers the detector already declared dead.
    ins_.down_short_circuits->inc();
    finish(call_id, false, nullptr);
    return;
  }
  if (target != c.candidates.front()) ins_.steered->inc();
  if (!budget_attempt(target, c.attempts_made > 0)) {
    // The destination's retry budget is spent: fail fast instead of piling
    // more retries onto a peer that is already not keeping up.
    finish(call_id, false, nullptr);
    return;
  }
  ins_.attempts->inc();
  ++c.attempts_made;
  --c.attempts_left;

  const RpcId rid = next_rpc_id_;
  next_rpc_id_ += rpc_id_step_;
  rpc_to_call_[rid] = call_id;
  c.issued.push_back(rid);

  net::Message m;
  m.type = c.type;
  m.dst = target;
  m.rpc_id = rid;
  m.deadline = c.deadline;
  m.payload = c.payload;
  if (c.issue_ctx.active()) {
    // Client-side span per attempt; the wire carries the span id so the
    // server's rx span parents under it.
    c.span = host_.tracer().begin_span(attempt_span_name(c.type),
                                       c.issue_ctx);
    m.trace_id = c.span.trace_id;
    m.span_id = c.span.span_id;
  }

  Micros timeout = policy_.attempt_timeout;
  if (c.deadline != 0) timeout = std::min(timeout, c.deadline - now);
  c.timer = host_.schedule(timeout,
                           [this, call_id] { on_attempt_timeout(call_id); });
  host_.route(std::move(m));
}

void RpcEngine::on_attempt_timeout(std::uint64_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& c = it->second;
  c.timer = 0;
  host_.tracer().end_span(c.span);
  c.span = {};
  if (c.attempts_left <= 0) {
    finish(call_id, false, nullptr);
    return;
  }
  schedule_retry(call_id);
}

void RpcEngine::schedule_retry(std::uint64_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& c = it->second;
  const Micros now = host_.now();
  if (c.deadline != 0 && now >= c.deadline) {
    ins_.deadline_expired->inc();
    finish(call_id, false, nullptr);
    return;
  }
  c.cursor = (c.cursor + 1) % c.candidates.size();
  const Micros delay = backoff(c.attempts_made);
  if (c.deadline != 0 && now + delay >= c.deadline) {
    // The backoff wait alone would blow the budget; there is nobody left
    // to answer in time, so reflect the expiry now (Section 3.5).
    ins_.deadline_expired->inc();
    finish(call_id, false, nullptr);
    return;
  }
  ins_.backoff_us->record(delay);
  c.timer = host_.schedule(delay, [this, call_id] {
    auto cit = calls_.find(call_id);
    if (cit == calls_.end()) return;
    cit->second.timer = 0;
    start_attempt(call_id);
  });
}

bool RpcEngine::budget_attempt(NodeId dst, bool retry) {
  if (policy_.retry_budget_cap <= 0) return true;  // budgeting disabled
  auto [it, inserted] = budget_.try_emplace(dst, policy_.retry_budget_cap);
  double& tokens = it->second;
  if (!retry) {
    tokens = std::min(policy_.retry_budget_cap,
                      tokens + policy_.retry_budget_ratio);
    return true;
  }
  if (tokens < 1.0) {
    ins_.budget_exhausted->inc();
    return false;
  }
  tokens -= 1.0;
  return true;
}

bool RpcEngine::on_response(const net::Message& msg) {
  auto rit = rpc_to_call_.find(msg.rpc_id);
  if (rit == rpc_to_call_.end()) {
    // Stray: either a duplicate of a completed call or a reply that
    // outlived its call. Harmless by design.
    ins_.duplicate_replies->inc();
    return false;
  }
  const std::uint64_t call_id = rit->second;
  auto it = calls_.find(call_id);
  if (it == calls_.end()) {
    rpc_to_call_.erase(rit);
    return false;
  }
  Call& c = it->second;
  if (msg.type == net::MsgType::kNack) {
    // Backpressure: the server shed this attempt at admission. The peer is
    // alive but saturated, so unlike the accept-bounce below the retry
    // waits out a backoff (and rotates candidates) rather than re-firing
    // immediately into the same full queue.
    ins_.nacks->inc();
    rpc_to_call_.erase(rit);
    if (c.timer != 0) {
      host_.cancel(c.timer);
      c.timer = 0;
    }
    host_.tracer().end_span(c.span);
    c.span = {};
    if (c.attempts_left <= 0) {
      finish(call_id, false, nullptr);
      return true;
    }
    schedule_retry(call_id);
    return true;
  }
  if (c.accept && !c.accept(Decoder(msg.payload))) {
    // Well-formed reply, wrong node ("not the home"): steer to the next
    // candidate immediately — the peer is alive, no backoff needed.
    rpc_to_call_.erase(rit);
    if (c.timer != 0) {
      host_.cancel(c.timer);
      c.timer = 0;
    }
    host_.tracer().end_span(c.span);
    c.span = {};
    if (c.attempts_left <= 0) {
      finish(call_id, false, nullptr);
      return true;
    }
    c.cursor = (c.cursor + 1) % c.candidates.size();
    start_attempt(call_id);
    return true;
  }
  finish(call_id, true, &msg.payload);
  return true;
}

void RpcEngine::finish(std::uint64_t call_id, bool ok, const Bytes* payload) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call c = std::move(it->second);
  calls_.erase(it);
  if (c.timer != 0) host_.cancel(c.timer);
  for (const RpcId rid : c.issued) rpc_to_call_.erase(rid);
  host_.tracer().end_span(c.span);
  // The continuation belongs to the trace — and the deadline — of the
  // operation that issued the call: chained RPCs inherit both.
  obs::ScopedTraceContext scope(host_.tracer(), c.issue_ctx);
  DeadlineScope dscope(*this, c.deadline);
  if (ok) {
    Decoder d(*payload);
    c.handler(true, d);
  } else {
    Decoder empty(std::span<const std::uint8_t>{});
    c.handler(false, empty);
  }
}

void RpcEngine::send_reliable(NodeId dst, net::MsgType type, Bytes payload) {
  if (policy_.reliable_queue_limit > 0) {
    // Bound the backlog per destination: a peer that stays down for hours
    // must not grow this map without limit. Drop oldest-first — the newest
    // message usually supersedes it (replica pushes, hint publishes carry
    // current state), and the map is keyed by increasing id, so the first
    // match is the oldest.
    std::size_t depth = 0;
    auto oldest = reliable_.end();
    for (auto it = reliable_.begin(); it != reliable_.end(); ++it) {
      if (it->second.dst != dst) continue;
      if (oldest == reliable_.end()) oldest = it;
      ++depth;
    }
    if (depth >= policy_.reliable_queue_limit && oldest != reliable_.end()) {
      if (oldest->second.retry_timer != 0) {
        host_.cancel(oldest->second.retry_timer);
      }
      // If the entry has an attempt in flight its completion lambda finds
      // the id gone and does nothing — same late-reply tolerance as calls.
      reliable_.erase(oldest);
      ins_.reliable_dropped->inc();
    }
  }
  const std::uint64_t rid = next_reliable_id_++;
  reliable_[rid] = ReliableSend{dst, type, std::move(payload)};
  reliable_attempt(rid);
}

void RpcEngine::reliable_attempt(std::uint64_t rid) {
  auto it = reliable_.find(rid);
  if (it == reliable_.end()) return;
  ReliableSend& rs = it->second;
  rs.retry_timer = 0;
  if (host_.is_down(rs.dst)) {
    // Known-down peer: stop hammering; on_node_up() resumes us.
    rs.paused = true;
    return;
  }
  // Keep trying until an ack arrives ("the Khazana system keeps trying the
  // operation in the background until it succeeds", Section 3.5).
  CallOptions opts;
  opts.max_attempts = 1;
  call({rs.dst}, rs.type, rs.payload, [this, rid](bool ok, Decoder&) {
    auto rit = reliable_.find(rid);
    if (rit == reliable_.end()) return;
    if (ok) {
      reliable_.erase(rit);
      return;
    }
    ReliableSend& r = rit->second;
    ins_.background_retries->inc();
    ++r.failures;
    if (host_.is_down(r.dst)) {
      r.paused = true;
      return;
    }
    const Micros delay = backoff(r.failures);
    ins_.backoff_us->record(delay);
    r.retry_timer =
        host_.schedule(delay, [this, rid] { reliable_attempt(rid); });
  }, std::move(opts));
}

void RpcEngine::on_node_up(NodeId node) {
  for (auto& [rid, rs] : reliable_) {
    if (rs.dst != node || !rs.paused) continue;
    rs.paused = false;
    // Re-kick from the scheduler so resumption never re-enters whatever
    // message handler noticed the node come back.
    rs.retry_timer = host_.schedule(
        0, [this, rid = rid] { reliable_attempt(rid); });
  }
}

void RpcEngine::shutdown() {
  for (auto& [id, c] : calls_) {
    if (c.timer != 0) host_.cancel(c.timer);
    host_.tracer().end_span(c.span);
  }
  calls_.clear();
  rpc_to_call_.clear();
  for (auto& [rid, rs] : reliable_) {
    if (rs.retry_timer != 0) host_.cancel(rs.retry_timer);
  }
  reliable_.clear();
}

}  // namespace khz::core
