// Request handlers and replica maintenance for core::Node. Failure
// detection / fail-over live in node_failover.cc; metadata persistence
// in meta_log.cc.
#include <algorithm>
#include <map>
#include <vector>

#include "common/log.h"
#include "core/node.h"

namespace khz::core {

using consistency::ProtocolId;
using net::Message;
using net::MsgType;
using storage::PageState;

namespace {
constexpr std::uint8_t kStatusOk = 0;
std::uint8_t to_wire(ErrorCode e) { return static_cast<std::uint8_t>(e); }

Bytes status_payload(ErrorCode e) {
  Encoder enc;
  enc.u8(to_wire(e));
  return std::move(enc).take();
}
}  // namespace

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

void Node::on_join_req(const Message& m) {
  std::set<NodeId> snapshot;
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    members_.insert(m.src);
    snapshot = members_;
  }
  Encoder e;
  e.u32(static_cast<std::uint32_t>(snapshot.size()));
  for (NodeId n : snapshot) e.u32(n);
  respond(m, MsgType::kJoinResp, std::move(e).take());
  // Gossip the updated membership so existing nodes learn of the joiner.
  for (NodeId n : snapshot) {
    if (n == config_.id || n == m.src) continue;
    Encoder g;
    g.u32(static_cast<std::uint32_t>(snapshot.size()));
    for (NodeId x : snapshot) g.u32(x);
    Message gm;
    gm.type = MsgType::kNodeListGossip;
    gm.dst = n;
    gm.payload = std::move(g).take();
    send_msg(std::move(gm));
  }
}

// ---------------------------------------------------------------------------
// Address space
// ---------------------------------------------------------------------------

void Node::on_reserve_req(const Message& m) {
  Decoder d(m.payload);
  const std::uint64_t size = d.u64();
  const RegionAttrs attrs = RegionAttrs::decode(d);
  // Serve a remote client's reserve exactly like a local one; this node
  // becomes the region's home.
  reserve(size, attrs, [this, m](Result<GlobalAddress> r) {
    Encoder e;
    e.u8(to_wire(r.ok() ? ErrorCode::kOk : r.error()));
    e.addr(r.ok() ? r.value() : GlobalAddress{});
    respond(m, MsgType::kReserveResp, std::move(e).take());
  });
}

void Node::on_unreserve_req(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress base = d.addr();
  if (hop_home(m, base)) return;  // page teardown runs on the region lane
  RegionDescriptor desc;
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    auto it = homed_regions_.find(base);
    if (it == homed_regions_.end()) {
      // Not (or no longer) homed here; ack so the sender stops retrying.
      respond(m, MsgType::kUnreserveResp, status_payload(ErrorCode::kOk));
      return;
    }
    desc = it->second;
  }
  release_region_pages(desc, desc.range);
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    homed_regions_.erase(base);
    pool_.push_back(desc.range);
    meta_.record_region_erase(base);
    meta_.record_pool(granted_bytes_, pool_);
  }
  regions_.invalidate(base);
  Encoder map_req;
  map_req.u8(2);  // erase
  map_req.range(desc.range);
  map_req.u32(0);
  engine_().send_reliable(config_.genesis, MsgType::kMapMutateReq,
                std::move(map_req).take());
  respond(m, MsgType::kUnreserveResp, status_payload(ErrorCode::kOk));
}

void Node::publish_hint(const AddressRange& range, bool retract) {
  for (NodeId manager : managers()) {
    Encoder hint;
    hint.addr(range.base);
    hint.u64(range.size);
    hint.u32(config_.id);
    hint.u64(pool_bytes());
    hint.boolean(retract);
    Message m;
    m.type = MsgType::kHintPublish;
    m.dst = manager;
    m.payload = std::move(hint).take();
    send_msg(std::move(m));
  }
}

void Node::on_space_req(const Message& m) {
  Decoder d(m.payload);
  const std::uint64_t want = d.u64();
  if (!is_manager()) {
    respond(m, MsgType::kSpaceResp,
            status_payload(ErrorCode::kBadArgument));
    return;
  }
  // Each manager owns a private slab of the 128-bit space (manager k:
  // [kFirstClientAddress + k*kManagerSlab, ...)) and bumps within it, so
  // concurrent managers never grant overlapping chunks without any
  // coordination. The slab is 2^45 bytes: inexhaustible at this scale.
  constexpr std::uint64_t kManagerSlab = 1ull << 45;
  const auto ms = managers();
  const std::uint64_t my_index = static_cast<std::uint64_t>(
      std::find(ms.begin(), ms.end(), config_.id) - ms.begin());
  const std::uint64_t granted =
      std::max<std::uint64_t>(want, kPoolChunkSize);
  GlobalAddress base;
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    base = kFirstClientAddress.plus(my_index * kManagerSlab + granted_bytes_);
    granted_bytes_ += granted;
    meta_.record_pool(granted_bytes_, pool_);
  }
  cluster_.report_free_space(m.src, granted, now());
  Encoder e;
  e.u8(kStatusOk);
  e.addr(base);
  e.u64(granted);
  respond(m, MsgType::kSpaceResp, std::move(e).take());
}

void Node::on_map_mutate_req(const Message& m) {
  Decoder d(m.payload);
  const std::uint8_t op = d.u8();
  const AddressRange range = d.range();
  std::vector<NodeId> homes;
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n && d.ok(); ++i) homes.push_back(d.u32());

  if (map_ == nullptr) {
    respond(m, MsgType::kMapMutateResp,
            status_payload(ErrorCode::kBadArgument));
    return;
  }
  Status s;
  switch (op) {
    case 1: s = map_->insert(range, homes); break;
    case 2: s = map_->erase(range.base); break;
    case 3: s = map_->update_homes(range.base, homes); break;
    default: s = ErrorCode::kBadArgument; break;
  }
  // Duplicate deliveries of reliable sends are expected; report them as
  // success so the sender's retry loop terminates.
  if (s.error() == ErrorCode::kAlreadyReserved && op == 1) s = Status{};
  if (s.error() == ErrorCode::kNotFound && (op == 2 || op == 3)) s = Status{};
  // Periodic skew repair: insertion only splits at the hard overflow
  // point, so a skewed reservation pattern piles entries into one hot
  // page; rebalancing at half occupancy spreads them over more pages.
  if (s.ok() && config_.map_rebalance_every > 0 &&
      ++map_mutations_ % config_.map_rebalance_every == 0) {
    const std::size_t splits = map_->rebalance(AddressMap::kMaxEntries / 2);
    if (splits > 0) {
      metrics_.counter("location.map_rebalance_splits").inc(splits);
    }
  }
  respond(m, MsgType::kMapMutateResp, status_payload(s.error()));
}

// ---------------------------------------------------------------------------
// Location
// ---------------------------------------------------------------------------

void Node::on_desc_lookup_req(const Message& m) {
  // Metadata-only: any lane may serve it from under the state lock.
  Decoder d(m.payload);
  const GlobalAddress addr = d.addr();
  if (auto desc = homed_descriptor(addr)) {
    Encoder e;
    e.u8(kStatusOk);
    desc->encode(e);
    respond(m, MsgType::kDescLookupResp, std::move(e).take());
    return;
  }
  respond(m, MsgType::kDescLookupResp, status_payload(ErrorCode::kNotFound));
}

void Node::on_hint_query_req(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress addr = d.addr();
  const auto nodes = cluster_.hint(addr);
  Encoder e;
  e.u8(kStatusOk);
  e.u32(static_cast<std::uint32_t>(nodes.size()));
  for (NodeId n : nodes) e.u32(n);
  respond(m, MsgType::kHintQueryResp, std::move(e).take());
}

void Node::on_hint_publish(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress base = d.addr();
  const std::uint64_t size = d.u64();
  const NodeId subject = d.u32();
  const std::uint64_t pool = d.u64();
  const bool retract = d.boolean();
  // Stamped with the local clock: anti-entropy merges newest-wins, and
  // best_pool_node ages offers against the free-space TTL.
  if (retract) {
    cluster_.retract(base, subject, now());
  } else {
    cluster_.publish(base, size, subject, now());
  }
  cluster_.report_free_space(m.src, pool, now());
}

void Node::on_hint_sync_req(const Message& m) {
  Decoder d(m.payload);
  respond(m, MsgType::kHintSyncResp, fabric_->handle_hint_sync(m.src, d));
}

void Node::on_cluster_walk_req(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress addr = d.addr();
  Encoder e;
  if (auto homed = homed_descriptor(addr)) {
    e.boolean(true);
    homed->encode(e);
  } else if (auto cached = regions_.lookup(addr)) {
    e.boolean(true);
    cached->encode(e);
  } else {
    e.boolean(false);
  }
  respond(m, MsgType::kClusterWalkResp, std::move(e).take());
}

void Node::on_locate_req(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress addr = d.addr();
  if (hop_home(m, addr)) return;  // reads the region lane's page directory
  const auto desc = homed_descriptor(addr);
  if (!desc) {
    respond(m, MsgType::kLocateResp, status_payload(ErrorCode::kNotFound));
    return;
  }
  const GlobalAddress page = desc->page_of(addr);
  std::set<NodeId> holders;
  if (auto* info = pages_().find(page)) {
    holders = info->sharers;
    if (info->owner != kNoNode) holders.insert(info->owner);
  }
  Encoder e;
  e.u8(kStatusOk);
  e.u32(static_cast<std::uint32_t>(holders.size()));
  for (NodeId n : holders) e.u32(n);
  respond(m, MsgType::kLocateResp, std::move(e).take());
}

// ---------------------------------------------------------------------------
// Storage allocation
// ---------------------------------------------------------------------------

void Node::on_alloc_req(const Message& m) {
  Decoder d(m.payload);
  const AddressRange range = d.range();
  if (hop_home(m, range.base)) return;  // fills the region lane's shard
  std::lock_guard<std::recursive_mutex> g(state_mu_);
  auto it = homed_regions_.upper_bound(range.base);
  if (it == homed_regions_.begin() ||
      !std::prev(it)->second.range.contains_range(range)) {
    respond(m, MsgType::kAllocResp, status_payload(ErrorCode::kNotFound));
    return;
  }
  auto& desc = std::prev(it)->second;
  materialize_region_pages(desc, range);
  desc.allocated = true;
  regions_.insert(desc);
  meta_.record_region(desc);
  respond(m, MsgType::kAllocResp, status_payload(ErrorCode::kOk));
}

void Node::on_free_req(const Message& m) {
  Decoder d(m.payload);
  const AddressRange range = d.range();
  if (hop_home(m, range.base)) return;  // tears down the region lane's shard
  if (auto desc = homed_descriptor(range.base);
      desc && desc->range.contains_range(range)) {
    release_region_pages(*desc, range);
  }
  respond(m, MsgType::kFreeResp, status_payload(ErrorCode::kOk));
}

// ---------------------------------------------------------------------------
// Attributes
// ---------------------------------------------------------------------------

void Node::on_attr_req(const Message& m, bool set) {
  // Attribute state is metadata-plane only; serve on any lane under the
  // state lock (no hop).
  Decoder d(m.payload);
  const GlobalAddress addr = d.addr();
  std::lock_guard<std::recursive_mutex> g(state_mu_);
  auto it = homed_regions_.upper_bound(addr);
  if (it == homed_regions_.begin() ||
      !std::prev(it)->second.range.contains(addr)) {
    respond(m, set ? MsgType::kSetAttrResp : MsgType::kGetAttrResp,
            status_payload(ErrorCode::kNotFound));
    return;
  }
  RegionDescriptor& desc = std::prev(it)->second;
  if (!set) {
    Encoder e;
    e.u8(kStatusOk);
    desc.attrs.encode(e);
    respond(m, MsgType::kGetAttrResp, std::move(e).take());
    return;
  }
  RegionAttrs attrs = RegionAttrs::decode(d);
  const std::uint32_t principal = d.u32();
  if (!desc.attrs.acl.allows(principal, /*write=*/true)) {
    respond(m, MsgType::kSetAttrResp,
            status_payload(ErrorCode::kAccessDenied));
    return;
  }
  // Page size and protocol are fixed at reserve time in the current
  // prototype ("Currently all instances of an object must be accessed
  // using the same consistency mechanisms", Section 2); the mutable
  // attributes are the level, ACL and replication factor.
  attrs.page_size = desc.attrs.page_size;
  attrs.protocol = desc.attrs.protocol;
  desc.attrs = attrs;
  regions_.insert(desc);
  meta_.record_region(desc);
  respond(m, MsgType::kSetAttrResp, status_payload(ErrorCode::kOk));
}

// ---------------------------------------------------------------------------
// Replica maintenance (Section 3.5: minimum primary replicas)
// ---------------------------------------------------------------------------

// Payload: region descriptor, u32 count, then count * { addr page,
// u64 version, bool from_owner, bytes data }. Multi-page pushes (bulk
// replication such as replicate_to) ride in one message instead of one
// per page; routine min-replica maintenance sends count == 1.
void Node::on_replica_push(const Message& m) {
  Decoder d(m.payload);
  RegionDescriptor desc = RegionDescriptor::decode(d);
  const std::uint32_t count = d.u32();
  if (!d.ok()) return;
  // Pushes arrive via the reliable-send path (route_key 0 → lane 0); the
  // target lane comes from the descriptor the payload itself carries.
  if (lanes_ > 1) {
    const unsigned target = region_lane(desc.range.base);
    if (target != lane()) {
      post_to_lane(target, [this, mc = m] { on_replica_push(mc); });
      return;
    }
  }
  regions_.insert(desc);

  for (std::uint32_t i = 0; i < count; ++i) {
    const GlobalAddress page = d.addr();
    const Version version = d.u64();
    const bool from_owner = d.boolean();
    Bytes data = d.bytes();
    if (!d.ok()) return;

    auto& info = pages_().ensure(page);

    if (from_owner && desc.primary_home() == config_.id) {
      // The exclusive owner pushed its dirty data back and demoted itself
      // to a shared copy; the home becomes the owner again and fans out
      // further replicas as needed.
      info.homed_locally = true;
      info.home = config_.id;
      info.owner = config_.id;
      info.state = PageState::kShared;
      info.version = std::max(info.version, version);
      info.sharers.insert(config_.id);
      info.sharers.insert(m.src);
      store_page(page, std::move(data));
      maintain_replicas(page);
      continue;
    }

    // Plain replica install.
    if (info.locked()) continue;  // never clobber data under an active lock
    info.home = desc.primary_home();
    info.state = PageState::kShared;
    info.version = std::max(info.version, version);
    store_page(page, std::move(data));
  }
}

void Node::on_replica_drop(const Message& m) {
  Decoder d(m.payload);
  const GlobalAddress page = d.addr();
  auto* info = pages_().find(page);
  if (info != nullptr) {
    if (info->locked()) return;
    info->state = PageState::kInvalid;
  }
  storage_().erase(page);
  pages_().erase(page);
}

void Node::maintain_replicas(const GlobalAddress& page) {
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(page)) return;

  auto* info = pages_().find(page);
  if (info == nullptr) return;

  // Home side: top the copyset up to min_replicas. Runs on the region's
  // owning lane (callers are CM hooks / pushed installs already routed
  // there); the descriptor mutation below needs the state lock.
  std::unique_lock<std::recursive_mutex> held(state_mu_);
  auto it = homed_regions_.upper_bound(page);
  if (it != homed_regions_.begin() &&
      std::prev(it)->second.range.contains(page)) {
    RegionDescriptor& desc = std::prev(it)->second;
    const std::uint32_t target = desc.attrs.min_replicas;
    if (target <= 1) return;
    if (info->state == PageState::kInvalid) return;  // owner holds the data
    const Bytes* data = storage_().get(page);
    if (data == nullptr) return;
    info->sharers.insert(config_.id);

    // Ring order starting after this node: spreads replicas instead of
    // dog-piling the lowest node ids.
    std::vector<NodeId> candidates = membership();
    std::sort(candidates.begin(), candidates.end());
    const auto pivot = std::upper_bound(candidates.begin(), candidates.end(),
                                        config_.id);
    std::rotate(candidates.begin(), pivot, candidates.end());

    std::vector<NodeId> new_replicas;
    for (NodeId n : candidates) {
      if (info->sharers.size() + new_replicas.size() >= target) break;
      if (n == config_.id || info->sharers.contains(n)) continue;
      new_replicas.push_back(n);
    }
    // Once copies exist beyond this node, the page is no longer exclusive
    // here: demote so the next local write runs the full invalidation
    // round against the pushed replicas.
    if ((!new_replicas.empty() || info->sharers.size() > 1) &&
        info->state == PageState::kExclusive) {
      info->state = PageState::kShared;
    }
    for (NodeId n : new_replicas) {
      Encoder e;
      desc.encode(e);
      e.u32(1);
      e.addr(page);
      e.u64(info->version);
      e.boolean(false);
      e.bytes(*data);
      Message m;
      m.type = MsgType::kReplicaPush;
      m.dst = n;
      m.payload = std::move(e).take();
      send_msg(std::move(m));
      info->sharers.insert(n);
      ins_.replica_pushes->inc();
      // Record the replica as an alternate home so lookups and failure
      // fallbacks can find it (the map entry's home list is
      // non-exhaustive by design).
      if (std::find(desc.home_nodes.begin(), desc.home_nodes.end(), n) ==
              desc.home_nodes.end() &&
          desc.home_nodes.size() < AddressMap::kMaxHomes) {
        desc.home_nodes.push_back(n);
        regions_.insert(desc);
        Encoder map_req;
        map_req.u8(3);  // update_homes
        map_req.range(desc.range);
        map_req.u32(static_cast<std::uint32_t>(desc.home_nodes.size()));
        for (NodeId h : desc.home_nodes) map_req.u32(h);
        engine_().send_reliable(config_.genesis, MsgType::kMapMutateReq,
                      std::move(map_req).take());
      }
    }
    return;
  }
  held.unlock();

  // Owner side: after a dirty release on a region with a replication
  // requirement, ship the data back to the home and demote to a shared
  // copy so the home can maintain the replica set and serialize the next
  // writer.
  if (info->owner == config_.id && info->state == PageState::kExclusive) {
    const std::uint32_t target = min_replicas_of(page);
    if (target <= 1) return;
    auto desc = regions_.lookup(page);
    if (!desc) return;
    const Bytes* data = storage_().get(page);
    if (data == nullptr) return;
    Encoder e;
    desc->encode(e);
    e.u32(1);
    e.addr(page);
    e.u64(info->version);
    e.boolean(true);  // from_owner
    e.bytes(*data);
    Message m;
    m.type = MsgType::kReplicaPush;
    m.dst = desc->primary_home();
    m.payload = std::move(e).take();
    send_msg(std::move(m));
    info->state = PageState::kShared;
    ins_.replica_pushes->inc();
  }
}

}  // namespace khz::core
