// Node-metadata persistence (restart recovery), extracted from Node.
//
// Durable node state = the last full snapshot (the "node_state" meta blob)
// plus a write-ahead journal of every mutation since
// (storage/meta_journal.h). Mutators call record_*() — one O(1) journal
// append per change; once the journal passes kCompactThreshold records the
// next append pulls a fresh snapshot from the host and truncates the
// journal. recover() = decode snapshot into accumulators, replay journal
// over them, return the result for the node to install.
//
// The MetaLog owns the record format and the compaction policy; what the
// state *means* (installing descriptors, rebuilding page directories) stays
// with the Node.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.h"
#include "core/region.h"
#include "storage/hierarchy.h"

namespace khz::core {

class MetaLog {
 public:
  /// Everything the snapshot covers, in both directions: the host builds
  /// one at checkpoint time, recover() returns one for the host to install.
  struct Snapshot {
    std::uint64_t granted_bytes = 0;
    std::vector<AddressRange> pool;
    std::map<GlobalAddress, RegionDescriptor> regions;
    std::map<GlobalAddress, Version> page_versions;
  };
  using SnapshotFn = std::function<Snapshot()>;

  /// Journal growth limit before the next append compacts into a snapshot.
  static constexpr std::size_t kCompactThreshold = 1024;

  /// `snapshot` is called at compaction time to capture the host's current
  /// state. Diskless hierarchies turn every operation into a no-op.
  MetaLog(storage::StorageHierarchy& storage, NodeId id, SnapshotFn snapshot);

  // -- mutation records (one O(1) append each) ---------------------------
  void record_region(const RegionDescriptor& desc);
  void record_region_erase(const GlobalAddress& base);
  void record_pool(std::uint64_t granted_bytes,
                   const std::vector<AddressRange>& pool);
  void record_page(const GlobalAddress& page, Version version);
  void record_page_erase(const GlobalAddress& page);

  /// Rewrites the full snapshot and truncates the journal.
  void checkpoint();

  /// Snapshot + journal replay. Replay stops at the first torn or corrupt
  /// record (crash mid-append loses only that record).
  [[nodiscard]] Snapshot recover();

 private:
  void append(const Bytes& record);

  storage::StorageHierarchy& storage_;
  NodeId id_;  // log prefix only
  SnapshotFn snapshot_;
};

}  // namespace khz::core
