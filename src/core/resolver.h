// Compatibility forwarder: the Resolver moved to the location subsystem
// (src/location/resolver.h) behind the location::Fabric facade.
#pragma once

#include "location/resolver.h"

namespace khz::core {
using location::HitClass;
using location::Resolver;
}  // namespace khz::core
