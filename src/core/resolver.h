// Three-level location lookup (Section 3.2), extracted from Node.
//
// "To locate the data associated with a particular global address, Khazana
// uses a three-tiered lookup scheme": (0) regions homed locally and the
// well-known map region, (1) the node's region-directory cache of recently
// used descriptors, (2) the cluster manager's hint cache, (3) a walk of the
// address-map tree — with a broadcast cluster walk as the stale-map
// fallback. The Resolver owns levels 1-3 plus descriptor fetching; level 0
// facts (what is homed here, where the genesis is) come from the narrow
// Host interface, and all remote traffic goes through the RpcEngine, which
// supplies retries, candidate steering and deadline budgets.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/region.h"
#include "core/region_directory.h"
#include "core/rpc_engine.h"
#include "obs/metrics.h"

namespace khz::core {

class Resolver {
 public:
  /// What the lookup path needs from its node. Signatures deliberately
  /// match the equivalent CmHost methods so Node implements both interfaces
  /// with single overrides.
  class Host {
   public:
    virtual ~Host() = default;
    [[nodiscard]] virtual NodeId self() const = 0;
    [[nodiscard]] virtual NodeId genesis() const = 0;
    [[nodiscard]] virtual std::vector<NodeId> managers() const = 0;
    [[nodiscard]] virtual bool is_manager() const = 0;
    virtual std::vector<NodeId> membership() = 0;
    [[nodiscard]] virtual Micros now() const = 0;
    /// The authoritative descriptor if `addr` falls in a region homed on
    /// this node (lookup level 0).
    [[nodiscard]] virtual std::optional<RegionDescriptor> homed_descriptor(
        const GlobalAddress& addr) = 0;
    /// The node's descriptor cache (lookup level 1); fetched descriptors
    /// are inserted here.
    [[nodiscard]] virtual RegionDirectory& region_cache() = 0;
    /// Manager-side hint-cache lookup (level 2, local fast path). Only
    /// consulted when is_manager().
    [[nodiscard]] virtual std::vector<NodeId> manager_hint(
        const GlobalAddress& addr) = 0;
    /// Reads one page of the address map (level 3); readers replicate map
    /// pages through the release protocol.
    virtual void fetch_map_page(std::uint32_t index,
                                std::function<void(Result<Bytes>)> cb) = 0;
  };

  using DescCb = std::function<void(Result<RegionDescriptor>)>;

  Resolver(Host& host, RpcEngine& engine, obs::MetricsRegistry& metrics);

  /// Resolves `addr` to its region descriptor, walking the lookup levels
  /// in order. The callback fires in node context, possibly synchronously
  /// (levels 0/1 and the manager's own hint cache are local).
  void resolve(const GlobalAddress& addr, DescCb cb);

 private:
  // `t0` is when resolve() started; each terminal records into the
  // histogram of the hit class that actually produced the descriptor
  // (`hist` threads the pending class through fetch_descriptor, whose
  // fallback is the cluster walk).
  void resolve_via_manager(const GlobalAddress& addr, Micros t0, DescCb cb);
  void resolve_via_map_walk(const GlobalAddress& addr, Micros t0, DescCb cb);
  void map_walk_step(std::uint32_t page_index, GlobalAddress addr, int depth,
                     Micros t0, DescCb cb);
  void resolve_via_cluster_walk(const GlobalAddress& addr, Micros t0,
                                DescCb cb);
  /// One engine call across `candidates` (self excluded): the accept
  /// predicate bounces non-kOk answers so stale hints steer to the next
  /// candidate; total failure falls back to the cluster walk.
  void fetch_descriptor(std::vector<NodeId> candidates,
                        const GlobalAddress& addr, Micros t0,
                        obs::Histogram* hist, DescCb cb);

  Host& host_;
  RpcEngine& engine_;

  struct {
    obs::Counter* cache_hits = nullptr;
    obs::Counter* manager_hits = nullptr;
    obs::Counter* map_walks = nullptr;
    obs::Counter* cluster_walks = nullptr;
    obs::Histogram* region_dir_us = nullptr;
    obs::Histogram* manager_hint_us = nullptr;
    obs::Histogram* map_walk_us = nullptr;
    obs::Histogram* cluster_walk_us = nullptr;
  } ins_;
};

}  // namespace khz::core
