// Compatibility forwarder: the region types moved to the location
// subsystem (src/location/region.h). Core keeps aliases so the many
// khz::core call sites (node, meta log, tests) stay source-compatible.
#pragma once

#include "location/region.h"

namespace khz::core {
using location::AccessControl;
using location::ConsistencyLevel;
using location::RegionAttrs;
using location::RegionDescriptor;
using location::kFirstClientAddress;
using location::kMapRegionBase;
using location::kMapRegionSize;
using location::kPoolChunkSize;
using location::map_region_descriptor;
}  // namespace khz::core
