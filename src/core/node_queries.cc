// Attribute and location query client operations for core::Node
// (getattr / setattr / locate / migrate / replicate_to). Split out of
// node_ops.cc so each core TU stays one subsystem.
#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/node.h"

namespace khz::core {

using consistency::LockContext;
using consistency::LockMode;
using consistency::ProtocolId;
using consistency::is_write;
using net::Message;
using net::MsgType;
using storage::PageState;

namespace {
ErrorCode from_wire(std::uint8_t b) { return static_cast<ErrorCode>(b); }
}  // namespace

// ---------------------------------------------------------------------------
// Attributes and location queries
// ---------------------------------------------------------------------------

void Node::getattr(const GlobalAddress& base, AttrCb cb) {
  // Root span + latency histogram + slow-op watch, same shape as
  // reserve()/lock(): getattr is the op the overload bench saturates with,
  // so its tail is exactly where the flight recorder earns its keep.
  const Micros t0 = now();
  const obs::TraceContext span = tracer_.begin_span("op:getattr");
  obs::ScopedTraceContext scope(tracer_, span);
  const OpWatch watch = watch_op();
  cb = [this, t0, watch, span, cb = std::move(cb)](Result<RegionAttrs> r) {
    if (r.ok()) ins_.getattr_us->record(now() - t0);
    tracer_.end_span(span);
    maybe_record_slow_op("getattr", watch, span.trace_id);
    cb(std::move(r));
  };
  fabric_->resolve(base, [this, base, cb = std::move(cb)](
                    Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    const RegionDescriptor desc = r.value();
    if (desc.primary_home() == config_.id) {
      cb(desc.attrs);
      return;
    }
    Encoder e;
    e.addr(base);
    engine_().call(desc.home_nodes, MsgType::kGetAttrReq, std::move(e).take(),
              [cb = std::move(cb)](bool ok, Decoder& d) mutable {
                if (!ok) {
                  cb(ErrorCode::kUnreachable);
                  return;
                }
                const ErrorCode err = from_wire(d.u8());
                if (err != ErrorCode::kOk) {
                  cb(err);
                  return;
                }
                cb(RegionAttrs::decode(d));
              });
  });
}

void Node::setattr(const GlobalAddress& base, const RegionAttrs& attrs,
                   StatusCb cb) {
  fabric_->resolve(base, [this, base, attrs, cb = std::move(cb)](
                    Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    const RegionDescriptor desc = r.value();
    Encoder e;
    e.addr(base);
    attrs.encode(e);
    e.u32(config_.principal);
    engine_().call(desc.home_nodes, MsgType::kSetAttrReq, std::move(e).take(),
              [this, base, cb = std::move(cb)](bool ok, Decoder& d) mutable {
                if (!ok) {
                  cb(ErrorCode::kUnreachable);
                  return;
                }
                const ErrorCode err = from_wire(d.u8());
                if (err == ErrorCode::kOk) regions_.invalidate(base);
                cb(err == ErrorCode::kOk ? Status{} : Status{err});
              });
  });
}

void Node::locate(const GlobalAddress& addr, LocateCb cb) {
  fabric_->resolve(addr, [this, addr, cb = std::move(cb)](
                    Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    const RegionDescriptor desc = r.value();
    Encoder e;
    e.addr(addr);
    engine_().call(desc.home_nodes, MsgType::kLocateReq, std::move(e).take(),
              [cb = std::move(cb)](bool ok, Decoder& d) mutable {
                if (!ok) {
                  cb(ErrorCode::kUnreachable);
                  return;
                }
                const ErrorCode err = from_wire(d.u8());
                if (err != ErrorCode::kOk) {
                  cb(err);
                  return;
                }
                std::vector<NodeId> nodes;
                const std::uint32_t n = d.u32();
                for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
                  nodes.push_back(d.u32());
                }
                cb(std::move(nodes));
              });
  });
}

void Node::migrate(const GlobalAddress& base, NodeId new_home, StatusCb cb) {
  fabric_->resolve(base, [this, base, new_home, cb = std::move(cb)](
                    Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    const RegionDescriptor desc = r.value();
    if (desc.range.base != base) {
      cb(ErrorCode::kBadArgument);
      return;
    }
    if (!desc.attrs.acl.allows(config_.principal, /*write=*/true)) {
      cb(ErrorCode::kAccessDenied);
      return;
    }
    Encoder e;
    e.addr(base);
    e.u32(new_home);
    engine_().call(desc.home_nodes, MsgType::kMigrateReq, std::move(e).take(),
              [this, base, cb = std::move(cb)](bool ok, Decoder& d) mutable {
                if (!ok) {
                  cb(ErrorCode::kUnreachable);
                  return;
                }
                const ErrorCode err = from_wire(d.u8());
                if (err == ErrorCode::kOk) regions_.invalidate(base);
                cb(err == ErrorCode::kOk ? Status{} : Status{err});
              });
  });
}

void Node::replicate_to(const GlobalAddress& base, NodeId target,
                        StatusCb cb) {
  fabric_->resolve(base, [this, base, target, cb = std::move(cb)](
                    Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    Encoder e;
    e.addr(base);
    e.u32(target);
    engine_().call(r.value().home_nodes, MsgType::kReplicateToReq,
              std::move(e).take(),
              [cb = std::move(cb)](bool ok, Decoder& d) mutable {
                if (!ok) {
                  cb(ErrorCode::kUnreachable);
                  return;
                }
                const ErrorCode err = from_wire(d.u8());
                cb(err == ErrorCode::kOk ? Status{} : Status{err});
              });
  });
}

}  // namespace khz::core
