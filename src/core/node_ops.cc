// Client operations, location resolution, request handlers, replica
// maintenance, failure detection and metadata persistence for core::Node.
// (node.cc holds construction, messaging plumbing and the CmHost glue.)
#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "core/node.h"

namespace khz::core {

using consistency::LockContext;
using consistency::LockMode;
using consistency::ProtocolId;
using consistency::is_write;
using net::Message;
using net::MsgType;
using storage::PageState;

namespace {
ErrorCode from_wire(std::uint8_t b) { return static_cast<ErrorCode>(b); }

bool valid_page_size(std::uint32_t s) {
  return s >= kDefaultPageSize && s <= (1u << 20) && (s & (s - 1)) == 0;
}

/// The paper treats "desired consistency level" and "consistency protocol"
/// as separate attributes: the level states the requirement, the protocol
/// the mechanism. When a client states only the level, pick the matching
/// built-in protocol; when both are given they must be compatible (a
/// protocol may exceed the requested level, never undercut it).
Result<RegionAttrs> reconcile_consistency(RegionAttrs attrs) {
  // Third-party (registered) protocols are taken at the client's word:
  // the plugin author owns the level guarantee.
  if (attrs.protocol != ProtocolId::kCrew &&
      attrs.protocol != ProtocolId::kRelease &&
      attrs.protocol != ProtocolId::kEventual) {
    return attrs;
  }
  const auto strength = [](ProtocolId p) {
    switch (p) {
      case ProtocolId::kCrew: return 2;
      case ProtocolId::kRelease: return 1;
      case ProtocolId::kEventual: return 0;
    }
    return -1;
  };
  const int required = attrs.level == ConsistencyLevel::kStrict    ? 2
                       : attrs.level == ConsistencyLevel::kRelaxed ? 1
                                                                   : 0;
  if (attrs.protocol == ProtocolId::kCrew &&
      attrs.level != ConsistencyLevel::kStrict) {
    // Protocol left at its default but a weaker level was requested:
    // choose the protocol that implements that level.
    attrs.protocol = attrs.level == ConsistencyLevel::kRelaxed
                         ? ProtocolId::kRelease
                         : ProtocolId::kEventual;
    return attrs;
  }
  if (strength(attrs.protocol) < required) return ErrorCode::kBadArgument;
  return attrs;
}
}  // namespace

/// Pages a lock op keeps in flight during its prefetch phase. 16 parallel
/// warm-up rounds cover the common range sizes while bounding the burst a
/// single op can put on the wire.
constexpr std::size_t kLockPrefetchWindow = 16;

/// In-flight multi-page lock acquisition, in two phases:
///
///  1. Prefetch: up to kLockPrefetchWindow concurrent CM prefetches bring
///     every page of the range into a grantable state (data for reads,
///     ownership for writes) WITHOUT taking holds — N remote rounds
///     overlap into ~1 RTT, and since nothing is held yet, concurrent
///     overlapping lockers cannot deadlock while they wait here.
///  2. Acquire: holds are then taken page by page in strict ascending
///     address order (pages[] is built sorted). Ordered hold-taking is the
///     classical deadlock-avoidance rule: every node only ever waits for a
///     page higher than all pages it holds, so no wait cycle can form.
///     After a successful prefetch each acquire is a local grant; a page
///     stolen between the phases just costs one ordinary remote round.
///
/// A phase-2 failure releases everything granted so far and reflects the
/// error to the client (all-or-nothing).
struct LockOp {
  AddressRange range;
  LockMode mode;
  RegionDescriptor desc;
  std::vector<GlobalAddress> pages;  // ascending address order
  std::size_t prefetch_issued = 0;
  std::size_t prefetch_done = 0;
  std::size_t inflight = 0;  // prefetches currently outstanding
  std::size_t next = 0;      // phase-2 cursor
  /// Bumped when the op restarts (relocate-and-retry); completions from
  /// the abandoned attempt compare against it and drop out.
  std::uint64_t epoch = 0;
  bool relocated = false;  // one re-resolve after a stale-home bounce
  Node::LockCb cb;
};

// ---------------------------------------------------------------------------
// Address-space management: reserve / unreserve
// ---------------------------------------------------------------------------

std::optional<GlobalAddress> Node::carve_from_pool(std::uint64_t size) {
  // `size` is already page-aligned; carve an aligned base so large-page
  // regions start on a page boundary. Alignment slack stays in the pool.
  std::lock_guard<std::recursive_mutex> g(state_mu_);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    AddressRange& r = pool_[i];
    const GlobalAddress base = r.base;
    if (r.size < size) continue;
    r.base = base.plus(size);
    r.size -= size;
    if (r.size == 0) pool_.erase(pool_.begin() + static_cast<long>(i));
    return base;
  }
  return std::nullopt;
}

std::uint64_t Node::pool_bytes() const {
  std::lock_guard<std::recursive_mutex> g(state_mu_);
  std::uint64_t total = 0;
  for (const auto& r : pool_) total += r.size;
  return total;
}

void Node::reserve(std::uint64_t size, const RegionAttrs& raw_attrs,
                   ReserveCb cb) {
  // Root the operation's trace and time it end-to-end; every rpc issued on
  // behalf of this reserve parents under `span` via the ambient context.
  const Micros t0 = now();
  const obs::TraceContext span = tracer_.begin_span("op:reserve");
  obs::ScopedTraceContext scope(tracer_, span);
  const OpWatch watch = watch_op();
  cb = [this, t0, watch, span, cb = std::move(cb)](Result<GlobalAddress> r) {
    if (r.ok()) ins_.reserve_us->record(now() - t0);
    tracer_.end_span(span);
    // After end_span: the dossier harvests the finished span tree.
    maybe_record_slow_op("reserve", watch, span.trace_id);
    cb(std::move(r));
  };
  if (size == 0 || !valid_page_size(raw_attrs.page_size)) {
    cb(ErrorCode::kBadArgument);
    return;
  }
  if (!consistency::ProtocolRegistry::instance().known(raw_attrs.protocol)) {
    cb(ErrorCode::kBadArgument);
    return;
  }
  auto reconciled = reconcile_consistency(raw_attrs);
  if (!reconciled) {
    cb(reconciled.error());
    return;
  }
  const RegionAttrs attrs = reconciled.value();
  const std::uint64_t aligned =
      (size + attrs.page_size - 1) / attrs.page_size * attrs.page_size;

  if (auto base = carve_from_pool(aligned)) {
    finish_reserve({*base, aligned}, attrs, std::move(cb));
    return;
  }

  // Local pool dry: ask the cluster manager for a large chunk of
  // unreserved space to manage locally (Section 3.1).
  const std::uint64_t chunk = std::max<std::uint64_t>(kPoolChunkSize, aligned);
  Encoder e;
  e.u64(chunk);
  // Acquire-side retry policy (attempt count, backoff, steering across the
  // manager set) lives in the engine.
  engine_().call(managers(), MsgType::kSpaceReq, std::move(e).take(),
            [this, aligned, attrs, cb = std::move(cb)](bool ok,
                                                       Decoder& d) mutable {
              if (!ok) {
                cb(ErrorCode::kUnreachable);
                return;
              }
              const ErrorCode err = from_wire(d.u8());
              if (err != ErrorCode::kOk) {
                cb(err);
                return;
              }
              const GlobalAddress base = d.addr();
              const std::uint64_t granted = d.u64();
              std::optional<GlobalAddress> carved;
              {
                std::lock_guard<std::recursive_mutex> g(state_mu_);
                pool_.push_back({base, granted});
                meta_.record_pool(granted_bytes_, pool_);
                carved = carve_from_pool(aligned);
              }
              if (carved) {
                finish_reserve({*carved, aligned}, attrs, std::move(cb));
              } else {
                cb(ErrorCode::kNoSpace);
              }
            });
}

void Node::finish_reserve(const AddressRange& range, const RegionAttrs& attrs,
                          ReserveCb cb) {
  RegionDescriptor desc;
  desc.range = range;
  desc.attrs = attrs;
  desc.home_nodes = {config_.id};
  {
    std::lock_guard<std::recursive_mutex> g(state_mu_);
    homed_regions_[range.base] = desc;
    meta_.record_region(desc);
    meta_.record_pool(granted_bytes_, pool_);  // reservation was carved from the pool
  }
  regions_.insert(desc);
  ins_.reserves->inc();

  // Register the reservation with the address map (background-reliable;
  // the map is a hint structure and tolerates lag) and publish a location
  // hint to the cluster manager.
  Encoder map_req;
  map_req.u8(1);  // insert
  map_req.range(range);
  map_req.u32(1);
  map_req.u32(config_.id);
  engine_().send_reliable(config_.genesis, MsgType::kMapMutateReq,
                std::move(map_req).take());

  publish_hint(range, /*retract=*/false);

  cb(range.base);
}

void Node::unreserve(const GlobalAddress& base, StatusCb cb) {
  fabric_->resolve(base, [this, base, cb = std::move(cb)](
                    Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    const RegionDescriptor desc = r.value();
    if (desc.range.base != base) {
      cb(ErrorCode::kBadArgument);
      return;
    }
    if (desc.primary_home() == config_.id) {
      // Page teardown touches the region lane's page directory and storage
      // shard; hop there before releasing (no-op at lanes=1).
      run_on_region_lane(desc.range.base, [this, desc, base,
                                           cb = std::move(cb)]() mutable {
        release_region_pages(desc, desc.range);
        {
          std::lock_guard<std::recursive_mutex> g(state_mu_);
          homed_regions_.erase(base);
          pool_.push_back(desc.range);  // reclaim into the local pool
          meta_.record_region_erase(base);
          meta_.record_pool(granted_bytes_, pool_);
        }
        regions_.invalidate(base);
        Encoder map_req;
        map_req.u8(2);  // erase
        map_req.range(desc.range);
        map_req.u32(0);
        engine_().send_reliable(config_.genesis, MsgType::kMapMutateReq,
                                std::move(map_req).take());
        publish_hint(desc.range, /*retract=*/true);
        cb(Status{});
      });
      return;
    }
    // Remote home: release-type semantics — accept now, deliver reliably
    // in the background (Section 3.5).
    Encoder e;
    e.addr(base);
    engine_().send_reliable(desc.primary_home(), MsgType::kUnreserveReq,
                  std::move(e).take());
    regions_.invalidate(base);
    cb(Status{});
  });
}

// ---------------------------------------------------------------------------
// Storage allocation: allocate / deallocate
// ---------------------------------------------------------------------------

void Node::allocate(const AddressRange& range, StatusCb cb) {
  if (range.size == 0) {
    cb(ErrorCode::kBadArgument);
    return;
  }
  fabric_->resolve(range.base, [this, range, cb = std::move(cb)](
                          Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    const RegionDescriptor desc = r.value();
    if (!desc.range.contains_range(range)) {
      cb(ErrorCode::kBadArgument);
      return;
    }
    if (!desc.attrs.acl.allows(config_.principal, /*write=*/true)) {
      cb(ErrorCode::kAccessDenied);
      return;
    }
    if (desc.primary_home() == config_.id) {
      // Page materialisation fills the region lane's shard; hop first.
      run_on_region_lane(desc.range.base, [this, desc, range,
                                           cb = std::move(cb)]() mutable {
        materialize_region_pages(desc, range);
        {
          std::lock_guard<std::recursive_mutex> g(state_mu_);
          auto it = homed_regions_.find(desc.range.base);
          if (it != homed_regions_.end()) {
            it->second.allocated = true;
            meta_.record_region(it->second);
          }
        }
        cb(Status{});
      });
      return;
    }
    Encoder e;
    e.range(range);
    engine_().call(desc.home_nodes, MsgType::kAllocReq, std::move(e).take(),
              [this, base = desc.range.base, cb = std::move(cb)](
                  bool ok, Decoder& d) mutable {
                if (!ok) {
                  cb(ErrorCode::kUnreachable);
                  return;
                }
                const ErrorCode err = from_wire(d.u8());
                if (err == ErrorCode::kOk) {
                  // Refresh the cached descriptor's allocated bit.
                  regions_.invalidate(base);
                }
                cb(err == ErrorCode::kOk ? Status{} : Status{err});
              });
  });
}

void Node::deallocate(const AddressRange& range, StatusCb cb) {
  if (range.size == 0) {
    cb(ErrorCode::kBadArgument);
    return;
  }
  fabric_->resolve(range.base, [this, range, cb = std::move(cb)](
                          Result<RegionDescriptor> r) mutable {
    if (!r) {
      cb(r.error());
      return;
    }
    const RegionDescriptor desc = r.value();
    if (!desc.range.contains_range(range)) {
      cb(ErrorCode::kBadArgument);
      return;
    }
    if (desc.primary_home() == config_.id) {
      run_on_region_lane(desc.range.base,
                         [this, desc, range, cb = std::move(cb)]() mutable {
                           release_region_pages(desc, range);
                           cb(Status{});
                         });
      return;
    }
    Encoder e;
    e.range(range);
    engine_().send_reliable(desc.primary_home(), MsgType::kFreeReq,
                  std::move(e).take());
    cb(Status{});
  });
}

// ---------------------------------------------------------------------------
// Locking and data access
// ---------------------------------------------------------------------------

void Node::lock(const AddressRange& range, LockMode mode, LockCb cb) {
  // Root span for the whole acquisition: resolve, home rpc, CREW round and
  // grant all join this trace (across nodes, via the message envelope).
  const Micros t0 = now();
  const obs::TraceContext span = tracer_.begin_span("op:lock");
  obs::ScopedTraceContext scope(tracer_, span);
  const OpWatch watch = watch_op();
  cb = [this, t0, watch, h = lock_hist(mode), span,
        cb = std::move(cb)](Result<LockContext> r) {
    if (r.ok()) h->record(now() - t0);
    tracer_.end_span(span);
    maybe_record_slow_op("lock", watch, span.trace_id);
    cb(std::move(r));
  };
  if (range.size == 0 || mode == LockMode::kNone) {
    cb(ErrorCode::kBadArgument);
    return;
  }
  fabric_->resolve(range.base, [this, range, mode, cb = std::move(cb)](
                          Result<RegionDescriptor> r) mutable {
    if (!r) {
      ins_.locks_failed->inc();
      cb(r.error());
      return;
    }
    RegionDescriptor desc = r.value();
    if (!desc.range.contains_range(range)) {
      cb(ErrorCode::kBadArgument);
      return;
    }
    if (!desc.attrs.acl.allows(config_.principal, is_write(mode))) {
      cb(ErrorCode::kAccessDenied);
      return;
    }
    if (desc.allocated) {
      // The whole acquisition (prefetch, ordered holds, CM state) runs on
      // the region's owning lane; the grant callback fires there too.
      run_on_region_lane(desc.range.base, [this, desc, range, mode,
                                           cb = std::move(cb)]() mutable {
        start_lock_op(desc, range, mode, std::move(cb));
      });
      return;
    }
    // The cached descriptor may predate allocation; fetch a fresh copy
    // from the home before failing (region directory staleness is
    // expected, Section 3.2).
    regions_.invalidate(desc.range.base);
    Encoder e;
    e.addr(range.base);
    engine_().call(desc.home_nodes, MsgType::kDescLookupReq, std::move(e).take(),
              [this, range, mode, cb = std::move(cb)](bool ok,
                                                      Decoder& d) mutable {
                if (!ok) {
                  ins_.locks_failed->inc();
                  cb(ErrorCode::kUnreachable);
                  return;
                }
                const ErrorCode err = from_wire(d.u8());
                if (err != ErrorCode::kOk) {
                  ins_.locks_failed->inc();
                  cb(err);
                  return;
                }
                RegionDescriptor fresh = RegionDescriptor::decode(d);
                regions_.insert(fresh);
                if (!fresh.allocated) {
                  ins_.locks_failed->inc();
                  cb(ErrorCode::kNotAllocated);
                  return;
                }
                run_on_region_lane(
                    fresh.range.base,
                    [this, fresh, range, mode, cb = std::move(cb)]() mutable {
                      start_lock_op(fresh, range, mode, std::move(cb));
                    });
              });
  });
}

void Node::start_lock_op(const RegionDescriptor& desc,
                         const AddressRange& range, LockMode mode,
                         LockCb cb) {
  auto op = std::make_shared<LockOp>();
  op->range = range;
  op->mode = mode;
  op->desc = desc;
  op->cb = std::move(cb);
  const std::uint32_t psz = desc.attrs.page_size;
  const std::uint64_t offset = desc.range.base.distance_to(range.base);
  const GlobalAddress first = desc.range.base.plus(offset - offset % psz);
  for (GlobalAddress p = first; p < range.end(); p = p.plus(psz)) {
    op->pages.push_back(p);
  }
  // The loop above yields ascending addresses already; keep the sort as a
  // belt-and-braces guard — phase 2's deadlock freedom depends on it.
  std::sort(op->pages.begin(), op->pages.end());
  ins_.lock_pages->record(op->pages.size());
  lock_prefetch_pump(op);
}

void Node::lock_prefetch_pump(const std::shared_ptr<LockOp>& op) {
  auto* cm = cm_for(op->desc.attrs.protocol);
  if (cm == nullptr) {
    op->cb(ErrorCode::kBadArgument);
    return;
  }
  if (op->pages.empty()) {
    lock_next_page(op);
    return;
  }
  regions_.insert(op->desc);
  // Prefetches may complete synchronously, re-entering this pump from the
  // callback below (and phase 2, even a relocate-restart, can run while
  // this loop frame is still live). The epoch check stops a superseded
  // frame from issuing into the restarted op.
  const std::uint64_t epoch = op->epoch;
  while (op->epoch == epoch && op->prefetch_issued < op->pages.size() &&
         op->inflight < kLockPrefetchWindow) {
    const GlobalAddress page = op->pages[op->prefetch_issued++];
    ++op->inflight;
    ins_.lock_window->record(op->inflight);
    // The prefetch outcome is advisory: a page that could not be warmed
    // (unreachable home, stale descriptor) is retried authoritatively by
    // the phase-2 acquire, which owns the error handling.
    cm->prefetch(page, op->mode, [this, op, epoch](Status) {
      if (op->epoch != epoch) return;  // superseded by a relocate-restart
      --op->inflight;
      ++op->prefetch_done;
      if (op->prefetch_done == op->pages.size()) {
        lock_next_page(op);
      } else {
        lock_prefetch_pump(op);
      }
    });
  }
}

void Node::lock_next_page(std::shared_ptr<LockOp> op) {
  if (op->next == op->pages.size()) {
    // Lane-strided ids: id % lanes_ recovers the owning lane, which is how
    // unlock/read/write route back to this lock's shard.
    const std::uint64_t id = next_lock_ids_[lane()];
    next_lock_ids_[lane()] += lanes_;
    ActiveLock al;
    al.ctx = LockContext{id, op->range, op->mode};
    al.protocol = op->desc.attrs.protocol;
    al.pages = op->pages;
    al.page_size = op->desc.attrs.page_size;
    for (const auto& p : al.pages) storage_().pin(p);
    active_locks_().emplace(id, std::move(al));
    ins_.locks_granted->inc();
    op->cb(LockContext{id, op->range, op->mode});
    return;
  }
  auto* cm = cm_for(op->desc.attrs.protocol);
  if (cm == nullptr) {
    op->cb(ErrorCode::kBadArgument);
    return;
  }
  const GlobalAddress page = op->pages[op->next];
  // Make sure the page's home is resolvable by the protocol even if the
  // descriptor got evicted from the directory mid-operation.
  regions_.insert(op->desc);
  // Roll back with the same manager that granted: re-looking the protocol
  // up inside the failure path could (in principle) come back null and
  // would then leak every hold taken so far.
  cm->acquire(page, op->mode, [this, op, cm](Status s) mutable {
    if (s.ok()) {
      ++op->next;
      lock_next_page(std::move(op));
      return;
    }
    for (std::size_t i = 0; i < op->next; ++i) {
      cm->release(op->pages[i], op->mode, /*dirty=*/false);
    }
    op->next = 0;
    if (s.error() == ErrorCode::kNotFound && !op->relocated) {
      // A presumed home bounced the request (stale directory entry,
      // Section 3.2). Drop the cached descriptor, re-resolve through the
      // manager / map / cluster walk, and retry once — from the prefetch
      // phase, since the new home needs warming too.
      op->relocated = true;
      ++op->epoch;  // orphan any prefetch completions still in flight
      op->prefetch_issued = 0;
      op->prefetch_done = 0;
      op->inflight = 0;
      regions_.invalidate(op->range.base);
      fabric_->resolve(op->range.base, [this, op](Result<RegionDescriptor> r) mutable {
        if (!r) {
          ins_.locks_failed->inc();
          op->cb(r.error());
          return;
        }
        op->desc = r.value();
        lock_prefetch_pump(op);
      });
      return;
    }
    ins_.locks_failed->inc();
    op->cb(s.error());
  });
}

void Node::unlock(const LockContext& ctx) {
  // Release must run on the lane that granted (its CM and page shard own
  // the hold state); the strided id encodes that lane.
  const unsigned target = lock_lane(ctx);
  if (target != lane()) {
    post_to_lane(target, [this, ctx] { unlock(ctx); });
    return;
  }
  auto it = active_locks_().find(ctx.id);
  if (it == active_locks_().end()) return;
  ActiveLock al = std::move(it->second);
  active_locks_().erase(it);
  auto* cm = cm_for(al.protocol);
  for (const auto& p : al.pages) {
    storage_().unpin(p);
    if (pages_().ensure(p).homed_locally && al.dirty.contains(p)) {
      (void)storage_().flush(p);
      journal_page(p);
    }
    if (cm != nullptr) cm->release(p, al.ctx.mode, al.dirty.contains(p));
  }
}

Result<Bytes> Node::read(const LockContext& ctx, std::uint64_t offset,
                         std::uint64_t len) {
  // Synchronous data access indexes the lock's owning lane directly: in the
  // sim every lane shares one OS thread, and live TCP clients route
  // read/write onto the lock's lane before calling in.
  auto& locks = active_locks_v_[lock_lane(ctx)];
  storage::StorageHierarchy& st = *storages_[lock_lane(ctx)];
  auto it = locks.find(ctx.id);
  if (it == locks.end()) return ErrorCode::kBadLock;
  const ActiveLock& al = it->second;
  if (offset + len > al.ctx.range.size) return ErrorCode::kBadArgument;
  ins_.reads->inc();
  const Micros t0 = now();
  const obs::TraceContext span =
      tracer_.begin_span("op:read", tracer_.current());

  Bytes out(len);
  const std::uint32_t psz = al.page_size;
  std::uint64_t done = 0;
  while (done < len) {
    const GlobalAddress at = al.ctx.range.base.plus(offset + done);
    const GlobalAddress page = at.page_floor(psz);
    const std::uint64_t in_page = page.distance_to(at);
    const std::uint64_t chunk = std::min<std::uint64_t>(len - done,
                                                        psz - in_page);
    const Bytes* data = st.get(page);
    if (data == nullptr || data->size() < in_page + chunk) {
      tracer_.end_span(span);
      return ErrorCode::kInternal;  // locked pages must be resident
    }
    std::copy_n(data->begin() + static_cast<long>(in_page), chunk,
                out.begin() + static_cast<long>(done));
    done += chunk;
  }
  tracer_.end_span(span);
  ins_.read_us->record(now() - t0);
  return out;
}

Status Node::write(const LockContext& ctx, std::uint64_t offset,
                   std::span<const std::uint8_t> data) {
  auto& locks = active_locks_v_[lock_lane(ctx)];
  storage::StorageHierarchy& st = *storages_[lock_lane(ctx)];
  auto it = locks.find(ctx.id);
  if (it == locks.end()) return ErrorCode::kBadLock;
  ActiveLock& al = it->second;
  if (!is_write(al.ctx.mode)) return ErrorCode::kBadLock;
  if (offset + data.size() > al.ctx.range.size) return ErrorCode::kBadArgument;
  ins_.writes->inc();
  const Micros t0 = now();
  const obs::TraceContext span =
      tracer_.begin_span("op:write", tracer_.current());

  const std::uint32_t psz = al.page_size;
  std::uint64_t done = 0;
  while (done < data.size()) {
    const GlobalAddress at = al.ctx.range.base.plus(offset + done);
    const GlobalAddress page = at.page_floor(psz);
    const std::uint64_t in_page = page.distance_to(at);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(data.size() - done, psz - in_page);
    Bytes* stored = st.get_mutable(page);
    if (stored == nullptr || stored->size() < in_page + chunk) {
      tracer_.end_span(span);
      return ErrorCode::kInternal;
    }
    std::copy_n(data.begin() + static_cast<long>(done), chunk,
                stored->begin() + static_cast<long>(in_page));
    al.dirty.insert(page);
    done += chunk;
  }
  tracer_.end_span(span);
  ins_.write_us->record(now() - t0);
  return {};
}

}  // namespace khz::core
