// Blocking client interface to Khazana.
//
// "Typically an application process (client) interacts with Khazana through
// library routines" (paper, Section 2). SyncClient is that library surface:
// the full operation suite as plain blocking calls. Two implementations
// exist — SimClient (pumps the discrete-event simulator until the
// operation's callback fires) and TcpClient in tcp_world.h (waits on a
// condition variable while the node's executor thread runs the operation).
// KFS and the object runtime are written against this interface and run
// unchanged over either transport.
#pragma once

#include "core/node.h"
#include "core/sim_world.h"

namespace khz::core {

class SyncClient {
 public:
  virtual ~SyncClient() = default;

  virtual Result<GlobalAddress> reserve(std::uint64_t size,
                                        const RegionAttrs& attrs) = 0;
  virtual Status unreserve(const GlobalAddress& base) = 0;
  virtual Status allocate(const AddressRange& range) = 0;
  virtual Status deallocate(const AddressRange& range) = 0;
  virtual Result<consistency::LockContext> lock(const AddressRange& range,
                                                consistency::LockMode mode) = 0;
  virtual void unlock(const consistency::LockContext& ctx) = 0;
  virtual Result<Bytes> read(const consistency::LockContext& ctx,
                             std::uint64_t offset, std::uint64_t len) = 0;
  virtual Status write(const consistency::LockContext& ctx,
                       std::uint64_t offset,
                       std::span<const std::uint8_t> data) = 0;
  virtual Result<RegionAttrs> getattr(const GlobalAddress& base) = 0;
  virtual Status setattr(const GlobalAddress& base,
                         const RegionAttrs& attrs) = 0;
  virtual Result<std::vector<NodeId>> locate(const GlobalAddress& addr) = 0;

  /// The node this client talks through.
  [[nodiscard]] virtual NodeId node_id() const = 0;

  // --- conveniences shared by all implementations -----------------------
  Result<GlobalAddress> create_region(std::uint64_t size,
                                      const RegionAttrs& attrs = {}) {
    auto base = reserve(size, attrs);
    if (!base) return base;
    const std::uint64_t aligned = (size + attrs.page_size - 1) /
                                  attrs.page_size * attrs.page_size;
    const Status s = allocate({base.value(), aligned});
    if (!s.ok()) return s.error();
    return base;
  }

  Status put(const AddressRange& range, std::span<const std::uint8_t> data) {
    auto ctx = lock(range, consistency::LockMode::kWrite);
    if (!ctx) return ctx.error();
    const Status s = write(ctx.value(), 0, data);
    unlock(ctx.value());
    return s;
  }

  Result<Bytes> get(const AddressRange& range) {
    auto ctx = lock(range, consistency::LockMode::kRead);
    if (!ctx) return ctx.error();
    auto r = read(ctx.value(), 0, range.size);
    unlock(ctx.value());
    return r;
  }
};

/// SyncClient over a SimWorld node.
class SimClient final : public SyncClient {
 public:
  SimClient(SimWorld& world, NodeId node) : world_(world), node_(node) {}

  Result<GlobalAddress> reserve(std::uint64_t size,
                                const RegionAttrs& attrs) override {
    return world_.reserve(node_, size, attrs);
  }
  Status unreserve(const GlobalAddress& base) override {
    return world_.unreserve(node_, base);
  }
  Status allocate(const AddressRange& range) override {
    return world_.allocate(node_, range);
  }
  Status deallocate(const AddressRange& range) override {
    return world_.deallocate(node_, range);
  }
  Result<consistency::LockContext> lock(
      const AddressRange& range, consistency::LockMode mode) override {
    return world_.lock(node_, range, mode);
  }
  void unlock(const consistency::LockContext& ctx) override {
    world_.unlock(node_, ctx);
  }
  Result<Bytes> read(const consistency::LockContext& ctx,
                     std::uint64_t offset, std::uint64_t len) override {
    return world_.read(node_, ctx, offset, len);
  }
  Status write(const consistency::LockContext& ctx, std::uint64_t offset,
               std::span<const std::uint8_t> data) override {
    return world_.write(node_, ctx, offset, data);
  }
  Result<RegionAttrs> getattr(const GlobalAddress& base) override {
    return world_.getattr(node_, base);
  }
  Status setattr(const GlobalAddress& base,
                 const RegionAttrs& attrs) override {
    return world_.setattr(node_, base, attrs);
  }
  Result<std::vector<NodeId>> locate(const GlobalAddress& addr) override {
    return world_.locate(node_, addr);
  }
  [[nodiscard]] NodeId node_id() const override { return node_; }

  [[nodiscard]] SimWorld& world() { return world_; }

 private:
  SimWorld& world_;
  NodeId node_;
};

}  // namespace khz::core
