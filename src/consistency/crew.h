// CREW: Concurrent Read Exclusive Write (paper, Section 5).
//
// "The only consistency model we currently support is a Concurrent Read
// Exclusive Write (CREW) protocol." — implemented here as a home-based
// (directory) invalidation protocol in the style of Li & Hudak, which is
// exactly the shape of Figure 2: the requester contacts the page's home,
// the home coordinates with the current owner / copyset, and data plus
// (for writes) ownership flow back to the requester.
//
// Per-page directory state (owner + copyset) lives at the page's home node
// in the shared PageDirectory. The protocol:
//   * read lock: local valid copy -> immediate grant; otherwise ReadReq to
//     home; home serves its copy or has the exclusive owner downgrade and
//     supply one (the 13 steps of Figure 2).
//   * write lock: local exclusive ownership -> immediate grant; otherwise
//     WriteReq to home; home invalidates the copyset, transfers ownership
//     and current data to the requester.
//   * conflicting grants are delayed, not refused: invalidations and
//     downgrades wait for local lock holders to release (Section 3.3, "it
//     delays granting the locks until the conflict is resolved").
//   * failures: requester retries the home then the region's alternate
//     homes; the home times out unresponsive sharers/owners and falls back
//     to its own latest copy.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "consistency/cm.h"

namespace khz::consistency {

class CrewManager final : public ConsistencyManager {
 public:
  explicit CrewManager(CmHost& host)
      : host_(host),
        round_us_(&host.metrics().histogram("crew.round_us")),
        batch_pages_(&host.metrics().histogram("crew.batch_pages")),
        batch_rpc_us_(&host.metrics().histogram("crew.batch_rpc_us")) {}

  [[nodiscard]] ProtocolId id() const override { return ProtocolId::kCrew; }
  [[nodiscard]] std::string_view name() const override { return "crew"; }

  void acquire(const GlobalAddress& page, LockMode mode,
               GrantCallback done) override;
  void prefetch(const GlobalAddress& page, LockMode mode,
                GrantCallback done) override;
  void release(const GlobalAddress& page, LockMode mode, bool dirty) override;
  void on_message(NodeId from, const GlobalAddress& page,
                  Decoder& d) override;
  void on_batch_fetch(NodeId from, Decoder& d) override;
  void on_batch_grant(NodeId from, Decoder& d) override;
  bool on_evict(const GlobalAddress& page) override;
  void on_node_down(NodeId node) override;

  /// Most page entries carried by one kPageBatchFetchReq; bigger fetch
  /// lists split into several batches.
  static constexpr std::size_t kMaxBatchPages = 64;
  /// Soft byte cap per kPageBatchFetchResp chunk: the home flushes the
  /// accumulated grants once the payload crosses this line.
  static constexpr std::size_t kBatchRespBytesCap = 1u << 20;

  /// Protocol message subtypes (first byte of the CM payload).
  enum class Sub : std::uint8_t {
    kReadReq = 1,    // requester -> home
    kWriteReq,       // requester -> home
    kData,           // -> requester: version, bytes (grants shared copy)
    kOwner,          // -> requester: version, bytes (grants ownership)
    kInvalidate,     // home -> sharer
    kInvAck,         // sharer -> home
    kDowngradeReq,   // home -> owner: carries requester id
    kDowngradeDone,  // owner -> home: version, bytes (home keeps a copy)
    kXferReq,        // home -> owner: carries requester id
    kXferDone,       // owner -> home: version
    kNack,           // home -> requester: ErrorCode
    kDropCopy,       // sharer -> home: I discarded my copy (eviction)
  };

 private:
  struct Waiter {
    LockMode mode;
    GrantCallback done;
    /// Prefetch waiters only need the page in a grantable state (data /
    /// ownership present); they complete without taking a hold, so they
    /// are grantable even while conflicting local holds exist.
    bool prefetch = false;
  };
  struct RemoteReq {
    NodeId from;
    LockMode mode;
  };
  struct PageState {
    // --- requester side ---
    std::deque<Waiter> waiters;
    bool request_outstanding = false;
    LockMode requested_mode = LockMode::kNone;
    std::uint64_t request_timer = 0;
    Micros request_sent_at = 0;  // for the crew.round_us histogram
    int retries = 0;
    // --- home side ---
    bool busy = false;  // one directory transaction at a time
    std::deque<RemoteReq> pending;
    std::set<NodeId> awaiting_inv_acks;
    NodeId in_flight_requester = kNoNode;
    LockMode in_flight_mode = LockMode::kNone;
    std::uint64_t home_timer = 0;
    // --- holder side ---
    bool deferred_invalidate = false;  // ack home once local holds drain
    NodeId deferred_inv_home = kNoNode;
    NodeId deferred_downgrade_to = kNoNode;  // serve reader after release
    NodeId deferred_xfer_to = kNoNode;       // transfer owner after release
  };

  PageState& state(const GlobalAddress& page) { return pages_[page]; }

  // Requester side.
  void try_grant_local(const GlobalAddress& page);
  void send_request(const GlobalAddress& page, LockMode mode,
                    bool batchable = false);
  void flush_fetch_batches();
  void on_request_timeout(GlobalAddress page);
  /// Fires after the post-timeout backoff; re-issues the round unless a
  /// late grant already served the waiters.
  void resend_request(const GlobalAddress& page);
  void fail_waiters(const GlobalAddress& page, ErrorCode e);

  // Home side. When `batch` is non-null, home_serve_data /
  // home_grant_ownership append the grant to the batch-response encoder
  // instead of sending a standalone kData/kOwner message.
  void home_handle(const GlobalAddress& page, NodeId from, LockMode mode);
  void home_start(const GlobalAddress& page, NodeId from, LockMode mode);
  void home_continue_after_invs(const GlobalAddress& page);
  void home_finish(const GlobalAddress& page);
  void home_drain_queue(const GlobalAddress& page);
  void home_serve_data(const GlobalAddress& page, NodeId to,
                       Encoder* batch = nullptr);
  void home_grant_ownership(const GlobalAddress& page, NodeId to,
                            Encoder* batch = nullptr);
  void on_home_timeout(GlobalAddress page);

  // Holder side.
  void holder_apply_invalidate(const GlobalAddress& page, NodeId home);
  void holder_apply_downgrade(const GlobalAddress& page, NodeId requester);
  void holder_apply_xfer(const GlobalAddress& page, NodeId requester);
  void maybe_run_deferred(const GlobalAddress& page);

  void send(NodeId to, const GlobalAddress& page, Sub sub,
            const std::function<void(Encoder&)>& body = {});
  void install_data(const GlobalAddress& page, Version version, Bytes data,
                    storage::PageState new_state);

  /// Records how long each home round trip (request -> Data/Owner/Nack)
  /// took, the protocol-level cost of Figure 2's steps 5-10.
  void finish_round(PageState& st);

  CmHost& host_;
  obs::Histogram* round_us_;
  obs::Histogram* batch_pages_;
  obs::Histogram* batch_rpc_us_;
  std::map<GlobalAddress, PageState> pages_;

  /// Same-turn request coalescing: first-attempt fetches issued within one
  /// execution turn (e.g. a multi-page lock's prefetch fan-out) accumulate
  /// here per (target, route key) and flush as one kPageBatchFetchReq on a
  /// zero-delay timer. Batches never mix route keys — the receiving
  /// transport dispatches a whole batch onto one lane. Retransmissions
  /// bypass the buffer (per-page legacy path).
  struct PendingFetch {
    GlobalAddress page;
    LockMode mode;
  };
  std::map<std::pair<NodeId, std::uint64_t>, std::vector<PendingFetch>>
      fetch_batch_;
  bool fetch_flush_scheduled_ = false;
  std::uint64_t next_batch_seq_ = 1;
  /// Send time per in-flight batch seq (for crew.batch_rpc_us); entries
  /// die on the first response chunk or get pruned once the map is large.
  std::map<std::uint64_t, Micros> batch_sent_at_;
};

}  // namespace khz::consistency
