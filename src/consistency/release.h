// Release consistency (paper, Sections 3.3 and 3.1).
//
// "For example, for the address map tree nodes, we use a release consistent
// protocol" — readers may use a cached (possibly momentarily stale) copy
// with no communication; writers buffer modifications locally and propagate
// them when they release the lock. The page's home node is the permanent
// owner and update serialization point: write-backs flow to the home, which
// orders them, bumps the version, and multicasts the new contents to the
// sharer set.
//
// Failure semantics follow Section 3.5: a fetch (resource acquisition) that
// cannot reach the home fails back to the caller after retries, while a
// write-back (resource release) is retried in the background until it
// succeeds.
#pragma once

#include <deque>
#include <map>

#include "consistency/cm.h"

namespace khz::consistency {

class ReleaseManager final : public ConsistencyManager {
 public:
  explicit ReleaseManager(CmHost& host) : host_(host) {}

  [[nodiscard]] ProtocolId id() const override {
    return ProtocolId::kRelease;
  }
  [[nodiscard]] std::string_view name() const override { return "release"; }

  void acquire(const GlobalAddress& page, LockMode mode,
               GrantCallback done) override;
  void release(const GlobalAddress& page, LockMode mode, bool dirty) override;
  void on_message(NodeId from, const GlobalAddress& page,
                  Decoder& d) override;
  bool on_evict(const GlobalAddress& page) override;
  void on_node_down(NodeId node) override;

  enum class Sub : std::uint8_t {
    kFetchReq = 1,  // requester -> home
    kData,          // home -> requester: version, bytes
    kWriteBack,     // writer -> home: bytes
    kWriteBackAck,  // home -> writer
    kUpdate,        // home -> sharers: version, bytes
    kDropCopy,      // sharer -> home
    kNack,          // home -> requester: ErrorCode
  };

  /// Number of write-backs queued for background retry (observability).
  [[nodiscard]] std::size_t pending_writebacks() const {
    return pending_writebacks_;
  }

 private:
  struct Waiter {
    LockMode mode;
    GrantCallback done;
  };
  struct PageState {
    std::deque<Waiter> waiters;
    bool fetch_outstanding = false;
    std::uint64_t fetch_timer = 0;
    int retries = 0;
    // Background-retried write-back (release-side failure handling).
    bool writeback_pending = false;
    Bytes writeback_data;
    std::uint64_t writeback_timer = 0;
  };

  PageState& state(const GlobalAddress& page) { return pages_[page]; }
  void try_grant(const GlobalAddress& page);
  void send_fetch(const GlobalAddress& page);
  void on_fetch_timeout(GlobalAddress page);
  void send_writeback(const GlobalAddress& page);
  void send(NodeId to, const GlobalAddress& page, Sub sub,
            const std::function<void(Encoder&)>& body = {});

  CmHost& host_;
  std::map<GlobalAddress, PageState> pages_;
  std::size_t pending_writebacks_ = 0;
};

}  // namespace khz::consistency
