#include "consistency/eventual.h"

#include <algorithm>

namespace khz::consistency {

namespace {
using PS = storage::PageState;
}

EventualManager::EventualManager(CmHost& host) : host_(host) {
  host_.schedule(kAntiEntropyInterval, [this] { anti_entropy_tick(); });
}

void EventualManager::send(NodeId to, const GlobalAddress& page, Sub sub,
                           const std::function<void(Encoder&)>& body) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(sub));
  if (body) body(e);
  host_.send_cm(to, ProtocolId::kEventual, page, std::move(e).take());
}

void EventualManager::acquire(const GlobalAddress& page, LockMode mode,
                              GrantCallback done) {
  auto& st = state(page);
  st.waiters.push_back({mode, std::move(done)});
  try_grant(page);
}

void EventualManager::try_grant(const GlobalAddress& page) {
  auto& st = state(page);
  auto& info = host_.page_info(page);
  const bool is_home = host_.home_of(page) == host_.self();

  if (host_.page_data(page) == nullptr) {
    if (is_home) {
      host_.store_page(page, Bytes(host_.page_size_of(page), 0));
      info.homed_locally = true;
      info.owner = host_.self();
    } else {
      if (!st.fetch_outstanding) send_fetch(page);
      return;
    }
  }
  if (info.state == PS::kInvalid) info.state = PS::kShared;

  std::deque<Waiter> ready;
  ready.swap(st.waiters);
  for (auto& w : ready) {
    if (w.mode == LockMode::kRead) {
      ++info.read_holds;
    } else {
      ++info.write_holds;
    }
    w.done(Status{});
  }
}

void EventualManager::send_fetch(const GlobalAddress& page) {
  auto& st = state(page);
  st.fetch_outstanding = true;
  NodeId target = host_.home_of(page);
  if (st.retries > 0) {
    const auto alts = host_.alternate_homes(page);
    if (!alts.empty()) {
      target = alts[static_cast<std::size_t>(st.retries - 1) % alts.size()];
    }
  }
  send(target, page, Sub::kFetchReq);
  st.fetch_timer = host_.schedule(host_.rpc_timeout(), [this, page] {
    auto& s = state(page);
    if (!s.fetch_outstanding) return;
    s.fetch_timer = 0;
    s.fetch_outstanding = false;
    if (++s.retries > host_.max_retries()) {
      s.retries = 0;
      std::deque<Waiter> waiters;
      waiters.swap(s.waiters);
      for (auto& w : waiters) w.done(ErrorCode::kUnreachable);
      return;
    }
    send_fetch(page);
  });
}

void EventualManager::release(const GlobalAddress& page, LockMode mode,
                              bool dirty) {
  auto& info = host_.page_info(page);
  if (mode == LockMode::kRead) {
    if (info.read_holds > 0) --info.read_holds;
  } else {
    if (info.write_holds > 0) --info.write_holds;
  }
  if (!is_write(mode) || !dirty) return;

  auto& st = state(page);
  st.stamp = Stamp{st.stamp.counter + 1, host_.self()};
  info.version = st.stamp.counter;

  // Epidemic push: the home plus kPushFanout random peers.
  std::set<NodeId> targets;
  const NodeId home = host_.home_of(page);
  if (home != host_.self()) targets.insert(home);
  const auto members = host_.membership();
  if (!members.empty()) {
    for (int i = 0; i < kPushFanout; ++i) {
      const NodeId pick =
          members[host_.rng().below(members.size())];
      if (pick != host_.self()) targets.insert(pick);
    }
  }
  for (NodeId n : targets) gossip_to(n, page);
}

void EventualManager::gossip_to(NodeId peer, const GlobalAddress& page) {
  const Bytes* data = host_.page_data(page);
  if (data == nullptr) return;
  const Stamp s = state(page).stamp;
  send(peer, page, Sub::kGossip, [&](Encoder& e) {
    e.u64(s.counter);
    e.u32(s.writer);
    e.bytes(*data);
  });
}

void EventualManager::anti_entropy_tick() {
  const auto members = host_.membership();
  if (members.size() > 1) {
    // Compare digests for a random sample of locally known pages with one
    // random peer.
    NodeId peer = members[host_.rng().below(members.size())];
    while (peer == host_.self() && members.size() > 1) {
      peer = members[host_.rng().below(members.size())];
    }
    if (peer != host_.self()) {
      for (const auto& [page, st] : pages_) {
        if (host_.page_data(page) == nullptr) continue;
        const Stamp s = st.stamp;
        send(peer, page, Sub::kDigest, [&](Encoder& e) {
          e.u64(s.counter);
          e.u32(s.writer);
        });
      }
    }
  }
  host_.schedule(kAntiEntropyInterval, [this] { anti_entropy_tick(); });
}

void EventualManager::on_message(NodeId from, const GlobalAddress& page,
                                 Decoder& d) {
  const auto sub = static_cast<Sub>(d.u8());
  auto& st = state(page);
  auto& info = host_.page_info(page);

  switch (sub) {
    case Sub::kFetchReq: {
      if (host_.page_data(page) == nullptr) {
        if (host_.home_of(page) == host_.self()) {
          host_.store_page(page, Bytes(host_.page_size_of(page), 0));
          info.homed_locally = true;
          info.owner = host_.self();
          if (info.state == PS::kInvalid) {
            info.state = PS::kShared;
          }
        } else {
          send(from, page, Sub::kNack, [](Encoder& e) {
            e.u8(static_cast<std::uint8_t>(ErrorCode::kNotFound));
          });
          break;
        }
      }
      info.sharers.insert(from);
      gossip_to(from, page);
      break;
    }

    case Sub::kGossip: {
      Stamp s;
      s.counter = d.u64();
      s.writer = d.u32();
      Bytes data = d.bytes();
      if (st.fetch_timer != 0) {
        host_.cancel(st.fetch_timer);
        st.fetch_timer = 0;
      }
      st.fetch_outstanding = false;
      st.retries = 0;
      // Install when strictly newer, or on a cold miss (no local copy yet,
      // whatever the stamp says — a fresh replica of the initial version).
      const bool cold = host_.page_data(page) == nullptr;
      if ((s > st.stamp || cold) && !info.locked()) {
        st.stamp = std::max(st.stamp, s);
        info.version = st.stamp.counter;
        host_.store_page(page, std::move(data));
        info.state = PS::kShared;
      }
      info.sharers.insert(from);
      try_grant(page);
      break;
    }

    case Sub::kDigest: {
      Stamp s;
      s.counter = d.u64();
      s.writer = d.u32();
      if (s > st.stamp) {
        send(from, page, Sub::kWant);
      } else if (st.stamp > s) {
        gossip_to(from, page);
      }
      break;
    }

    case Sub::kWant: {
      gossip_to(from, page);
      break;
    }

    case Sub::kNack: {
      const auto e = static_cast<ErrorCode>(d.u8());
      if (st.fetch_timer != 0) {
        host_.cancel(st.fetch_timer);
        st.fetch_timer = 0;
      }
      st.fetch_outstanding = false;
      std::deque<Waiter> waiters;
      waiters.swap(st.waiters);
      for (auto& w : waiters) w.done(e);
      break;
    }
  }
}

bool EventualManager::on_evict(const GlobalAddress& page) {
  auto& info = host_.page_info(page);
  if (info.locked()) return false;
  if (host_.home_of(page) == host_.self()) return false;
  info.state = PS::kInvalid;
  return true;
}

void EventualManager::on_node_down(NodeId node) {
  for (auto& [page, st] : pages_) {
    host_.page_info(page).sharers.erase(node);
  }
}

}  // namespace khz::consistency
