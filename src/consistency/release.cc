#include "consistency/release.h"

#include <algorithm>

namespace khz::consistency {

namespace {
using PS = storage::PageState;
}

void ReleaseManager::send(NodeId to, const GlobalAddress& page, Sub sub,
                          const std::function<void(Encoder&)>& body) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(sub));
  if (body) body(e);
  host_.send_cm(to, ProtocolId::kRelease, page, std::move(e).take());
}

void ReleaseManager::acquire(const GlobalAddress& page, LockMode mode,
                             GrantCallback done) {
  auto& st = state(page);
  st.waiters.push_back({mode, std::move(done)});
  try_grant(page);
}

void ReleaseManager::try_grant(const GlobalAddress& page) {
  auto& st = state(page);
  auto& info = host_.page_info(page);
  const bool is_home = host_.home_of(page) == host_.self();

  // Under release consistency any node with a valid (possibly stale) copy
  // may grant any mode immediately; there is no exclusive state. The only
  // reason to wait is having no copy at all.
  const bool have_copy =
      info.state != PS::kInvalid || host_.page_data(page) != nullptr ||
      is_home;
  if (!have_copy) {
    if (!st.fetch_outstanding) send_fetch(page);
    return;
  }
  if (is_home && host_.page_data(page) == nullptr) {
    // First touch at the home: materialize a zero page.
    host_.store_page(page, Bytes(host_.page_size_of(page), 0));
    info.owner = host_.self();
    info.homed_locally = true;
  }
  if (info.state == PS::kInvalid) info.state = PS::kShared;

  std::deque<Waiter> ready;
  ready.swap(st.waiters);
  for (auto& w : ready) {
    if (w.mode == LockMode::kRead) {
      ++info.read_holds;
    } else {
      ++info.write_holds;
    }
    w.done(Status{});
  }
}

void ReleaseManager::send_fetch(const GlobalAddress& page) {
  auto& st = state(page);
  st.fetch_outstanding = true;
  NodeId target = host_.home_of(page);
  if (st.retries > 0) {
    const auto alts = host_.alternate_homes(page);
    if (!alts.empty()) {
      target = alts[static_cast<std::size_t>(st.retries - 1) % alts.size()];
    }
  }
  send(target, page, Sub::kFetchReq);
  st.fetch_timer = host_.schedule(host_.rpc_timeout(),
                                  [this, page] { on_fetch_timeout(page); });
}

void ReleaseManager::on_fetch_timeout(GlobalAddress page) {
  auto& st = state(page);
  if (!st.fetch_outstanding) return;
  st.fetch_timer = 0;
  st.fetch_outstanding = false;
  if (++st.retries > host_.max_retries()) {
    st.retries = 0;
    std::deque<Waiter> waiters;
    waiters.swap(st.waiters);
    for (auto& w : waiters) w.done(ErrorCode::kUnreachable);
    return;
  }
  send_fetch(page);
}

void ReleaseManager::release(const GlobalAddress& page, LockMode mode,
                             bool dirty) {
  auto& info = host_.page_info(page);
  if (mode == LockMode::kRead) {
    if (info.read_holds > 0) --info.read_holds;
  } else {
    if (info.write_holds > 0) --info.write_holds;
  }
  if (!is_write(mode) || !dirty) return;

  info.dirty = true;
  if (host_.home_of(page) == host_.self()) {
    // Local release at the home: bump the version and propagate.
    ++info.version;
    info.dirty = false;
    const Bytes* data = host_.page_data(page);
    if (data == nullptr) return;
    for (NodeId n : info.sharers) {
      if (n == host_.self()) continue;
      send(n, page, Sub::kUpdate, [&](Encoder& e) {
        e.u64(info.version);
        e.bytes(*data);
      });
    }
    host_.note_copyset_change(page);
    return;
  }

  // Remote writer: ship the whole page back to the home. Queued and
  // retried in the background on failure — release-side errors are never
  // reflected to the client (Section 3.5).
  auto& st = state(page);
  const Bytes* data = host_.page_data(page);
  if (data == nullptr) return;
  if (!st.writeback_pending) ++pending_writebacks_;
  st.writeback_pending = true;
  st.writeback_data = *data;
  send_writeback(page);
}

void ReleaseManager::send_writeback(const GlobalAddress& page) {
  auto& st = state(page);
  if (!st.writeback_pending) return;
  send(host_.home_of(page), page, Sub::kWriteBack,
       [&st](Encoder& e) { e.bytes(st.writeback_data); });
  st.writeback_timer = host_.schedule(host_.rpc_timeout(), [this, page] {
    // No ack yet: keep retrying in the background, forever.
    auto& s = state(page);
    s.writeback_timer = 0;
    if (s.writeback_pending) send_writeback(page);
  });
}

void ReleaseManager::on_message(NodeId from, const GlobalAddress& page,
                                Decoder& d) {
  const auto sub = static_cast<Sub>(d.u8());
  auto& st = state(page);
  auto& info = host_.page_info(page);

  switch (sub) {
    case Sub::kFetchReq: {
      if (host_.home_of(page) != host_.self() &&
          host_.page_data(page) == nullptr) {
        send(from, page, Sub::kNack, [](Encoder& e) {
          e.u8(static_cast<std::uint8_t>(ErrorCode::kNotFound));
        });
        break;
      }
      if (host_.page_data(page) == nullptr) {
        host_.store_page(page, Bytes(host_.page_size_of(page), 0));
        info.homed_locally = true;
        info.owner = host_.self();
        if (info.state == PS::kInvalid) info.state = PS::kShared;
      }
      const Bytes* data = host_.page_data(page);
      info.sharers.insert(from);
      send(from, page, Sub::kData, [&](Encoder& e) {
        e.u64(info.version);
        e.bytes(*data);
      });
      host_.note_copyset_change(page);
      break;
    }

    case Sub::kData: {
      const Version v = d.u64();
      Bytes data = d.bytes();
      if (st.fetch_timer != 0) {
        host_.cancel(st.fetch_timer);
        st.fetch_timer = 0;
      }
      st.fetch_outstanding = false;
      st.retries = 0;
      if (v >= info.version) {
        host_.store_page(page, std::move(data));
        info.version = v;
        info.state = PS::kShared;
      }
      try_grant(page);
      break;
    }

    case Sub::kWriteBack: {
      Bytes data = d.bytes();
      // Home orders concurrent write-backs by arrival (last-writer-wins at
      // page granularity; map mutations are routed through one node so
      // this never loses structured updates in practice — see DESIGN.md).
      host_.store_page(page, std::move(data));
      ++info.version;
      info.homed_locally = true;
      info.owner = host_.self();
      if (info.state == PS::kInvalid) info.state = PS::kShared;
      info.sharers.insert(from);
      send(from, page, Sub::kWriteBackAck);
      const Bytes* stored = host_.page_data(page);
      for (NodeId n : info.sharers) {
        if (n == host_.self() || n == from) continue;
        send(n, page, Sub::kUpdate, [&](Encoder& e) {
          e.u64(info.version);
          e.bytes(*stored);
        });
      }
      host_.note_copyset_change(page);
      break;
    }

    case Sub::kWriteBackAck: {
      if (st.writeback_timer != 0) {
        host_.cancel(st.writeback_timer);
        st.writeback_timer = 0;
      }
      if (st.writeback_pending) {
        st.writeback_pending = false;
        st.writeback_data.clear();
        if (pending_writebacks_ > 0) --pending_writebacks_;
      }
      info.dirty = false;
      break;
    }

    case Sub::kUpdate: {
      const Version v = d.u64();
      Bytes data = d.bytes();
      if (v > info.version && !info.locked() && !st.writeback_pending) {
        host_.store_page(page, std::move(data));
        info.version = v;
        info.state = PS::kShared;
      }
      break;
    }

    case Sub::kDropCopy: {
      info.sharers.erase(from);
      host_.note_copyset_change(page);
      break;
    }

    case Sub::kNack: {
      const auto e = static_cast<ErrorCode>(d.u8());
      if (st.fetch_timer != 0) {
        host_.cancel(st.fetch_timer);
        st.fetch_timer = 0;
      }
      st.fetch_outstanding = false;
      std::deque<Waiter> waiters;
      waiters.swap(st.waiters);
      for (auto& w : waiters) w.done(e);
      break;
    }
  }
}

bool ReleaseManager::on_evict(const GlobalAddress& page) {
  auto& info = host_.page_info(page);
  if (info.locked()) return false;
  if (host_.home_of(page) == host_.self()) return false;  // authoritative
  auto it = pages_.find(page);
  if (it != pages_.end() && it->second.writeback_pending) return false;
  if (info.state != PS::kInvalid) {
    send(host_.home_of(page), page, Sub::kDropCopy);
    info.state = PS::kInvalid;
  }
  return true;
}

void ReleaseManager::on_node_down(NodeId node) {
  for (auto& [page, st] : pages_) {
    host_.page_info(page).sharers.erase(node);
  }
}

}  // namespace khz::consistency
