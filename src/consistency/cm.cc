#include "consistency/cm.h"

#include "consistency/crew.h"
#include "consistency/eventual.h"
#include "consistency/release.h"

namespace khz::consistency {

obs::MetricsRegistry& CmHost::metrics() {
  static obs::MetricsRegistry fallback;
  return fallback;
}

void CmHost::send_page_batch(NodeId peer, ProtocolId protocol, bool request,
                             Bytes payload, std::uint64_t route_key) {
  // Default host has no batch channel: drop. Protocols treat batch sends
  // as best-effort and fall back to per-page requests on timeout.
  (void)peer;
  (void)protocol;
  (void)request;
  (void)payload;
  (void)route_key;
}

std::string_view to_string(ProtocolId p) {
  switch (p) {
    case ProtocolId::kCrew: return "crew";
    case ProtocolId::kRelease: return "release";
    case ProtocolId::kEventual: return "eventual";
  }
  return "?";
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

void ProtocolRegistry::register_protocol(ProtocolId id, Factory factory) {
  for (auto& [existing, f] : factories_) {
    if (existing == id) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(id, std::move(factory));
}

std::unique_ptr<ConsistencyManager> ProtocolRegistry::create(
    ProtocolId id, CmHost& host) const {
  for (const auto& [existing, f] : factories_) {
    if (existing == id) return f(host);
  }
  return nullptr;
}

bool ProtocolRegistry::known(ProtocolId id) const {
  for (const auto& [existing, _] : factories_) {
    if (existing == id) return true;
  }
  return false;
}

void register_builtin_protocols() {
  auto& r = ProtocolRegistry::instance();
  r.register_protocol(ProtocolId::kCrew, [](CmHost& h) {
    return std::make_unique<CrewManager>(h);
  });
  r.register_protocol(ProtocolId::kRelease, [](CmHost& h) {
    return std::make_unique<ReleaseManager>(h);
  });
  r.register_protocol(ProtocolId::kEventual, [](CmHost& h) {
    return std::make_unique<EventualManager>(h);
  });
}

}  // namespace khz::consistency
