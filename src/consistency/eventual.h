// Eventual consistency (paper, Section 3.3 / Section 7).
//
// "We plan to experiment with even more relaxed models for applications
// such as web caches and some database query engines... Such applications
// typically can tolerate data that is temporarily out-of-date (i.e., one or
// two versions old) as long as they get fast response." The paper also
// points at Bayou's weak protocol for mobile data.
//
// This protocol grants every lock immediately from whatever copy is at
// hand (fetching one only on a true cold miss), stamps each write with a
// Lamport (counter, writer) pair, pushes new values epidemically to a few
// peers on release, and runs periodic anti-entropy digests so every replica
// converges to the last-writer-wins value. Staleness is observable and is
// measured by bench_consistency.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "consistency/cm.h"

namespace khz::consistency {

class EventualManager final : public ConsistencyManager {
 public:
  explicit EventualManager(CmHost& host);

  [[nodiscard]] ProtocolId id() const override {
    return ProtocolId::kEventual;
  }
  [[nodiscard]] std::string_view name() const override { return "eventual"; }

  void acquire(const GlobalAddress& page, LockMode mode,
               GrantCallback done) override;
  void release(const GlobalAddress& page, LockMode mode, bool dirty) override;
  void on_message(NodeId from, const GlobalAddress& page,
                  Decoder& d) override;
  bool on_evict(const GlobalAddress& page) override;
  void on_node_down(NodeId node) override;

  enum class Sub : std::uint8_t {
    kFetchReq = 1,  // cold miss -> home
    kGossip,        // counter, writer, bytes: install if newer
    kDigest,        // counter, writer: anti-entropy probe
    kWant,          // "your digest is newer than my copy; send it"
    kNack,
  };

  /// Gossip fan-out on each dirty release.
  static constexpr int kPushFanout = 2;
  /// Anti-entropy period (virtual/real microseconds).
  static constexpr Micros kAntiEntropyInterval = 50'000;

 private:
  struct Stamp {
    std::uint64_t counter = 0;
    NodeId writer = kNoNode;
    friend auto operator<=>(const Stamp&, const Stamp&) = default;
  };
  struct Waiter {
    LockMode mode;
    GrantCallback done;
  };
  struct PageState {
    Stamp stamp;
    std::deque<Waiter> waiters;
    bool fetch_outstanding = false;
    std::uint64_t fetch_timer = 0;
    int retries = 0;
  };

  PageState& state(const GlobalAddress& page) { return pages_[page]; }
  void try_grant(const GlobalAddress& page);
  void send_fetch(const GlobalAddress& page);
  void gossip_to(NodeId peer, const GlobalAddress& page);
  void anti_entropy_tick();
  void send(NodeId to, const GlobalAddress& page, Sub sub,
            const std::function<void(Encoder&)>& body = {});

  CmHost& host_;
  std::map<GlobalAddress, PageState> pages_;
};

}  // namespace khz::consistency
