// Lock modes and lock contexts (paper, Section 2).
//
// "lock and unlock parts of regions in a specified mode (e.g., read-only,
// read-write etc). The lock operation returns a lock context, which must be
// used during subsequent read and write operations to the region. Lock
// operations indicate the caller's intention to access a portion of a
// region. These operations do not themselves enforce any concurrency
// control policy... The consistency protocol ultimately decides the
// concurrency control policy based on these stated intentions."
#pragma once

#include <cstdint>
#include <string_view>

#include "common/global_address.h"

namespace khz::consistency {

enum class LockMode : std::uint8_t {
  kNone = 0,
  kRead,         // read-only intention
  kWrite,        // read-write intention (exclusive under CREW)
  kWriteShared,  // concurrent-writer intention (release/eventual protocols)
};

[[nodiscard]] constexpr bool is_write(LockMode m) {
  return m == LockMode::kWrite || m == LockMode::kWriteShared;
}

[[nodiscard]] constexpr std::string_view to_string(LockMode m) {
  switch (m) {
    case LockMode::kNone: return "none";
    case LockMode::kRead: return "read";
    case LockMode::kWrite: return "write";
    case LockMode::kWriteShared: return "write-shared";
  }
  return "?";
}

/// Handle returned by lock(); required by read()/write()/unlock().
struct LockContext {
  std::uint64_t id = 0;
  AddressRange range;
  LockMode mode = LockMode::kNone;

  [[nodiscard]] bool valid() const { return id != 0; }
};

}  // namespace khz::consistency
