// Consistency Manager framework (paper, Section 3.3).
//
// "Program modules called Consistency Managers (CMs) run at each of the
// replica sites and cooperate to implement the required level of
// consistency among the replicas... [Khazana] obtains the local consistency
// manager's permission before granting such requests. The CM, in response
// to such requests, checks if they conflict with ongoing operations. If
// necessary, it delays granting the locks until the conflict is resolved."
//
// The framework follows Brun-Cottan & Makpangou's separation: generic
// Khazana machinery (storage, location, messaging) is provided to the
// protocol through the CmHost interface; everything protocol-specific lives
// in a ConsistencyManager implementation. New protocols plug in by
// registering a factory ("plugging in new protocols or consistency managers
// is only a matter of registering them with Khazana", Section 5).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/types.h"
#include "consistency/lock.h"
#include "obs/metrics.h"
#include "storage/page_directory.h"

namespace khz::consistency {

/// Consistency protocol selector stored in region attributes.
enum class ProtocolId : std::uint8_t {
  kCrew = 1,      // Concurrent Read Exclusive Write (the paper's prototype)
  kRelease = 2,   // release consistency (used for the address map)
  kEventual = 3,  // Bayou-like last-writer-wins gossip
};

[[nodiscard]] std::string_view to_string(ProtocolId p);

/// Services Khazana provides to a protocol implementation.
class CmHost {
 public:
  virtual ~CmHost() = default;

  [[nodiscard]] virtual NodeId self() const = 0;

  /// Sends a protocol payload to the peer CM for `page` on `peer`.
  virtual void send_cm(NodeId peer, ProtocolId protocol,
                       const GlobalAddress& page, Bytes payload) = 0;

  /// Page metadata entry (sharers, owner, holds, state, version).
  virtual storage::PageInfo& page_info(const GlobalAddress& page) = 0;

  /// Local copy of the page contents, or nullptr if not resident.
  virtual const Bytes* page_data(const GlobalAddress& page) = 0;

  /// Installs a copy of the page locally (into the storage hierarchy).
  virtual void store_page(const GlobalAddress& page, Bytes data) = 0;

  /// Removes the local copy (invalidation).
  virtual void drop_page(const GlobalAddress& page) = 0;

  /// Region attributes the protocol needs, resolved from cached
  /// descriptors. `home_of` is the primary home; `alternate_homes`
  /// lists the others (paper: a region has a non-exhaustive list of
  /// home nodes).
  [[nodiscard]] virtual NodeId home_of(const GlobalAddress& page) = 0;
  /// Authoritative: does THIS node home the page's region right now?
  /// (home_of may fall back to heuristics; this never does.)
  [[nodiscard]] virtual bool is_home(const GlobalAddress& page) = 0;
  [[nodiscard]] virtual std::vector<NodeId> alternate_homes(
      const GlobalAddress& page) = 0;
  [[nodiscard]] virtual std::uint32_t page_size_of(
      const GlobalAddress& page) = 0;
  [[nodiscard]] virtual std::uint32_t min_replicas_of(
      const GlobalAddress& page) = 0;

  /// All nodes currently believed to be members.
  [[nodiscard]] virtual std::vector<NodeId> membership() = 0;

  /// True while `page`'s region is rebuilding its min-replica guarantee
  /// after a home fail-over promotion (docs/recovery.md): the home-side
  /// protocol must hold write grants — handing out exclusive ownership
  /// before the copyset recovers would reopen the single-copy window the
  /// replication factor exists to close. Reads are never gated. Defaulted
  /// to false so hosts without fail-over need not implement it.
  [[nodiscard]] virtual bool write_gated(const GlobalAddress& page) {
    (void)page;
    return false;
  }

  /// The protocol changed the page's copyset (ownership transfer, dropped
  /// replica, dirty release). The node uses this to re-check the region's
  /// minimum-replica guarantee (paper, Section 3.5).
  virtual void note_copyset_change(const GlobalAddress& page) = 0;

  [[nodiscard]] virtual Micros now() const = 0;
  virtual std::uint64_t schedule(Micros delay, std::function<void()> fn) = 0;
  virtual void cancel(std::uint64_t timer_id) = 0;
  [[nodiscard]] virtual Rng& rng() = 0;

  /// How long a protocol should wait on a single remote exchange before
  /// retrying, and how many times, before reporting failure upward.
  [[nodiscard]] virtual Micros rpc_timeout() const = 0;
  [[nodiscard]] virtual int max_retries() const = 0;

  /// Delay before a protocol's retry `attempt` (1-based count of failures
  /// so far). Real hosts answer with their RPC engine's capped jittered
  /// exponential backoff so protocol rounds and plain RPCs share one
  /// policy; the default (0 = resend immediately) preserves the legacy
  /// behavior for minimal hosts and keeps unit-test fakes deterministic.
  [[nodiscard]] virtual Micros retry_backoff(int attempt) {
    (void)attempt;
    return 0;
  }

  /// Failure-detector verdict for `node`; protocols steer requests away
  /// from peers the detector has declared dead instead of burning a full
  /// round timeout on them. Defaulted to "nobody is down".
  [[nodiscard]] virtual bool is_down(NodeId node) {
    (void)node;
    return false;
  }

  /// The host node's metric registry; protocols record their round
  /// latencies and counters here. Defaulted (to a process-wide registry)
  /// so minimal hosts — test fakes — need not provide one.
  [[nodiscard]] virtual obs::MetricsRegistry& metrics();

  /// Sends a batched data-plane message (kPageBatchFetchReq when `request`,
  /// else kPageBatchFetchResp) whose payload covers many pages at once; the
  /// receiver routes it to the protocol's on_batch_fetch/on_batch_grant.
  /// `route_key` is the lane-routing key every page in the batch shares
  /// (route_key_of of any of them) — the receiving transport demuxes the
  /// batch onto that key's lane. Defaulted to a drop so minimal hosts need
  /// not implement batching: protocols must treat batch sends as
  /// best-effort and recover through their per-page retry timers.
  virtual void send_page_batch(NodeId peer, ProtocolId protocol, bool request,
                               Bytes payload, std::uint64_t route_key = 0);

  /// Lane-routing key for `page`: the containing region's base address (or
  /// 0 for control-plane pages such as the address map, which are confined
  /// to lane 0). Protocols batching across pages must only merge pages that
  /// share a route key — the receiver dispatches the whole batch onto one
  /// lane. Defaulted to 0 (single-lane hosts and test fakes).
  [[nodiscard]] virtual std::uint64_t route_key_of(const GlobalAddress& page) {
    (void)page;
    return 0;
  }
};

using GrantCallback = std::function<void(Status)>;

/// One protocol instance per (node, protocol); page state is keyed
/// internally by address.
class ConsistencyManager {
 public:
  virtual ~ConsistencyManager() = default;

  /// The ProtocolId this instance implements (matches its registry key).
  [[nodiscard]] virtual ProtocolId id() const = 0;
  /// Human-readable protocol name for logs and metrics labels.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Client declared intent to access `page` in `mode`. The CM must
  /// eventually invoke `done` (possibly immediately) with the grant
  /// decision. A granted lock increments the page's hold counters.
  virtual void acquire(const GlobalAddress& page, LockMode mode,
                       GrantCallback done) = 0;

  /// Best-effort warm-up: bring `page` into a state where a subsequent
  /// acquire(mode) can be granted without a remote round trip (data for
  /// reads, ownership for writes) WITHOUT taking a lock hold. Many
  /// prefetches may run concurrently — since no holds are taken, concurrent
  /// overlapping prefetchers cannot deadlock — which is what lets a
  /// multi-page lock pipeline its N remote rounds into ~1. `done` fires
  /// when the warm-up resolves; its status is advisory (the authoritative
  /// grant decision is the later acquire). Default: nothing to warm up.
  virtual void prefetch(const GlobalAddress& page, LockMode mode,
                        GrantCallback done) {
    (void)page;
    (void)mode;
    done(Status{});
  }

  /// Batched data-plane messages (see CmHost::send_page_batch): a request
  /// carrying a page list, and the multi-grant response. Decoders are
  /// positioned after the protocol id byte. Default: protocol does not
  /// batch; ignore (per-page retries recover).
  virtual void on_batch_fetch(NodeId from, Decoder& d) {
    (void)from;
    (void)d;
  }
  virtual void on_batch_grant(NodeId from, Decoder& d) {
    (void)from;
    (void)d;
  }

  /// Lock released. `dirty` reports whether the holder wrote the page.
  virtual void release(const GlobalAddress& page, LockMode mode,
                       bool dirty) = 0;

  /// Protocol message from the peer CM on `from`.
  virtual void on_message(NodeId from, const GlobalAddress& page,
                          Decoder& d) = 0;

  /// Storage wants to drop the local copy entirely. Return false to veto
  /// (e.g. this is the last copy anywhere). A true return must leave the
  /// sharer lists consistent (paper, Section 3.4).
  virtual bool on_evict(const GlobalAddress& page) = 0;

  /// Failure detector verdict: `node` is gone; clean up protocol state.
  virtual void on_node_down(NodeId node) = 0;
};

/// Factory registry keyed by ProtocolId.
class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ConsistencyManager>(CmHost&)>;

  /// The process-wide registry (protocols register once per process).
  static ProtocolRegistry& instance();

  /// Registers (or replaces) the factory for `id`.
  void register_protocol(ProtocolId id, Factory factory);
  /// Instantiates the protocol for one host node; nullptr if unknown.
  [[nodiscard]] std::unique_ptr<ConsistencyManager> create(
      ProtocolId id, CmHost& host) const;
  /// True if a factory for `id` has been registered.
  [[nodiscard]] bool known(ProtocolId id) const;

 private:
  std::vector<std::pair<ProtocolId, Factory>> factories_;
};

/// Registers the three built-in protocols (idempotent).
void register_builtin_protocols();

}  // namespace khz::consistency
