#include "consistency/crew.h"

#include <algorithm>

#include "common/log.h"

namespace khz::consistency {

namespace {
using PS = storage::PageState;

bool readable(const storage::PageInfo& info) {
  return info.state != PS::kInvalid && info.write_holds == 0;
}

bool writable_locally(const storage::PageInfo& info, NodeId self) {
  return info.state == PS::kExclusive && info.owner == self &&
         info.read_holds == 0 && info.write_holds == 0;
}
}  // namespace

void CrewManager::send(NodeId to, const GlobalAddress& page, Sub sub,
                       const std::function<void(Encoder&)>& body) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(sub));
  if (body) body(e);
  host_.send_cm(to, ProtocolId::kCrew, page, std::move(e).take());
}

void CrewManager::install_data(const GlobalAddress& page, Version version,
                               Bytes data, storage::PageState new_state) {
  auto& info = host_.page_info(page);
  if (!data.empty()) {
    host_.store_page(page, std::move(data));
  }
  info.version = std::max(info.version, version);
  info.state = new_state;
}

// --------------------------------------------------------------------------
// Requester side
// --------------------------------------------------------------------------

void CrewManager::acquire(const GlobalAddress& page, LockMode mode,
                          GrantCallback done) {
  // CREW has no concurrent-writer mode; write-shared degrades to write.
  if (mode == LockMode::kWriteShared) mode = LockMode::kWrite;
  auto& st = state(page);
  st.waiters.push_back({mode, std::move(done), /*prefetch=*/false});
  try_grant_local(page);
}

void CrewManager::prefetch(const GlobalAddress& page, LockMode mode,
                           GrantCallback done) {
  if (mode == LockMode::kWriteShared) mode = LockMode::kWrite;
  auto& st = state(page);
  st.waiters.push_back({mode, std::move(done), /*prefetch=*/true});
  try_grant_local(page);
}

void CrewManager::try_grant_local(const GlobalAddress& page) {
  auto& st = state(page);
  auto& info = host_.page_info(page);
  const NodeId self = host_.self();

  while (!st.waiters.empty()) {
    Waiter& w = st.waiters.front();
    bool can_grant;
    if (w.prefetch) {
      // Prefetches only need the page in a grantable *state* (data present
      // for reads, ownership for writes); local holds are irrelevant
      // because a prefetch takes none itself.
      can_grant = (w.mode == LockMode::kRead)
                      ? info.state != PS::kInvalid
                      : info.state == PS::kExclusive && info.owner == self;
    } else {
      can_grant = (w.mode == LockMode::kRead) ? readable(info)
                                              : writable_locally(info, self);
    }
    if (!can_grant) break;
    if (!w.prefetch) {
      if (w.mode == LockMode::kRead) {
        ++info.read_holds;
      } else {
        ++info.write_holds;
      }
    }
    GrantCallback done = std::move(w.done);
    st.waiters.pop_front();
    done(Status{});
  }

  if (st.waiters.empty() || st.request_outstanding) return;

  // Decide whether the head waiter is blocked remotely (we lack the copy /
  // ownership) or only locally (a conflicting local hold will release).
  const Waiter& head = st.waiters.front();
  const bool needs_remote =
      (head.mode == LockMode::kRead)
          ? info.state == PS::kInvalid
          : !(info.state == PS::kExclusive && info.owner == self);
  // First-attempt prefetch fetches coalesce into one batched request per
  // home; everything else (acquires, retries) goes out per-page.
  if (needs_remote) send_request(page, head.mode, head.prefetch);
}

void CrewManager::finish_round(PageState& st) {
  if (st.request_timer != 0) {
    host_.cancel(st.request_timer);
    st.request_timer = 0;
  }
  if (st.request_outstanding) {
    round_us_->record(
        static_cast<std::uint64_t>(host_.now() - st.request_sent_at));
  }
  st.request_outstanding = false;
  // The counter is per-round: a response (grant or Nack) ends the round.
  // Leaving it non-zero would steer every later round for this page to the
  // alternate homes even after the primary answered again.
  st.retries = 0;
}

void CrewManager::send_request(const GlobalAddress& page, LockMode mode,
                               bool batchable) {
  auto& st = state(page);
  st.request_outstanding = true;
  st.requested_mode = mode;
  st.request_sent_at = host_.now();

  // Retry the primary home first; on later retries, walk the alternates
  // (paper, Section 3.5: operations are retried on all known nodes). Never
  // pick self: a descriptor can list this node as an alternate (it may
  // hold a replica), but a request to self would just bounce off our own
  // not-home handler.
  NodeId target = host_.home_of(page);
  if (st.retries > 0) {
    auto alts = host_.alternate_homes(page);
    alts.erase(std::remove(alts.begin(), alts.end(), host_.self()),
               alts.end());
    if (!alts.empty()) {
      target = alts[static_cast<std::size_t>(st.retries - 1) % alts.size()];
    }
  }
  // Down-node short-circuit: if the failure detector already declared the
  // chosen target dead, steer to the first live candidate instead of
  // burning a whole round timeout on the corpse. If everybody is down we
  // keep the original target — the timeout path reflects the failure.
  if (host_.is_down(target)) {
    std::vector<NodeId> cands{host_.home_of(page)};
    for (NodeId a : host_.alternate_homes(page)) {
      if (a != host_.self()) cands.push_back(a);
    }
    for (NodeId c : cands) {
      if (!host_.is_down(c)) {
        target = c;
        break;
      }
    }
  }
  // The home may itself be waiting out a dead sharer/owner (its internal
  // timeout is one rpc_timeout); give it room before retrying. The timer
  // is armed before the (possibly deferred-by-a-turn) send, so it also
  // covers the batch path end to end.
  st.request_timer = host_.schedule(
      2 * host_.rpc_timeout(), [this, page] { on_request_timeout(page); });

  if (batchable && st.retries == 0) {
    // Coalesce with every other first-attempt fetch aimed at this target
    // during the current execution turn (a multi-page lock issues its
    // whole prefetch window in one turn); the zero-delay timer flushes
    // them as one kPageBatchFetchReq. Retries never batch, so a lost
    // batch degrades to the plain per-page path.
    fetch_batch_[{target, host_.route_key_of(page)}].push_back({page, mode});
    if (!fetch_flush_scheduled_) {
      fetch_flush_scheduled_ = true;
      host_.schedule(0, [this] { flush_fetch_batches(); });
    }
    return;
  }
  send(target, page,
       mode == LockMode::kRead ? Sub::kReadReq : Sub::kWriteReq);
}

void CrewManager::flush_fetch_batches() {
  fetch_flush_scheduled_ = false;
  auto batches = std::move(fetch_batch_);
  fetch_batch_.clear();
  for (auto& [key, list] : batches) {
    const auto& [target, route_key] = key;
    if (list.size() == 1) {
      // A batch of one gains nothing over the legacy message.
      send(target, list[0].page,
           list[0].mode == LockMode::kRead ? Sub::kReadReq : Sub::kWriteReq);
      continue;
    }
    for (std::size_t i = 0; i < list.size(); i += kMaxBatchPages) {
      const std::size_t n = std::min(kMaxBatchPages, list.size() - i);
      const std::uint64_t seq = next_batch_seq_++;
      Encoder e;
      e.u64(seq);
      e.u32(static_cast<std::uint32_t>(n));
      for (std::size_t j = 0; j < n; ++j) {
        e.addr(list[i + j].page);
        e.u8(static_cast<std::uint8_t>(list[i + j].mode));
      }
      host_.send_page_batch(target, ProtocolId::kCrew, /*request=*/true,
                            std::move(e).take(), route_key);
      batch_pages_->record(n);
      batch_sent_at_[seq] = host_.now();
      // Responses to dropped batches never arrive; keep the latency map
      // bounded by shedding the oldest entries.
      while (batch_sent_at_.size() > 128) {
        batch_sent_at_.erase(batch_sent_at_.begin());
      }
    }
  }
}

void CrewManager::on_request_timeout(GlobalAddress page) {
  auto& st = state(page);
  if (!st.request_outstanding) return;
  st.request_timer = 0;
  if (++st.retries > host_.max_retries()) {
    st.request_outstanding = false;
    st.retries = 0;
    fail_waiters(page, ErrorCode::kUnreachable);
    return;
  }
  st.request_outstanding = false;
  // Requester rounds pace through the host's RPC-engine backoff policy
  // (capped jittered exponential) instead of resending immediately; 0 —
  // the default for minimal hosts — keeps the legacy immediate resend.
  const Micros delay = host_.retry_backoff(st.retries);
  if (delay == 0) {
    resend_request(page);
    return;
  }
  st.request_timer =
      host_.schedule(delay, [this, page] { resend_request(page); });
}

void CrewManager::resend_request(const GlobalAddress& page) {
  auto& st = state(page);
  st.request_timer = 0;
  // The round may have ended while we waited out the backoff: a late grant
  // drained the waiters (finish_round cancelled the timer, but a direct
  // call skips it) or a failure path emptied the queue.
  if (st.request_outstanding || st.waiters.empty()) return;
  send_request(page, st.requested_mode);
}

void CrewManager::fail_waiters(const GlobalAddress& page, ErrorCode e) {
  auto& st = state(page);
  std::deque<Waiter> waiters;
  waiters.swap(st.waiters);
  for (auto& w : waiters) w.done(e);
}

// --------------------------------------------------------------------------
// Home side
// --------------------------------------------------------------------------

void CrewManager::home_handle(const GlobalAddress& page, NodeId from,
                              LockMode mode) {
  if (mode != LockMode::kRead && host_.write_gated(page)) {
    // Home fail-over is still rebuilding this region's replica floor
    // (docs/recovery.md): hold the write grant and re-check shortly.
    // Reads keep flowing. The requester's own retry timer covers a lost
    // wakeup, so the deferral needs no bookkeeping.
    host_.schedule(host_.rpc_timeout() / 4, [this, page, from, mode] {
      home_handle(page, from, mode);
    });
    return;
  }
  auto& st = state(page);
  // Dedupe retransmissions.
  if (st.busy && st.in_flight_requester == from && st.in_flight_mode == mode) {
    return;
  }
  for (const auto& r : st.pending) {
    if (r.from == from && r.mode == mode) return;
  }
  if (st.busy) {
    st.pending.push_back({from, mode});
    return;
  }
  home_start(page, from, mode);
}

void CrewManager::home_start(const GlobalAddress& page, NodeId from,
                             LockMode mode) {
  auto& st = state(page);
  auto& info = host_.page_info(page);
  const NodeId self = host_.self();
  info.homed_locally = true;
  st.busy = true;
  st.in_flight_requester = from;
  st.in_flight_mode = mode;

  if (mode == LockMode::kRead) {
    if (info.owner == from) {
      // The recorded owner lost its copy (restart); fall back to the
      // home's copy and reclaim ownership.
      info.owner = self;
    }
    if (info.owner == self || info.owner == kNoNode) {
      home_serve_data(page, from);
      home_finish(page);
      return;
    }
    // The exclusive owner must downgrade and supply the data (Figure 2
    // steps 6-9 with the owner in the Node B role).
    send(info.owner, page, Sub::kDowngradeReq,
         [from](Encoder& e) { e.u32(from); });
    st.home_timer = host_.schedule(host_.rpc_timeout(),
                                   [this, page] { on_home_timeout(page); });
    return;
  }

  // Write request: invalidate every copy except the requester's, then
  // transfer ownership.
  st.awaiting_inv_acks.clear();
  for (NodeId n : info.sharers) {
    if (n != from && n != self && n != info.owner && n != kNoNode) {
      st.awaiting_inv_acks.insert(n);
    }
  }
  for (NodeId n : st.awaiting_inv_acks) send(n, page, Sub::kInvalidate);
  if (st.awaiting_inv_acks.empty()) {
    home_continue_after_invs(page);
  } else {
    st.home_timer = host_.schedule(host_.rpc_timeout(),
                                   [this, page] { on_home_timeout(page); });
  }
}

void CrewManager::home_continue_after_invs(const GlobalAddress& page) {
  auto& st = state(page);
  auto& info = host_.page_info(page);
  const NodeId self = host_.self();
  const NodeId to = st.in_flight_requester;

  if (st.home_timer != 0) {
    host_.cancel(st.home_timer);
    st.home_timer = 0;
  }

  if (info.owner == self || info.owner == kNoNode) {
    home_grant_ownership(page, to);
    home_finish(page);
    return;
  }
  if (info.owner == to) {
    // Requester already owns the data (upgrade after invalidations).
    send(to, page, Sub::kOwner, [&info](Encoder& e) {
      e.u64(info.version);
      e.bytes(Bytes{});  // metadata-only grant; owner already has the bytes
    });
    info.sharers = {to};
    if (to != self && info.state != PS::kInvalid) {
      // The home's own shared copy dies with the upgrade too.
      info.state = PS::kInvalid;
    }
    home_finish(page);
    return;
  }
  // Ask the current owner to ship data + ownership directly to the
  // requester.
  send(info.owner, page, Sub::kXferReq,
       [to](Encoder& e) { e.u32(to); });
  st.home_timer = host_.schedule(host_.rpc_timeout(),
                                 [this, page] { on_home_timeout(page); });
}

void CrewManager::home_serve_data(const GlobalAddress& page, NodeId to,
                                  Encoder* batch) {
  auto& info = host_.page_info(page);
  const Bytes* data = host_.page_data(page);
  Bytes copy = data != nullptr ? *data
                               : Bytes(host_.page_size_of(page), 0);
  if (batch != nullptr) {
    batch->addr(page);
    batch->u8(static_cast<std::uint8_t>(Sub::kData));
    batch->u64(info.version);
    batch->bytes(copy);
  } else {
    send(to, page, Sub::kData, [&](Encoder& e) {
      e.u64(info.version);
      e.bytes(copy);
    });
  }
  info.sharers.insert(to);
  if (info.owner == kNoNode) info.owner = host_.self();
  if (to != host_.self() && info.state == PS::kExclusive) {
    // Another node now shares the page: exclusivity is gone, and the next
    // local write must run the invalidation round.
    info.state = PS::kShared;
  }
}

void CrewManager::home_grant_ownership(const GlobalAddress& page, NodeId to,
                                       Encoder* batch) {
  auto& info = host_.page_info(page);
  const NodeId self = host_.self();
  const Bytes* data = host_.page_data(page);
  Bytes copy = data != nullptr ? *data
                               : Bytes(host_.page_size_of(page), 0);
  if (batch != nullptr) {
    batch->addr(page);
    batch->u8(static_cast<std::uint8_t>(Sub::kOwner));
    batch->u64(info.version);
    batch->bytes(copy);
  } else {
    send(to, page, Sub::kOwner, [&](Encoder& e) {
      e.u64(info.version);
      e.bytes(copy);
    });
  }
  info.owner = to;
  info.sharers = {to};
  if (to != self) {
    // Home keeps its (now stale) bytes as a fault-tolerance fallback but
    // marks them invalid so they are never served as current.
    info.state = PS::kInvalid;
  }
  // Deliberately no copyset-change notification here: the grantee is
  // about to write, so re-replicating now would push soon-stale data and
  // mask the real replication need. Replica maintenance runs on the
  // dirty release instead.
}

void CrewManager::home_finish(const GlobalAddress& page) {
  auto& st = state(page);
  if (st.home_timer != 0) {
    host_.cancel(st.home_timer);
    st.home_timer = 0;
  }
  st.busy = false;
  st.in_flight_requester = kNoNode;
  st.in_flight_mode = LockMode::kNone;
  st.awaiting_inv_acks.clear();
  home_drain_queue(page);
}

void CrewManager::home_drain_queue(const GlobalAddress& page) {
  auto& st = state(page);
  if (st.busy || st.pending.empty()) return;
  const RemoteReq next = st.pending.front();
  st.pending.pop_front();
  home_start(page, next.from, next.mode);
}

void CrewManager::on_home_timeout(GlobalAddress page) {
  auto& st = state(page);
  if (!st.busy) return;
  st.home_timer = 0;
  auto& info = host_.page_info(page);
  const NodeId self = host_.self();

  if (!st.awaiting_inv_acks.empty()) {
    // Unresponsive sharers are presumed dead: drop them from the copyset
    // and move on (their copies die with them).
    for (NodeId n : st.awaiting_inv_acks) info.sharers.erase(n);
    st.awaiting_inv_acks.clear();
    home_continue_after_invs(page);
    return;
  }

  // The owner did not respond to a downgrade/transfer: presume it dead and
  // fall back to the home's own latest copy, if one exists.
  info.sharers.erase(info.owner);
  if (host_.page_data(page) != nullptr) {
    info.owner = self;
    info.state = PS::kShared;
    if (st.in_flight_mode == LockMode::kRead) {
      home_serve_data(page, st.in_flight_requester);
    } else {
      home_grant_ownership(page, st.in_flight_requester);
    }
    home_finish(page);
    return;
  }
  info.owner = kNoNode;
  send(st.in_flight_requester, page, Sub::kNack, [](Encoder& e) {
    e.u8(static_cast<std::uint8_t>(ErrorCode::kUnreachable));
  });
  home_finish(page);
}

// --------------------------------------------------------------------------
// Batched data plane
// --------------------------------------------------------------------------

// Request: u64 batch_seq, u32 count, count * { addr page, u8 mode }.
// Response chunk: u64 batch_seq, u32 count, count * { addr page, u8 sub,
// sub-specific body } — each entry body is byte-identical to the matching
// per-page kData/kOwner/kNack payload, so the requester replays entries
// through the ordinary on_message switch.
void CrewManager::on_batch_fetch(NodeId from, Decoder& d) {
  const std::uint64_t seq = d.u64();
  const std::uint32_t n = d.u32();
  const NodeId self = host_.self();

  Encoder out;
  std::uint32_t out_n = 0;
  // All pages of one batch share a route key (the sender never mixes
  // them), so the first page's key routes the whole response chunk.
  std::uint64_t batch_route = 0;
  auto flush = [&] {
    if (out_n == 0) return;
    Encoder resp;
    resp.u64(seq);
    resp.u32(out_n);
    resp.raw(std::move(out).take());
    host_.send_page_batch(from, ProtocolId::kCrew, /*request=*/false,
                          std::move(resp).take(), batch_route);
    out = Encoder{};
    out_n = 0;
  };

  for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
    const GlobalAddress page = d.addr();
    auto mode = static_cast<LockMode>(d.u8());
    if (!d.ok()) break;
    if (i == 0) batch_route = host_.route_key_of(page);
    if (mode == LockMode::kWriteShared) mode = LockMode::kWrite;
    auto& st = state(page);
    auto& info = host_.page_info(page);

    if (!host_.is_home(page)) {
      // Same policy as the per-page path: an alternate home may serve
      // reads from a valid replica; everything else bounces so the
      // requester re-resolves.
      const Bytes* copy = host_.page_data(page);
      if (mode == LockMode::kRead && info.state != PS::kInvalid &&
          copy != nullptr) {
        out.addr(page);
        out.u8(static_cast<std::uint8_t>(Sub::kData));
        out.u64(info.version);
        out.bytes(*copy);
        ++out_n;
      } else {
        out.addr(page);
        out.u8(static_cast<std::uint8_t>(Sub::kNack));
        out.u8(static_cast<std::uint8_t>(ErrorCode::kNotFound));
        ++out_n;
      }
    } else if (st.busy || !st.pending.empty()) {
      // A directory transaction is in flight; queue behind it and let the
      // reply travel per-page.
      home_handle(page, from, mode);
    } else {
      info.homed_locally = true;
      if (mode == LockMode::kRead) {
        if (info.owner == from) {
          // The recorded owner lost its copy (restart); reclaim.
          info.owner = self;
        }
        if (info.owner == self || info.owner == kNoNode) {
          home_serve_data(page, from, &out);
          ++out_n;
        } else {
          home_handle(page, from, mode);  // third-party downgrade round
        }
      } else if (host_.write_gated(page)) {
        // Replica floor still rebuilding after a fail-over promotion: the
        // deferred path lives in home_handle.
        home_handle(page, from, mode);
      } else {
        bool needs_inv = false;
        for (NodeId s : info.sharers) {
          if (s != from && s != self && s != info.owner && s != kNoNode) {
            needs_inv = true;
            break;
          }
        }
        if (!needs_inv && (info.owner == self || info.owner == kNoNode)) {
          home_grant_ownership(page, from, &out);
          ++out_n;
        } else if (!needs_inv && info.owner == from) {
          // Upgrade: the requester already holds the bytes.
          out.addr(page);
          out.u8(static_cast<std::uint8_t>(Sub::kOwner));
          out.u64(info.version);
          out.bytes(Bytes{});
          ++out_n;
          info.sharers = {from};
          if (from != self && info.state != PS::kInvalid) {
            info.state = PS::kInvalid;
          }
        } else {
          home_handle(page, from, mode);  // invalidation / transfer round
        }
      }
    }
    if (out.size() >= kBatchRespBytesCap) flush();
  }
  flush();
}

void CrewManager::on_batch_grant(NodeId from, Decoder& d) {
  const std::uint64_t seq = d.u64();
  auto sent = batch_sent_at_.find(seq);
  if (sent != batch_sent_at_.end()) {
    batch_rpc_us_->record(
        static_cast<std::uint64_t>(host_.now() - sent->second));
    batch_sent_at_.erase(sent);
  }
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
    const GlobalAddress page = d.addr();
    if (!d.ok()) break;
    // Entry bodies reuse the per-page encodings, so the regular message
    // switch installs data, grants waiters and runs deferrals per page.
    on_message(from, page, d);
  }
}

// --------------------------------------------------------------------------
// Holder side
// --------------------------------------------------------------------------

void CrewManager::holder_apply_invalidate(const GlobalAddress& page,
                                          NodeId home) {
  auto& info = host_.page_info(page);
  info.state = PS::kInvalid;
  if (!info.homed_locally) host_.drop_page(page);
  send(home, page, Sub::kInvAck);
}

void CrewManager::holder_apply_downgrade(const GlobalAddress& page,
                                         NodeId requester) {
  auto& info = host_.page_info(page);
  const Bytes* data = host_.page_data(page);
  Bytes copy = data != nullptr ? *data
                               : Bytes(host_.page_size_of(page), 0);
  info.state = PS::kShared;
  // Serve the reader directly (Figure 2 step 9: B's daemon supplies the
  // copy straight to A) and give the home a current copy for its records.
  send(requester, page, Sub::kData, [&](Encoder& e) {
    e.u64(info.version);
    e.bytes(copy);
  });
  send(host_.home_of(page), page, Sub::kDowngradeDone, [&](Encoder& e) {
    e.u64(info.version);
    e.bytes(copy);
  });
}

void CrewManager::holder_apply_xfer(const GlobalAddress& page,
                                    NodeId requester) {
  auto& info = host_.page_info(page);
  const Bytes* data = host_.page_data(page);
  Bytes copy = data != nullptr ? *data
                               : Bytes(host_.page_size_of(page), 0);
  send(requester, page, Sub::kOwner, [&](Encoder& e) {
    e.u64(info.version);
    e.bytes(copy);
  });
  send(host_.home_of(page), page, Sub::kXferDone,
       [&info](Encoder& e) { e.u64(info.version); });
  info.state = PS::kInvalid;
  info.owner = requester;
  if (!info.homed_locally) host_.drop_page(page);
}

void CrewManager::maybe_run_deferred(const GlobalAddress& page) {
  auto& st = state(page);
  auto& info = host_.page_info(page);
  if (info.locked()) return;
  if (st.deferred_invalidate) {
    st.deferred_invalidate = false;
    const NodeId home = st.deferred_inv_home;
    st.deferred_inv_home = kNoNode;
    holder_apply_invalidate(page, home);
  }
  // Downgrades and transfers serve page data, so beyond waiting for local
  // holds they must wait for a valid copy to exist: a kXferReq/kDowngradeReq
  // can overtake the kOwner grant that makes this node the owner (the home
  // learns of the transfer from the old owner's kXferDone, which races the
  // old owner's direct kOwner to us on a different connection). Deferring
  // until the data lands — see the kData/kOwner handlers — instead of
  // serving zeros/stale bytes is what keeps two TCP writers from losing
  // updates.
  if (st.deferred_downgrade_to != kNoNode && info.write_holds == 0 &&
      info.state != PS::kInvalid) {
    const NodeId to = st.deferred_downgrade_to;
    st.deferred_downgrade_to = kNoNode;
    holder_apply_downgrade(page, to);
  }
  if (st.deferred_xfer_to != kNoNode && info.state != PS::kInvalid) {
    const NodeId to = st.deferred_xfer_to;
    st.deferred_xfer_to = kNoNode;
    holder_apply_xfer(page, to);
  }
}

// --------------------------------------------------------------------------
// Release / messages / eviction / failures
// --------------------------------------------------------------------------

void CrewManager::release(const GlobalAddress& page, LockMode mode,
                          bool dirty) {
  auto& info = host_.page_info(page);
  if (mode == LockMode::kRead) {
    if (info.read_holds > 0) --info.read_holds;
  } else {
    if (info.write_holds > 0) --info.write_holds;
    if (dirty) {
      info.dirty = true;
      ++info.version;
    }
  }
  maybe_run_deferred(page);
  try_grant_local(page);
  if (is_write(mode) && dirty) host_.note_copyset_change(page);
}

void CrewManager::on_message(NodeId from, const GlobalAddress& page,
                             Decoder& d) {
  const auto sub = static_cast<Sub>(d.u8());
  auto& st = state(page);
  auto& info = host_.page_info(page);

  switch (sub) {
    case Sub::kReadReq:
    case Sub::kWriteReq: {
      if (!host_.is_home(page)) {
        // Not this page's home. Two sub-cases:
        //  * We hold a valid replica and the request is a read: serve it —
        //    this is the min-replica availability path ("if a node storing
        //    a copy ... is accessible ... the data itself must be
        //    available", Section 2), reached when the requester fails over
        //    to an alternate home.
        //  * Otherwise (a write, or no copy): a stale home pointer "will
        //    simply result in a message being sent to a node that no
        //    longer is home" (Section 3.2) — refuse rather than fabricate
        //    data, so the requester re-resolves. Writes always need the
        //    real home's directory authority.
        const Bytes* copy = host_.page_data(page);
        if (sub == Sub::kReadReq && info.state != PS::kInvalid &&
            copy != nullptr) {
          send(from, page, Sub::kData, [&](Encoder& e) {
            e.u64(info.version);
            e.bytes(*copy);
          });
          break;
        }
        send(from, page, Sub::kNack, [](Encoder& e) {
          e.u8(static_cast<std::uint8_t>(ErrorCode::kNotFound));
        });
        break;
      }
      home_handle(page, from,
                  sub == Sub::kReadReq ? LockMode::kRead : LockMode::kWrite);
      break;
    }

    case Sub::kData: {
      const Version v = d.u64();
      Bytes data = d.bytes();
      // Unsolicited grant (duplicate delivery, or a late response after the
      // round was abandoned): installing it could resurrect a copy the
      // directory no longer tracks, so drop it.
      if (!st.request_outstanding && st.waiters.empty()) break;
      finish_round(st);
      st.retries = 0;
      install_data(page, v, std::move(data), PS::kShared);
      try_grant_local(page);
      // A downgrade that overtook this grant can run now that data exists
      // (or once the waiters it just granted release).
      maybe_run_deferred(page);
      break;
    }
    case Sub::kOwner: {
      const Version v = d.u64();
      Bytes data = d.bytes();
      if (!st.request_outstanding && st.waiters.empty()) break;
      finish_round(st);
      st.retries = 0;
      install_data(page, v, std::move(data), PS::kExclusive);
      info.owner = host_.self();
      try_grant_local(page);
      // A transfer request that overtook this ownership grant was deferred;
      // run it now that the data is here (unless a waiter just took a hold,
      // in which case release re-runs it).
      maybe_run_deferred(page);
      break;
    }

    case Sub::kInvalidate: {
      if (info.locked()) {
        // Delay the conflicting invalidation until local holders release
        // (Section 3.3).
        st.deferred_invalidate = true;
        st.deferred_inv_home = from;
      } else {
        holder_apply_invalidate(page, from);
      }
      break;
    }
    case Sub::kInvAck: {
      st.awaiting_inv_acks.erase(from);
      if (st.busy && st.awaiting_inv_acks.empty() &&
          st.in_flight_mode == LockMode::kWrite) {
        home_continue_after_invs(page);
      }
      break;
    }

    case Sub::kDowngradeReq: {
      const NodeId requester = d.u32();
      // Also defer when we have no valid copy yet: the home addressed us
      // as owner, so our kOwner grant is still in flight (cross-connection
      // reordering) — serving now would fabricate stale data.
      if (info.write_holds > 0 || info.state == PS::kInvalid) {
        st.deferred_downgrade_to = requester;
      } else {
        holder_apply_downgrade(page, requester);
      }
      break;
    }
    case Sub::kDowngradeDone: {
      const Version v = d.u64();
      Bytes data = d.bytes();
      install_data(page, v, std::move(data), PS::kShared);
      if (st.busy) {
        info.sharers.insert(st.in_flight_requester);
        info.sharers.insert(from);
        host_.note_copyset_change(page);
        home_finish(page);
      }
      break;
    }

    case Sub::kXferReq: {
      const NodeId requester = d.u32();
      // Defer while locked, and also while we hold no valid copy: the home
      // believes we own the page, so ownership (with data) is still on its
      // way to us on another connection. Transferring before it lands
      // would hand the requester zeros or stale bytes — the lost-update
      // race two concurrent TCP writers used to hit.
      if (info.locked() || info.state == PS::kInvalid) {
        st.deferred_xfer_to = requester;
      } else {
        holder_apply_xfer(page, requester);
      }
      break;
    }
    case Sub::kXferDone: {
      const Version v = d.u64();
      info.version = std::max(info.version, v);
      if (st.busy) {
        info.owner = st.in_flight_requester;
        info.sharers = {st.in_flight_requester};
        if (info.owner != host_.self()) {
          // The home's own copy is now stale; keep the bytes as a fault
          // fallback but never serve them as current.
          info.state = PS::kInvalid;
        }
        host_.note_copyset_change(page);
        home_finish(page);
      }
      break;
    }

    case Sub::kNack: {
      const auto e = static_cast<ErrorCode>(d.u8());
      finish_round(st);
      fail_waiters(page, e);
      break;
    }

    case Sub::kDropCopy: {
      info.sharers.erase(from);
      if (info.owner == from) info.owner = kNoNode;
      host_.note_copyset_change(page);
      break;
    }
  }
}

bool CrewManager::on_evict(const GlobalAddress& page) {
  auto& info = host_.page_info(page);
  const NodeId self = host_.self();
  if (info.locked()) return false;
  if (info.homed_locally) return false;  // home keeps directory + fallback
  if (info.owner == self && info.state == PS::kExclusive) {
    return false;  // sole current copy; dropping it would lose data
  }
  if (info.state != PS::kInvalid) {
    send(host_.home_of(page), page, Sub::kDropCopy);
    info.state = PS::kInvalid;
  }
  return true;
}

void CrewManager::on_node_down(NodeId node) {
  for (auto& [page, st] : pages_) {
    auto& info = host_.page_info(page);
    info.sharers.erase(node);
    if (info.owner == node) {
      if (info.homed_locally && host_.page_data(page) != nullptr) {
        info.owner = host_.self();
        info.state = PS::kShared;
      } else if (info.homed_locally) {
        info.owner = kNoNode;
      }
    }
    if (st.awaiting_inv_acks.erase(node) > 0 && st.busy &&
        st.awaiting_inv_acks.empty() &&
        st.in_flight_mode == LockMode::kWrite) {
      home_continue_after_invs(page);
    }
  }
}

}  // namespace khz::consistency
