// Cluster-manager role state (paper, Section 3.1).
//
// "Each cluster has one or more designated cluster managers, nodes
// responsible for being aware of other cluster locations, caching hint
// information about regions stored in the local cluster, and representing
// the local cluster during inter-cluster communication... Each cluster
// manager maintains hints of the sizes of free address space (total size,
// maximum free region size, etc) managed by other nodes in its cluster."
//
// Hints are per-(region, node) records stamped with the publisher's clock;
// a retraction is a tombstone, not an erase, so it can win a newest-wins
// anti-entropy merge against a stale publish on a peer manager (the hint
// caches self-heal under churn instead of diverging until overwritten).
// It is pure bookkeeping — all message handling lives in core::Node, the
// sync protocol in location::Fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/global_address.h"
#include "common/types.h"

namespace khz::location {

class ClusterState {
 public:
  /// One (region base, node) hint record as exchanged by anti-entropy.
  struct Entry {
    GlobalAddress base;
    std::uint64_t size = 0;
    NodeId node = kNoNode;
    Micros stamp = 0;
    bool retracted = false;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// --- location hints: region base -> nodes believed to cache/home it ---
  /// Local publishes/retracts are authoritative: they always apply, stamped
  /// `now` (bumped past any existing stamp so anti-entropy propagates them).
  void publish(const GlobalAddress& base, std::uint64_t size, NodeId node,
               Micros now = 0);
  void retract(const GlobalAddress& base, NodeId node, Micros now = 0);

  /// Failure-detector verdict: tombstone `node` out of every hint, so no
  /// lookup is steered at a peer the detector has declared down and the
  /// retraction propagates to other managers on the next sync round.
  /// Returns the number of records retracted.
  std::size_t retract_node(NodeId node, Micros now);

  /// Nodes believed to hold the region containing `addr` (may be stale).
  [[nodiscard]] std::vector<NodeId> hint(const GlobalAddress& addr) const;

  /// Every hint record, tombstones included, in (base, node) order — the
  /// anti-entropy exchange unit.
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Order-independent FNV-1a digest over the full record set (tombstones
  /// included). Two managers with equal digests need not exchange entries.
  [[nodiscard]] std::uint64_t digest() const;

  /// digest() of an arbitrary record set — used to check that a decoded
  /// anti-entropy payload matches its signed digest.
  [[nodiscard]] static std::uint64_t digest_of(const std::vector<Entry>& in);

  /// Newest-wins merge of a peer's records: a foreign record replaces the
  /// local one only when strictly newer. Records naming a node `is_down`
  /// reports as down merge as retractions regardless of their flag — a
  /// peer's stale optimism never resurrects a locally-detected failure.
  /// Returns the number of records updated.
  std::size_t merge(const std::vector<Entry>& in,
                    const std::function<bool(NodeId)>& is_down = {});

  /// --- free-space hints: node -> unreserved pool size it reported ---
  /// Offers older than `ttl` are ignored by best_pool_node (0 = no expiry).
  void set_free_space_ttl(Micros ttl);
  void report_free_space(NodeId node, std::uint64_t pool_bytes,
                         Micros now = 0);
  [[nodiscard]] std::uint64_t free_space_of(NodeId node) const;
  /// Node with the largest unexpired reported pool >= min_bytes, if any.
  [[nodiscard]] std::optional<NodeId> best_pool_node(std::uint64_t min_bytes,
                                                     Micros now = 0) const;

  /// Regions with at least one live (non-retracted) hinted node.
  [[nodiscard]] std::size_t hint_count() const;

  /// Drops all hint and free-space state, tombstones included (tests
  /// simulate a manager whose hint cache was lost).
  void clear() {
    std::lock_guard lk(mu_);
    hints_.clear();
    free_space_.clear();
  }

 private:
  struct Record {
    Micros stamp = 0;
    bool retracted = false;
  };
  struct Hint {
    std::uint64_t size = 0;
    std::map<NodeId, Record> nodes;
  };
  struct SpaceOffer {
    std::uint64_t bytes = 0;
    Micros stamp = 0;
  };
  /// Applies one record under mu_; returns true if it changed state.
  bool apply_locked(const GlobalAddress& base, std::uint64_t size, NodeId node,
                    Micros stamp, bool retracted);

  /// Hint state is read/written from every execution lane of the manager
  /// node (publishes arrive region-routed; queries arrive control-routed),
  /// so it synchronizes internally.
  mutable std::mutex mu_;
  std::map<GlobalAddress, Hint> hints_;  // keyed by region base
  std::map<NodeId, SpaceOffer> free_space_;
  Micros free_space_ttl_ = 0;
};

}  // namespace khz::location
