#include "location/cluster.h"

#include <algorithm>

namespace khz::location {

bool ClusterState::apply_locked(const GlobalAddress& base, std::uint64_t size,
                                NodeId node, Micros stamp, bool retracted) {
  Hint& h = hints_[base];
  if (size != 0) h.size = size;
  Record& rec = h.nodes[node];
  if (rec.stamp == stamp && rec.retracted == retracted) return false;
  rec.stamp = stamp;
  rec.retracted = retracted;
  return true;
}

void ClusterState::publish(const GlobalAddress& base, std::uint64_t size,
                           NodeId node, Micros now) {
  std::lock_guard lk(mu_);
  Hint& h = hints_[base];
  h.size = size;
  Record& rec = h.nodes[node];
  // Authoritative local update: always wins, and moves strictly forward so
  // anti-entropy propagates it even against an equal foreign stamp.
  rec.stamp = std::max(now, rec.stamp + 1);
  rec.retracted = false;
}

void ClusterState::retract(const GlobalAddress& base, NodeId node,
                           Micros now) {
  std::lock_guard lk(mu_);
  auto it = hints_.find(base);
  if (it == hints_.end()) return;
  auto rec_it = it->second.nodes.find(node);
  if (rec_it == it->second.nodes.end()) return;
  rec_it->second.stamp = std::max(now, rec_it->second.stamp + 1);
  rec_it->second.retracted = true;
}

std::size_t ClusterState::retract_node(NodeId node, Micros now) {
  std::lock_guard lk(mu_);
  std::size_t retracted = 0;
  for (auto& [base, hint] : hints_) {
    auto it = hint.nodes.find(node);
    if (it == hint.nodes.end() || it->second.retracted) continue;
    it->second.stamp = std::max(now, it->second.stamp + 1);
    it->second.retracted = true;
    ++retracted;
  }
  return retracted;
}

std::vector<NodeId> ClusterState::hint(const GlobalAddress& addr) const {
  std::lock_guard lk(mu_);
  auto it = hints_.upper_bound(addr);
  if (it == hints_.begin()) return {};
  --it;
  const AddressRange range{it->first, it->second.size};
  if (!range.contains(addr)) return {};
  std::vector<NodeId> out;
  for (const auto& [node, rec] : it->second.nodes) {
    if (!rec.retracted) out.push_back(node);
  }
  return out;
}

std::vector<ClusterState::Entry> ClusterState::entries() const {
  std::lock_guard lk(mu_);
  std::vector<Entry> out;
  for (const auto& [base, hint] : hints_) {
    for (const auto& [node, rec] : hint.nodes) {
      out.push_back({base, hint.size, node, rec.stamp, rec.retracted});
    }
  }
  return out;
}

std::uint64_t ClusterState::digest() const {
  return digest_of(entries());
}

std::uint64_t ClusterState::digest_of(const std::vector<Entry>& in) {
  // FNV-1a over each record, records combined by XOR: order-independent
  // (entries() is sorted anyway, but merges must not perturb the digest of
  // an equal set reached in a different order).
  std::uint64_t acc = 0xcbf29ce484222325ull;
  for (const Entry& e : in) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
      }
    };
    mix(e.base.hi);
    mix(e.base.lo);
    mix(e.size);
    mix(e.node);
    mix(static_cast<std::uint64_t>(e.stamp));
    mix(e.retracted ? 1 : 0);
    acc ^= h;
  }
  return acc;
}

std::size_t ClusterState::merge(const std::vector<Entry>& in,
                                const std::function<bool(NodeId)>& is_down) {
  std::lock_guard lk(mu_);
  std::size_t applied = 0;
  for (const Entry& e : in) {
    const bool down = is_down && is_down(e.node);
    const bool retract_it = e.retracted || down;
    auto it = hints_.find(e.base);
    if (it != hints_.end()) {
      auto rec_it = it->second.nodes.find(e.node);
      if (rec_it != it->second.nodes.end() &&
          rec_it->second.stamp >= e.stamp) {
        // Local record is as-new-or-newer: newest wins, keep ours. A
        // locally-down subject still gets force-tombstoned.
        if (down && !rec_it->second.retracted) {
          rec_it->second.retracted = true;
          ++applied;
        }
        continue;
      }
    }
    if (apply_locked(e.base, e.size, e.node, e.stamp, retract_it)) ++applied;
  }
  return applied;
}

void ClusterState::set_free_space_ttl(Micros ttl) {
  std::lock_guard lk(mu_);
  free_space_ttl_ = ttl;
}

void ClusterState::report_free_space(NodeId node, std::uint64_t pool_bytes,
                                     Micros now) {
  std::lock_guard lk(mu_);
  free_space_[node] = {pool_bytes, now};
}

std::uint64_t ClusterState::free_space_of(NodeId node) const {
  std::lock_guard lk(mu_);
  auto it = free_space_.find(node);
  return it == free_space_.end() ? 0 : it->second.bytes;
}

std::optional<NodeId> ClusterState::best_pool_node(std::uint64_t min_bytes,
                                                   Micros now) const {
  std::lock_guard lk(mu_);
  std::optional<NodeId> best;
  std::uint64_t best_size = min_bytes;
  for (const auto& [node, offer] : free_space_) {
    if (free_space_ttl_ > 0 && now > offer.stamp + free_space_ttl_) {
      continue;  // ancient offer: the pool may be long gone
    }
    if (offer.bytes >= best_size) {
      best = node;
      best_size = offer.bytes;
    }
  }
  return best;
}

std::size_t ClusterState::hint_count() const {
  std::lock_guard lk(mu_);
  std::size_t live = 0;
  for (const auto& [base, hint] : hints_) {
    for (const auto& [node, rec] : hint.nodes) {
      if (!rec.retracted) {
        ++live;
        break;
      }
    }
  }
  return live;
}

}  // namespace khz::location
