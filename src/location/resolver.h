// Three-level location lookup (Section 3.2), extracted from Node.
//
// "To locate the data associated with a particular global address, Khazana
// uses a three-tiered lookup scheme": (0) regions homed locally and the
// well-known map region, (1) the node's region-directory cache of recently
// used descriptors, (2) the cluster manager's hint cache, (3) a walk of the
// address-map tree — with a broadcast cluster walk as the stale-map
// fallback. The Resolver owns levels 1-3 plus descriptor fetching; level 0
// facts (what is homed here, where the genesis is), the descriptor cache
// and the hint cache come from the Host interface — in practice the
// location::Fabric facade — and all remote traffic goes through Host::call,
// which the node backs with its RpcEngine (retries, candidate steering,
// deadline budgets).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "common/types.h"
#include "location/region.h"
#include "location/region_directory.h"
#include "net/message.h"
#include "obs/metrics.h"

namespace khz::location {

/// Which lookup level finally produced (or failed to produce) the
/// descriptor. One terminal class is attributed per resolve, so the
/// per-class counters sum exactly to the resolve count — the invariant the
/// churn property test asserts.
enum class HitClass : std::uint8_t {
  kHome = 0,         // level 0: homed here or the well-known map region
  kRegionDir = 1,    // level 1: region-directory cache
  kManager = 2,      // level 2: cluster-manager hint
  kMapWalk = 3,      // level 3: address-map tree walk
  kClusterWalk = 4,  // fallback broadcast
  kFailed = 5,       // every level exhausted
};

class Resolver {
 public:
  /// What the lookup path needs from its surroundings. Signatures
  /// deliberately match the equivalent CmHost methods so the fabric's own
  /// host (the node) implements every interface with single overrides.
  class Host {
   public:
    virtual ~Host() = default;
    [[nodiscard]] virtual NodeId self() const = 0;
    [[nodiscard]] virtual NodeId genesis() const = 0;
    [[nodiscard]] virtual std::vector<NodeId> managers() const = 0;
    [[nodiscard]] virtual bool is_manager() const = 0;
    virtual std::vector<NodeId> membership() = 0;
    [[nodiscard]] virtual Micros now() const = 0;
    /// The authoritative descriptor if `addr` falls in a region homed on
    /// this node (lookup level 0).
    [[nodiscard]] virtual std::optional<RegionDescriptor> homed_descriptor(
        const GlobalAddress& addr) = 0;
    /// The node's descriptor cache (lookup level 1); fetched descriptors
    /// are inserted here.
    [[nodiscard]] virtual RegionDirectory& region_cache() = 0;
    /// Manager-side hint-cache lookup (level 2, local fast path). Only
    /// consulted when is_manager().
    [[nodiscard]] virtual std::vector<NodeId> manager_hint(
        const GlobalAddress& addr) = 0;
    /// Reads one page of the address map (level 3); readers replicate map
    /// pages through the release protocol.
    virtual void fetch_map_page(std::uint32_t index,
                                std::function<void(Result<Bytes>)> cb) = 0;

    /// One client-side RPC across `candidates`: attempt/steer/backoff
    /// policy lives behind this hook (the node's RpcEngine). The handler
    /// fires exactly once, in the caller's execution context.
    using CallHandler = std::function<void(bool ok, Decoder& d)>;
    struct CallSpec {
      /// 0 = engine default; otherwise the total probe budget.
      int max_attempts = 0;
      /// Optional well-formed-answer predicate: a reply it rejects steers
      /// to the next candidate instead of completing the call.
      std::function<bool(Decoder d)> accept;
    };
    virtual void call(std::vector<NodeId> candidates, net::MsgType type,
                      Bytes payload, CallHandler handler, CallSpec spec) = 0;

    /// Terminal-attribution hook: invoked exactly once per resolve with the
    /// class that produced the descriptor (or kFailed). The fabric turns
    /// these into the location.* counters.
    virtual void note_resolved(HitClass cls, Micros latency) = 0;
  };

  using DescCb = std::function<void(Result<RegionDescriptor>)>;

  Resolver(Host& host, obs::MetricsRegistry& metrics);

  /// Resolves `addr` to its region descriptor, walking the lookup levels
  /// in order. The callback fires in node context, possibly synchronously
  /// (levels 0/1 and the manager's own hint cache are local).
  void resolve(const GlobalAddress& addr, DescCb cb);

 private:
  // `t0` is when resolve() started; each terminal attributes the hit class
  // that actually produced the descriptor and records into that class's
  // latency histogram (`cls` threads the pending class through
  // fetch_descriptor, whose fallback is the cluster walk).
  void resolve_via_manager(const GlobalAddress& addr, Micros t0, DescCb cb);
  void resolve_via_map_walk(const GlobalAddress& addr, Micros t0, DescCb cb);
  void map_walk_step(std::uint32_t page_index, GlobalAddress addr, int depth,
                     Micros t0, DescCb cb);
  void resolve_via_cluster_walk(const GlobalAddress& addr, Micros t0,
                                DescCb cb);
  /// One host call across `candidates` (self excluded): the accept
  /// predicate bounces non-kOk answers so stale hints steer to the next
  /// candidate; total failure falls back to the cluster walk.
  void fetch_descriptor(std::vector<NodeId> candidates,
                        const GlobalAddress& addr, Micros t0, HitClass cls,
                        DescCb cb);
  [[nodiscard]] obs::Histogram* hist_for(HitClass cls) const;

  Host& host_;

  struct {
    obs::Counter* cache_hits = nullptr;
    obs::Counter* manager_hits = nullptr;
    obs::Counter* map_walks = nullptr;
    obs::Counter* cluster_walks = nullptr;
    obs::Histogram* region_dir_us = nullptr;
    obs::Histogram* manager_hint_us = nullptr;
    obs::Histogram* map_walk_us = nullptr;
    obs::Histogram* cluster_walk_us = nullptr;
  } ins_;
};

}  // namespace khz::location
