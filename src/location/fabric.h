// The location fabric: one facade over the whole "where does this address
// live" subsystem (paper, Sections 3.1-3.2).
//
// The fabric owns the three location data structures — the region-directory
// descriptor cache (level 1), the cluster-manager hint cache (level 2), and
// the resolver that walks them plus the address-map tree (level 3) — and
// runs the background work that keeps them honest under churn:
//
//  * Hint anti-entropy: managers periodically exchange signed digests of
//    their hint caches (kHintSyncReq/Resp) and merge newest-wins, so a
//    hint published to one manager reaches the others without waiting for
//    a client miss, and a failure-detector retraction propagates instead
//    of resurrecting.
//  * Proactive descriptor refresh: per-lane access counters find hot
//    regions; descriptors older than the age TTL are re-fetched from their
//    cached homes before a client blocks on a stale one.
//
// Everything the fabric needs from the node is behind Fabric::Host — a
// narrow interface (identity, clock, timers, failure verdicts, one RPC
// hook) — so the location subsystem has no dependency on core.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "common/types.h"
#include "location/cluster.h"
#include "location/region.h"
#include "location/region_directory.h"
#include "location/resolver.h"
#include "net/message.h"
#include "obs/metrics.h"

namespace khz::location {

struct FabricConfig {
  /// Region-directory capacity (descriptors).
  std::size_t region_cache_capacity = 1024;
  /// Manager-to-manager hint anti-entropy period. 0 disables the exchange
  /// (hints then spread only via client misses, the pre-fabric behaviour).
  Micros hint_sync_interval = 0;
  /// Proactive-refresh sweep period. 0 disables refresh entirely.
  Micros refresh_interval = 0;
  /// Only descriptors at least this old are re-fetched (0 = any age).
  Micros refresh_age_us = 0;
  /// Accesses per sweep that make a region "hot" enough to refresh.
  std::uint32_t refresh_hot_accesses = 4;
  /// Free-space offers older than this are ignored by placement
  /// (ClusterState::best_pool_node). 0 = offers never expire.
  Micros free_space_ttl = 0;
  /// Execution lanes on the owning node; sizes the access-counter shards.
  unsigned lanes = 1;
};

class Fabric final : public Resolver::Host {
 public:
  /// What the fabric needs from the node that embeds it. The resolver-facing
  /// half matches Resolver::Host so the node's single set of overrides
  /// serves both; schedule/cancel/is_down add the timer rail and the
  /// failure detector for the background passes.
  class Host {
   public:
    virtual ~Host() = default;
    [[nodiscard]] virtual NodeId self() const = 0;
    [[nodiscard]] virtual NodeId genesis() const = 0;
    [[nodiscard]] virtual std::vector<NodeId> managers() const = 0;
    [[nodiscard]] virtual bool is_manager() const = 0;
    virtual std::vector<NodeId> membership() = 0;
    [[nodiscard]] virtual Micros now() const = 0;
    /// Timer rail: one-shot callback after `delay`; cancel by id.
    virtual std::uint64_t schedule(Micros delay,
                                   std::function<void()> fn) = 0;
    virtual void cancel(std::uint64_t timer_id) = 0;
    /// Failure-detector verdict for `node` right now.
    [[nodiscard]] virtual bool is_down(NodeId node) = 0;
    [[nodiscard]] virtual std::optional<RegionDescriptor> homed_descriptor(
        const GlobalAddress& addr) = 0;
    virtual void fetch_map_page(std::uint32_t index,
                                std::function<void(Result<Bytes>)> cb) = 0;
    virtual void call(std::vector<NodeId> candidates, net::MsgType type,
                      Bytes payload, Resolver::Host::CallHandler handler,
                      Resolver::Host::CallSpec spec) = 0;
  };

  Fabric(Host& host, obs::MetricsRegistry& metrics, FabricConfig config);

  /// Arms the anti-entropy and refresh timers (no-ops when their intervals
  /// are 0). Call after the node's transport is ready.
  void start();
  /// Cancels outstanding timers. Idempotent.
  void stop();

  /// Resolve `addr` to its region descriptor. Counts the resolve, notes
  /// the access for the hot-region refresh pass, and attributes exactly
  /// one hit class via note_resolved.
  void resolve(const GlobalAddress& addr, Resolver::DescCb cb);

  [[nodiscard]] RegionDirectory& regions() { return regions_; }
  [[nodiscard]] ClusterState& cluster() { return cluster_; }
  [[nodiscard]] Resolver& resolver() { return resolver_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// Failure-detector verdict hook: tombstones `node` out of the hint
  /// cache (the retraction then propagates on the next sync round).
  void on_node_down(NodeId node);

  /// Server side of one anti-entropy exchange: verifies the signed digest,
  /// merges the peer's records, and returns the kHintSyncResp payload
  /// (status + our signed set when the sets differed).
  [[nodiscard]] Bytes handle_hint_sync(NodeId from, Decoder& d);

  /// Encodes this manager's signed hint set as a kHintSyncReq payload
  /// (exposed for tests; ticks call it via sync_with).
  [[nodiscard]] Bytes encode_hint_sync() const;

  // --- Resolver::Host (forwarded to host_ / owned state) ---
  [[nodiscard]] NodeId self() const override { return host_.self(); }
  [[nodiscard]] NodeId genesis() const override { return host_.genesis(); }
  [[nodiscard]] std::vector<NodeId> managers() const override {
    return host_.managers();
  }
  [[nodiscard]] bool is_manager() const override { return host_.is_manager(); }
  std::vector<NodeId> membership() override { return host_.membership(); }
  [[nodiscard]] Micros now() const override { return host_.now(); }
  [[nodiscard]] std::optional<RegionDescriptor> homed_descriptor(
      const GlobalAddress& addr) override {
    return host_.homed_descriptor(addr);
  }
  [[nodiscard]] RegionDirectory& region_cache() override { return regions_; }
  [[nodiscard]] std::vector<NodeId> manager_hint(
      const GlobalAddress& addr) override {
    return cluster_.hint(addr);
  }
  void fetch_map_page(std::uint32_t index,
                      std::function<void(Result<Bytes>)> cb) override {
    host_.fetch_map_page(index, std::move(cb));
  }
  void call(std::vector<NodeId> candidates, net::MsgType type, Bytes payload,
            Resolver::Host::CallHandler handler,
            Resolver::Host::CallSpec spec) override {
    host_.call(std::move(candidates), type, std::move(payload),
               std::move(handler), std::move(spec));
  }
  void note_resolved(HitClass cls, Micros latency) override;

 private:
  /// A digest is "signed" by mixing the signer's node id into it; a payload
  /// whose records do not hash to the signed value is dropped. (A keyed MAC
  /// in spirit; the sim has no key distribution, so the id is the key.)
  [[nodiscard]] static std::uint64_t sign(std::uint64_t digest, NodeId signer);
  static void encode_entries(Encoder& e,
                             const std::vector<ClusterState::Entry>& entries);
  [[nodiscard]] static std::vector<ClusterState::Entry> decode_entries(
      Decoder& d);

  void hint_sync_tick();
  void sync_with(NodeId peer);
  void refresh_tick();
  void refresh_descriptor(const GlobalAddress& base);
  void note_access(const GlobalAddress& base);

  Host& host_;
  FabricConfig config_;
  RegionDirectory regions_;
  ClusterState cluster_;
  Resolver resolver_;

  /// Per-lane access-counter shards (lane-local in the common case; the
  /// sweep aggregates across shards).
  struct AccessShard {
    std::mutex mu;
    std::map<GlobalAddress, std::uint32_t> counts;
  };
  std::vector<std::unique_ptr<AccessShard>> access_;

  bool running_ = false;
  std::uint64_t sync_timer_ = 0;
  std::uint64_t refresh_timer_ = 0;

  struct {
    obs::Counter* resolves = nullptr;
    obs::Counter* hits_home = nullptr;
    obs::Counter* hits_region_dir = nullptr;
    obs::Counter* hits_manager = nullptr;
    obs::Counter* hits_map_walk = nullptr;
    obs::Counter* hits_cluster_walk = nullptr;
    obs::Counter* failures = nullptr;
    obs::Counter* hint_sync_rounds = nullptr;
    obs::Counter* hint_sync_merged = nullptr;
    obs::Counter* hint_sync_rejected = nullptr;
    obs::Counter* retractions = nullptr;
    obs::Counter* refreshes = nullptr;
  } ins_;
};

}  // namespace khz::location
