#include "location/fabric.h"

#include <algorithm>
#include <utility>

#include "common/lane.h"

namespace khz::location {

using net::MsgType;

Fabric::Fabric(Host& host, obs::MetricsRegistry& metrics, FabricConfig config)
    : host_(host),
      config_(config),
      regions_(config.region_cache_capacity),
      cluster_(),
      resolver_(*this, metrics) {
  cluster_.set_free_space_ttl(config_.free_space_ttl);
  const unsigned lanes = std::max(1u, config_.lanes);
  access_.reserve(lanes);
  for (unsigned i = 0; i < lanes; ++i) {
    access_.push_back(std::make_unique<AccessShard>());
  }
  regions_.bind_metrics(metrics);
  ins_.resolves = &metrics.counter("location.resolves");
  ins_.hits_home = &metrics.counter("location.hits.home");
  ins_.hits_region_dir = &metrics.counter("location.hits.region_dir");
  ins_.hits_manager = &metrics.counter("location.hits.manager");
  ins_.hits_map_walk = &metrics.counter("location.hits.map_walk");
  ins_.hits_cluster_walk = &metrics.counter("location.hits.cluster_walk");
  ins_.failures = &metrics.counter("location.failures");
  ins_.hint_sync_rounds = &metrics.counter("location.hint_sync.rounds");
  ins_.hint_sync_merged = &metrics.counter("location.hint_sync.merged");
  ins_.hint_sync_rejected = &metrics.counter("location.hint_sync.rejected");
  ins_.retractions = &metrics.counter("location.retractions");
  ins_.refreshes = &metrics.counter("location.refreshes");
}

void Fabric::start() {
  if (running_) return;
  running_ = true;
  // Only managers hold a hint cache worth exchanging; everyone may refresh.
  if (config_.hint_sync_interval > 0 && host_.is_manager()) {
    sync_timer_ =
        host_.schedule(config_.hint_sync_interval, [this] { hint_sync_tick(); });
  }
  if (config_.refresh_interval > 0) {
    refresh_timer_ =
        host_.schedule(config_.refresh_interval, [this] { refresh_tick(); });
  }
}

void Fabric::stop() {
  if (!running_) return;
  running_ = false;
  if (sync_timer_ != 0) host_.cancel(sync_timer_);
  if (refresh_timer_ != 0) host_.cancel(refresh_timer_);
  sync_timer_ = refresh_timer_ = 0;
}

void Fabric::resolve(const GlobalAddress& addr, Resolver::DescCb cb) {
  ins_.resolves->inc();
  resolver_.resolve(addr, [this, cb = std::move(cb)](
                              Result<RegionDescriptor> r) mutable {
    if (r.ok()) note_access(r.value().range.base);
    cb(std::move(r));
  });
}

void Fabric::note_resolved(HitClass cls, Micros latency) {
  (void)latency;  // per-class histograms live in the resolver
  switch (cls) {
    case HitClass::kHome: ins_.hits_home->inc(); break;
    case HitClass::kRegionDir: ins_.hits_region_dir->inc(); break;
    case HitClass::kManager: ins_.hits_manager->inc(); break;
    case HitClass::kMapWalk: ins_.hits_map_walk->inc(); break;
    case HitClass::kClusterWalk: ins_.hits_cluster_walk->inc(); break;
    case HitClass::kFailed: ins_.failures->inc(); break;
  }
}

void Fabric::on_node_down(NodeId node) {
  const std::size_t n = cluster_.retract_node(node, host_.now());
  if (n > 0) ins_.retractions->inc(n);
}

// --- hint anti-entropy ------------------------------------------------------

std::uint64_t Fabric::sign(std::uint64_t digest, NodeId signer) {
  std::uint64_t h = digest ^ 0x9e3779b97f4a7c15ull;
  h ^= signer;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  return h;
}

void Fabric::encode_entries(Encoder& e,
                            const std::vector<ClusterState::Entry>& entries) {
  e.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    e.addr(entry.base);
    e.u64(entry.size);
    e.u32(entry.node);
    e.u64(static_cast<std::uint64_t>(entry.stamp));
    e.boolean(entry.retracted);
  }
}

std::vector<ClusterState::Entry> Fabric::decode_entries(Decoder& d) {
  std::vector<ClusterState::Entry> out;
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
    ClusterState::Entry e;
    e.base = d.addr();
    e.size = d.u64();
    e.node = d.u32();
    e.stamp = static_cast<Micros>(d.u64());
    e.retracted = d.boolean();
    out.push_back(e);
  }
  return out;
}

Bytes Fabric::encode_hint_sync() const {
  const auto entries = cluster_.entries();
  Encoder e;
  e.u64(sign(ClusterState::digest_of(entries), host_.self()));
  encode_entries(e, entries);
  return std::move(e).take();
}

void Fabric::hint_sync_tick() {
  sync_timer_ = 0;
  if (!running_) return;
  ins_.hint_sync_rounds->inc();
  for (NodeId m : host_.managers()) {
    if (m == host_.self() || host_.is_down(m)) continue;
    sync_with(m);
  }
  sync_timer_ =
      host_.schedule(config_.hint_sync_interval, [this] { hint_sync_tick(); });
}

void Fabric::sync_with(NodeId peer) {
  Resolver::Host::CallSpec opts;
  opts.max_attempts = 1;  // periodic: a lost round is repaired by the next
  host_.call(
      {peer}, MsgType::kHintSyncReq, encode_hint_sync(),
      [this, peer](bool ok, Decoder& d) {
        if (!ok) return;
        if (d.u8() != 0) return;  // peer rejected our digest
        const std::uint64_t sig = d.u64();
        const auto entries = decode_entries(d);
        if (!d.ok() ||
            sig != sign(ClusterState::digest_of(entries), peer)) {
          ins_.hint_sync_rejected->inc();
          return;
        }
        if (entries.empty()) return;  // sets already matched
        const std::size_t applied = cluster_.merge(
            entries, [this](NodeId n) { return host_.is_down(n); });
        if (applied > 0) ins_.hint_sync_merged->inc(applied);
      },
      std::move(opts));
}

Bytes Fabric::handle_hint_sync(NodeId from, Decoder& d) {
  const std::uint64_t sig = d.u64();
  const auto theirs = decode_entries(d);
  Encoder resp;
  if (!d.ok() || sig != sign(ClusterState::digest_of(theirs), from)) {
    ins_.hint_sync_rejected->inc();
    resp.u8(1);  // malformed or digest mismatch: reject, merge nothing
    resp.u64(0);
    resp.u32(0);
    return std::move(resp).take();
  }
  const std::size_t applied = cluster_.merge(
      theirs, [this](NodeId n) { return host_.is_down(n); });
  if (applied > 0) ins_.hint_sync_merged->inc(applied);
  resp.u8(0);
  // Send our (merged) set back only when it still differs from what the
  // peer showed us — equal digests end the exchange with an empty body.
  const auto mine = cluster_.entries();
  if (ClusterState::digest_of(mine) == ClusterState::digest_of(theirs)) {
    const std::vector<ClusterState::Entry> none;
    resp.u64(sign(ClusterState::digest_of(none), host_.self()));
    encode_entries(resp, none);
  } else {
    resp.u64(sign(ClusterState::digest_of(mine), host_.self()));
    encode_entries(resp, mine);
  }
  return std::move(resp).take();
}

// --- proactive descriptor refresh ------------------------------------------

void Fabric::note_access(const GlobalAddress& base) {
  if (config_.refresh_interval == 0) return;
  AccessShard& shard = *access_[current_lane() % access_.size()];
  std::lock_guard lk(shard.mu);
  ++shard.counts[base];
}

void Fabric::refresh_tick() {
  refresh_timer_ = 0;
  if (!running_) return;
  std::map<GlobalAddress, std::uint32_t> hot;
  for (auto& shard : access_) {
    std::lock_guard lk(shard->mu);
    for (const auto& [base, count] : shard->counts) hot[base] += count;
    shard->counts.clear();
  }
  const Micros now = host_.now();
  for (const auto& [base, count] : hot) {
    if (count < config_.refresh_hot_accesses) continue;
    const auto stamp = regions_.stamp_of(base);
    if (!stamp) continue;  // evicted since; the next miss re-resolves it
    if (config_.refresh_age_us > 0 && now - *stamp < config_.refresh_age_us) {
      continue;  // still fresh enough
    }
    refresh_descriptor(base);
  }
  refresh_timer_ =
      host_.schedule(config_.refresh_interval, [this] { refresh_tick(); });
}

void Fabric::refresh_descriptor(const GlobalAddress& base) {
  const auto cached = regions_.lookup(base);
  if (!cached) return;
  std::vector<NodeId> candidates = cached->home_nodes;
  std::erase(candidates, host_.self());
  std::erase_if(candidates,
                [this](NodeId n) { return host_.is_down(n); });
  if (candidates.empty()) return;
  Encoder e;
  e.addr(base);
  Resolver::Host::CallSpec opts;
  opts.max_attempts = static_cast<int>(candidates.size());
  opts.accept = [](Decoder d) {
    return static_cast<ErrorCode>(d.u8()) == ErrorCode::kOk;
  };
  host_.call(
      std::move(candidates), MsgType::kDescLookupReq, std::move(e).take(),
      [this, base](bool ok, Decoder& d) {
        if (!ok) {
          // Every cached home bounced or timed out: the descriptor is
          // stale everywhere we know of. Drop it so the next access takes
          // the full lookup path instead of chasing dead homes.
          regions_.invalidate(base);
          return;
        }
        (void)d.u8();  // status byte; accept saw kOk
        RegionDescriptor fresh = RegionDescriptor::decode(d);
        regions_.insert(fresh, host_.now());
        ins_.refreshes->inc();
      },
      std::move(opts));
}

}  // namespace khz::location
