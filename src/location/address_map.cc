#include "location/address_map.h"

#include <algorithm>
#include <cassert>

namespace khz::location {

// ---------------------------------------------------------------------------
// Node (de)serialization. Layout per fixed-size page:
//   magic u32 | leaf u8 | count u16 | next_free u32 | entries...
// Leaf entry:     base a128 | size u64 | nhomes u8 | homes u32 x nhomes
// Interior entry: min_base a128 | child u32
// ---------------------------------------------------------------------------

Bytes AddressMap::encode(const TreeNode& node) const {
  Encoder e;
  e.u32(kMagic);
  e.u8(node.leaf ? 1 : 0);
  e.u16(static_cast<std::uint16_t>(node.count()));
  e.u32(node.next_free);
  if (node.leaf) {
    for (const auto& le : node.leaf_entries) {
      e.addr(le.range.base);
      e.u64(le.range.size);
      e.u8(static_cast<std::uint8_t>(le.homes.size()));
      for (NodeId h : le.homes) e.u32(h);
    }
  } else {
    for (const auto& ie : node.children) {
      e.addr(ie.min_base);
      e.u32(ie.child);
    }
  }
  Bytes out = std::move(e).take();
  assert(out.size() <= store_.page_size());
  out.resize(store_.page_size(), 0);
  return out;
}

AddressMap::TreeNode AddressMap::decode(const Bytes& data) {
  TreeNode node;
  Decoder d(data);
  if (d.u32() != kMagic) {
    // Unformatted / zero page: treat as an empty leaf so a torn bootstrap
    // fails soft rather than crashing.
    return node;
  }
  node.leaf = d.u8() != 0;
  const std::uint16_t count = d.u16();
  node.next_free = d.u32();
  if (node.leaf) {
    node.leaf_entries.reserve(count);
    for (std::uint16_t i = 0; i < count && d.ok(); ++i) {
      MapEntry me;
      me.range.base = d.addr();
      me.range.size = d.u64();
      const std::uint8_t nhomes = d.u8();
      for (std::uint8_t h = 0; h < nhomes && d.ok(); ++h) {
        me.homes.push_back(d.u32());
      }
      node.leaf_entries.push_back(std::move(me));
    }
  } else {
    node.children.reserve(count);
    for (std::uint16_t i = 0; i < count && d.ok(); ++i) {
      InteriorEntry ie;
      ie.min_base = d.addr();
      ie.child = d.u32();
      node.children.push_back(ie);
    }
  }
  return node;
}

AddressMap::TreeNode AddressMap::load(std::uint32_t index) {
  return decode(store_.read_page(index));
}

void AddressMap::save(std::uint32_t index, const TreeNode& node) {
  store_.write_page(index, encode(node));
}

std::uint32_t AddressMap::alloc_page() {
  TreeNode root = load(0);
  const std::uint32_t page = root.next_free;
  root.next_free = page + 1;
  save(0, root);
  return page;
}

void AddressMap::format(MapPageStore& store) {
  AddressMap map(store);
  TreeNode root;
  root.leaf = true;
  root.next_free = 1;
  map.save(0, root);
}

bool AddressMap::formatted() {
  const Bytes root = store_.read_page(0);
  Decoder d(root);
  return d.u32() == kMagic;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::optional<MapEntry> AddressMap::lookup(const GlobalAddress& addr) {
  std::uint32_t index = 0;
  for (;;) {
    TreeNode node = load(index);
    if (node.leaf) {
      // Last entry with base <= addr.
      const MapEntry* best = nullptr;
      for (const auto& le : node.leaf_entries) {
        if (le.range.base <= addr) {
          best = &le;
        } else {
          break;
        }
      }
      if (best != nullptr && best->range.contains(addr)) return *best;
      return std::nullopt;
    }
    if (node.children.empty()) return std::nullopt;
    // Last child whose min_base <= addr (or the first child).
    std::size_t pick = 0;
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (node.children[i].min_base <= addr) {
        pick = i;
      } else {
        break;
      }
    }
    index = node.children[pick].child;
  }
}

bool AddressMap::overlaps(const AddressRange& range) {
  // A reservation overlapping [base, end) either contains `base` or has its
  // own base inside the range. Check both via lookup + scan of the
  // containing leaf's neighbourhood; since entries are disjoint and sorted,
  // checking the entry at or after `base` suffices.
  if (lookup(range.base).has_value()) return true;
  // Find the first entry with base >= range.base by walking the tree the
  // same way lookup does but keeping the successor.
  std::uint32_t index = 0;
  for (;;) {
    TreeNode node = load(index);
    if (node.leaf) {
      for (const auto& le : node.leaf_entries) {
        if (le.range.base >= range.base) {
          return le.range.base < range.end();
        }
      }
      return false;  // no successor in this leaf: treat as free
    }
    if (node.children.empty()) return false;
    std::size_t pick = 0;
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (node.children[i].min_base <= range.base) {
        pick = i;
      } else {
        break;
      }
    }
    // If the chosen subtree's entries all precede range.base, the true
    // successor may live in the next sibling; descend into the one that
    // could contain it. For simplicity walk the picked child; if it yields
    // nothing, check the next sibling's min_base.
    if (pick + 1 < node.children.size() &&
        node.children[pick + 1].min_base < range.end()) {
      return true;
    }
    index = node.children[pick].child;
  }
}

std::vector<MapEntry> AddressMap::entries() {
  std::vector<MapEntry> out;
  collect(0, out);
  return out;
}

void AddressMap::collect(std::uint32_t index, std::vector<MapEntry>& out) {
  TreeNode node = load(index);
  if (node.leaf) {
    out.insert(out.end(), node.leaf_entries.begin(), node.leaf_entries.end());
    return;
  }
  for (const auto& child : node.children) collect(child.child, out);
}

std::uint32_t AddressMap::pages_used() { return load(0).next_free; }

AddressMap::WalkStep AddressMap::walk_step(const Bytes& page_data,
                                           const GlobalAddress& addr) {
  WalkStep out;
  const TreeNode node = decode(page_data);
  if (node.leaf) {
    const MapEntry* best = nullptr;
    for (const auto& le : node.leaf_entries) {
      if (le.range.base <= addr) {
        best = &le;
      } else {
        break;
      }
    }
    if (best != nullptr && best->range.contains(addr)) {
      out.found = true;
      out.entry = *best;
    }
    return out;
  }
  if (node.children.empty()) return out;
  std::size_t pick = 0;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i].min_base <= addr) {
      pick = i;
    } else {
      break;
    }
  }
  out.descend = true;
  out.child = node.children[pick].child;
  return out;
}

std::uint32_t AddressMap::height() {
  std::uint32_t h = 1;
  TreeNode node = load(0);
  while (!node.leaf && !node.children.empty()) {
    ++h;
    node = load(node.children.front().child);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------------

Status AddressMap::insert(const AddressRange& range,
                          const std::vector<NodeId>& homes) {
  if (range.size == 0) return ErrorCode::kBadArgument;
  if (homes.size() > kMaxHomes) return ErrorCode::kBadArgument;
  if (overlaps(range)) return ErrorCode::kAlreadyReserved;

  std::optional<Split> split;
  const Status s = insert_rec(0, range, homes, split);
  if (!s.ok()) return s;
  if (split.has_value()) make_root_interior(*split);
  return {};
}

void AddressMap::make_root_interior(const Split& split) {
  TreeNode old_root = load(0);
  TreeNode left = old_root;  // copies entries and leaf-ness
  left.next_free = 0;        // only the root's counter is meaningful
  TreeNode new_root;
  new_root.leaf = false;
  const std::uint32_t left_page = alloc_page();
  // alloc_page rewrote the root header; recompute and save carefully.
  new_root.next_free = left_page + 1;
  save(left_page, left);
  GlobalAddress left_min{0, 0};
  if (left.leaf && !left.leaf_entries.empty()) {
    left_min = left.leaf_entries.front().range.base;
  } else if (!left.leaf && !left.children.empty()) {
    left_min = left.children.front().min_base;
  }
  new_root.children.push_back({left_min, left_page});
  new_root.children.push_back({split.right_min, split.right_page});
  save(0, new_root);
}

std::optional<AddressMap::Split> AddressMap::split_page(std::uint32_t index,
                                                        TreeNode node) {
  if (node.count() < 2) return std::nullopt;
  const std::size_t mid = node.count() / 2;
  TreeNode right;
  right.leaf = node.leaf;
  if (node.leaf) {
    right.leaf_entries.assign(
        node.leaf_entries.begin() + static_cast<std::ptrdiff_t>(mid),
        node.leaf_entries.end());
    node.leaf_entries.resize(mid);
  } else {
    right.children.assign(
        node.children.begin() + static_cast<std::ptrdiff_t>(mid),
        node.children.end());
    node.children.resize(mid);
  }
  const std::uint32_t right_page = alloc_page();
  if (index == 0) node.next_free = right_page + 1;
  save(right_page, right);
  save(index, node);
  const GlobalAddress right_min = right.leaf
                                      ? right.leaf_entries.front().range.base
                                      : right.children.front().min_base;
  return Split{right_min, right_page};
}

std::size_t AddressMap::rebalance(std::size_t max_entries) {
  max_entries = std::clamp<std::size_t>(max_entries, 4, kMaxEntries);
  std::size_t splits = 0;
  // Each round fixes at most one level of skew (a split can push its parent
  // over the threshold); the tree is depth-bounded, so a few rounds reach
  // the fixpoint.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    if (load(0).count() > max_entries) {
      if (auto split = split_page(0, load(0))) {
        make_root_interior(*split);
        ++splits;
        changed = true;
      }
    }
    changed = rebalance_children(0, max_entries, splits) || changed;
    if (!changed) break;
  }
  return splits;
}

bool AddressMap::rebalance_children(std::uint32_t index,
                                    std::size_t max_entries,
                                    std::size_t& splits) {
  TreeNode node = load(index);
  if (node.leaf) return false;
  bool changed = false;
  // Split overfull children while this page has room for the separators;
  // a full parent waits for the next round (after its own split).
  for (std::size_t i = 0;
       i < node.children.size() && node.children.size() < kMaxEntries; ++i) {
    TreeNode child = load(node.children[i].child);
    if (child.count() <= max_entries) continue;
    if (auto split = split_page(node.children[i].child, std::move(child))) {
      // alloc_page inside split_page rewrote the root header; reload before
      // inserting the separator so a root-level parent keeps next_free.
      node = load(index);
      InteriorEntry ie{split->right_min, split->right_page};
      auto pos = std::lower_bound(
          node.children.begin(), node.children.end(), ie,
          [](const InteriorEntry& a, const InteriorEntry& b) {
            return a.min_base < b.min_base;
          });
      node.children.insert(pos, ie);
      save(index, node);
      ++splits;
      changed = true;
    }
  }
  node = load(index);
  for (const auto& c : node.children) {
    changed = rebalance_children(c.child, max_entries, splits) || changed;
  }
  return changed;
}

Status AddressMap::insert_rec(std::uint32_t index, const AddressRange& range,
                              const std::vector<NodeId>& homes,
                              std::optional<Split>& split) {
  TreeNode node = load(index);
  split.reset();

  if (node.leaf) {
    MapEntry entry{range, homes};
    auto pos = std::lower_bound(
        node.leaf_entries.begin(), node.leaf_entries.end(), entry,
        [](const MapEntry& a, const MapEntry& b) {
          return a.range.base < b.range.base;
        });
    node.leaf_entries.insert(pos, std::move(entry));
    if (node.leaf_entries.size() > kMaxEntries) {
      // Split the leaf: keep the lower half here, move the upper half into
      // a fresh page ("points to the root node of a subtree describing the
      // region in finer detail").
      const std::size_t mid = node.leaf_entries.size() / 2;
      TreeNode right;
      right.leaf = true;
      right.leaf_entries.assign(node.leaf_entries.begin() +
                                    static_cast<std::ptrdiff_t>(mid),
                                node.leaf_entries.end());
      node.leaf_entries.resize(mid);
      const std::uint32_t right_page = alloc_page();
      if (index == 0) node.next_free = right_page + 1;
      save(right_page, right);
      split = Split{right.leaf_entries.front().range.base, right_page};
    }
    save(index, node);
    return {};
  }

  if (node.children.empty()) return ErrorCode::kCorrupt;
  std::size_t pick = 0;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i].min_base <= range.base) {
      pick = i;
    } else {
      break;
    }
  }
  std::optional<Split> child_split;
  const Status s =
      insert_rec(node.children[pick].child, range, homes, child_split);
  if (!s.ok()) return s;
  // Reload: a descendant's split may have advanced the allocation counter
  // stored in the root, and if this node IS the root its copy is stale.
  node = load(index);
  if (child_split.has_value()) {
    InteriorEntry ie{child_split->right_min, child_split->right_page};
    auto pos = std::lower_bound(
        node.children.begin(), node.children.end(), ie,
        [](const InteriorEntry& a, const InteriorEntry& b) {
          return a.min_base < b.min_base;
        });
    node.children.insert(pos, ie);
    if (node.children.size() > kMaxEntries) {
      const std::size_t mid = node.children.size() / 2;
      TreeNode right;
      right.leaf = false;
      right.children.assign(
          node.children.begin() + static_cast<std::ptrdiff_t>(mid),
          node.children.end());
      node.children.resize(mid);
      const std::uint32_t right_page = alloc_page();
      if (index == 0) node.next_free = right_page + 1;
      save(right_page, right);
      split = Split{right.children.front().min_base, right_page};
    }
    save(index, node);
  }
  // Keep the first-key separator accurate when the new range became the
  // subtree minimum.
  if (!node.children.empty() && range.base < node.children[pick].min_base) {
    node.children[pick].min_base = range.base;
    save(index, node);
  }
  return {};
}

Status AddressMap::erase(const GlobalAddress& base) {
  std::uint32_t index = 0;
  for (;;) {
    TreeNode node = load(index);
    if (node.leaf) {
      for (auto it = node.leaf_entries.begin(); it != node.leaf_entries.end();
           ++it) {
        if (it->range.base == base) {
          node.leaf_entries.erase(it);
          save(index, node);
          return {};
        }
      }
      return ErrorCode::kNotFound;
    }
    if (node.children.empty()) return ErrorCode::kNotFound;
    std::size_t pick = 0;
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (node.children[i].min_base <= base) {
        pick = i;
      } else {
        break;
      }
    }
    index = node.children[pick].child;
  }
}

Status AddressMap::update_homes(const GlobalAddress& base,
                                const std::vector<NodeId>& homes) {
  if (homes.size() > kMaxHomes) return ErrorCode::kBadArgument;
  std::uint32_t index = 0;
  for (;;) {
    TreeNode node = load(index);
    if (node.leaf) {
      for (auto& le : node.leaf_entries) {
        if (le.range.base == base) {
          le.homes = homes;
          save(index, node);
          return {};
        }
      }
      return ErrorCode::kNotFound;
    }
    if (node.children.empty()) return ErrorCode::kNotFound;
    std::size_t pick = 0;
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (node.children[i].min_base <= base) {
        pick = i;
      } else {
        break;
      }
    }
    index = node.children[pick].child;
  }
}

}  // namespace khz::location
