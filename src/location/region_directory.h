// Per-node cache of recently used region descriptors (paper, Section 3.2).
//
// "To avoid expensive remote lookups, Khazana maintains a cache of recently
// used region descriptors called the region directory. The region directory
// is not kept globally consistent, and thus may contain stale data, but
// this is not a problem... the use of a stale home pointer will simply
// result in a message being sent to a node that no longer is home to the
// object."
#pragma once

#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "location/region.h"
#include "obs/metrics.h"

namespace khz::location {

class RegionDirectory {
 public:
  explicit RegionDirectory(std::size_t capacity = 1024)
      : capacity_(capacity) {}

  /// Descriptor of the region containing `addr`, if cached.
  [[nodiscard]] std::optional<RegionDescriptor> lookup(
      const GlobalAddress& addr);

  /// Inserts or refreshes a descriptor (keyed by region base). `stamp` is
  /// the insert time; the fabric's proactive-refresh pass compares it
  /// against the descriptor-age TTL (0 = unknown age, always refreshable).
  void insert(const RegionDescriptor& desc, Micros stamp = 0);

  /// Insert time of the cached descriptor based at `base`, if cached.
  /// Does not touch LRU order.
  [[nodiscard]] std::optional<Micros> stamp_of(const GlobalAddress& base) const;

  /// Drops the cached descriptor covering `addr` (stale-hint recovery).
  void invalidate(const GlobalAddress& addr);

  /// Every cached descriptor, for whole-cache scans (home fail-over walks
  /// the cache looking for regions homed on a dead node). Does not touch
  /// LRU order.
  [[nodiscard]] std::vector<RegionDescriptor> snapshot() const;

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return cache_.size();
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

  /// Mirrors hit/miss/eviction counts into the owning node's registry
  /// (region_dir.hits / region_dir.misses / region_dir.evictions).
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct Entry {
    RegionDescriptor desc;
    std::list<GlobalAddress>::iterator lru_pos;
    Micros stamp = 0;
  };

  std::size_t capacity_;
  /// The descriptor cache is shared across a node's execution lanes (any
  /// lane may resolve any address before hopping), so it synchronizes
  /// internally. Short critical sections; never held across callbacks.
  mutable std::mutex mu_;
  std::map<GlobalAddress, Entry> cache_;  // keyed by region base
  std::list<GlobalAddress> lru_;          // front = most recent
  Stats stats_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

}  // namespace khz::location
