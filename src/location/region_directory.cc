#include "location/region_directory.h"

namespace khz::location {

void RegionDirectory::bind_metrics(obs::MetricsRegistry& registry) {
  hits_ = &registry.counter("region_dir.hits");
  misses_ = &registry.counter("region_dir.misses");
  evictions_ = &registry.counter("region_dir.evictions");
}

std::optional<RegionDescriptor> RegionDirectory::lookup(
    const GlobalAddress& addr) {
  std::lock_guard lk(mu_);
  // Find the last entry with base <= addr, then verify containment.
  auto it = cache_.upper_bound(addr);
  if (it == cache_.begin()) {
    ++stats_.misses;
    if (misses_ != nullptr) misses_->inc();
    return std::nullopt;
  }
  --it;
  if (!it->second.desc.range.contains(addr)) {
    ++stats_.misses;
    if (misses_ != nullptr) misses_->inc();
    return std::nullopt;
  }
  lru_.erase(it->second.lru_pos);
  lru_.push_front(it->first);
  it->second.lru_pos = lru_.begin();
  ++stats_.hits;
  if (hits_ != nullptr) hits_->inc();
  return it->second.desc;
}

void RegionDirectory::insert(const RegionDescriptor& desc, Micros stamp) {
  std::lock_guard lk(mu_);
  auto it = cache_.find(desc.range.base);
  if (it != cache_.end()) {
    it->second.desc = desc;
    it->second.stamp = stamp;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(it->first);
    it->second.lru_pos = lru_.begin();
    return;
  }
  lru_.push_front(desc.range.base);
  cache_.emplace(desc.range.base, Entry{desc, lru_.begin(), stamp});
  while (capacity_ != 0 && cache_.size() > capacity_) {
    const GlobalAddress victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    if (evictions_ != nullptr) evictions_->inc();
  }
}

std::optional<Micros> RegionDirectory::stamp_of(
    const GlobalAddress& base) const {
  std::lock_guard lk(mu_);
  auto it = cache_.find(base);
  if (it == cache_.end()) return std::nullopt;
  return it->second.stamp;
}

std::vector<RegionDescriptor> RegionDirectory::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<RegionDescriptor> out;
  out.reserve(cache_.size());
  for (const auto& [base, entry] : cache_) out.push_back(entry.desc);
  return out;
}

void RegionDirectory::invalidate(const GlobalAddress& addr) {
  std::lock_guard lk(mu_);
  auto it = cache_.upper_bound(addr);
  if (it == cache_.begin()) return;
  --it;
  if (!it->second.desc.range.contains(addr)) return;
  lru_.erase(it->second.lru_pos);
  cache_.erase(it);
}

}  // namespace khz::location
