#include "location/resolver.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/serialize.h"
#include "location/address_map.h"
#include "net/message.h"

namespace khz::location {

using net::MsgType;

namespace {

ErrorCode from_wire(std::uint8_t b) { return static_cast<ErrorCode>(b); }

}  // namespace

Resolver::Resolver(Host& host, obs::MetricsRegistry& metrics) : host_(host) {
  ins_.cache_hits = &metrics.counter("node.resolve_cache_hits");
  ins_.manager_hits = &metrics.counter("node.resolve_manager_hits");
  ins_.map_walks = &metrics.counter("node.resolve_map_walks");
  ins_.cluster_walks = &metrics.counter("node.resolve_cluster_walks");
  ins_.region_dir_us = &metrics.histogram("resolve.region_dir_us");
  ins_.manager_hint_us = &metrics.histogram("resolve.manager_hint_us");
  ins_.map_walk_us = &metrics.histogram("resolve.map_walk_us");
  ins_.cluster_walk_us = &metrics.histogram("resolve.cluster_walk_us");
}

obs::Histogram* Resolver::hist_for(HitClass cls) const {
  switch (cls) {
    case HitClass::kRegionDir: return ins_.region_dir_us;
    case HitClass::kManager: return ins_.manager_hint_us;
    case HitClass::kMapWalk: return ins_.map_walk_us;
    case HitClass::kClusterWalk: return ins_.cluster_walk_us;
    case HitClass::kHome:
    case HitClass::kFailed: return nullptr;
  }
  return nullptr;
}

void Resolver::resolve(const GlobalAddress& addr, DescCb cb) {
  const Micros t0 = host_.now();
  // Level 0: well-known bootstrap region.
  if (AddressRange{kMapRegionBase, kMapRegionSize}.contains(addr)) {
    host_.note_resolved(HitClass::kHome, 0);
    cb(map_region_descriptor(host_.genesis()));
    return;
  }
  // Level 0b: regions homed here are authoritative.
  if (auto homed = host_.homed_descriptor(addr)) {
    host_.note_resolved(HitClass::kHome, 0);
    cb(*homed);
    return;
  }
  // Level 1: region directory (possibly stale; used optimistically).
  if (auto cached = host_.region_cache().lookup(addr)) {
    ins_.cache_hits->inc();
    // Effectively free, but recording it keeps the hit-class latency mix
    // comparable across the resolve.* histograms.
    ins_.region_dir_us->record(host_.now() - t0);
    host_.note_resolved(HitClass::kRegionDir, host_.now() - t0);
    cb(*cached);
    return;
  }
  resolve_via_manager(addr, t0, std::move(cb));
}

void Resolver::resolve_via_manager(const GlobalAddress& addr, Micros t0,
                                   DescCb cb) {
  // Level 2: the cluster manager's hint cache.
  if (host_.is_manager()) {
    const auto nodes = host_.manager_hint(addr);
    if (!nodes.empty()) {
      ins_.manager_hits->inc();
      fetch_descriptor(nodes, addr, t0, HitClass::kManager, std::move(cb));
    } else {
      resolve_via_map_walk(addr, t0, std::move(cb));
    }
    return;
  }
  Encoder e;
  e.addr(addr);
  Host::CallSpec opts;
  // Rotate the candidate order by self id so cold resolves spread across
  // the manager set instead of all landing on the first manager — under
  // churn this is what lets anti-entropy-repaired backups absorb lookups
  // that would otherwise fall through to the map walk.
  std::vector<NodeId> mgrs = host_.managers();
  if (mgrs.size() > 1) {
    std::rotate(mgrs.begin(),
                mgrs.begin() + static_cast<std::ptrdiff_t>(
                                   host_.self() % mgrs.size()),
                mgrs.end());
  }
  // One probe per manager: a miss should fall through to the map walk
  // quickly, not sit in a retry loop against the same hint caches.
  opts.max_attempts = static_cast<int>(mgrs.size());
  host_.call(
      std::move(mgrs), MsgType::kHintQueryReq, std::move(e).take(),
      [this, addr, t0, cb = std::move(cb)](bool ok, Decoder& d) mutable {
        if (ok) {
          const ErrorCode err = from_wire(d.u8());
          if (err == ErrorCode::kOk) {
            std::vector<NodeId> nodes;
            const std::uint32_t n = d.u32();
            for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
              nodes.push_back(d.u32());
            }
            if (!nodes.empty()) {
              ins_.manager_hits->inc();
              fetch_descriptor(std::move(nodes), addr, t0, HitClass::kManager,
                               std::move(cb));
              return;
            }
          }
        }
        // Level 3: walk the address-map tree.
        resolve_via_map_walk(addr, t0, std::move(cb));
      },
      std::move(opts));
}

void Resolver::resolve_via_map_walk(const GlobalAddress& addr, Micros t0,
                                    DescCb cb) {
  ins_.map_walks->inc();
  map_walk_step(0, addr, 0, t0, std::move(cb));
}

void Resolver::map_walk_step(std::uint32_t page_index, GlobalAddress addr,
                             int depth, Micros t0, DescCb cb) {
  host_.fetch_map_page(
      page_index,
      [this, addr, depth, t0, cb = std::move(cb)](Result<Bytes> r) mutable {
        if (!r) {
          resolve_via_cluster_walk(addr, t0, std::move(cb));
          return;
        }
        const auto step = AddressMap::walk_step(r.value(), addr);
        if (step.found) {
          fetch_descriptor(step.entry.homes, addr, t0, HitClass::kMapWalk,
                           std::move(cb));
          return;
        }
        if (step.descend && depth < 16) {
          map_walk_step(step.child, addr, depth + 1, t0, std::move(cb));
          return;
        }
        // Not in the map (lagging registration) — cluster walk
        // (Section 3.1: "If the set of nodes specified in a given region's
        // address map entry is stale, the region can still be located using
        // a cluster-walk algorithm").
        resolve_via_cluster_walk(addr, t0, std::move(cb));
      });
}

void Resolver::fetch_descriptor(std::vector<NodeId> candidates,
                                const GlobalAddress& addr, Micros t0,
                                HitClass cls, DescCb cb) {
  // Skip self (we would have answered from homed_regions_ already).
  std::erase(candidates, host_.self());
  if (candidates.empty()) {
    resolve_via_cluster_walk(addr, t0, std::move(cb));
    return;
  }
  Encoder e;
  e.addr(addr);
  Host::CallSpec opts;
  // Each candidate gets exactly one probe; the engine rotates through them
  // on timeout or bounce.
  opts.max_attempts = static_cast<int>(candidates.size());
  // Stale hint: "the use of a stale home pointer will simply result in a
  // message being sent to a node that no longer is home" (Section 3.2) —
  // a well-formed non-kOk answer steers to the next candidate.
  opts.accept = [](Decoder d) { return from_wire(d.u8()) == ErrorCode::kOk; };
  host_.call(
      std::move(candidates), MsgType::kDescLookupReq, std::move(e).take(),
      [this, addr, t0, cls, cb = std::move(cb)](bool ok, Decoder& d) mutable {
        if (!ok) {
          resolve_via_cluster_walk(addr, t0, std::move(cb));
          return;
        }
        (void)d.u8();  // status byte; the accept predicate saw kOk
        RegionDescriptor desc = RegionDescriptor::decode(d);
        host_.region_cache().insert(desc, host_.now());
        const Micros lat = host_.now() - t0;
        if (auto* hist = hist_for(cls)) hist->record(lat);
        host_.note_resolved(cls, lat);
        cb(std::move(desc));
      },
      std::move(opts));
}

void Resolver::resolve_via_cluster_walk(const GlobalAddress& addr, Micros t0,
                                        DescCb cb) {
  ins_.cluster_walks->inc();
  std::vector<NodeId> targets;
  for (NodeId n : host_.membership()) {
    if (n != host_.self()) targets.push_back(n);
  }
  if (targets.empty()) {
    host_.note_resolved(HitClass::kFailed, host_.now() - t0);
    cb(ErrorCode::kUnreachable);
    return;
  }
  struct WalkState {
    std::size_t remaining;
    bool done = false;
    DescCb cb;
  };
  auto st = std::make_shared<WalkState>();
  st->remaining = targets.size();
  st->cb = std::move(cb);
  for (NodeId t : targets) {
    Encoder e;
    e.addr(addr);
    Host::CallSpec opts;
    opts.max_attempts = 1;  // parallel one-shot probes, first hit wins
    host_.call(
        {t}, MsgType::kClusterWalkReq, std::move(e).take(),
        [this, st, t0](bool ok, Decoder& d) {
          if (st->done) return;
          if (ok && d.boolean()) {
            RegionDescriptor desc = RegionDescriptor::decode(d);
            st->done = true;
            const Micros lat = host_.now() - t0;
            host_.region_cache().insert(desc, host_.now());
            ins_.cluster_walk_us->record(lat);
            host_.note_resolved(HitClass::kClusterWalk, lat);
            st->cb(std::move(desc));
            return;
          }
          if (--st->remaining == 0) {
            st->done = true;
            host_.note_resolved(HitClass::kFailed, host_.now() - t0);
            st->cb(ErrorCode::kUnreachable);
          }
        },
        std::move(opts));
  }
}

}  // namespace khz::location
