// Region attributes and descriptors (paper, Sections 2 and 3.1).
//
// "Khazana maintains a global region descriptor associated with each region
// that stores various region attributes such as its security attributes,
// page size, and desired consistency protocol. In addition, each region has
// a home node that maintains a copy of the region's descriptor and keeps
// track of all the nodes maintaining copies of the region's data."
#pragma once

#include <cstdint>
#include <vector>

#include "common/global_address.h"
#include "common/serialize.h"
#include "common/types.h"
#include "consistency/cm.h"

namespace khz::location {

/// Desired consistency level, interpreted together with the protocol
/// (paper Section 2 lists "desired consistency level" and "consistency
/// protocol" as separate attributes: the level states the requirement, the
/// protocol is the mechanism chosen to meet it).
enum class ConsistencyLevel : std::uint8_t {
  kStrict = 0,   // every read sees the latest write (CREW)
  kRelaxed = 1,  // reads may briefly see stale data (release)
  kEventual = 2, // replicas converge; staleness bounded only by gossip
};

/// Access-control attribute. The paper defers full authentication design;
/// this carries the owner and a Unix-like mode enforced on lock/attr ops.
struct AccessControl {
  std::uint32_t owner = 0;  // client-supplied principal id
  bool world_read = true;
  bool world_write = true;

  friend bool operator==(const AccessControl&, const AccessControl&) = default;

  [[nodiscard]] bool allows(std::uint32_t principal, bool write) const {
    if (principal == owner) return true;
    return write ? world_write : world_read;
  }
};

/// Client-settable region attributes (get/set attribute operations).
struct RegionAttrs {
  std::uint32_t page_size = kDefaultPageSize;
  ConsistencyLevel level = ConsistencyLevel::kStrict;
  consistency::ProtocolId protocol = consistency::ProtocolId::kCrew;
  AccessControl acl;
  std::uint32_t min_replicas = 1;

  friend bool operator==(const RegionAttrs&, const RegionAttrs&) = default;

  void encode(Encoder& e) const;
  static RegionAttrs decode(Decoder& d);
};

/// The global region descriptor.
struct RegionDescriptor {
  AddressRange range;
  RegionAttrs attrs;
  /// Home nodes, primary first. "a non-exhaustive list of home nodes"
  /// (Section 3.1); replicas pushed for fault tolerance are appended.
  std::vector<NodeId> home_nodes;
  /// Backing storage has been allocated (allocate/free operations).
  bool allocated = false;

  [[nodiscard]] NodeId primary_home() const {
    return home_nodes.empty() ? kNoNode : home_nodes.front();
  }

  [[nodiscard]] std::vector<NodeId> alternates() const {
    if (home_nodes.size() <= 1) return {};
    return {home_nodes.begin() + 1, home_nodes.end()};
  }

  /// The page (aligned to attrs.page_size) containing `addr`.
  [[nodiscard]] GlobalAddress page_of(const GlobalAddress& addr) const {
    const std::uint64_t off = range.base.distance_to(addr);
    return range.base.plus(off - off % attrs.page_size);
  }

  void encode(Encoder& e) const;
  static RegionDescriptor decode(Decoder& d);
};

/// Well-known bootstrap constants: the address map lives in Khazana itself,
/// in a region starting at address 0 (paper, Section 3.1: "A well-known
/// region beginning at address 0 stores the root node of the address map
/// tree.").
inline constexpr GlobalAddress kMapRegionBase{0, 0};
inline constexpr std::uint64_t kMapRegionSize = 16ull << 20;  // 16 MiB of map
/// First address handed out for client regions (leaves room for the map
/// region and other bootstrap structures).
inline constexpr GlobalAddress kFirstClientAddress{0, 1ull << 32};
/// Size of the unreserved-space chunk a node requests from its cluster
/// manager when its local pool runs dry (Section 3.1: "a large (e.g., one
/// gigabyte) region of unreserved space").
inline constexpr std::uint64_t kPoolChunkSize = 1ull << 30;

/// Descriptor of the bootstrap map region, compiled into every node. The
/// genesis node is the primary home; the map is replicated under release
/// consistency ("the address map is replicated and kept consistent using a
/// relaxed consistency protocol", Section 3.1).
[[nodiscard]] RegionDescriptor map_region_descriptor(NodeId genesis);

}  // namespace khz::location
