#include "location/region.h"

namespace khz::location {

void RegionAttrs::encode(Encoder& e) const {
  e.u32(page_size);
  e.u8(static_cast<std::uint8_t>(level));
  e.u8(static_cast<std::uint8_t>(protocol));
  e.u32(acl.owner);
  e.boolean(acl.world_read);
  e.boolean(acl.world_write);
  e.u32(min_replicas);
}

RegionAttrs RegionAttrs::decode(Decoder& d) {
  RegionAttrs a;
  a.page_size = d.u32();
  a.level = static_cast<ConsistencyLevel>(d.u8());
  a.protocol = static_cast<consistency::ProtocolId>(d.u8());
  a.acl.owner = d.u32();
  a.acl.world_read = d.boolean();
  a.acl.world_write = d.boolean();
  a.min_replicas = d.u32();
  return a;
}

void RegionDescriptor::encode(Encoder& e) const {
  e.range(range);
  attrs.encode(e);
  e.u32(static_cast<std::uint32_t>(home_nodes.size()));
  for (NodeId n : home_nodes) e.u32(n);
  e.boolean(allocated);
}

RegionDescriptor RegionDescriptor::decode(Decoder& d) {
  RegionDescriptor r;
  r.range = d.range();
  r.attrs = RegionAttrs::decode(d);
  const std::uint32_t n = d.u32();
  // Wire data is untrusted: never size containers from a raw count. A
  // region has at most a handful of recorded homes (kMaxHomes in the map).
  constexpr std::uint32_t kSaneHomeLimit = 16;
  for (std::uint32_t i = 0; i < n && i < kSaneHomeLimit && d.ok(); ++i) {
    r.home_nodes.push_back(d.u32());
  }
  r.allocated = d.boolean();
  return r;
}

RegionDescriptor map_region_descriptor(NodeId genesis) {
  RegionDescriptor r;
  r.range = {kMapRegionBase, kMapRegionSize};
  r.attrs.page_size = kDefaultPageSize;
  r.attrs.level = ConsistencyLevel::kRelaxed;
  r.attrs.protocol = consistency::ProtocolId::kRelease;
  r.attrs.min_replicas = 1;
  r.home_nodes = {genesis};
  r.allocated = true;
  return r;
}

}  // namespace khz::location
