// The distributed address map (paper, Section 3.1).
//
// "Khazana maintains a globally distributed data structure called the
// address map... used to keep track of reserved and free regions within the
// global address space [and] to locate the home nodes of regions... The
// address map is implemented as a distributed tree where each subtree
// describes a range of global address space in finer detail. Each tree node
// is of fixed size and contains a set of entries describing disjoint global
// memory regions, each of which contains either a non-exhaustive list of
// home nodes for a reserved region or points to the root node of a subtree
// describing the region in finer detail. The address map itself resides in
// Khazana. A well-known region beginning at address 0 stores the root node
// of the address map tree."
//
// Concretely: a B+-tree of fixed-size (one Khazana page) nodes. Leaf
// entries record reserved regions with up to kMaxHomes home-node hints;
// interior entries point at child tree nodes covering their range in finer
// detail. Free space is the complement of the recorded reservations. The
// tree reads and writes its nodes through the MapPageStore interface, which
// the Khazana node implements over region-0 pages — so the map genuinely
// lives in Khazana and replicates to readers under the relaxed protocol.
//
// The root must stay at page index 0 (its address is the well-known
// bootstrap constant), so a root split allocates two fresh children and
// rewrites the root in place as an interior node.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/global_address.h"
#include "common/result.h"
#include "common/serialize.h"
#include "common/types.h"

namespace khz::location {

/// Backing store for map tree nodes: fixed-size pages addressed by index
/// (index i lives at Khazana address kMapRegionBase + i * page_size).
class MapPageStore {
 public:
  virtual ~MapPageStore() = default;
  [[nodiscard]] virtual Bytes read_page(std::uint32_t index) = 0;
  virtual void write_page(std::uint32_t index, const Bytes& data) = 0;
  [[nodiscard]] virtual std::uint32_t page_size() const = 0;
};

/// One reserved-region record in the map.
struct MapEntry {
  AddressRange range;
  std::vector<NodeId> homes;

  friend bool operator==(const MapEntry&, const MapEntry&) = default;
};

class AddressMap {
 public:
  static constexpr std::uint32_t kMagic = 0x4b5a4d50;  // "KZMP"
  static constexpr std::size_t kMaxHomes = 4;
  static constexpr std::size_t kMaxEntries = 64;

  explicit AddressMap(MapPageStore& store) : store_(store) {}

  /// Initializes an empty tree (root = empty leaf). Genesis-node only.
  static void format(MapPageStore& store);

  /// True if the root page carries a valid map (used to detect an already
  /// formatted store on restart).
  [[nodiscard]] bool formatted();

  /// Records a reservation. Fails with kAlreadyReserved on overlap.
  Status insert(const AddressRange& range, const std::vector<NodeId>& homes);

  /// Removes the reservation whose base is exactly `base`.
  Status erase(const GlobalAddress& base);

  /// Entry whose range contains `addr`, if any.
  [[nodiscard]] std::optional<MapEntry> lookup(const GlobalAddress& addr);

  /// Replaces the home list of the entry based at `base`.
  Status update_homes(const GlobalAddress& base,
                      const std::vector<NodeId>& homes);

  /// Does any reservation overlap `range`?
  [[nodiscard]] bool overlaps(const AddressRange& range);

  /// Splits pages holding more than `max_entries` entries (clamped to
  /// [4, kMaxEntries]) until every page fits, bounded at a few rounds.
  /// Insertion only splits at the kMaxEntries overflow point, so a skewed
  /// workload concentrates entries in one hot page and every lookup under
  /// it serializes on that page's home; rebalancing at a lower threshold
  /// spreads the entries over more pages. Returns the splits performed.
  std::size_t rebalance(std::size_t max_entries);

  /// All reservations, in address order (full scan; diagnostics & tests).
  [[nodiscard]] std::vector<MapEntry> entries();

  /// Number of tree pages in use.
  [[nodiscard]] std::uint32_t pages_used();

  /// Tree height (1 = root is a leaf). Diagnostics.
  [[nodiscard]] std::uint32_t height();

  /// One step of a tree walk over a raw page image, for walkers that fetch
  /// map pages remotely (the client-side lookup of Section 3.2 runs this
  /// against release-consistent replicas of the tree nodes).
  struct WalkStep {
    bool found = false;  // leaf entry containing addr
    MapEntry entry;
    bool descend = false;  // continue at child page index
    std::uint32_t child = 0;
  };
  [[nodiscard]] static WalkStep walk_step(const Bytes& page_data,
                                          const GlobalAddress& addr);

 private:
  struct InteriorEntry {
    GlobalAddress min_base;  // smallest base in the child's subtree
    std::uint32_t child;
  };
  struct TreeNode {
    bool leaf = true;
    std::uint32_t next_free = 1;  // root page only: next unallocated index
    std::vector<MapEntry> leaf_entries;
    std::vector<InteriorEntry> children;

    [[nodiscard]] std::size_t count() const {
      return leaf ? leaf_entries.size() : children.size();
    }
  };

  [[nodiscard]] TreeNode load(std::uint32_t index);
  void save(std::uint32_t index, const TreeNode& node);
  std::uint32_t alloc_page();

  /// Result of a child insert that overflowed and split.
  struct Split {
    GlobalAddress right_min;
    std::uint32_t right_page;
  };
  Status insert_rec(std::uint32_t index, const AddressRange& range,
                    const std::vector<NodeId>& homes,
                    std::optional<Split>& split);
  /// Moves the upper half of page `index` into a fresh right page; the
  /// lower half stays. Returns the separator for the parent (nullopt when
  /// the page is too small to split).
  std::optional<Split> split_page(std::uint32_t index, TreeNode node);
  /// Root-split completion: pushes the root's (already halved) content
  /// down into a fresh left child and rewrites page 0 as an interior node
  /// over {left, right} — the root must stay at its well-known page.
  void make_root_interior(const Split& split);
  bool rebalance_children(std::uint32_t index, std::size_t max_entries,
                          std::size_t& splits);
  void collect(std::uint32_t index, std::vector<MapEntry>& out);

  [[nodiscard]] Bytes encode(const TreeNode& node) const;
  [[nodiscard]] static TreeNode decode(const Bytes& data);

  MapPageStore& store_;
};

}  // namespace khz::location
