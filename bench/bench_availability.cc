// GOAL-AVAIL — Section 3.5, "Failure handling": minimum primary replicas
// and the acquire/release error asymmetry.
//
// Part 1: regions created with min_replicas r in {1,2,3}; k random holders
// are crashed; report the fraction of 20 regions still readable and the
// mean access latency of the survivors (failure detection adds retries).
//
// Part 2: the asymmetry itself — an acquire-type op (lock) against a dead
// home fails back to the client after retries, while a release-type op
// (unreserve) is accepted immediately and retried in the background until
// the home returns.
//
// Part 3: write availability across a home crash (docs/recovery.md). With
// min_replicas >= 2 a surviving replica promotes itself to home once the
// failure detector fires; we measure the window between the crash and the
// first client write that completes again.
#include "bench/bench_util.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::RegionAttrs;
using core::SimWorld;
using consistency::LockMode;

struct AvailPoint {
  double available_fraction;
  Micros mean_latency;
};

AvailPoint run(std::uint32_t min_replicas, int kill_count) {
  SimWorld world({.nodes = 6, .rpc_timeout = 50'000});
  RegionAttrs attrs;
  attrs.min_replicas = min_replicas;

  const int kRegions = 20;
  std::vector<AddressRange> regions;
  for (int i = 0; i < kRegions; ++i) {
    const NodeId home = static_cast<NodeId>(1 + i % 5);  // spread homes
    auto base = world.create_region(home, 4096, attrs);
    if (!base.ok()) std::abort();
    regions.push_back({base.value(), 4096});
    if (!world.put(home, regions.back(),
                   fill(4096, static_cast<std::uint8_t>(i + 1)))
             .ok()) {
      std::abort();
    }
  }
  world.pump_for(3'000'000);  // replica maintenance settles

  // Crash k nodes (never node 0: it reads, and hosts the map).
  for (int k = 0; k < kill_count; ++k) {
    world.net().set_node_up(static_cast<NodeId>(1 + k), false);
  }

  int readable = 0;
  Micros latency = 0;
  for (int i = 0; i < kRegions; ++i) {
    const Micros t0 = world.net().now();
    auto r = world.get(0, regions[static_cast<std::size_t>(i)]);
    if (r.ok() && r.value()[0] == static_cast<std::uint8_t>(i + 1)) {
      ++readable;
      latency += world.net().now() - t0;
    }
  }
  return {static_cast<double>(readable) / kRegions,
          readable > 0 ? latency / readable : 0};
}

// Crashes the home of a freshly written region and measures how long
// writes stay unavailable before fail-over restores them. Returns the
// window in virtual microseconds, or -1 if writes never came back (the
// expected outcome for min_replicas = 1: no surviving copy, no heir).
std::int64_t write_unavailability_window(std::uint32_t min_replicas) {
  SimWorld world({.nodes = 4, .rpc_timeout = 50'000,
                  .ping_interval = 50'000});
  RegionAttrs attrs;
  attrs.min_replicas = min_replicas;
  auto base = world.create_region(1, 4096, attrs);
  if (!base.ok()) std::abort();
  const AddressRange range{base.value(), 4096};
  if (!world.put(1, range, fill(4096, 0x5A)).ok()) std::abort();
  world.pump_for(2'000'000);  // replica maintenance settles

  world.crash_node(1);
  const Micros crashed_at = world.net().now();

  // A writer on an uninvolved node hammers the region; each failed
  // attempt burns its retries in virtual time, and the pings that drive
  // failure detection (and then promotion) flow underneath. First success
  // closes the window.
  for (int attempt = 0; attempt < 40; ++attempt) {
    if (world.put(3, range, fill(4096, 0xA5)).ok()) {
      return static_cast<std::int64_t>(world.net().now() - crashed_at);
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport json("availability", argc, argv);
  title("GOAL-AVAIL | bench_availability",
        "Availability vs replication factor under node crashes\n"
        "(Section 3.5), plus acquire/release error semantics and the\n"
        "write-unavailability window across home fail-over.");

  std::printf("\n20 regions spread over 5 homes; k nodes crashed:\n\n");
  table_header({"min_replicas", "crashed", "available", "mean latency"});
  for (std::uint32_t r : {1u, 2u, 3u}) {
    for (int k : {0, 1, 2}) {
      const auto p = run(r, k);
      cell(static_cast<std::uint64_t>(r));
      cell(static_cast<std::uint64_t>(k));
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.0f%%", p.available_fraction * 100);
      cell(std::string(pct));
      cell(us(p.mean_latency));
      endrow();
      json.metric("read_avail_r" + std::to_string(r) + "_k" +
                      std::to_string(k),
                  p.available_fraction);
    }
  }

  std::printf("\nAcquire vs release error semantics (dead home):\n\n");
  {
    SimWorld world({.nodes = 3, .rpc_timeout = 50'000});
    auto base = world.create_region(1, 4096);
    if (!base.ok()) return 1;
    (void)world.get(2, {base.value(), 4096});
    world.net().set_node_up(1, false);

    // Acquire-type: reflected to the client after retries.
    Micros t0 = world.net().now();
    world.node(2).page_info(base.value()).state =
        storage::PageState::kInvalid;
    world.node(2).storage().erase(base.value());
    auto ctx = world.lock(2, {base.value(), 4096}, LockMode::kRead);
    std::printf("  lock (acquire) on dead home: %s after %s of retries\n",
                ctx.ok() ? "GRANTED?!"
                         : std::string(to_string(ctx.error())).c_str(),
                us(world.net().now() - t0).c_str());

    // Release-type: accepted now, retried in the background.
    t0 = world.net().now();
    auto s = world.unreserve(2, base.value());
    std::printf(
        "  unreserve (release) on dead home: accepted=%s in %s; "
        "background queue depth=%zu\n",
        s.ok() ? "yes" : "no", us(world.net().now() - t0).c_str(),
        world.node(2).background_queue_depth());
    world.net().set_node_up(1, true);
    world.pump_for(2'000'000);
    std::printf(
        "  after the home recovers: background queue depth=%zu "
        "(retries=%llu)\n",
        world.node(2).background_queue_depth(),
        static_cast<unsigned long long>(
            world.node(2).stats().background_retries));
  }

  std::printf(
      "\nWrite-unavailability window after the home crashes\n"
      "(4 nodes, rpc_timeout 50 ms, ping interval 50 ms; a third node\n"
      "retries a write until it completes):\n\n");
  table_header({"min_replicas", "write outage"});
  for (std::uint32_t r : {1u, 2u, 3u}) {
    const std::int64_t window = write_unavailability_window(r);
    cell(static_cast<std::uint64_t>(r));
    cell(window < 0 ? std::string("permanent (no surviving copy)")
                    : us(static_cast<Micros>(window)));
    endrow();
    json.metric("write_unavail_us_r" + std::to_string(r),
                static_cast<double>(window));
  }

  std::printf(
      "\nShape check vs paper: min_replicas=1 loses exactly the regions\n"
      "whose home died; with replication everything stays readable — and\n"
      "reads get FASTER, because the maintenance machinery pushed a copy\n"
      "onto the reading node (caching near use, Section 2). Acquire errors\n"
      "reach the client; release errors never do — Khazana retries them in\n"
      "the background until they succeed. With min_replicas >= 2 a home\n"
      "crash costs writers only the failure-detection window plus one\n"
      "promotion: the highest-id surviving copy-set member re-homes the\n"
      "region and writes resume without operator intervention.\n");
  return 0;
}
