// APP-OBJ — Section 4.2: the distributed object runtime and the
// replicate-vs-RPC decision.
//
// "It also could use location information exported from Khazana to decide
// if it is more efficient to load a local copy of the object or perform a
// remote invocation of the object on a node where it is already
// physically instantiated."
//
// Sweeps object size and read/write mix, comparing always-local
// (replicate) against always-remote (RPC) invocation from a node with no
// replica, and showing what the kAuto policy picks. The crossover —
// replication wins for small/read-mostly objects, RPC wins for large
// objects touched once — is the figure-of-merit.
#include "bench/bench_util.h"
#include "obj/runtime.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::SimWorld;
using obj::InvokePolicy;
using obj::ObjectRuntime;
using obj::ObjectType;
using obj::ObjRef;

ObjectType blob_type() {
  ObjectType t;
  t.name = "blob";
  t.methods["touch"] = {
      [](Bytes& state, const Bytes&) -> Result<Bytes> {
        if (!state.empty()) state[0] = static_cast<std::uint8_t>(state[0] + 1);
        return Bytes{state.empty() ? std::uint8_t{0} : state[0]};
      },
      /*mutating=*/true};
  t.methods["peek"] = {
      [](Bytes& state, const Bytes&) -> Result<Bytes> {
        return Bytes{state.empty() ? std::uint8_t{0} : state[0]};
      },
      /*mutating=*/false};
  return t;
}

struct Setup {
  std::unique_ptr<SimWorld> world;
  std::vector<std::unique_ptr<ObjectRuntime>> runtimes;
  ObjRef ref;
};

Setup make(std::uint32_t object_bytes) {
  Setup s;
  s.world = std::make_unique<SimWorld>(core::SimWorldOptions{.nodes = 3});
  for (NodeId n = 0; n < 3; ++n) {
    s.runtimes.push_back(std::make_unique<ObjectRuntime>(s.world->node(n)));
    s.runtimes.back()->register_type(blob_type());
  }
  std::optional<Result<ObjRef>> created;
  s.runtimes[0]->create("blob", Bytes(object_bytes, 1), object_bytes, {},
                        [&](Result<ObjRef> r) { created = std::move(r); });
  s.world->pump_until([&] { return created.has_value(); });
  if (!created->ok()) std::abort();
  s.ref = created->value();
  return s;
}

/// Invokes `method` `count` times from node 2 under `policy`; returns
/// total virtual time and messages.
std::pair<Micros, std::uint64_t> drive(Setup& s, const std::string& method,
                                       int count, InvokePolicy policy) {
  TrafficMeter meter(*s.world);
  const Micros t0 = s.world->net().now();
  for (int i = 0; i < count; ++i) {
    std::optional<Result<Bytes>> done;
    s.runtimes[2]->invoke(s.ref, method, {}, policy,
                          [&](Result<Bytes> r) { done = std::move(r); });
    s.world->pump_until([&] { return done.has_value(); });
    if (!done->ok()) std::abort();
  }
  return {s.world->net().now() - t0, meter.delta().messages};
}

}  // namespace

int main() {
  title("APP-OBJ | bench_objects",
        "Replicate-vs-RPC invocation cost (Section 4.2): 10 invocations\n"
        "from a node holding no replica; object home is one LAN hop away.");

  std::printf("\nRead-only method ('peek'), by object size:\n\n");
  table_header({"object size", "replicate: time", "msgs", "rpc: time",
                "msgs", "auto picks"});
  for (std::uint32_t size : {256u, 4096u, 65536u, 1u << 20}) {
    auto local_setup = make(size);
    const auto local = drive(local_setup, "peek", 10, InvokePolicy::kAlwaysLocal);
    auto remote_setup = make(size);
    const auto remote = drive(remote_setup, "peek", 10,
                              InvokePolicy::kAlwaysRemote);
    auto auto_setup = make(size);
    (void)drive(auto_setup, "peek", 10, InvokePolicy::kAuto);
    const auto& st = auto_setup.runtimes[2]->stats();
    const bool picked_local = st.local_invokes >= st.remote_invokes;

    char label[32];
    if (size >= (1u << 20)) {
      std::snprintf(label, sizeof(label), "%u MiB", size >> 20);
    } else if (size >= 1024) {
      std::snprintf(label, sizeof(label), "%u KiB", size >> 10);
    } else {
      std::snprintf(label, sizeof(label), "%u B", size);
    }
    cell(std::string(label));
    cell(us(local.first)); cell(local.second);
    cell(us(remote.first)); cell(remote.second);
    cell(std::string(picked_local ? "replicate" : "rpc"));
    endrow();
  }

  std::printf("\nMutating method ('touch'), 4 KiB object:\n\n");
  table_header({"policy", "time (10 ops)", "messages"});
  {
    auto s1 = make(4096);
    const auto local = drive(s1, "touch", 10, InvokePolicy::kAlwaysLocal);
    cell(std::string("replicate")); cell(us(local.first)); cell(local.second);
    endrow();
    auto s2 = make(4096);
    const auto remote = drive(s2, "touch", 10, InvokePolicy::kAlwaysRemote);
    cell(std::string("rpc")); cell(us(remote.first)); cell(remote.second);
    endrow();
  }

  std::printf(
      "\nShape check vs paper: for small objects, replication amortizes —\n"
      "after the first fetch every local invocation is free, while RPC\n"
      "pays a round trip each time. For large objects invoked rarely, the\n"
      "one-time transfer dominates and RPC wins; mutating methods shift\n"
      "the balance toward RPC (write-backs / ownership traffic). kAuto\n"
      "follows Khazana's location data to land on the cheap side.\n");
  return 0;
}
