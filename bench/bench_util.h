// Shared helpers for the experiment harness.
//
// Each bench binary reproduces one figure or design claim from the paper
// (see DESIGN.md Section 5 and EXPERIMENTS.md). The quantities reported are
// virtual time and message counts from the deterministic simulator, so
// every run prints identical numbers.
#pragma once

#include <cstdio>
#include <ctime>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/tcp_world.h"

// Build provenance compiled in by the top-level CMakeLists; the fallbacks
// keep the header usable outside that build (e.g. a one-off compile).
#ifndef KHZ_GIT_SHA
#define KHZ_GIT_SHA "unknown"
#endif
#ifndef KHZ_BUILD_TYPE
#define KHZ_BUILD_TYPE "unknown"
#endif

namespace khz::bench {

inline void title(const std::string& name, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", name.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void table_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-18s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-18s", "----");
  std::printf("\n");
}

inline void cell(const std::string& s) { std::printf("%-18s", s.c_str()); }
inline void cell(double v) { std::printf("%-18.2f", v); }
inline void cell(std::uint64_t v) {
  std::printf("%-18llu", static_cast<unsigned long long>(v));
}
inline void cell(std::int64_t v) {
  std::printf("%-18lld", static_cast<long long>(v));
}
inline void endrow() { std::printf("\n"); }

inline std::string us(Micros t) {
  char buf[32];
  if (t >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(t) / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(t));
  }
  return buf;
}

inline Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

/// Messages and bytes sent between two stat snapshots.
struct TrafficDelta {
  std::uint64_t messages;
  std::uint64_t bytes;
};

/// Measures wire traffic between two points in a run. Works over any world:
/// the SimWorld constructor samples the simulator's global NetStats, the
/// TcpWorld constructor the deployment-wide aggregate of every endpoint's
/// TransportStats, and the sampler constructor anything else.
class TrafficMeter {
 public:
  /// (messages_sent, bytes_sent) at the time of the call.
  using Sampler = std::function<TrafficDelta()>;

  explicit TrafficMeter(Sampler sampler) : sample_(std::move(sampler)) {
    reset();
  }
  explicit TrafficMeter(core::SimWorld& world)
      : TrafficMeter(Sampler([&world] {
          const auto& s = world.net().stats();
          return TrafficDelta{s.messages_sent, s.bytes_sent};
        })) {}
  explicit TrafficMeter(core::TcpWorld& world)
      : TrafficMeter(Sampler([&world] {
          const auto s = world.total_transport_stats();
          return TrafficDelta{s.messages_sent, s.bytes_sent};
        })) {}

  void reset() { base_ = sample_(); }
  [[nodiscard]] TrafficDelta delta() const {
    const TrafficDelta now = sample_();
    return {now.messages - base_.messages, now.bytes - base_.bytes};
  }

 private:
  Sampler sample_;
  TrafficDelta base_{0, 0};
};

/// Machine-readable sidecar for a bench binary. Pass argc/argv; if the
/// `--json` flag is present, every metric() call is collected and written
/// to BENCH_<name>.json in the working directory when finish() runs (or at
/// destruction). Without the flag all calls are no-ops, so benches can
/// report unconditionally.
class JsonReport {
 public:
  JsonReport(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") enabled_ = true;
    }
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { finish(); }

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Integral values convert implicitly; a single overload avoids
  /// int-literal ambiguity.
  void metric(const std::string& key, double value) {
    if (enabled_) metrics_.emplace_back(key, value);
  }

  /// Run metadata emitted as a string under the sidecar's "meta" object,
  /// next to the automatic provenance (git sha, build type, timestamp).
  /// Benches use it for things the build can't know, e.g. the world kind.
  void meta(const std::string& key, const std::string& value) {
    if (enabled_) meta_.emplace_back(key, value);
  }

  /// Writes BENCH_<name>.json (idempotent; also called by the destructor).
  void finish() {
    if (!enabled_ || written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"meta\": {", name_.c_str());
    std::fprintf(f, "\n    \"git_sha\": \"%s\",", KHZ_GIT_SHA);
    std::fprintf(f, "\n    \"build_type\": \"%s\",", KHZ_BUILD_TYPE);
    std::fprintf(f, "\n    \"timestamp\": %lld",
                 static_cast<long long>(std::time(nullptr)));
    for (const auto& [k, v] : meta_) {
      std::fprintf(f, ",\n    \"%s\": \"%s\"", k.c_str(), v.c_str());
    }
    std::fprintf(f, "\n  },\n  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.6g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("[json] wrote %s (%zu metrics)\n", path.c_str(),
                metrics_.size());
  }

 private:
  std::string name_;
  bool enabled_ = false;
  bool written_ = false;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace khz::bench
