// Shared helpers for the experiment harness.
//
// Each bench binary reproduces one figure or design claim from the paper
// (see DESIGN.md Section 5 and EXPERIMENTS.md). The quantities reported are
// virtual time and message counts from the deterministic simulator, so
// every run prints identical numbers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/client.h"

namespace khz::bench {

inline void title(const std::string& name, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", name.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void table_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-18s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-18s", "----");
  std::printf("\n");
}

inline void cell(const std::string& s) { std::printf("%-18s", s.c_str()); }
inline void cell(double v) { std::printf("%-18.2f", v); }
inline void cell(std::uint64_t v) {
  std::printf("%-18llu", static_cast<unsigned long long>(v));
}
inline void cell(std::int64_t v) {
  std::printf("%-18lld", static_cast<long long>(v));
}
inline void endrow() { std::printf("\n"); }

inline std::string us(Micros t) {
  char buf[32];
  if (t >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(t) / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(t));
  }
  return buf;
}

inline Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

/// Messages and bytes sent between two stat snapshots.
struct TrafficDelta {
  std::uint64_t messages;
  std::uint64_t bytes;
};

class TrafficMeter {
 public:
  explicit TrafficMeter(core::SimWorld& world) : world_(world) { reset(); }
  void reset() {
    msgs_ = world_.net().stats().messages_sent;
    bytes_ = world_.net().stats().bytes_sent;
  }
  [[nodiscard]] TrafficDelta delta() const {
    return {world_.net().stats().messages_sent - msgs_,
            world_.net().stats().bytes_sent - bytes_};
  }

 private:
  core::SimWorld& world_;
  std::uint64_t msgs_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace khz::bench
