// ABL-MIGRATE — home migration as a placement policy knob.
//
// Section 2: "A major goal of this research is to develop caching policies
// that balance the needs for load balancing, low latency access to data,
// availability behavior, and resource constraints." Section 8 lists
// "resource- and load-aware migration and replication policies" as the
// research agenda. This ablation quantifies what migration buys: a region
// homed across a WAN link is used intensively by a far cluster; we compare
// steady-state write latency before and after migrating the region's home
// into that cluster, and show the one-time cost of the move.
#include "bench/bench_util.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::SimWorld;

}  // namespace

int main() {
  title("ABL-MIGRATE | bench_migration",
        "Effect of migrating a region's home toward its users.\n"
        "Nodes 0-1: cluster A; nodes 2-3: cluster B; 40 ms WAN between.");

  SimWorld world({.nodes = 4});
  for (NodeId a : {0u, 1u}) {
    for (NodeId b : {2u, 3u}) {
      world.net().set_link_pair(a, b, net::LinkProfile::wan());
    }
  }

  // The region is born in cluster A (homed on node 0), but its workload
  // lives in cluster B (writers 2 and 3).
  auto base = world.create_region(0, 4096);
  if (!base.ok()) return 1;
  const AddressRange region{base.value(), 4096};
  if (!world.put(0, region, fill(4096, 1)).ok()) return 1;

  auto measure = [&](const char* phase) {
    // 8 writes alternating between the two cluster-B nodes: each write
    // must reach the home for ownership coordination.
    TrafficMeter meter(world);
    const Micros t0 = world.net().now();
    for (int i = 0; i < 8; ++i) {
      const NodeId writer = 2 + (i % 2);
      if (!world.put(writer, region, fill(4096, static_cast<std::uint8_t>(i)))
               .ok()) {
        std::abort();
      }
    }
    const Micros per_op = (world.net().now() - t0) / 8;
    std::printf("%-34s %10s/write   %5.1f msgs/write\n", phase,
                us(per_op).c_str(),
                static_cast<double>(meter.delta().messages) / 8);
  };

  std::printf("\n");
  measure("home in cluster A (over the WAN):");

  TrafficMeter move_meter(world);
  const Micros move_start = world.net().now();
  if (!world.migrate(2, region.base, 2).ok()) {
    std::printf("MIGRATION FAILED\n");
    return 1;
  }
  const Micros move_time = world.net().now() - move_start;
  const auto move_msgs = move_meter.delta().messages;
  world.pump_for(1'000'000);  // hint/map updates settle (not charged)
  std::printf("migrate home 0 -> 2:               %10s one-time, "
              "%llu msgs\n",
              us(move_time).c_str(),
              static_cast<unsigned long long>(move_msgs));

  measure("home in cluster B (local):");

  std::printf(
      "\nShape check vs paper: while the home sits across the WAN, every\n"
      "ownership hand-off pays round trips at WAN latency; after migrating\n"
      "the home into the cluster that uses the data, coordination is LAN-\n"
      "local and write latency drops by orders of magnitude. The move\n"
      "itself costs a few messages once — the basis for the load-aware\n"
      "migration policies the paper lists as its research agenda.\n");
  return 0;
}
