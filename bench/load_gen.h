// Open-loop zipfian load generation for the overload experiments.
//
// Every other bench in this repo is closed-loop: one logical client issues
// an op, waits for it, issues the next. A closed loop can never push a
// server past saturation — the moment the server slows down, the offered
// load drops with it, which is exactly the regime the paper's
// web-cache-style services do NOT live in. This header provides the other
// kind of generator: a Poisson arrival process at a fixed offered rate,
// independent of completions, fanned across thousands of logical client
// streams whose key popularity follows a zipfian distribution (hot keys
// dominate, like real cache traffic).
//
// The generator schedules arrivals on the node's own timer rail, so the
// same code drives the discrete-event simulator (virtual time) and a
// TcpWorld node (real time, posted onto the node's executor). All mutable
// state is touched only from node context; the counters are atomics so a
// TcpWorld main thread can poll progress from outside.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/node.h"
#include "obs/metrics.h"

namespace khz::bench {

/// Zipfian key sampler: P(k) ~ 1/(k+1)^s over n keys, via a precomputed
/// CDF and binary search. s ~= 0.99 is the classic YCSB skew.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::size_t n, double s = 0.99) : cdf_(n) {
    double sum = 0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  [[nodiscard]] std::size_t sample(double u01) const {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u01);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
  }

  [[nodiscard]] std::size_t keys() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Outcome counters for one generator run. Latency covers successful ops
/// only; failures (deadline expired, shed, budget exhausted) are the
/// overload signal, not a latency sample.
struct LoadStats {
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  obs::Histogram latency_us;

  [[nodiscard]] std::uint64_t completed() const { return ok + failed; }
};

/// Open-loop driver over one issuing node. start() must run in node
/// context; arrivals then self-schedule until the configured duration of
/// node-clock time has elapsed.
class OpenLoopLoad {
 public:
  struct Options {
    /// Offered load, in operations per second of node-clock time.
    double rate_ops_per_sec = 1000;
    /// How long the arrival process runs (node clock).
    Micros duration = 1'000'000;
    /// Key space size and zipf skew for the popularity distribution.
    std::size_t keys = 64;
    double zipf_s = 0.99;
    /// Logical client streams: each arrival is attributed to one stream
    /// (round-robin would synchronize phases; we draw uniformly).
    std::size_t clients = 1000;
    std::uint64_t seed = 1;
  };

  /// Issues one operation for (client, key); must call done(ok) exactly
  /// once, in node context, when the op completes or fails.
  using IssueFn = std::function<void(std::size_t client, std::size_t key,
                                     std::function<void(bool)> done)>;

  OpenLoopLoad(core::Node& node, Options opts, IssueFn issue)
      : node_(node),
        opts_(opts),
        issue_(std::move(issue)),
        zipf_(opts.keys, opts.zipf_s),
        rng_(opts.seed) {}

  /// Kicks off the arrival process (call in node context). The first
  /// arrival lands after one interarrival gap.
  void start() {
    end_at_ = node_.now() + opts_.duration;
    arm_next();
  }

  /// All arrivals fired and every issued op completed.
  [[nodiscard]] bool done() const {
    return arrivals_done_.load() && inflight_.load() == 0;
  }

  [[nodiscard]] LoadStats& stats() { return stats_; }
  [[nodiscard]] std::uint64_t inflight() const { return inflight_.load(); }

 private:
  /// Exponential interarrival at the offered rate: a Poisson process, the
  /// standard open-loop arrival model. Clamped to >= 1us (the scheduler's
  /// resolution).
  [[nodiscard]] Micros next_gap() {
    const double u = std::max(rng_.uniform(), 1e-12);
    const double gap_us = -std::log(u) * 1e6 / opts_.rate_ops_per_sec;
    return std::max<Micros>(1, static_cast<Micros>(gap_us));
  }

  void arm_next() {
    if (node_.now() >= end_at_) {
      arrivals_done_.store(true);
      return;
    }
    node_.schedule(next_gap(), [this] {
      fire();
      arm_next();
    });
  }

  void fire() {
    const std::size_t client = rng_.below(opts_.clients);
    const std::size_t key = zipf_.sample(rng_.uniform());
    stats_.issued.fetch_add(1);
    inflight_.fetch_add(1);
    const Micros t0 = node_.now();
    issue_(client, key, [this, t0](bool ok) {
      if (ok) {
        stats_.ok.fetch_add(1);
        stats_.latency_us.record(
            static_cast<std::uint64_t>(node_.now() - t0));
      } else {
        stats_.failed.fetch_add(1);
      }
      inflight_.fetch_sub(1);
    });
  }

  core::Node& node_;
  Options opts_;
  IssueFn issue_;
  ZipfSampler zipf_;
  Rng rng_;
  Micros end_at_ = 0;
  std::atomic<bool> arrivals_done_{false};
  std::atomic<std::uint64_t> inflight_{0};
  LoadStats stats_;
};

}  // namespace khz::bench
