// APP-KFS — Section 4.1: the wide-area distributed filesystem.
//
// Measures the filesystem operations the paper's design section walks
// through: create (inode + directory entry), open (recursive descent),
// sequential write/read throughput, cold-vs-warm remote reads, and the
// effect of replicating a hot file. All distribution comes from Khazana;
// the filesystem code is identical on every node.
#include "bench/bench_util.h"
#include "kfs/fs.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::SimClient;
using core::SimWorld;

}  // namespace

int main() {
  title("APP-KFS | bench_kfs",
        "Filesystem operation costs over Khazana (Section 4.1);\n"
        "5-node LAN, one filesystem mounted everywhere.");

  SimWorld world({.nodes = 5});
  std::vector<SimClient> clients;
  for (NodeId n = 0; n < 5; ++n) clients.emplace_back(world, n);

  auto super = kfs::FileSystem::mkfs(clients[0]);
  if (!super.ok()) return 1;
  std::vector<kfs::FileSystem> mounts;
  for (NodeId n = 0; n < 5; ++n) {
    auto fs = kfs::FileSystem::mount(clients[n], super.value());
    if (!fs.ok()) return 1;
    mounts.push_back(std::move(fs.value()));
  }

  std::printf(
      "\nNamespace operations from node 2 (fs metadata homed on node 0):\n"
      "cold = first touch (remote fetches), warm = repeated\n\n");
  table_header({"operation", "latency", "messages"});
  {
    TrafficMeter meter(world);
    Micros t0 = world.net().now();
    if (!mounts[2].mkdir("/bench").ok()) return 1;
    cell(std::string("mkdir (cold)")); cell(us(world.net().now() - t0));
    cell(meter.delta().messages); endrow();

    meter.reset();
    t0 = world.net().now();
    auto fh = mounts[2].create("/bench/file0");
    if (!fh.ok()) return 1;
    cell(std::string("create")); cell(us(world.net().now() - t0));
    cell(meter.delta().messages); endrow();

    meter.reset();
    t0 = world.net().now();
    if (!mounts[2].open("/bench/file0").ok()) return 1;
    cell(std::string("open (cold)")); cell(us(world.net().now() - t0));
    cell(meter.delta().messages); endrow();

    meter.reset();
    t0 = world.net().now();
    if (!mounts[2].open("/bench/file0").ok()) return 1;
    cell(std::string("open (warm)")); cell(us(world.net().now() - t0));
    cell(meter.delta().messages); endrow();

    meter.reset();
    t0 = world.net().now();
    if (!mounts[2].stat("/bench/file0").ok()) return 1;
    cell(std::string("stat (warm)")); cell(us(world.net().now() - t0));
    cell(meter.delta().messages); endrow();
  }

  std::printf("\nSequential I/O, 256 KiB file (64 blocks):\n\n");
  table_header({"operation", "throughput", "msgs/KiB"});
  {
    auto fh = mounts[0].create("/bench/big");
    if (!fh.ok()) return 1;
    const std::size_t kSize = 256 * 1024;
    const Bytes data = fill(kSize, 0xD7);

    TrafficMeter meter(world);
    Micros t0 = world.net().now();
    if (!mounts[0].write(fh.value(), 0, data).ok()) return 1;
    Micros elapsed = std::max<Micros>(world.net().now() - t0, 1);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f MB/s",
                  static_cast<double>(kSize) / elapsed);
    cell(std::string("local write")); cell(std::string(buf));
    cell(static_cast<double>(meter.delta().messages) / (kSize / 1024.0));
    endrow();

    // Cold remote read from node 4.
    auto fh4 = mounts[4].open("/bench/big");
    if (!fh4.ok()) return 1;
    meter.reset();
    t0 = world.net().now();
    auto r = mounts[4].read(fh4.value(), 0, kSize);
    if (!r.ok() || r.value().size() != kSize) return 1;
    elapsed = std::max<Micros>(world.net().now() - t0, 1);
    std::snprintf(buf, sizeof(buf), "%.1f MB/s",
                  static_cast<double>(kSize) / elapsed);
    cell(std::string("remote read cold")); cell(std::string(buf));
    cell(static_cast<double>(meter.delta().messages) / (kSize / 1024.0));
    endrow();

    // Warm remote read: blocks are now cached on node 4.
    meter.reset();
    t0 = world.net().now();
    r = mounts[4].read(fh4.value(), 0, kSize);
    if (!r.ok()) return 1;
    elapsed = std::max<Micros>(world.net().now() - t0, 1);
    std::snprintf(buf, sizeof(buf), "%.1f MB/s",
                  static_cast<double>(kSize) / elapsed);
    cell(std::string("remote read warm")); cell(std::string(buf));
    cell(static_cast<double>(meter.delta().messages) / (kSize / 1024.0));
    endrow();
  }

  std::printf(
      "\nLayout ablation (Section 4.1): block-per-region vs one contiguous\n"
      "region; 64 KiB write + remote read from node 3:\n\n");
  table_header({"layout", "write locks", "write msgs", "read latency"});
  {
    auto run_layout = [&](kfs::FileLayout layout, const char* name) {
      kfs::FileOptions opts;
      opts.layout = layout;
      opts.contiguous_capacity = 128 * 1024;
      const std::string path = std::string("/layout_") + name;
      auto fh = mounts[0].create(path, opts);
      if (!fh.ok()) std::abort();
      const auto locks0 = world.node(0).stats().locks_granted;
      TrafficMeter meter(world);
      if (!mounts[0].write(fh.value(), 0, fill(64 * 1024, 0x11)).ok()) {
        std::abort();
      }
      const auto locks = world.node(0).stats().locks_granted - locks0;
      const auto msgs = meter.delta().messages;
      auto fh3 = mounts[3].open(path);
      if (!fh3.ok()) std::abort();
      const Micros t0 = world.net().now();
      if (!mounts[3].read(fh3.value(), 0, 64 * 1024).ok()) std::abort();
      const Micros read_us = world.net().now() - t0;
      cell(std::string(name));
      cell(static_cast<std::uint64_t>(locks));
      cell(msgs);
      cell(us(read_us));
      endrow();
    };
    run_layout(kfs::FileLayout::kBlockPerRegion, "block-per-region");
    run_layout(kfs::FileLayout::kContiguous, "contiguous");
  }

  std::printf(
      "\nHot-file replication (min_replicas=3 via per-file attributes):\n\n");
  table_header({"scenario", "read latency", "messages"});
  {
    kfs::FileOptions hot;
    hot.attrs.min_replicas = 3;
    auto fh = mounts[1].create("/bench/hot", hot);
    if (!fh.ok()) return 1;
    if (!mounts[1].write(fh.value(), 0, fill(4096, 0xAA)).ok()) return 1;
    world.pump_for(3'000'000);

    auto fh3 = mounts[3].open("/bench/hot");
    if (!fh3.ok()) return 1;
    TrafficMeter meter(world);
    Micros t0 = world.net().now();
    if (!mounts[3].read(fh3.value(), 0, 4096).ok()) return 1;
    cell(std::string("read, home alive")); cell(us(world.net().now() - t0));
    cell(meter.delta().messages); endrow();

    world.net().set_node_up(1, false);  // kill the file's home
    meter.reset();
    t0 = world.net().now();
    auto fh2 = mounts[2].open("/bench/hot");
    bool ok = false;
    if (fh2.ok()) {
      auto r = mounts[2].read(fh2.value(), 0, 4096);
      ok = r.ok() && r.value()[0] == 0xAA;
    }
    cell(std::string(ok ? "read, home dead" : "READ FAILED"));
    cell(us(world.net().now() - t0));
    cell(meter.delta().messages); endrow();
    world.net().set_node_up(1, true);
  }

  std::printf(
      "\nShape check vs paper: namespace ops cost a handful of lock/fetch\n"
      "exchanges; warm reads run at local-memory speed with zero traffic;\n"
      "a replicated hot file survives its home's crash — 'the failure of\n"
      "one filesystem instance will not cause the entire filesystem to\n"
      "become unavailable.'\n");
  return 0;
}
