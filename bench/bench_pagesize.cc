// ABL-PAGESIZE — Section 2: per-region page size. "At the time of
// reservation, clients can specify that a region be managed in pages
// larger than 4-kilobytes (e.g., 16 kilobytes, 64 kilobytes, ...). By
// default, regions are made up of 4-kilobyte pages to match the most
// common machine virtual memory page size."
//
// Ablation: a remote client reads a 256 KiB region sequentially and then
// sparsely (64 single-byte probes) for page sizes 4/16/64 KiB. Large
// pages amortize per-message overhead on sequential scans but waste
// bandwidth on sparse access — the classic granularity trade-off that
// also governs false sharing (Section 4.2).
#include "bench/bench_util.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::RegionAttrs;
using core::SimWorld;

struct Point {
  Micros seq_time;
  std::uint64_t seq_msgs;
  std::uint64_t seq_bytes;
  Micros sparse_time;
  std::uint64_t sparse_msgs;
  std::uint64_t sparse_bytes;
};

Point run(std::uint32_t page_size) {
  SimWorld world({.nodes = 2});
  RegionAttrs attrs;
  attrs.page_size = page_size;
  const std::uint64_t kSize = 256 * 1024;
  auto base = world.create_region(0, kSize, attrs);
  if (!base.ok()) std::abort();
  // Populate at the home.
  if (!world.put(0, {base.value(), kSize}, fill(kSize, 3)).ok()) std::abort();

  Point out{};
  {
    // Sequential scan from the remote node, 4 KiB at a time.
    TrafficMeter meter(world);
    const Micros t0 = world.net().now();
    for (std::uint64_t off = 0; off < kSize; off += 4096) {
      if (!world.get(1, {base.value().plus(off), 4096}).ok()) std::abort();
    }
    out.seq_time = world.net().now() - t0;
    out.seq_msgs = meter.delta().messages;
    out.seq_bytes = meter.delta().bytes;
  }
  {
    // Sparse probes from a second cold node... the same node would hit
    // its cache, so rebuild the world.
    SimWorld sparse_world({.nodes = 2});
    auto b2 = sparse_world.create_region(0, kSize, attrs);
    if (!b2.ok()) std::abort();
    if (!sparse_world.put(0, {b2.value(), kSize}, fill(kSize, 3)).ok()) {
      std::abort();
    }
    Rng rng(page_size);
    TrafficMeter meter(sparse_world);
    const Micros t0 = sparse_world.net().now();
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t off = rng.below(kSize);
      if (!sparse_world.get(1, {b2.value().plus(off), 1}).ok()) std::abort();
    }
    out.sparse_time = sparse_world.net().now() - t0;
    out.sparse_msgs = meter.delta().messages;
    out.sparse_bytes = meter.delta().bytes;
  }
  return out;
}

}  // namespace

int main() {
  title("ABL-PAGESIZE | bench_pagesize",
        "Page-size ablation (Section 2): 256 KiB region read remotely,\n"
        "sequential full scan vs 64 sparse 1-byte probes.");

  std::printf("\n");
  table_header({"page size", "seq time", "seq msgs", "seq MB moved",
                "sparse time", "sparse msgs", "sparse MB moved"});
  for (std::uint32_t ps : {4096u, 16384u, 65536u}) {
    const auto p = run(ps);
    cell(std::to_string(ps / 1024) + " KiB");
    cell(us(p.seq_time));
    cell(p.seq_msgs);
    cell(static_cast<double>(p.seq_bytes) / (1 << 20));
    cell(us(p.sparse_time));
    cell(p.sparse_msgs);
    cell(static_cast<double>(p.sparse_bytes) / (1 << 20));
    endrow();
  }
  std::printf(
      "\nShape check vs paper: bigger pages cut the sequential message\n"
      "count (fewer, larger fetches) but inflate the bytes moved for\n"
      "sparse probes — each 1-byte read drags a whole page across the\n"
      "network. 4 KiB is the right default; large pages are an opt-in for\n"
      "streaming-style regions, exactly as Section 2 frames it.\n");
  return 0;
}
