// GOAL-LOC — Section 3.2, "Locating Khazana Regions", at churn scale.
//
// A 256-node simulated cluster (configurable with `--nodes N`, up to 1024)
// with 4 cluster managers runs a scripted churn storm: the three backup
// managers crash long enough for the failure detector to convict them —
// their volatile hint caches die with them — then reboot, and a brief
// partition splits the cluster in half. After the storm, cold readers
// resolve a 64-region working set and we record where each resolve was
// answered (hit class) and its virtual-time latency.
//
// The experiment runs twice: hint anti-entropy OFF (the pre-fabric
// behaviour — a rebooted manager's cache refills only via future
// publications, so cold lookups steered at it fall through to the level-3
// address-map walk) and ON (managers exchange signed hint digests on the
// timer rail and merge newest-wins, so rebooted managers recover the hint
// set from the survivors). The delta in post-churn map walks is the
// paper's argument for keeping the hint tier convergent.
//
// `--json` writes BENCH_location.json with resolve p50/p99 and per-hit-
// class counts for both modes; CI asserts ae_on map walks < ae_off.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::SimWorld;
using core::SimWorldOptions;

constexpr std::size_t kManagers = 4;
constexpr std::size_t kRegions = 64;
constexpr std::size_t kReaders = 96;

/// Cluster-wide sum of one location counter across live nodes.
std::uint64_t sum_counter(SimWorld& world, const char* name) {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < world.size(); ++n) {
    if (!world.node_alive(n)) continue;
    total += world.node(n).metrics().counter(name).value();
  }
  return total;
}

struct HitCounts {
  std::uint64_t resolves = 0;
  std::uint64_t home = 0;
  std::uint64_t region_dir = 0;
  std::uint64_t manager = 0;
  std::uint64_t map_walk = 0;
  std::uint64_t cluster_walk = 0;
  std::uint64_t failures = 0;

  static HitCounts snap(SimWorld& w) {
    return {sum_counter(w, "location.resolves"),
            sum_counter(w, "location.hits.home"),
            sum_counter(w, "location.hits.region_dir"),
            sum_counter(w, "location.hits.manager"),
            sum_counter(w, "location.hits.map_walk"),
            sum_counter(w, "location.hits.cluster_walk"),
            sum_counter(w, "location.failures")};
  }
  [[nodiscard]] HitCounts minus(const HitCounts& o) const {
    return {resolves - o.resolves,     home - o.home,
            region_dir - o.region_dir, manager - o.manager,
            map_walk - o.map_walk,     cluster_walk - o.cluster_walk,
            failures - o.failures};
  }
  [[nodiscard]] std::uint64_t classed() const {
    return home + region_dir + manager + map_walk + cluster_walk + failures;
  }
};

struct ChurnResult {
  HitCounts hits;
  Micros p50 = 0;
  Micros p99 = 0;
  std::uint64_t sync_rounds = 0;
  std::uint64_t sync_merged = 0;
  std::uint64_t retractions = 0;
};

/// One fabric resolve on `reader`, pumped to completion; returns the
/// virtual-time latency. Post-churn, with the address map intact, every
/// lookup must succeed — a failure aborts the bench.
Micros resolve_once(SimWorld& world, NodeId reader, const GlobalAddress& a) {
  bool done = false;
  bool ok = false;
  const Micros t0 = world.net().now();
  Micros t1 = t0;
  world.node(reader).fabric().resolve(
      a, [&](Result<core::RegionDescriptor> r) {
        done = true;
        ok = r.ok();
        t1 = world.net().now();
      });
  if (!world.pump_until([&] { return done; })) std::abort();
  if (!ok) std::abort();
  return t1 - t0;
}

Micros percentile(std::vector<Micros> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

ChurnResult run_churn(std::size_t nodes, bool anti_entropy) {
  SimWorldOptions opts;
  opts.nodes = nodes;
  opts.managers = kManagers;
  opts.link = net::LinkProfile::lan();
  opts.ping_interval = 300'000;  // detector on: verdicts retract hints
  opts.hint_sync_interval = anti_entropy ? 250'000 : 0;
  opts.free_space_ttl = 10'000'000;
  opts.seed = 7;
  SimWorld world(opts);

  // Working set: one small region homed on each of kRegions distinct nodes
  // just above the manager block. Reserving on the home publishes a hint
  // to every manager, so all four start with the full hint set.
  std::vector<GlobalAddress> regions;
  for (std::size_t i = 0; i < kRegions; ++i) {
    const auto home = static_cast<NodeId>(kManagers + i);
    auto base = world.create_region(home, 4096);
    if (!base.ok()) std::abort();
    regions.push_back(base.value());
  }
  world.pump_for(500'000);  // publications land everywhere

  // Churn storm on the global timer rail: backup managers 1..3 crash for
  // ~1.6 s (>= 3 missed pings — the detector convicts them), reboot with
  // empty hint caches, and a half/half partition opens for 400 ms.
  for (std::size_t k = 1; k < kManagers; ++k) {
    world.schedule_crash(1'000'000 + k * 200'000, static_cast<NodeId>(k));
    world.schedule_restart(2'600'000 + k * 200'000, static_cast<NodeId>(k));
  }
  std::set<NodeId> lower, upper;
  for (NodeId n = 0; n < world.size(); ++n) {
    (n < world.size() / 2 ? lower : upper).insert(n);
  }
  world.schedule_partition(3'500'000, lower, upper);
  world.schedule_heal(3'900'000);
  // Settle: detectors re-admit the rebooted managers; with anti-entropy on
  // the sync rounds rebuild their hint caches from the survivors.
  world.pump_for(5'500'000);

  // Post-churn measurement: cold readers resolve random regions. A
  // reader's first lookup misses its empty region directory and goes to
  // its rotation manager — a rebooted one for ~3/4 of readers — and a
  // repeated lookup exercises the warmed directory.
  Rng rng(99);
  const HitCounts before = HitCounts::snap(world);
  std::vector<Micros> lat;
  const auto first_reader = static_cast<NodeId>(kManagers + kRegions);
  const std::size_t reader_span = world.size() - first_reader;
  for (std::size_t i = 0; i < kReaders; ++i) {
    const auto reader =
        static_cast<NodeId>(first_reader + i % reader_span);
    const GlobalAddress a = regions[rng.below(regions.size())];
    const GlobalAddress b = regions[rng.below(regions.size())];
    lat.push_back(resolve_once(world, reader, a));
    lat.push_back(resolve_once(world, reader, b));
    lat.push_back(resolve_once(world, reader, a));  // directory hit
  }

  ChurnResult r;
  r.hits = HitCounts::snap(world).minus(before);
  // Terminal attribution: every resolve lands in exactly one hit class
  // (the churn property test asserts the same invariant).
  if (r.hits.classed() != r.hits.resolves) std::abort();
  if (r.hits.failures != 0) std::abort();
  r.p50 = percentile(lat, 0.50);
  r.p99 = percentile(lat, 0.99);
  r.sync_rounds = sum_counter(world, "location.hint_sync.rounds");
  r.sync_merged = sum_counter(world, "location.hint_sync.merged");
  r.retractions = sum_counter(world, "location.retractions");
  return r;
}

void report_mode(const char* name, const ChurnResult& r) {
  cell(std::string(name));
  cell(r.hits.resolves);
  cell(r.hits.home);
  cell(r.hits.region_dir);
  cell(r.hits.manager);
  cell(r.hits.map_walk);
  cell(r.hits.cluster_walk);
  cell(us(r.p50));
  cell(us(r.p99));
  endrow();
}

void emit_json(bench::JsonReport& json, const std::string& p,
               const ChurnResult& r) {
  json.metric(p + ".resolves", static_cast<double>(r.hits.resolves));
  json.metric(p + ".hits.home", static_cast<double>(r.hits.home));
  json.metric(p + ".hits.region_dir", static_cast<double>(r.hits.region_dir));
  json.metric(p + ".hits.manager", static_cast<double>(r.hits.manager));
  json.metric(p + ".hits.map_walk", static_cast<double>(r.hits.map_walk));
  json.metric(p + ".hits.cluster_walk",
              static_cast<double>(r.hits.cluster_walk));
  json.metric(p + ".failures", static_cast<double>(r.hits.failures));
  json.metric(p + ".resolve_p50_us", static_cast<double>(r.p50));
  json.metric(p + ".resolve_p99_us", static_cast<double>(r.p99));
  json.metric(p + ".hint_sync_rounds", static_cast<double>(r.sync_rounds));
  json.metric(p + ".hint_sync_merged", static_cast<double>(r.sync_merged));
  json.metric(p + ".retractions", static_cast<double>(r.retractions));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 256;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
  }
  nodes = std::clamp<std::size_t>(nodes, kManagers + kRegions + 8, 1024);

  title("GOAL-LOC | bench_location",
        "Churn-scale resolution (Section 3.2): a manager crash/reboot storm\n"
        "plus a transient partition, then cold readers resolve a 64-region\n"
        "working set — with hint anti-entropy off vs on.");
  std::printf("%zu nodes, %zu managers, %zu regions, %zu readers x 3 "
              "resolves\n\n",
              nodes, kManagers, kRegions, kReaders);
  table_header({"mode", "resolves", "home", "dir", "mgr", "map", "walk",
                "p50", "p99"});

  const ChurnResult off = run_churn(nodes, /*anti_entropy=*/false);
  report_mode("anti-entropy off", off);
  const ChurnResult on = run_churn(nodes, /*anti_entropy=*/true);
  report_mode("anti-entropy on", on);

  std::printf("\npost-churn level-3 map walks: %llu (off) -> %llu (on); "
              "%llu hint records merged over %llu sync rounds, %llu "
              "detector retractions\n",
              static_cast<unsigned long long>(off.hits.map_walk),
              static_cast<unsigned long long>(on.hits.map_walk),
              static_cast<unsigned long long>(on.sync_merged),
              static_cast<unsigned long long>(on.sync_rounds),
              static_cast<unsigned long long>(on.retractions));

  bench::JsonReport json("location", argc, argv);
  if (json.enabled()) {
    json.meta("nodes", std::to_string(nodes));
    json.meta("managers", std::to_string(kManagers));
    json.meta("regions", std::to_string(kRegions));
    json.meta("readers", std::to_string(kReaders));
    emit_json(json, "ae_off", off);
    emit_json(json, "ae_on", on);
    json.finish();
  }
  return 0;
}
