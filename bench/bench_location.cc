// GOAL-LOC — Section 3.2, "Locating Khazana Regions": the three-level
// lookup. "the local region directory is searched first and then the
// cluster manager is queried, before an address map tree search is
// started."
//
// Measures the latency and message cost of resolving a region descriptor
// through each level — region-directory hit, cluster-manager hint,
// address-map tree walk, cluster-walk fallback, and stale-hint recovery —
// under LAN and WAN profiles.
#include "bench/bench_util.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::ClusterState;
using core::SimWorld;
using consistency::LockMode;

struct Probe {
  Micros latency;
  std::uint64_t messages;
};

/// Resolve-only cost: lock+unlock a page whose data is already cached
/// locally, so all traffic is location lookup.
Probe measure(SimWorld& world, NodeId reader, const AddressRange& region) {
  TrafficMeter meter(world);
  const Micros t0 = world.net().now();
  auto r = world.get(reader, region);
  if (!r.ok()) std::abort();
  return {world.net().now() - t0, meter.delta().messages};
}

void run(const std::string& link_name, const net::LinkProfile& link) {
  std::printf("\n--- %s links ---\n", link_name.c_str());
  table_header({"lookup path", "latency", "messages"});

  // Level 1: region-directory (and page) cache hit.
  {
    SimWorld world({.nodes = 4, .link = link});
    auto base = world.create_region(1, 4096);
    if (!base.ok()) std::abort();
    const AddressRange region{base.value(), 4096};
    (void)world.get(3, region);  // warm everything
    const auto p = measure(world, 3, region);
    cell(std::string("1: directory hit")); cell(us(p.latency));
    cell(p.messages); endrow();
  }

  // Level 2: cluster-manager hint (cold client).
  {
    SimWorld world({.nodes = 4, .link = link});
    auto base = world.create_region(1, 4096);
    if (!base.ok()) std::abort();
    const AddressRange region{base.value(), 4096};
    world.pump_for(1'000'000);  // hint publication lands at the manager
    const auto p = measure(world, 3, region);
    cell(std::string("2: manager hint")); cell(us(p.latency));
    cell(p.messages); endrow();
    if (world.node(3).stats().resolve_manager_hits != 1) std::abort();
  }

  // Level 3: address-map tree walk (manager hints wiped).
  {
    SimWorld world({.nodes = 4, .link = link});
    auto base = world.create_region(1, 4096);
    if (!base.ok()) std::abort();
    const AddressRange region{base.value(), 4096};
    world.pump_for(1'000'000);  // map registration lands
    world.node(0).cluster_state().clear();
    const auto p = measure(world, 3, region);
    cell(std::string("3: map tree walk")); cell(us(p.latency));
    cell(p.messages); endrow();
    if (world.node(3).stats().resolve_map_walks < 1) std::abort();
  }

  // Fallback: cluster walk (hints and map entry both missing).
  {
    SimWorld world({.nodes = 4, .link = link});
    auto base = world.create_region(1, 4096);
    if (!base.ok()) std::abort();
    const AddressRange region{base.value(), 4096};
    world.pump_for(1'000'000);
    world.node(0).cluster_state().clear();
    if (!world.node(0).address_map()->erase(base.value()).ok()) std::abort();
    const auto p = measure(world, 3, region);
    cell(std::string("4: cluster walk")); cell(us(p.latency));
    cell(p.messages); endrow();
    if (world.node(3).stats().resolve_cluster_walks < 1) std::abort();
  }

  // Stale hint recovery: cached descriptor points at the wrong home.
  {
    SimWorld world({.nodes = 4, .link = link});
    auto base = world.create_region(1, 4096);
    if (!base.ok()) std::abort();
    const AddressRange region{base.value(), 4096};
    (void)world.get(3, region);
    auto stale = world.node(3).region_directory().lookup(base.value());
    stale->home_nodes = {2};  // wrong home
    world.node(3).region_directory().insert(*stale);
    world.node(3).page_info(base.value()).state =
        storage::PageState::kInvalid;
    world.node(3).storage().erase(base.value());
    const auto p = measure(world, 3, region);
    cell(std::string("5: stale recovery")); cell(us(p.latency));
    cell(p.messages); endrow();
  }
}

}  // namespace

int main() {
  title("GOAL-LOC | bench_location",
        "Cost of the three-level region lookup (Section 3.2), plus the\n"
        "cluster-walk fallback and stale-hint recovery.");
  run("LAN (0.1 ms)", net::LinkProfile::lan());
  run("WAN (40 ms)", net::LinkProfile::wan());
  std::printf(
      "\nShape check vs paper: each level costs strictly more than the one\n"
      "before it; the directory hit is free, which is why it exists. On\n"
      "WAN links the gap between levels grows to tens of milliseconds —\n"
      "the availability argument of Section 3.5 for searching local state\n"
      "first.\n");
  return 0;
}
