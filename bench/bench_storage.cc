// GOAL-STORE — Section 3.4, "Local storage management": the RAM/disk
// hierarchy. "When memory is full, the local storage system can victimize
// pages from RAM to disk. When the disk cache wants to victimize a page,
// it must invoke the consistency protocol..."
//
// A single client scans a working set of W pages (uniformly, repeatedly)
// on a node with a fixed RAM cache of 64 pages backed by disk. Reports
// where hits landed (RAM / disk / remote) and the mean access latency as
// W sweeps from "fits in RAM" to "spills to disk" to "mostly remote"
// (diskless node).
#include <filesystem>

#include "bench/bench_util.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::SimWorld;
using core::SimWorldOptions;
using consistency::LockMode;

struct Sweep {
  std::uint64_t ram_hits;
  std::uint64_t disk_hits;
  std::uint64_t cache_misses;  // page absent locally -> remote fetch
  std::uint64_t remote_fetches;
  Micros mean_latency;
};

Sweep run(std::size_t working_set_pages, bool with_disk) {
  const std::filesystem::path disk_root =
      std::filesystem::temp_directory_path() /
      ("khz_bench_storage_" + std::to_string(working_set_pages) +
       (with_disk ? "_d" : "_m"));
  std::filesystem::remove_all(disk_root);

  SimWorldOptions opts;
  opts.nodes = 2;
  opts.ram_pages = 64;
  if (with_disk) opts.disk_root = disk_root;
  SimWorld world(opts);

  // Node 0 homes the data; node 1 is the cache-constrained client.
  const std::uint64_t bytes = working_set_pages * 4096ull;
  auto base = world.create_region(0, bytes);
  if (!base.ok()) std::abort();
  for (std::size_t p = 0; p < working_set_pages; ++p) {
    if (!world
             .put(0, {base.value().plus(p * 4096), 4096},
                  fill(4096, static_cast<std::uint8_t>(p)))
             .ok()) {
      std::abort();
    }
  }

  // Warm pass, then measured pass.
  Rng rng(working_set_pages);
  auto access = [&](std::size_t page) {
    auto r = world.get(1, {base.value().plus(page * 4096), 4096});
    if (!r.ok()) std::abort();
  };
  for (std::size_t p = 0; p < working_set_pages; ++p) access(p);

  auto& stats = world.node(1).storage().stats();
  stats.clear();
  TrafficMeter meter(world);
  const int kAccesses = 400;
  const Micros t0 = world.net().now();
  for (int i = 0; i < kAccesses; ++i) {
    access(rng.below(working_set_pages));
  }
  const Micros elapsed = world.net().now() - t0;

  Sweep out{};
  out.ram_hits = stats.ram_hits;
  out.disk_hits = stats.disk_hits;
  out.cache_misses = stats.misses;
  // A CM fetch shows up as network traffic.
  out.remote_fetches = meter.delta().messages / 2;  // req+data pairs
  out.mean_latency = elapsed / kAccesses;
  std::filesystem::remove_all(disk_root);
  return out;
}

}  // namespace

int main() {
  title("GOAL-STORE | bench_storage",
        "Storage hierarchy behaviour vs working-set size (Section 3.4).\n"
        "Client node: 64-page RAM cache; 400 uniform accesses.");

  std::printf("\nWith a disk level (RAM 64 pages -> disk -> remote):\n\n");
  table_header({"working set", "ram hits", "disk hits", "misses",
                "remote msgs", "mean latency"});
  for (std::size_t w : {32u, 64u, 128u, 256u, 512u}) {
    const auto s = run(w, /*with_disk=*/true);
    cell(std::to_string(w) + " pages");
    cell(s.ram_hits);
    cell(s.disk_hits);
    cell(s.cache_misses);
    cell(s.remote_fetches);
    cell(us(s.mean_latency));
    endrow();
  }

  std::printf("\nDiskless node (victims are dropped; misses go remote):\n\n");
  table_header({"working set", "ram hits", "disk hits", "misses",
                "remote msgs", "mean latency"});
  for (std::size_t w : {32u, 128u, 512u}) {
    const auto s = run(w, /*with_disk=*/false);
    cell(std::to_string(w) + " pages");
    cell(s.ram_hits);
    cell(s.disk_hits);
    cell(s.cache_misses);
    cell(s.remote_fetches);
    cell(us(s.mean_latency));
    endrow();
  }

  std::printf(
      "\nShape check vs paper: while the working set fits in RAM every\n"
      "access is a local hit; past RAM, the disk level absorbs the\n"
      "overflow cheaply; a diskless node must re-fetch victims over the\n"
      "network, which dominates latency — the reason the hierarchy exists.\n");
  return 0;
}
