// GOAL-STORE — Section 3.4, "Local storage management": the RAM/disk
// hierarchy. "When memory is full, the local storage system can victimize
// pages from RAM to disk. When the disk cache wants to victimize a page,
// it must invoke the consistency protocol..."
//
// A single client scans a working set of W pages (uniformly, repeatedly)
// on a node with a fixed RAM cache of 64 pages backed by disk. Reports
// where hits landed (RAM / disk / remote) and the mean access latency as
// W sweeps from "fits in RAM" to "spills to disk" to "mostly remote"
// (diskless node).
//
// Part 2 (docs/storage.md) measures the durable data plane itself in
// wall-clock time: durable writes/sec with one fdatasync per write versus
// group commit at several drain intervals, plus recovery time (segment
// index rebuild + journal replay) as the store grows.
#include <chrono>
#include <filesystem>

#include "bench/bench_util.h"
#include "storage/disk_store.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::SimWorld;
using core::SimWorldOptions;
using consistency::LockMode;

struct Sweep {
  std::uint64_t ram_hits;
  std::uint64_t disk_hits;
  std::uint64_t cache_misses;  // page absent locally -> remote fetch
  std::uint64_t remote_fetches;
  Micros mean_latency;
};

Sweep run(std::size_t working_set_pages, bool with_disk) {
  const std::filesystem::path disk_root =
      std::filesystem::temp_directory_path() /
      ("khz_bench_storage_" + std::to_string(working_set_pages) +
       (with_disk ? "_d" : "_m"));
  std::filesystem::remove_all(disk_root);

  SimWorldOptions opts;
  opts.nodes = 2;
  opts.ram_pages = 64;
  if (with_disk) opts.disk_root = disk_root;
  SimWorld world(opts);

  // Node 0 homes the data; node 1 is the cache-constrained client.
  const std::uint64_t bytes = working_set_pages * 4096ull;
  auto base = world.create_region(0, bytes);
  if (!base.ok()) std::abort();
  for (std::size_t p = 0; p < working_set_pages; ++p) {
    if (!world
             .put(0, {base.value().plus(p * 4096), 4096},
                  fill(4096, static_cast<std::uint8_t>(p)))
             .ok()) {
      std::abort();
    }
  }

  // Warm pass, then measured pass.
  Rng rng(working_set_pages);
  auto access = [&](std::size_t page) {
    auto r = world.get(1, {base.value().plus(page * 4096), 4096});
    if (!r.ok()) std::abort();
  };
  for (std::size_t p = 0; p < working_set_pages; ++p) access(p);

  auto& stats = world.node(1).storage().stats();
  stats.clear();
  TrafficMeter meter(world);
  const int kAccesses = 400;
  const Micros t0 = world.net().now();
  for (int i = 0; i < kAccesses; ++i) {
    access(rng.below(working_set_pages));
  }
  const Micros elapsed = world.net().now() - t0;

  Sweep out{};
  out.ram_hits = stats.ram_hits;
  out.disk_hits = stats.disk_hits;
  out.cache_misses = stats.misses;
  // A CM fetch shows up as network traffic.
  out.remote_fetches = meter.delta().messages / 2;  // req+data pairs
  out.mean_latency = elapsed / kAccesses;
  std::filesystem::remove_all(disk_root);
  return out;
}

// ---------------------------------------------------------------------------
// Durable data plane (wall clock)
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct DurableSweep {
  double writes_per_sec;
  std::uint64_t commits;  // fsync batches issued
};

// Durable page writes (page append + journal record, recoverable after the
// run) with group commit drained every `group_commit_us`. 0 means the
// pre-segment-store discipline: every write is its own fsync batch.
DurableSweep run_durable(Micros group_commit_us, int writes) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("khz_bench_durable_" + std::to_string(group_commit_us));
  std::filesystem::remove_all(root);
  DurableSweep out{};
  {
    storage::DiskStore store(root);
    store.set_sync_on_commit(true);
    if (group_commit_us > 0) store.set_group_commit(true);
    const Bytes page = fill(4096, 0xA5);
    const Bytes record = fill(64, 0x5A);
    const auto t0 = Clock::now();
    auto last_commit = t0;
    for (int i = 0; i < writes; ++i) {
      const GlobalAddress addr{1, static_cast<std::uint64_t>(i) * 4096};
      if (!store.put(addr, page).ok()) std::abort();
      if (!store.journal().append(record).ok()) std::abort();
      if (group_commit_us == 0) {
        if (!store.maybe_commit().ok()) std::abort();  // inline fsync
        ++out.commits;
      } else if (seconds_since(last_commit) * 1e6 >=
                 static_cast<double>(group_commit_us)) {
        if (!store.commit().ok()) std::abort();  // timer drain
        last_commit = Clock::now();
        ++out.commits;
      }
    }
    if (!store.commit().ok()) std::abort();
    ++out.commits;
    out.writes_per_sec = writes / seconds_since(t0);
  }
  std::filesystem::remove_all(root);
  return out;
}

struct RecoveryPoint {
  double open_ms;       // reopen = segment scan + journal replay
  double journal_kib;   // journal size driving the replay
  std::uint64_t pages;  // live pages whose index is rebuilt
};

// Populate a store with `pages` pages + journal records, close it, and
// time the reopen (cold index rebuild + full journal replay).
RecoveryPoint run_recovery(std::uint64_t pages) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("khz_bench_recover_" + std::to_string(pages));
  std::filesystem::remove_all(root);
  RecoveryPoint out{};
  out.pages = pages;
  {
    storage::DiskStore store(root);
    store.set_sync_on_commit(true);
    store.set_group_commit(true);
    const Bytes page = fill(4096, 0x3C);
    const Bytes record = fill(64, 0xC3);
    for (std::uint64_t i = 0; i < pages; ++i) {
      const GlobalAddress addr{2, i * 4096};
      if (!store.put(addr, page).ok()) std::abort();
      if (!store.journal().append(record).ok()) std::abort();
      if (i % 64 == 63 && !store.commit().ok()) std::abort();
    }
    if (!store.commit().ok()) std::abort();
  }
  out.journal_kib =
      static_cast<double>(std::filesystem::file_size(root / "meta.journal")) /
      1024.0;
  const auto t0 = Clock::now();
  {
    storage::DiskStore store(root);
    if (store.size() != pages) std::abort();
    std::uint64_t replayed = store.journal().replay([](const Bytes&) {});
    if (replayed != pages) std::abort();
  }
  out.open_ms = seconds_since(t0) * 1e3;
  std::filesystem::remove_all(root);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("storage", argc, argv);
  title("GOAL-STORE | bench_storage",
        "Storage hierarchy behaviour vs working-set size (Section 3.4).\n"
        "Client node: 64-page RAM cache; 400 uniform accesses.");

  std::printf("\nWith a disk level (RAM 64 pages -> disk -> remote):\n\n");
  table_header({"working set", "ram hits", "disk hits", "misses",
                "remote msgs", "mean latency"});
  for (std::size_t w : {32u, 64u, 128u, 256u, 512u}) {
    const auto s = run(w, /*with_disk=*/true);
    cell(std::to_string(w) + " pages");
    cell(s.ram_hits);
    cell(s.disk_hits);
    cell(s.cache_misses);
    cell(s.remote_fetches);
    cell(us(s.mean_latency));
    endrow();
    const std::string k = "ws" + std::to_string(w) + "_";
    report.metric(k + "ram_hits", static_cast<double>(s.ram_hits));
    report.metric(k + "disk_hits", static_cast<double>(s.disk_hits));
    report.metric(k + "mean_latency_us",
                  static_cast<double>(s.mean_latency));
  }

  std::printf("\nDiskless node (victims are dropped; misses go remote):\n\n");
  table_header({"working set", "ram hits", "disk hits", "misses",
                "remote msgs", "mean latency"});
  for (std::size_t w : {32u, 128u, 512u}) {
    const auto s = run(w, /*with_disk=*/false);
    cell(std::to_string(w) + " pages");
    cell(s.ram_hits);
    cell(s.disk_hits);
    cell(s.cache_misses);
    cell(s.remote_fetches);
    cell(us(s.mean_latency));
    endrow();
  }

  std::printf(
      "\nShape check vs paper: while the working set fits in RAM every\n"
      "access is a local hit; past RAM, the disk level absorbs the\n"
      "overflow cheaply; a diskless node must re-fetch victims over the\n"
      "network, which dominates latency — the reason the hierarchy exists.\n");

  std::printf(
      "\nDurable writes/sec (wall clock, 4 KiB page + journal record per\n"
      "write; group commit drained every T us, T=0 -> fsync per write):\n\n");
  table_header({"group commit", "writes", "fsync batches", "writes/sec"});
  report.meta("durable", "wall-clock DiskStore, 4 KiB pages, ext4 tmpdir");
  double baseline_wps = 0;
  double best_wps = 0;
  for (Micros gc : {Micros{0}, Micros{50}, Micros{200}, Micros{1000},
                    Micros{5000}}) {
    const int writes = gc == 0 ? 256 : 4096;
    const auto s = run_durable(gc, writes);
    cell(gc == 0 ? std::string("per write") : std::to_string(gc) + " us");
    cell(static_cast<std::uint64_t>(writes));
    cell(s.commits);
    cell(s.writes_per_sec);
    endrow();
    if (gc == 0) {
      baseline_wps = s.writes_per_sec;
      report.metric("durable_wps_sync_each", s.writes_per_sec);
    } else {
      best_wps = std::max(best_wps, s.writes_per_sec);
      report.metric("durable_wps_gc" + std::to_string(gc) + "us",
                    s.writes_per_sec);
    }
  }
  const double speedup = baseline_wps > 0 ? best_wps / baseline_wps : 0;
  std::printf("\ngroup-commit speedup over per-write fsync: %.1fx\n",
              speedup);
  report.metric("group_commit_speedup", speedup);

  std::printf(
      "\nRecovery time vs store size (cold reopen: segment index rebuild\n"
      "+ full journal replay):\n\n");
  table_header({"pages", "journal KiB", "reopen ms"});
  for (std::uint64_t pages : {1024ull, 4096ull, 16384ull}) {
    const auto r = run_recovery(pages);
    cell(r.pages);
    cell(r.journal_kib);
    cell(r.open_ms);
    endrow();
    const std::string k = "recovery_pages" + std::to_string(pages) + "_";
    report.metric(k + "open_ms", r.open_ms);
    report.metric(k + "journal_kib", r.journal_kib);
  }
  return 0;
}
