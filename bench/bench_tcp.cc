// TCP — the Figure 2 operations over real kernel sockets (wall-clock),
// plus a transport-isolation section: sends to healthy peers proceed at
// full speed while one peer is blackholed (its frames park in that peer's
// write queue instead of serializing the whole endpoint).
//
// Same node logic as bench_fig2_lockfetch, but running on the TCP
// transport with per-node executor threads: these are real microseconds on
// localhost, demonstrating that the simulated message counts correspond to
// a working networked system (DESIGN.md §2's substitution argument).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "core/tcp_world.h"

using namespace khz;        // NOLINT
using namespace khz::core;  // NOLINT

namespace {
Micros wall_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accepts connections into its backlog but never reads: a live-but-wedged
/// peer whose kernel buffers fill almost immediately.
struct Blackhole {
  explicit Blackhole(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    int tiny = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(fd, 8);
  }
  ~Blackhole() { ::close(fd); }
  int fd;
};

int bench_blackhole_isolation() {
  constexpr NodeId kHealthyPeers = 3;
  constexpr int kMsgsPerPeer = 1000;
  net::TcpBus bus(43200);
  auto& sender = bus.add_node(0);
  sender.set_handler([](net::Message) {});
  std::atomic<int> received{0};
  for (NodeId p = 1; p <= kHealthyPeers; ++p) {
    bus.add_node(p).set_handler([&](net::Message) {
      received.fetch_add(1);
    });
  }
  const NodeId wedged_id = kHealthyPeers + 1;
  Blackhole wedged(bus.port_of(wedged_id));

  auto ping = [](NodeId dst, Bytes payload) {
    net::Message m;
    m.type = net::MsgType::kPing;
    m.dst = dst;
    m.payload = std::move(payload);
    return m;
  };

  // ~10 MB at the wedged peer. With the old globally-locked blocking
  // transport this point is where the bench would hang forever.
  Micros t0 = wall_now();
  for (int i = 0; i < 300; ++i) {
    sender.send(ping(wedged_id, Bytes(32 * 1024, 0xEE)));
  }
  const Micros enqueue_us = wall_now() - t0;

  // Healthy traffic immediately behind the backlog.
  t0 = wall_now();
  for (int i = 0; i < kMsgsPerPeer; ++i) {
    for (NodeId p = 1; p <= kHealthyPeers; ++p) {
      sender.send(ping(p, Bytes(256, 0x42)));
    }
  }
  const int want = kHealthyPeers * kMsgsPerPeer;
  while (received.load() < want) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (wall_now() - t0 > 30'000'000) {
      std::printf("FAILED: healthy traffic stalled behind wedged peer\n");
      return 1;
    }
  }
  const Micros healthy_us = wall_now() - t0;
  const auto s = sender.stats();

  std::printf("%-36s %8lld us\n", "queue 9.6 MB at wedged peer:",
              static_cast<long long>(enqueue_us));
  std::printf("%-36s %8lld us  (%d msgs, %.0f msg/s)\n",
              "deliver to 3 healthy peers:",
              static_cast<long long>(healthy_us), want,
              want / (static_cast<double>(healthy_us) / 1e6));
  std::printf("%-36s %8llu bytes\n", "backlog parked at wedged peer:",
              static_cast<unsigned long long>(s.queued_bytes));
  std::printf("%-36s %8llu\n", "frames dropped (queue cap):",
              static_cast<unsigned long long>(s.frames_dropped));
  std::printf(
      "\nIsolation check: healthy-peer delivery completed while the wedged\n"
      "peer's backlog stayed parked in its own write queue — no global\n"
      "serialization across peers.\n");
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("tcp", argc, argv);
  std::printf(
      "\n================================================================\n"
      "TCP | bench_tcp\n"
      "Figure 2 operations over real localhost TCP sockets (wall-clock).\n"
      "================================================================\n\n");

  TcpWorld world({.nodes = 2, .base_port = 43100});
  TcpClient home(world, 0);
  TcpClient client(world, 1);
  // Generalized TrafficMeter: same meter type the simulated benches use,
  // here sampling the deployment-wide TCP endpoint aggregate.
  bench::TrafficMeter meter(world);

  auto base = home.create_region(4096);
  if (!base.ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  const AddressRange p{base.value(), 4096};
  if (!home.put(p, Bytes(4096, 0xF2)).ok()) return 1;

  // Cold read (descriptor lookup + CM exchange + data over TCP).
  meter.reset();
  Micros t0 = wall_now();
  auto cold = client.get(p);
  const Micros cold_us = wall_now() - t0;
  if (!cold.ok() || cold.value()[0] != 0xF2) return 1;
  const auto cold_traffic = meter.delta();

  // Warm read (local replica, no sockets touched).
  t0 = wall_now();
  auto warm = client.get(p);
  const Micros warm_us = wall_now() - t0;
  if (!warm.ok()) return 1;

  // Write with ownership transfer.
  t0 = wall_now();
  if (!client.put(p, Bytes(4096, 0x11)).ok()) return 1;
  const Micros write_us = wall_now() - t0;

  // Steady-state owner writes (no network).
  t0 = wall_now();
  const int kOwnerWrites = 100;
  for (int i = 0; i < kOwnerWrites; ++i) {
    if (!client.put(p, Bytes(4096, static_cast<std::uint8_t>(i))).ok()) {
      return 1;
    }
  }
  const Micros owner_us = (wall_now() - t0) / kOwnerWrites;

  std::printf("%-36s %8lld us  (%llu msgs / %llu bytes on the wire)\n",
              "cold read (lock+fetch, Figure 2):",
              static_cast<long long>(cold_us),
              static_cast<unsigned long long>(cold_traffic.messages),
              static_cast<unsigned long long>(cold_traffic.bytes));
  std::printf("%-36s %8lld us\n", "warm read (cached replica):",
              static_cast<long long>(warm_us));
  std::printf("%-36s %8lld us\n", "write + ownership transfer:",
              static_cast<long long>(write_us));
  std::printf("%-36s %8lld us\n", "owner write (steady state, avg):",
              static_cast<long long>(owner_us));

  report.metric("cold_read_us", static_cast<double>(cold_us));
  report.metric("cold_read_msgs", static_cast<double>(cold_traffic.messages));
  report.metric("cold_read_bytes", static_cast<double>(cold_traffic.bytes));
  report.metric("warm_read_us", static_cast<double>(warm_us));
  report.metric("write_transfer_us", static_cast<double>(write_us));
  report.metric("owner_write_us", static_cast<double>(owner_us));
  std::printf(
      "\nShape check: identical ordering to the simulated FIG2 table —\n"
      "cold >> write-transfer >> warm/owner — with real-socket absolute\n"
      "numbers (loopback RTTs instead of the simulator's LAN profile).\n");

  const auto total = world.total_transport_stats();
  std::printf(
      "\ntransport totals: %llu msgs / %llu bytes sent, "
      "%llu msgs / %llu bytes received, %llu connects\n",
      static_cast<unsigned long long>(total.messages_sent),
      static_cast<unsigned long long>(total.bytes_sent),
      static_cast<unsigned long long>(total.messages_received),
      static_cast<unsigned long long>(total.bytes_received),
      static_cast<unsigned long long>(total.connects));

  std::printf(
      "\n----------------------------------------------------------------\n"
      "Write-queue isolation under a blackholed peer\n"
      "----------------------------------------------------------------\n\n");
  return bench_blackhole_isolation();
}
