// TCP — the Figure 2 operations over real kernel sockets (wall-clock).
//
// Same node logic as bench_fig2_lockfetch, but running on the TCP
// transport with per-node executor threads: these are real microseconds on
// localhost, demonstrating that the simulated message counts correspond to
// a working networked system (DESIGN.md §2's substitution argument).
#include <chrono>
#include <cstdio>

#include "core/tcp_world.h"

using namespace khz;        // NOLINT
using namespace khz::core;  // NOLINT

namespace {
Micros wall_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  std::printf(
      "\n================================================================\n"
      "TCP | bench_tcp\n"
      "Figure 2 operations over real localhost TCP sockets (wall-clock).\n"
      "================================================================\n\n");

  TcpWorld world({.nodes = 2, .base_port = 43100});
  TcpClient home(world, 0);
  TcpClient client(world, 1);

  auto base = home.create_region(4096);
  if (!base.ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  const AddressRange p{base.value(), 4096};
  if (!home.put(p, Bytes(4096, 0xF2)).ok()) return 1;

  // Cold read (descriptor lookup + CM exchange + data over TCP).
  Micros t0 = wall_now();
  auto cold = client.get(p);
  const Micros cold_us = wall_now() - t0;
  if (!cold.ok() || cold.value()[0] != 0xF2) return 1;

  // Warm read (local replica, no sockets touched).
  t0 = wall_now();
  auto warm = client.get(p);
  const Micros warm_us = wall_now() - t0;
  if (!warm.ok()) return 1;

  // Write with ownership transfer.
  t0 = wall_now();
  if (!client.put(p, Bytes(4096, 0x11)).ok()) return 1;
  const Micros write_us = wall_now() - t0;

  // Steady-state owner writes (no network).
  t0 = wall_now();
  const int kOwnerWrites = 100;
  for (int i = 0; i < kOwnerWrites; ++i) {
    if (!client.put(p, Bytes(4096, static_cast<std::uint8_t>(i))).ok()) {
      return 1;
    }
  }
  const Micros owner_us = (wall_now() - t0) / kOwnerWrites;

  std::printf("%-36s %8lld us\n", "cold read (lock+fetch, Figure 2):",
              static_cast<long long>(cold_us));
  std::printf("%-36s %8lld us\n", "warm read (cached replica):",
              static_cast<long long>(warm_us));
  std::printf("%-36s %8lld us\n", "write + ownership transfer:",
              static_cast<long long>(write_us));
  std::printf("%-36s %8lld us\n", "owner write (steady state, avg):",
              static_cast<long long>(owner_us));
  std::printf(
      "\nShape check: identical ordering to the simulated FIG2 table —\n"
      "cold >> write-transfer >> warm/owner — with real-socket absolute\n"
      "numbers (loopback RTTs instead of the simulator's LAN profile).\n");
  return 0;
}
