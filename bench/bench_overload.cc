// OVERLOAD — latency vs offered load through saturation, with admission
// control on (bounded deadline-shedding queues + kNack backpressure) and
// client retry budgets.
//
// Two sections:
//
//  * SimWorld sweep: an open-loop zipfian generator (bench/load_gen.h)
//    offers a fixed rate of getattr operations against a home node whose
//    admission drain is paced at one request per admission_service_us —
//    the saturation point is therefore exactly 1e6/service_us ops/s. The
//    sweep crosses it (0.25x .. 2x) and reports goodput, success-latency
//    percentiles and shed counts per point. The claim under test: p99 of
//    *successful* ops stays bounded past the knee (the queue bound + EDF
//    shedding caps queueing delay at limit * service_us), goodput
//    plateaus at capacity instead of collapsing, and the overflow turns
//    into admission.shed + fast client failures rather than unbounded
//    queue growth.
//
//  * TcpWorld spot check: the same generator over real sockets at ~2x the
//    paced capacity for a quarter second — real microseconds, same shape.
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "bench/load_gen.h"

namespace khz {
namespace {

constexpr std::uint64_t kPage = 4096;
constexpr std::size_t kRegions = 64;
constexpr Micros kOpDeadline = 50'000;
constexpr Micros kServiceUs = 500;  // sim saturation = 2000 ops/s
constexpr double kSaturationOpsS = 1e6 / kServiceUs;

/// One offered-load point, run in a fresh world so counters start clean.
struct Point {
  int pct;  // offered load as % of saturation
  double offered_ops_s;
  double goodput_ops_s;
  double p50_us;
  double p99_us;
  std::uint64_t issued;
  std::uint64_t ok;
  std::uint64_t failed;
  std::uint64_t shed;
  std::uint64_t nacks;
  std::uint64_t expired_in_queue;
  std::uint64_t budget_exhausted;
  // Slow-op flight recorder on the client node, fetched through the real
  // scrape path (node 2 scrapes node 1) after the load drains.
  std::uint64_t slow_dossiers;
  std::uint64_t dossier_spans;        // span count of the newest dossier
  std::uint64_t dossier_queue_depth;  // its captured client-queue depth
  std::string newest_dossier_json;    // the full dossier, for the 2x point
};

Point run_sim_point(int pct) {
  // rpc_timeout (the per-attempt timeout) must exceed the worst-case
  // queue wait (limit * service_us = 32 ms), or every queued-but-served
  // request is timed out client-side and retried — amplification, not
  // measurement. The op deadline provides the real bound.
  // Slow-op capture: an op burning half its 50 ms deadline budget is worth
  // a dossier. Past the knee the client queue's worst-case wait alone is
  // 32 ms (limit * service_us), so the overloaded points must produce
  // dossiers while the underloaded ones stay quiet.
  core::SimWorld world({.nodes = 3,
                        .rpc_timeout = 50'000,
                        .admission_client_queue = 64,
                        .admission_protocol_queue = 512,
                        .admission_replication_queue = 256,
                        .admission_service_us = kServiceUs,
                        .slow_op_deadline_fraction = 0.5,
                        .flight_recorder_capacity = 64,
                        .seed = 7 + static_cast<std::uint64_t>(pct)});

  // kRegions single-page regions homed on node 0, the paced server.
  std::vector<GlobalAddress> bases;
  for (std::size_t r = 0; r < kRegions; ++r) {
    auto base = world.create_region(0, kPage);
    if (!base.ok()) {
      std::fprintf(stderr, "overload: create_region %zu: %s\n", r,
                   std::string(to_string(base.error())).c_str());
      std::abort();
    }
    bases.push_back(base.value());
  }
  // Each create also queues background map/hint traffic on the paced home
  // node; let that backlog drain so warm-up starts from an idle server.
  world.pump_for(500'000);
  // Warm node 1's resolve path so the measured ops are one RPC each, not
  // a cold three-level lookup.
  for (const auto& b : bases) {
    bool warmed = false;
    for (int attempt = 0; attempt < 5 && !warmed; ++attempt) {
      warmed = world.getattr(1, b).ok();
    }
    if (!warmed) {
      std::fprintf(stderr, "overload: warm getattr failed\n");
      std::abort();
    }
  }

  const double rate = kSaturationOpsS * pct / 100.0;
  bench::OpenLoopLoad::Options opts;
  opts.rate_ops_per_sec = rate;
  opts.duration = 2'000'000;
  opts.keys = kRegions;
  opts.clients = 2000;
  opts.seed = 1000 + static_cast<std::uint64_t>(pct);
  core::Node& client = world.node(1);
  bench::OpenLoopLoad load(
      client, opts,
      [&client, &bases](std::size_t, std::size_t key, auto done) {
        core::RpcEngine::DeadlineScope scope(client.rpc_engine(),
                                             client.now() + kOpDeadline);
        client.getattr(bases[key],
                       [done = std::move(done)](auto r) { done(r.ok()); });
      });
  load.start();
  if (!world.pump_until([&] { return load.done(); }, 50'000'000)) {
    std::fprintf(stderr, "overload: sim pump limit hit at %d%%\n", pct);
    std::abort();
  }

  auto& server = world.node(0).metrics();
  auto& stats = load.stats();
  const auto lat = stats.latency_us.snapshot();
  Point p;
  p.pct = pct;
  p.offered_ops_s = rate;
  p.goodput_ops_s =
      static_cast<double>(stats.ok) / (opts.duration / 1e6);
  p.p50_us = lat.percentile(50);
  p.p99_us = lat.percentile(99);
  p.issued = stats.issued;
  p.ok = stats.ok;
  p.failed = stats.failed;
  p.shed = server.counter("admission.shed").value();
  p.nacks = server.counter("admission.nacks_sent").value();
  p.expired_in_queue = server.counter("admission.expired_in_queue").value();
  p.budget_exhausted =
      client.metrics().counter("rpc.retry_budget_exhausted").value();

  // Dossiers live on the node the ops were issued on (node 1); fetch them
  // through the real wire path by scraping from node 2.
  p.slow_dossiers = 0;
  p.dossier_spans = 0;
  p.dossier_queue_depth = 0;
  auto scraped = world.scrape(2, 1, core::Node::kScrapeDossiers);
  if (scraped.ok()) {
    const auto& rs = scraped.value();
    p.slow_dossiers = rs.dossiers_dropped + rs.dossiers.size();
    if (!rs.dossiers.empty()) {
      const auto& newest = rs.dossiers.back();
      p.dossier_spans = newest.spans.size();
      p.dossier_queue_depth = newest.depth_client;
      p.newest_dossier_json = newest.to_json();
    }
  }
  return p;
}

void sim_sweep(bench::JsonReport& report) {
  bench::title(
      "OVERLOAD / sim sweep",
      "Open-loop zipfian getattr load vs a paced home node (saturation "
      "2000 ops/s). Admission: client queue 64 (EDF, shed latest "
      "deadline, Nack), op deadline 50 ms.");
  bench::table_header({"offered%", "offered/s", "goodput/s", "p50", "p99",
                       "failed", "shed", "nacks"});
  report.meta("world.sim", "deterministic simulator, 3 nodes");
  report.metric("saturation_ops_s", kSaturationOpsS);
  report.metric("op_deadline_us", kOpDeadline);
  report.metric("client_queue_limit", 64);
  for (const int pct : {25, 50, 75, 100, 125, 150, 200}) {
    const Point p = run_sim_point(pct);
    bench::cell(static_cast<std::uint64_t>(p.pct));
    bench::cell(p.offered_ops_s);
    bench::cell(p.goodput_ops_s);
    bench::cell(bench::us(static_cast<Micros>(p.p50_us)));
    bench::cell(bench::us(static_cast<Micros>(p.p99_us)));
    bench::cell(p.failed);
    bench::cell(p.shed);
    bench::cell(p.nacks);
    bench::endrow();

    char key[64];
    std::snprintf(key, sizeof(key), "sim.p%03d.", p.pct);
    const std::string k(key);
    report.metric(k + "offered_ops_s", p.offered_ops_s);
    report.metric(k + "goodput_ops_s", p.goodput_ops_s);
    report.metric(k + "p50_us", p.p50_us);
    report.metric(k + "p99_us", p.p99_us);
    report.metric(k + "issued", static_cast<double>(p.issued));
    report.metric(k + "ok", static_cast<double>(p.ok));
    report.metric(k + "failed", static_cast<double>(p.failed));
    report.metric(k + "shed", static_cast<double>(p.shed));
    report.metric(k + "nacks", static_cast<double>(p.nacks));
    report.metric(k + "expired_in_queue",
                  static_cast<double>(p.expired_in_queue));
    report.metric(k + "retry_budget_exhausted",
                  static_cast<double>(p.budget_exhausted));
    report.metric(k + "slow_dossiers", static_cast<double>(p.slow_dossiers));
    report.metric(k + "dossier_spans", static_cast<double>(p.dossier_spans));
    report.metric(k + "dossier_queue_depth",
                  static_cast<double>(p.dossier_queue_depth));

    // Past the knee the flight recorder must have fired; show the newest
    // dossier (span tree + queue depths) the 2x point produced.
    if (p.pct == 200) {
      std::printf("\n2x slow-op dossiers (scraped from node 1): %llu\n",
                  static_cast<unsigned long long>(p.slow_dossiers));
      if (!p.newest_dossier_json.empty()) {
        std::printf("newest: %s\n", p.newest_dossier_json.c_str());
      }
    }
  }
}

void tcp_spot_check(bench::JsonReport& report) {
  bench::title(
      "OVERLOAD / tcp spot check",
      "Same generator over real sockets: ~2x the paced capacity for "
      "250 ms of wall-clock. Expect a nonzero shed count and bounded "
      "success latency.");

  constexpr Micros kTcpServiceUs = 400;  // capacity 2500 ops/s
  constexpr double kTcpRate = 5000;      // ~2x capacity
  constexpr std::size_t kTcpRegions = 16;
  core::TcpWorld world({.nodes = 2,
                        .rpc_timeout = 100'000,
                        .admission_client_queue = 32,
                        .admission_protocol_queue = 512,
                        .admission_replication_queue = 256,
                        .admission_service_us = kTcpServiceUs});
  core::TcpClient setup(world, 0);
  std::vector<GlobalAddress> bases;
  for (std::size_t r = 0; r < kTcpRegions; ++r) {
    auto base = setup.reserve(kPage, {});
    if (!base.ok()) std::abort();
    if (!setup.allocate({base.value(), kPage}).ok()) std::abort();
    bases.push_back(base.value());
  }
  // Let the paced home node drain the creates' background traffic, then
  // warm node 1's resolver (retrying: a one-shot probe can be shed).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  core::TcpClient warm(world, 1);
  for (const auto& b : bases) {
    bool warmed = false;
    for (int attempt = 0; attempt < 5 && !warmed; ++attempt) {
      warmed = warm.getattr(b).ok();
    }
    if (!warmed) std::abort();
  }

  bench::OpenLoopLoad::Options opts;
  opts.rate_ops_per_sec = kTcpRate;
  opts.duration = 250'000;
  opts.keys = kTcpRegions;
  opts.clients = 500;
  opts.seed = 99;
  core::Node& client = world.node(1);
  bench::OpenLoopLoad load(
      client, opts,
      [&client, &bases](std::size_t, std::size_t key, auto done) {
        core::RpcEngine::DeadlineScope scope(client.rpc_engine(),
                                             client.now() + 30'000);
        client.getattr(bases[key],
                       [done = std::move(done)](auto r) { done(r.ok()); });
      });
  world.transport(1).run_on_executor([&load] { load.start(); });
  // Real time: arrivals run for duration, then in-flight ops drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!load.done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  auto& stats = load.stats();
  const auto lat = stats.latency_us.snapshot();
  const std::uint64_t shed =
      world.node(0).metrics().counter("admission.shed").value();
  const std::uint64_t nacks =
      world.node(0).metrics().counter("admission.nacks_sent").value();
  bench::table_header(
      {"offered/s", "issued", "ok", "failed", "p99", "shed", "nacks"});
  bench::cell(kTcpRate);
  bench::cell(stats.issued.load());
  bench::cell(stats.ok.load());
  bench::cell(stats.failed.load());
  bench::cell(bench::us(static_cast<Micros>(lat.percentile(99))));
  bench::cell(shed);
  bench::cell(nacks);
  bench::endrow();
  report.meta("world.tcp", "real sockets, 2 nodes");
  report.metric("tcp.offered_ops_s", kTcpRate);
  report.metric("tcp.issued", static_cast<double>(stats.issued.load()));
  report.metric("tcp.ok", static_cast<double>(stats.ok.load()));
  report.metric("tcp.failed", static_cast<double>(stats.failed.load()));
  report.metric("tcp.p99_us", lat.percentile(99));
  report.metric("tcp.shed", static_cast<double>(shed));
  report.metric("tcp.nacks", static_cast<double>(nacks));
}

}  // namespace
}  // namespace khz

int main(int argc, char** argv) {
  khz::bench::JsonReport report("overload", argc, argv);
  khz::sim_sweep(report);
  khz::tcp_spot_check(report);
  report.finish();
  return 0;
}
