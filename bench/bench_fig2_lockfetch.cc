// FIG2 — Figure 2: "Sequence of actions on a lock and fetch request".
//
// The paper's only protocol figure: node A lock+fetches page p owned by
// node B. This harness reproduces the exchange, prints the actual message
// trace annotated with the corresponding Figure-2 steps, and reports the
// end-to-end latency and message count for a cold request, a warm (cached)
// repeat, and a write (ownership-transfer) request — each under LAN and
// WAN link profiles.
#include <map>

#include "bench/bench_util.h"
#include "consistency/crew.h"

namespace khz {
namespace {

using namespace khz::bench;           // NOLINT
using core::SimWorld;
using core::SimWorldOptions;
using consistency::LockMode;

const char* figure2_step(const net::Message& m) {
  using net::MsgType;
  switch (m.type) {
    case MsgType::kHintQueryReq:
      return "step 1:    A consults the cluster manager for p's region";
    case MsgType::kHintQueryResp:
      return "step 1:    ... manager returns home hint";
    case MsgType::kDescLookupReq:
      return "steps 2,3: A fetches the region descriptor";
    case MsgType::kDescLookupResp:
      return "steps 2,3: ... descriptor arrives (page dir lookup = step 4)";
    case MsgType::kCm: {
      Decoder d(m.payload);
      (void)d.u8();
      (void)d.addr();
      const auto sub = static_cast<consistency::CrewManager::Sub>(d.u8());
      switch (sub) {
        case consistency::CrewManager::Sub::kReadReq:
          return "steps 5,6: A's CM asks B's CM for read credentials";
        case consistency::CrewManager::Sub::kWriteReq:
          return "steps 5,6: A's CM asks B's CM for write credentials";
        case consistency::CrewManager::Sub::kData:
          return "steps 7-10: B supplies a copy of p; A caches it";
        case consistency::CrewManager::Sub::kOwner:
          return "steps 7-10: B ships p + ownership to A";
        default:
          return "           (consistency traffic)";
      }
    }
    default:
      return "           (other)";
  }
}

struct RunResult {
  Micros cold_read;
  std::uint64_t cold_read_msgs;
  Micros warm_read;
  std::uint64_t warm_read_msgs;
  Micros cold_write;
  std::uint64_t cold_write_msgs;
};

RunResult run(const net::LinkProfile& link, bool trace) {
  SimWorld world({.nodes = 2, .link = link});
  // Node B (id 0, also home) creates and owns page p.
  auto base = world.create_region(0, 4096);
  if (!base.ok()) std::abort();
  const AddressRange p{base.value(), 4096};
  if (!world.put(0, p, fill(4096, 0xF2)).ok()) std::abort();

  if (trace) {
    world.net().set_tap([](Micros t, const net::Message& m) {
      std::printf("  [%9s] %-16s %u -> %u   %s\n", us(t).c_str(),
                  std::string(net::to_string(m.type)).c_str(), m.src, m.dst,
                  figure2_step(m));
    });
  }

  RunResult out{};
  // Cold <lock, fetch> from node A (Figure 2 proper; steps 11-13 — the
  // local grant and data copy to the requestor — happen inside node A).
  TrafficMeter meter(world);
  Micros t0 = world.net().now();
  auto ctx = world.lock(1, p, LockMode::kRead);
  if (!ctx.ok()) std::abort();
  auto data = world.read(1, ctx.value(), 0, 4096);
  if (!data.ok() || data.value()[0] != 0xF2) std::abort();
  world.unlock(1, ctx.value());
  out.cold_read = world.net().now() - t0;
  out.cold_read_msgs = meter.delta().messages;
  world.net().set_tap(nullptr);

  // Warm repeat: the copy is cached and still valid.
  meter.reset();
  t0 = world.net().now();
  if (!world.get(1, p).ok()) std::abort();
  out.warm_read = world.net().now() - t0;
  out.warm_read_msgs = meter.delta().messages;

  // Write lock: ownership transfer (B invalidates + ships ownership).
  meter.reset();
  t0 = world.net().now();
  if (!world.put(1, p, fill(4096, 0x11)).ok()) std::abort();
  out.cold_write = world.net().now() - t0;
  out.cold_write_msgs = meter.delta().messages;
  return out;
}

}  // namespace
}  // namespace khz

int main(int argc, char** argv) {
  using namespace khz;        // NOLINT
  using namespace khz::bench; // NOLINT

  JsonReport report("fig2_lockfetch", argc, argv);
  title("FIG2 | bench_fig2_lockfetch",
        "Figure 2: lock+fetch of page p at node A, owned by node B.\n"
        "Message trace (LAN profile), then latency/message summary.");

  std::printf("\nProtocol trace, cold read lock (A = node 1, B = node 0):\n");
  (void)run(net::LinkProfile::lan(), /*trace=*/true);

  std::printf(
      "\nSummary (one 4 KiB page; LAN = 0.1 ms links, WAN = 40 ms links):\n\n");
  table_header({"link", "op", "latency", "messages"});
  for (const auto& [name, link] :
       std::vector<std::pair<std::string, net::LinkProfile>>{
           {"LAN", net::LinkProfile::lan()},
           {"WAN", net::LinkProfile::wan()}}) {
    const auto r = run(link, false);
    cell(name); cell(std::string("cold read")); cell(us(r.cold_read));
    cell(r.cold_read_msgs); endrow();
    cell(name); cell(std::string("warm read")); cell(us(r.warm_read));
    cell(r.warm_read_msgs); endrow();
    cell(name); cell(std::string("write+own")); cell(us(r.cold_write));
    cell(r.cold_write_msgs); endrow();

    const std::string prefix = name == "LAN" ? "lan_" : "wan_";
    report.metric(prefix + "cold_read_us", static_cast<double>(r.cold_read));
    report.metric(prefix + "cold_read_msgs",
                  static_cast<double>(r.cold_read_msgs));
    report.metric(prefix + "warm_read_us", static_cast<double>(r.warm_read));
    report.metric(prefix + "warm_read_msgs",
                  static_cast<double>(r.warm_read_msgs));
    report.metric(prefix + "cold_write_us",
                  static_cast<double>(r.cold_write));
    report.metric(prefix + "cold_write_msgs",
                  static_cast<double>(r.cold_write_msgs));
  }
  std::printf(
      "\nShape check vs paper: the cold path costs a handful of messages\n"
      "(descriptor lookup + CM exchange + data); the warm path is free —\n"
      "all later lock/read pairs are served from the local replica.\n");
  return 0;
}
