// MICRO — wall-clock microbenchmarks (google-benchmark) for Khazana's
// local hot paths: these run on the real CPU, unlike the simulation
// experiments, and catch regressions in the data structures every
// operation touches (message codec, wire serialization, the address-map
// tree, the page caches, the region directory).
#include <benchmark/benchmark.h>

#include <tuple>

#include "bench/bench_util.h"
#include "core/address_map.h"
#include "core/region_directory.h"
#include "net/message.h"
#include "storage/memory_store.h"
#include "storage/page_directory.h"

namespace khz {
namespace {

void BM_MessageEncodeDecode(benchmark::State& state) {
  net::Message m;
  m.type = net::MsgType::kPageFetchResp;
  m.src = 1;
  m.dst = 2;
  m.rpc_id = 42;
  m.payload = Bytes(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    const Bytes wire = m.encode();
    net::Message out;
    benchmark::DoNotOptimize(net::Message::decode(wire, out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MessageEncodeDecode)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EncoderPrimitives(benchmark::State& state) {
  for (auto _ : state) {
    Encoder e;
    for (int i = 0; i < 64; ++i) {
      e.u64(static_cast<std::uint64_t>(i));
      e.addr({1, static_cast<std::uint64_t>(i)});
    }
    benchmark::DoNotOptimize(e.data().data());
  }
}
BENCHMARK(BM_EncoderPrimitives);

class BenchMapStore final : public core::MapPageStore {
 public:
  Bytes read_page(std::uint32_t index) override {
    auto it = pages_.find(index);
    return it == pages_.end() ? Bytes(4096, 0) : it->second;
  }
  void write_page(std::uint32_t index, const Bytes& data) override {
    pages_[index] = data;
  }
  [[nodiscard]] std::uint32_t page_size() const override { return 4096; }

 private:
  std::map<std::uint32_t, Bytes> pages_;
};

void BM_AddressMapLookup(benchmark::State& state) {
  BenchMapStore store;
  core::AddressMap::format(store);
  core::AddressMap map(store);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    (void)map.insert({{0, i * 100}, 80}, {1});
  }
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup({0, (probe++ % n) * 100 + 10}));
  }
}
BENCHMARK(BM_AddressMapLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AddressMapInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BenchMapStore store;
    core::AddressMap::format(store);
    core::AddressMap map(store);
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < 500; ++i) {
      benchmark::DoNotOptimize(map.insert({{0, i * 100}, 80}, {1}).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_AddressMapInsert);

void BM_MemoryStoreGet(benchmark::State& state) {
  storage::MemoryStore store;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    store.put({0, i * 4096}, Bytes(4096, 1));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get({0, (i++ % 1024) * 4096}));
  }
}
BENCHMARK(BM_MemoryStoreGet);

void BM_PageDirectoryEnsure(benchmark::State& state) {
  storage::PageDirectory pd;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pd.ensure({0, (i++ % 4096) * 4096}));
  }
}
BENCHMARK(BM_PageDirectoryEnsure);

void BM_RegionDirectoryLookup(benchmark::State& state) {
  core::RegionDirectory dir(2048);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    core::RegionDescriptor d;
    d.range = {{0, i << 20}, 1 << 20};
    d.home_nodes = {static_cast<NodeId>(i % 8)};
    dir.insert(d);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.lookup({0, ((i++ % 1024) << 20) + 512}));
  }
}
BENCHMARK(BM_RegionDirectoryLookup);

// End-to-end op latencies over the simulator, read back from the node's own
// op.* histograms (deterministic virtual micros). This is the same registry
// a production node would export, so the section doubles as an integration
// check of the metrics path.
void sim_latency_section(bench::JsonReport& report, unsigned lanes) {
  constexpr std::uint64_t kPages = 32;
  constexpr int kRounds = 8;

  core::SimWorld world({.nodes = 3, .lanes = lanes});
  auto base = world.create_region(0, kPages * 4096);
  if (!base.ok()) std::abort();
  for (std::uint64_t p = 0; p < kPages; ++p) {
    const AddressRange page{base.value().plus(p * 4096), 4096};
    if (!world.put(0, page, bench::fill(4096, 0xAB)).ok()) std::abort();
  }
  // Node 1 drives a mixed remote/cached workload against node 0's region.
  for (int r = 0; r < kRounds; ++r) {
    for (std::uint64_t p = 0; p < kPages; ++p) {
      const AddressRange page{base.value().plus(p * 4096), 4096};
      if (!world.get(1, page).ok()) std::abort();
      if (p % 4 == 0 &&
          !world.put(1, page, bench::fill(4096, 0x11)).ok()) {
        std::abort();
      }
    }
  }

  const obs::MetricsSnapshot snap = world.node(1).metrics().snapshot();
  std::printf("\nSimulated end-to-end op latencies (node 1, virtual us):\n\n");
  bench::table_header({"op", "count", "p50", "p95", "p99", "max"});
  for (const auto& [label, hist_name, key] :
       std::vector<std::tuple<std::string, std::string, std::string>>{
           {"lock(read)", "op.lock.read_us", "lock"},
           {"lock(write)", "op.lock.write_us", "lock_write"},
           {"read", "op.read_us", "read"},
           {"write", "op.write_us", "write"}}) {
    const auto it = snap.histograms.find(hist_name);
    if (it == snap.histograms.end()) continue;
    const obs::HistogramSnapshot& h = it->second;
    bench::cell(label);
    bench::cell(h.count);
    bench::cell(h.percentile(50));
    bench::cell(h.percentile(95));
    bench::cell(h.percentile(99));
    bench::cell(h.max);
    bench::endrow();
    report.metric(key + "_p50_us", h.percentile(50));
    report.metric(key + "_p95_us", h.percentile(95));
    report.metric(key + "_p99_us", h.percentile(99));
    report.metric(key + "_count", static_cast<double>(h.count));
  }

  // RPC-engine efficiency: attempts per completed op. A healthy LAN run
  // sits near the floor (most ops need no retries); a drift upward means
  // timeouts/steering are burning extra round trips.
  std::uint64_t ops = 0;
  for (const char* name : {"op.lock.read_us", "op.lock.write_us",
                           "op.read_us", "op.write_us"}) {
    const auto it = snap.histograms.find(name);
    if (it != snap.histograms.end()) ops += it->second.count;
  }
  const auto attempts_it = snap.counters.find("rpc.attempts");
  const double attempts =
      attempts_it == snap.counters.end()
          ? 0.0
          : static_cast<double>(attempts_it->second);
  if (ops > 0) {
    const double per_op = attempts / static_cast<double>(ops);
    std::printf("\nrpc.attempts per op: %.3f (%.0f attempts / %llu ops)\n",
                per_op, attempts,
                static_cast<unsigned long long>(ops));
    report.metric("rpc_attempts_per_op", per_op);
  }
}

}  // namespace
}  // namespace khz

int main(int argc, char** argv) {
  khz::bench::JsonReport report("micro", argc, argv);
  // --lanes N reruns the simulated section with that many execution lanes
  // (default 1 = the legacy single-lane node, so existing baselines hold).
  unsigned lanes = 1;
  // google-benchmark rejects flags it does not know, so strip --json and
  // --lanes before handing argv over.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a == "--json") continue;
    if (a.rfind("--lanes=", 0) == 0) {
      lanes = static_cast<unsigned>(std::stoul(a.substr(8)));
      continue;
    }
    if (a == "--lanes" && i + 1 < argc) {
      lanes = static_cast<unsigned>(std::stoul(argv[++i]));
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  report.meta("lanes", std::to_string(lanes));
  khz::sim_latency_section(report, lanes);
  return 0;
}
