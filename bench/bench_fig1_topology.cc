// FIG1 — Figure 1: "Typical Distributed Systems Based on Khazana".
//
// The figure shows five nodes with one shared datum (the square)
// physically replicated on Nodes 3 and 5; Node 1 then accesses it and
// Khazana locates and supplies a copy. This harness constructs exactly
// that configuration and reports where the data lives before and after
// Node 1's access, plus what the access cost.
#include "bench/bench_util.h"

int main() {
  using namespace khz;        // NOLINT
  using namespace khz::bench; // NOLINT
  using core::SimWorld;
  using consistency::LockMode;

  title("FIG1 | bench_fig1_topology",
        "Figure 1: 5 nodes; a datum replicated on nodes 3 and 5 is\n"
        "accessed from node 1, which has no copy.");

  // The paper's figure numbers nodes 1..5; we use ids 0..4 and map
  // node k in the figure to id k-1. Node 3 (id 2) creates the region;
  // node 5 (id 4) accesses it once so it holds the second physical copy,
  // reproducing the figure's starting state exactly.
  SimWorld world({.nodes = 5});
  auto base = world.create_region(2, 4096);
  if (!base.ok()) return 1;
  const AddressRange square{base.value(), 4096};
  if (!world.put(2, square, fill(4096, 0x5E)).ok()) return 1;
  if (!world.get(4, square).ok()) return 1;  // figure-node 5's replica
  world.pump_for(1'000'000);

  auto print_holders = [&](const char* when) {
    auto holders = world.locate(2, square.base);
    std::printf("%s: copies on figure-nodes { ", when);
    if (holders.ok()) {
      for (NodeId n : holders.value()) std::printf("%u ", n + 1);
    }
    std::printf("}\n");
  };
  print_holders("before node 1's access");

  TrafficMeter meter(world);
  const Micros t0 = world.net().now();
  auto data = world.get(0, square);  // figure-node 1 = id 0
  if (!data.ok() || data.value()[0] != 0x5E) {
    std::printf("ACCESS FAILED\n");
    return 1;
  }
  const Micros latency = world.net().now() - t0;
  const auto traffic = meter.delta();

  std::printf("node 1 accessed the datum: Khazana located a copy and\n");
  std::printf("supplied it in %s using %llu messages (%llu bytes).\n",
              us(latency).c_str(),
              static_cast<unsigned long long>(traffic.messages),
              static_cast<unsigned long long>(traffic.bytes));
  print_holders("after node 1's access ");

  std::printf(
      "\nShape check vs paper: the requester is added to the copy set —\n"
      "data migrates toward where it is used, and the original replicas\n"
      "remain for availability.\n");
  return 0;
}
