// GOAL-CONSIST — Section 3.3 / Section 2: pluggable consistency, and the
// cost of strength. "A clustered web server ... would likely require ...
// a weaker (and thus higher performance) consistency protocol."
//
// The same workload — a writer node updating a 4 KiB region while reader
// nodes poll it — runs under CREW (strict), release (relaxed) and eventual
// consistency. Reports per-operation latency and message cost, plus the
// observed staleness for the weak protocols (versions behind at read
// time).
#include "bench/bench_util.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::RegionAttrs;
using core::SimWorld;
using consistency::LockMode;
using consistency::ProtocolId;

struct Row {
  double write_latency_us;
  double read_latency_us;
  double msgs_per_op;
  double stale_reads_fraction;  // reads issued right after the write
  Micros convergence;           // settle time until all replicas current
};

Row run(ProtocolId protocol, core::ConsistencyLevel level) {
  SimWorld world({.nodes = 4});
  RegionAttrs attrs;
  attrs.protocol = protocol;
  attrs.level = level;
  auto base = world.create_region(0, 4096, attrs);
  if (!base.ok()) std::abort();
  const AddressRange region{base.value(), 4096};

  // Warm all readers.
  if (!world.put(1, region, fill(4096, 0)).ok()) std::abort();
  for (NodeId n = 2; n < 4; ++n) (void)world.get(n, region);
  world.pump_for(1'000'000);

  const int kRounds = 30;
  Micros write_time = 0;
  Micros read_time = 0;
  int reads = 0;
  int stale = 0;
  TrafficMeter meter(world);

  for (int round = 1; round <= kRounds; ++round) {
    const auto version = static_cast<std::uint8_t>(round);
    Micros t0 = world.net().now();
    if (!world.put(1, region, fill(4096, version)).ok()) std::abort();
    write_time += world.net().now() - t0;

    for (NodeId n = 2; n < 4; ++n) {
      t0 = world.net().now();
      auto r = world.get(n, region);
      read_time += world.net().now() - t0;
      if (!r.ok()) std::abort();
      ++reads;
      if (r.value()[0] != version) ++stale;
    }
  }
  // Convergence: after one more write, how long until every replica
  // serves the new version ("temporarily out-of-date ... as long as they
  // get fast response").
  if (!world.put(1, region, fill(4096, 0xFE)).ok()) std::abort();
  const Micros conv_start = world.net().now();
  Micros converged_at = 0;
  for (int step = 0; step < 200; ++step) {
    bool all_current = true;
    for (NodeId n = 2; n < 4; ++n) {
      auto r = world.get(n, region);
      if (!r.ok() || r.value()[0] != 0xFE) all_current = false;
    }
    if (all_current) {
      converged_at = world.net().now() - conv_start;
      break;
    }
    world.pump_for(10'000);
  }

  const auto total_ops = static_cast<double>(kRounds + reads);
  return {static_cast<double>(write_time) / kRounds,
          static_cast<double>(read_time) / reads,
          static_cast<double>(meter.delta().messages) / total_ops,
          static_cast<double>(stale) / reads, converged_at};
}

}  // namespace

int main() {
  title("GOAL-CONSIST | bench_consistency",
        "One workload, three consistency protocols (Section 3.3):\n"
        "writer on node 1, two polling readers, 4-node LAN.");

  std::printf("\n");
  table_header({"protocol", "write lat (us)", "read lat (us)", "msgs/op",
                "stale reads", "converges in"});
  struct Case {
    const char* name;
    ProtocolId protocol;
    core::ConsistencyLevel level;
  };
  for (const Case& c :
       {Case{"crew (strict)", ProtocolId::kCrew,
             core::ConsistencyLevel::kStrict},
        Case{"release (relaxed)", ProtocolId::kRelease,
             core::ConsistencyLevel::kRelaxed},
        Case{"eventual", ProtocolId::kEventual,
             core::ConsistencyLevel::kEventual}}) {
    const Row r = run(c.protocol, c.level);
    cell(std::string(c.name));
    cell(r.write_latency_us);
    cell(r.read_latency_us);
    cell(r.msgs_per_op);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%", r.stale_reads_fraction * 100);
    cell(std::string(pct));
    cell(us(r.convergence));
    endrow();
  }
  std::printf(
      "\nShape check vs paper: CREW reads are never stale but pay\n"
      "invalidation + re-fetch traffic on every write/read cycle; the\n"
      "relaxed protocols serve reads from the local replica (near-zero\n"
      "read latency and messages) at the price of a window of staleness —\n"
      "exactly the trade Section 2 describes for web-server-class clients.\n");
  return 0;
}
