// MULTIPAGE — cost of an N-page range lock + read, 1..64 pages.
//
// The pipelined lock path (prefetch window + coalesced kPageBatchFetch
// messages) should make a cold N-page operation cost ~1 batched round
// trip instead of N sequential ones. Two sections:
//
//  * SimWorld sweep over a WAN-like link (deterministic virtual time),
//    against the pre-change behavior — sequential per-page lock/read —
//    as the comparator;
//  * a TcpWorld spot check over real sockets, reading the pages-per-batch
//    histogram to show a 16-page cold read rides one batch request.
#include <chrono>

#include "bench/bench_util.h"

namespace khz {
namespace {

constexpr std::uint64_t kPage = 4096;

using consistency::LockMode;

struct SweepPoint {
  std::uint64_t pages;
  Micros range_us;       // one pipelined range lock+read+unlock
  Micros sequential_us;  // per-page lock+read+unlock loop (old behavior)
  std::uint64_t range_msgs;
  std::uint64_t sequential_msgs;
};

// Cold-cache cost of reading `pages` pages homed on node 0 from node 1.
// `per_page` switches between one range op and the sequential loop.
void measure(std::uint64_t pages, bool per_page, Micros* out_us,
             std::uint64_t* out_msgs) {
  core::SimWorld world({.nodes = 2, .link = net::LinkProfile::wan()});
  const std::uint64_t bytes = pages * kPage;
  auto base = world.create_region(0, bytes);
  if (!base.ok()) std::abort();
  if (!world.put(0, {base.value(), bytes}, bench::fill(bytes, 0x5A)).ok()) {
    std::abort();
  }
  bench::TrafficMeter meter(world);
  const Micros t0 = world.net().now();
  if (per_page) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      if (!world.get(1, {base.value().plus(p * kPage), kPage}).ok()) {
        std::abort();
      }
    }
  } else {
    if (!world.get(1, {base.value(), bytes}).ok()) std::abort();
  }
  *out_us = world.net().now() - t0;
  *out_msgs = meter.delta().messages;
}

void sim_sweep(bench::JsonReport& report) {
  bench::title("MULTIPAGE / sim sweep",
               "Cold N-page read from a remote home over a WAN link: one "
               "pipelined range lock vs N sequential per-page locks "
               "(virtual us; identical every run).");

  std::vector<SweepPoint> points;
  for (std::uint64_t pages : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    SweepPoint pt;
    pt.pages = pages;
    measure(pages, /*per_page=*/false, &pt.range_us, &pt.range_msgs);
    measure(pages, /*per_page=*/true, &pt.sequential_us,
            &pt.sequential_msgs);
    points.push_back(pt);
  }

  bench::table_header({"pages", "range lock", "msgs", "sequential", "msgs",
                       "speedup", "vs 1-page"});
  const double base_us = static_cast<double>(points.front().range_us);
  for (const auto& pt : points) {
    bench::cell(pt.pages);
    bench::cell(bench::us(pt.range_us));
    bench::cell(pt.range_msgs);
    bench::cell(bench::us(pt.sequential_us));
    bench::cell(pt.sequential_msgs);
    bench::cell(static_cast<double>(pt.sequential_us) /
                static_cast<double>(pt.range_us));
    bench::cell(static_cast<double>(pt.range_us) / base_us);
    bench::endrow();
    const std::string n = std::to_string(pt.pages);
    report.metric("sim_range_us_" + n, static_cast<double>(pt.range_us));
    report.metric("sim_seq_us_" + n, static_cast<double>(pt.sequential_us));
    report.metric("sim_range_msgs_" + n,
                  static_cast<double>(pt.range_msgs));
    report.metric("sim_seq_msgs_" + n,
                  static_cast<double>(pt.sequential_msgs));
  }
  // Headline acceptance number: a 16-page op within 3x of a 1-page op.
  for (const auto& pt : points) {
    if (pt.pages == 16) {
      report.metric("sim_ratio_16_vs_1",
                    static_cast<double>(pt.range_us) / base_us);
    }
  }
}

void tcp_spot_check(bench::JsonReport& report) {
  bench::title("MULTIPAGE / tcp spot check",
               "16-page cold read over real sockets: wall time, wire "
               "messages, and the pages-per-batch histogram (the batch "
               "request + response replace 16 per-page round trips).");

  core::TcpWorld world({.nodes = 2, .base_port = 41300});
  core::TcpClient c0(world, 0);
  core::TcpClient c1(world, 1);
  const std::uint64_t bytes = 16 * kPage;
  auto base = c0.create_region(bytes);
  if (!base.ok()) std::abort();
  if (!c0.put({base.value(), bytes}, bench::fill(bytes, 0x6B)).ok()) {
    std::abort();
  }

  bench::TrafficMeter meter(world);
  const auto t0 = std::chrono::steady_clock::now();
  auto got = c1.get({base.value(), bytes});
  const auto t1 = std::chrono::steady_clock::now();
  if (!got.ok() || got.value() != bench::fill(bytes, 0x6B)) std::abort();
  const auto wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());

  obs::HistogramSnapshot batch_pages;
  obs::HistogramSnapshot batch_rpc;
  world.transport(1).run_on_executor([&] {
    auto& reg = world.node(1).metrics();
    batch_pages = reg.histogram("crew.batch_pages").snapshot();
    batch_rpc = reg.histogram("crew.batch_rpc_us").snapshot();
  });
  const obs::HistogramSnapshot gather =
      world.transport(1).metrics().histogram("tcp.writev_frames").snapshot();
  const auto traffic = meter.delta();

  bench::table_header({"metric", "value"});
  bench::cell("cold read wall");
  bench::cell(bench::us(static_cast<Micros>(wall_us)));
  bench::endrow();
  bench::cell("wire messages");
  bench::cell(traffic.messages);
  bench::endrow();
  bench::cell("batch requests");
  bench::cell(batch_pages.count);
  bench::endrow();
  bench::cell("pages/batch max");
  bench::cell(batch_pages.max);
  bench::endrow();
  bench::cell("batch rtt p50");
  bench::cell(bench::us(static_cast<Micros>(batch_rpc.percentile(50))));
  bench::endrow();
  bench::cell("frames/sendmsg max");
  bench::cell(gather.max);
  bench::endrow();

  report.metric("tcp_cold16_wall_us", static_cast<double>(wall_us));
  report.metric("tcp_cold16_msgs", static_cast<double>(traffic.messages));
  report.metric("tcp_batch_requests", static_cast<double>(batch_pages.count));
  report.metric("tcp_pages_per_batch_max",
                static_cast<double>(batch_pages.max));
  report.metric("tcp_sendmsg_frames_max", static_cast<double>(gather.max));
}

}  // namespace
}  // namespace khz

int main(int argc, char** argv) {
  khz::bench::JsonReport report("multipage", argc, argv);
  khz::sim_sweep(report);
  khz::tcp_spot_check(report);
  return 0;
}
