// GOAL-SCALE — Section 2, "Scalability": "Performance should scale as
// nodes are added if the new nodes do not contend for access to the same
// regions as existing nodes."
//
// Two workloads over N in {1,2,4,8,16,32}:
//   disjoint  — every node lock/write/unlocks its own region (the paper's
//               "do not contend" case): per-node throughput should stay
//               roughly flat as N grows.
//   contended — every node hammers ONE shared region under CREW: total
//               throughput is bounded by the serialized ownership hand-off,
//               so per-node throughput collapses as N grows.
#include "bench/bench_util.h"

namespace {

using namespace khz;        // NOLINT
using namespace khz::bench; // NOLINT
using core::SimWorld;
using consistency::LockMode;

struct Point {
  Micros round_time;  // virtual time for one round of N concurrent ops
  double msgs_per_op;
};

/// One op issued asynchronously: lock(write) -> write -> unlock.
void async_put(core::Node& node, const AddressRange& region,
               std::uint8_t value, int* outstanding) {
  node.lock(region, LockMode::kWrite,
            [&node, region, value,
             outstanding](Result<consistency::LockContext> ctx) {
              if (!ctx.ok()) std::abort();
              const Bytes data = fill(4096, value);
              if (!node.write(ctx.value(), 0, data).ok()) std::abort();
              node.unlock(ctx.value());
              --*outstanding;
            });
}

/// Runs `rounds` rounds; in each round all N nodes issue one write
/// CONCURRENTLY (the simulator interleaves their protocol traffic), then
/// the round barrier waits for every grant. Returns mean round time.
Point run(std::size_t nodes, int rounds, bool contended) {
  SimWorld world({.nodes = nodes});
  std::vector<AddressRange> regions;
  if (contended) {
    auto base = world.create_region(0, 4096);
    if (!base.ok()) std::abort();
    for (std::size_t n = 0; n < nodes; ++n) {
      regions.push_back({base.value(), 4096});
    }
    if (!world.put(0, regions[0], fill(4096, 1)).ok()) std::abort();
  } else {
    for (std::size_t n = 0; n < nodes; ++n) {
      auto base = world.create_region(static_cast<NodeId>(n), 4096);
      if (!base.ok()) std::abort();
      regions.push_back({base.value(), 4096});
      if (!world.put(static_cast<NodeId>(n), regions[n], fill(4096, 1))
               .ok()) {
        std::abort();
      }
    }
  }

  TrafficMeter meter(world);
  const Micros t0 = world.net().now();
  for (int round = 0; round < rounds; ++round) {
    int outstanding = static_cast<int>(nodes);
    for (std::size_t n = 0; n < nodes; ++n) {
      async_put(world.node(static_cast<NodeId>(n)), regions[n],
                static_cast<std::uint8_t>(round), &outstanding);
    }
    if (!world.pump_until([&] { return outstanding == 0; })) std::abort();
  }
  const Micros elapsed = std::max<Micros>(world.net().now() - t0, 1);
  const auto total_ops =
      static_cast<double>(rounds) * static_cast<double>(nodes);
  return {elapsed / rounds,
          static_cast<double>(meter.delta().messages) / total_ops};
}

// ---------------------------------------------------------------------------
// Lane sweep: single-node aggregate throughput vs execution lanes
// ---------------------------------------------------------------------------

struct LanePoint {
  double ops_per_sec;  // aggregate, virtual time
  Micros elapsed;
};

/// Closed-loop multi-client workload against ONE server node: kStreams
/// independent regions homed on node 0, each driven by a pair of clients
/// alternating writes (every op forces an ownership hand-off through the
/// server's CM, so its admission controller paces every op). service_us
/// models handler CPU; with L lanes the node runs L single-writer
/// admission controllers in parallel, so aggregate throughput should
/// scale with L until the stream count stops covering every lane.
LanePoint run_lanes(unsigned lanes, int ops_per_stream) {
  SimWorld world({.nodes = 3,
                  .admission_client_queue = 256,
                  .admission_protocol_queue = 1024,
                  .admission_replication_queue = 256,
                  .admission_service_us = 50,
                  .lanes = lanes});
  constexpr int kStreams = 16;
  struct Stream {
    AddressRange region;
    int remaining;
    NodeId writer;  // alternates 1 <-> 2 so every write transfers ownership
  };
  std::vector<Stream> streams;
  for (int i = 0; i < kStreams; ++i) {
    auto base = world.create_region(0, 4096);
    if (!base.ok()) std::abort();
    streams.push_back({{base.value(), 4096}, ops_per_stream,
                       static_cast<NodeId>(1 + (i % 2))});
    if (!world.put(0, streams.back().region, fill(4096, 1)).ok()) {
      std::abort();
    }
  }
  int done = 0;
  std::function<void(int)> kick = [&](int s) {
    Stream& st = streams[static_cast<std::size_t>(s)];
    if (st.remaining-- == 0) {
      ++done;
      return;
    }
    core::Node& node = world.node(st.writer);
    st.writer = st.writer == 1 ? 2 : 1;
    node.lock(st.region, LockMode::kWrite,
              [&node, &kick, s, region = st.region](
                  Result<consistency::LockContext> ctx) {
                if (!ctx.ok()) std::abort();
                const Bytes data = fill(4096, static_cast<std::uint8_t>(s));
                if (!node.write(ctx.value(), 0, data).ok()) std::abort();
                node.unlock(ctx.value());
                kick(s);
              });
  };
  const Micros t0 = world.net().now();
  for (int s = 0; s < kStreams; ++s) kick(s);
  if (!world.pump_until([&] { return done == kStreams; }, 50'000'000)) {
    std::abort();
  }
  const Micros elapsed = std::max<Micros>(world.net().now() - t0, 1);
  const double total_ops =
      static_cast<double>(kStreams) * static_cast<double>(ops_per_stream);
  return {total_ops * 1e6 / static_cast<double>(elapsed), elapsed};
}

void lanes_sweep(bench::JsonReport& report) {
  const int kOps = 25;
  std::printf(
      "\nExecution-lane sweep: one paced server (service_us=50), 16\n"
      "closed-loop write streams ping-ponging ownership through it.\n"
      "Aggregate throughput should scale with lanes (virtual time).\n\n");
  table_header({"lanes", "aggregate ops/s", "elapsed ms", "vs 1 lane"});
  double base_tput = 0;
  for (unsigned lanes : {1u, 2u, 4u, 8u}) {
    const LanePoint p = run_lanes(lanes, kOps);
    if (lanes == 1) base_tput = p.ops_per_sec;
    cell(static_cast<std::uint64_t>(lanes));
    cell(p.ops_per_sec);
    cell(static_cast<double>(p.elapsed) / 1000.0);
    cell(base_tput > 0 ? p.ops_per_sec / base_tput : 0.0);
    endrow();
    const std::string key = "lanes" + std::to_string(lanes);
    report.metric(key + "_ops_per_sec", p.ops_per_sec);
    report.metric(key + "_elapsed_us", static_cast<double>(p.elapsed));
    if (lanes > 1 && base_tput > 0) {
      report.metric(key + "_speedup", p.ops_per_sec / base_tput);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  khz::bench::JsonReport report("lanes", argc, argv);
  report.meta("world", "sim");
  report.meta("workload", "closed-loop 16-stream write ping-pong, 1 server");
  report.meta("service_us", "50");
  title("GOAL-SCALE | bench_scalability",
        "Per-node write throughput as nodes are added (LAN links).\n"
        "disjoint = each node its own region; contended = one shared region.");

  const int kRounds = 40;
  std::printf(
      "\nEach round: every node issues one 4 KiB write concurrently;\n"
      "round time = virtual time until all N grants complete.\n\n");
  table_header({"nodes", "disjoint round", "disj msgs/op",
                "contended round", "cont msgs/op"});
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto d = run(n, kRounds, /*contended=*/false);
    const auto c = run(n, kRounds, /*contended=*/true);
    cell(static_cast<std::uint64_t>(n));
    cell(us(d.round_time));
    cell(d.msgs_per_op);
    cell(us(c.round_time));
    cell(c.msgs_per_op);
    endrow();
  }
  std::printf(
      "\nShape check vs paper: disjoint round time stays flat as nodes are\n"
      "added (all N writes proceed in parallel with ~0 msgs/op — the\n"
      "Section 2 scalability goal), while the contended round time grows\n"
      "~linearly with N: CREW serializes the writers through ownership\n"
      "hand-offs on the single shared region.\n");
  lanes_sweep(report);
  report.finish();
  return 0;
}
