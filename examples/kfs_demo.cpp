// KFS demo: the paper's wide-area distributed filesystem (Section 4.1).
//
// Five nodes across a simulated WAN share one filesystem. The filesystem
// code contains no distribution logic: instances on different nodes share
// the superblock, inodes, directories and file blocks purely through
// Khazana regions. A "hot" file created with min_replicas=3 stays readable
// after its home node crashes.
//
//   $ ./examples/kfs_demo
#include <cstdio>

#include "kfs/fs.h"

using namespace khz;        // NOLINT
using namespace khz::core;  // NOLINT
using namespace khz::kfs;   // NOLINT

namespace {
Bytes text(const std::string& s) {
  return Bytes(s.begin(), s.end());
}
std::string str(const Bytes& b) {
  return {b.begin(), b.end()};
}
}  // namespace

int main() {
  // Nodes 0-2 are "campus" (LAN); 3-4 are remote (WAN links).
  SimWorld world({.nodes = 5});
  world.net().set_link_pair(0, 3, net::LinkProfile::wan());
  world.net().set_link_pair(0, 4, net::LinkProfile::wan());
  world.net().set_link_pair(1, 3, net::LinkProfile::wan());
  world.net().set_link_pair(1, 4, net::LinkProfile::wan());
  world.net().set_link_pair(2, 3, net::LinkProfile::wan());
  world.net().set_link_pair(2, 4, net::LinkProfile::wan());

  SimClient creator(world, 0);
  auto super = FileSystem::mkfs(creator);
  if (!super) return 1;
  std::printf("mkfs done; superblock at %s\n",
              super.value().str().c_str());

  // Mount the same filesystem on every node — each mount needs only the
  // superblock address.
  std::vector<SimClient> clients;
  clients.reserve(5);
  for (NodeId n = 0; n < 5; ++n) clients.emplace_back(world, n);
  std::vector<FileSystem> mounts;
  for (NodeId n = 0; n < 5; ++n) {
    auto fs = FileSystem::mount(clients[n], super.value());
    if (!fs) return 1;
    mounts.push_back(std::move(fs.value()));
  }
  std::printf("mounted on all 5 nodes\n");

  // Node 0 builds a directory tree; node 4 (across the WAN) reads it.
  (void)mounts[0].mkdir("/projects");
  (void)mounts[0].mkdir("/projects/khazana");
  auto fh = mounts[0].create("/projects/khazana/README");
  (void)mounts[0].write(fh.value(), 0,
                  text("Khazana: a single globally shared store.\n"));

  auto remote = mounts[4].open("/projects/khazana/README");
  auto contents = mounts[4].read(remote.value(), 0, 4096);
  std::printf("node 4 reads README over the WAN: %s",
              str(contents.value()).c_str());

  // A hot config file with a replication requirement: Khazana keeps at
  // least 3 copies of its blocks.
  FileOptions hot;
  hot.attrs.min_replicas = 3;
  auto cfg = mounts[1].create("/projects/khazana/config", hot);
  (void)mounts[1].write(cfg.value(), 0, text("mode=distributed\n"));
  // Spread copies by touching it from several nodes, then give the
  // replica maintenance a moment.
  for (NodeId n : {2u, 3u}) {
    auto h = mounts[n].open("/projects/khazana/config");
    (void)mounts[n].read(h.value(), 0, 64);
  }
  world.pump_for(2'000'000);

  // Crash node 1 (the config file's home). The file stays available: the
  // minimum-replica machinery had pushed copies elsewhere.
  std::printf("crashing node 1 (home of /projects/khazana/config)...\n");
  world.net().set_node_up(1, false);
  auto h2 = mounts[2].open("/projects/khazana/config");
  if (h2) {
    auto data = mounts[2].read(h2.value(), 0, 64);
    if (data) {
      std::printf("node 2 still reads config after the crash: %s",
                  str(data.value()).c_str());
    } else {
      std::printf("read failed after crash: %s\n",
                  std::string(to_string(data.error())).c_str());
    }
  } else {
    std::printf("open failed after crash: %s\n",
                std::string(to_string(h2.error())).c_str());
  }

  // Directory listing still works from every surviving node.
  auto entries = mounts[3].readdir("/projects/khazana");
  if (entries) {
    std::printf("surviving node 3 lists /projects/khazana: ");
    for (const auto& e : entries.value()) std::printf("%s ", e.name.c_str());
    std::printf("\n");
  }
  return 0;
}
