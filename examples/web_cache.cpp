// Web-cache demo: the weak-consistency client class from Section 3.3.
//
// "We plan to experiment with even more relaxed models for applications
// such as web caches... Such applications typically can tolerate data that
// is temporarily out-of-date (i.e., one or two versions old) as long as
// they get fast response."
//
// A region of "cached pages" is created with the eventual-consistency
// protocol. An origin node republishes content while edge nodes serve
// reads with zero blocking; the demo measures how stale each edge read is
// and how quickly the gossip/anti-entropy traffic converges the replicas.
//
//   $ ./examples/web_cache
#include <cstdio>
#include <cstring>

#include "core/client.h"

using namespace khz;        // NOLINT
using namespace khz::core;  // NOLINT

namespace {
Bytes page_with_version(std::uint32_t version) {
  Bytes b(4096, 0);
  std::memcpy(b.data(), &version, sizeof(version));
  return b;
}
std::uint32_t version_of(const Bytes& b) {
  std::uint32_t v = 0;
  std::memcpy(&v, b.data(), sizeof(v));
  return v;
}
}  // namespace

int main() {
  SimWorld world({.nodes = 4});
  // Edge nodes are far from the origin.
  for (NodeId edge : {1u, 2u, 3u}) {
    world.net().set_link_pair(0, edge, net::LinkProfile::wan());
  }

  SimClient origin(world, 0);

  RegionAttrs attrs;
  attrs.level = ConsistencyLevel::kEventual;
  attrs.protocol = consistency::ProtocolId::kEventual;
  auto region = origin.create_region(4096, attrs);
  if (!region) return 1;
  const AddressRange page{region.value(), 4096};
  (void)origin.put(page, page_with_version(0));

  std::vector<SimClient> edges;
  for (NodeId n = 1; n < 4; ++n) edges.emplace_back(world, n);
  // Warm the edge caches.
  for (auto& e : edges) (void)e.get(page);

  std::printf("origin publishes new versions; edges keep serving:\n");
  for (std::uint32_t v = 1; v <= 5; ++v) {
    (void)origin.put(page, page_with_version(v));
    // Edges read immediately (fast response, possibly stale)...
    for (std::size_t i = 0; i < edges.size(); ++i) {
      auto r = edges[i].get(page);
      if (r) {
        std::printf("  v%u published: edge %zu sees v%u%s\n", v, i + 1,
                    version_of(r.value()),
                    version_of(r.value()) == v ? "" : "  (stale, serving on)");
      }
    }
    // ...and converge shortly after as gossip / anti-entropy arrives.
    world.pump_for(300'000);  // 300 ms of virtual time
    std::uint32_t converged = 0;
    for (auto& e : edges) {
      auto r = e.get(page);
      if (r && version_of(r.value()) == v) ++converged;
    }
    std::printf("  after 300 ms: %u/3 edges converged to v%u\n", converged, v);
  }

  std::printf("\nmessages per edge read are zero once cached — the region's\n"
              "eventual protocol grants read locks from the local replica\n"
              "without any network round trip.\n");
  return 0;
}
