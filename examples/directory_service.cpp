// Directory-service demo: one of the paper's motivating application
// classes ("Distributed directory services (Novell's NDS, Microsoft's
// Active Directory, ...)" — Section 1).
//
// A replicated name->record directory built directly on Khazana regions:
// a hash table of buckets, each bucket one region. Lookups are served from
// whatever node the client is attached to; updates go through Khazana
// write locks. With min_replicas=2 the directory keeps answering after a
// node crash. No directory-specific distribution code exists — it is the
// uniprocessor hash table plus Khazana lock/read/write calls, the paper's
// "uniprocessor applications ... made into distributed applications in a
// straightforward fashion".
//
//   $ ./examples/directory_service
#include <cstdio>
#include <map>
#include <string>

#include "core/client.h"

using namespace khz;        // NOLINT
using namespace khz::core;  // NOLINT

namespace {

constexpr std::uint32_t kBuckets = 16;
constexpr std::uint64_t kBucketBytes = 4096;

/// The whole directory is identified by the address of bucket 0 — like
/// mounting KFS by superblock address.
class DirectoryService {
 public:
  static Result<GlobalAddress> create(SyncClient& client) {
    RegionAttrs attrs;
    attrs.min_replicas = 2;  // stay available through one crash
    auto base = client.create_region(kBuckets * kBucketBytes, attrs);
    if (!base) return base;
    // Initialize every bucket as an empty record list.
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      Encoder e;
      e.u32(0);  // record count
      Bytes img = std::move(e).take();
      img.resize(kBucketBytes, 0);
      const Status s = client.put(
          {base.value().plus(b * kBucketBytes), kBucketBytes}, img);
      if (!s.ok()) return s.error();
    }
    return base;
  }

  DirectoryService(SyncClient& client, GlobalAddress base)
      : client_(&client), base_(base) {}

  Status put(const std::string& name, const std::string& value) {
    const AddressRange bucket = bucket_of(name);
    auto ctx = client_->lock(bucket, consistency::LockMode::kWrite);
    if (!ctx) return ctx.error();
    auto records = load(ctx.value());
    records[name] = value;
    const Status s = store(ctx.value(), records);
    client_->unlock(ctx.value());
    return s;
  }

  Result<std::string> get(const std::string& name) {
    const AddressRange bucket = bucket_of(name);
    auto ctx = client_->lock(bucket, consistency::LockMode::kRead);
    if (!ctx) return ctx.error();
    auto records = load(ctx.value());
    client_->unlock(ctx.value());
    auto it = records.find(name);
    if (it == records.end()) return ErrorCode::kNotFound;
    return it->second;
  }

 private:
  [[nodiscard]] AddressRange bucket_of(const std::string& name) const {
    std::uint32_t h = 2166136261u;
    for (char c : name) h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
    return {base_.plus((h % kBuckets) * kBucketBytes), kBucketBytes};
  }

  std::map<std::string, std::string> load(
      const consistency::LockContext& ctx) {
    std::map<std::string, std::string> out;
    auto raw = client_->read(ctx, 0, kBucketBytes);
    if (!raw) return out;
    Decoder d(raw.value());
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
      const std::string k = d.str();
      out[k] = d.str();
    }
    return out;
  }

  Status store(const consistency::LockContext& ctx,
               const std::map<std::string, std::string>& records) {
    Encoder e;
    e.u32(static_cast<std::uint32_t>(records.size()));
    for (const auto& [k, v] : records) {
      e.str(k);
      e.str(v);
    }
    if (e.size() > kBucketBytes) return ErrorCode::kNoSpace;
    Bytes img = std::move(e).take();
    img.resize(kBucketBytes, 0);
    return client_->write(ctx, 0, img);
  }

  SyncClient* client_;
  GlobalAddress base_;
};

}  // namespace

int main() {
  SimWorld world({.nodes = 4});
  SimClient admin(world, 1);

  auto base = DirectoryService::create(admin);
  if (!base) return 1;
  std::printf("directory created at %s (16 buckets, 2 replicas each)\n",
              base.value().str().c_str());

  // Populate from node 1.
  DirectoryService dir1(admin, base.value());
  (void)dir1.put("alice", "alice@cs.utah.edu");
  (void)dir1.put("bob", "bob@cs.utah.edu");
  (void)dir1.put("carol", "carol@cs.utah.edu");
  world.pump_for(2'000'000);

  // Query from every other node — each has its own service instance that
  // shares state only through Khazana.
  std::vector<SimClient> clients;
  for (NodeId n = 0; n < 4; ++n) clients.emplace_back(world, n);
  for (NodeId n = 0; n < 4; ++n) {
    DirectoryService dir(clients[n], base.value());
    auto v = dir.get("bob");
    std::printf("node %u resolves bob -> %s\n", n,
                v.ok() ? v.value().c_str() : "NOT FOUND");
  }

  // Update from node 3; read back from node 0 (strict consistency).
  DirectoryService dir3(clients[3], base.value());
  (void)dir3.put("bob", "bob@flux.utah.edu");
  DirectoryService dir0(clients[0], base.value());
  std::printf("after node 3's update, node 0 resolves bob -> %s\n",
              dir0.get("bob").value_or("NOT FOUND").c_str());

  // Crash the region's home node; the replicated directory keeps
  // answering reads.
  std::printf("crashing node 1 (the directory's home)...\n");
  world.net().set_node_up(1, false);
  auto v = dir0.get("alice");
  std::printf("node 0 still resolves alice -> %s\n",
              v.ok() ? v.value().c_str() : "NOT FOUND");
  return 0;
}
