// Distributed objects demo (paper, Section 4.2).
//
// A bank-account object type lives in Khazana regions. Clustered
// application instances on three nodes invoke methods on shared objects;
// the runtime transparently inserts Khazana locking and uses Khazana's
// location information to decide, per invocation, whether to replicate the
// object locally or ship the call to a node that already holds it.
//
//   $ ./examples/objects_demo
#include <cstdio>

#include "core/client.h"
#include "obj/runtime.h"

using namespace khz;        // NOLINT
using namespace khz::core;  // NOLINT
using namespace khz::obj;   // NOLINT

namespace {

ObjectType account_type() {
  ObjectType t;
  t.name = "account";
  t.methods["deposit"] = {
      [](Bytes& state, const Bytes& args) -> Result<Bytes> {
        Decoder sd(state);
        std::int64_t balance = sd.i64();
        Decoder ad(args);
        balance += ad.i64();
        Encoder ns;
        ns.i64(balance);
        state = ns.data();
        Encoder out;
        out.i64(balance);
        return std::move(out).take();
      },
      true};
  t.methods["withdraw"] = {
      [](Bytes& state, const Bytes& args) -> Result<Bytes> {
        Decoder sd(state);
        std::int64_t balance = sd.i64();
        Decoder ad(args);
        const std::int64_t amount = ad.i64();
        if (amount > balance) return ErrorCode::kConflict;  // overdraft
        balance -= amount;
        Encoder ns;
        ns.i64(balance);
        state = ns.data();
        Encoder out;
        out.i64(balance);
        return std::move(out).take();
      },
      true};
  t.methods["balance"] = {
      [](Bytes& state, const Bytes&) -> Result<Bytes> {
        Decoder sd(state);
        Encoder out;
        out.i64(sd.i64());
        return std::move(out).take();
      },
      false};
  return t;
}

Bytes i64(std::int64_t v) {
  Encoder e;
  e.i64(v);
  return std::move(e).take();
}

std::int64_t as_i64(const Bytes& b) {
  Decoder d(b);
  return d.i64();
}

}  // namespace

int main() {
  SimWorld world({.nodes = 3});
  std::vector<std::unique_ptr<ObjectRuntime>> runtimes;
  for (NodeId n = 0; n < 3; ++n) {
    runtimes.push_back(std::make_unique<ObjectRuntime>(world.node(n)));
    runtimes.back()->register_type(account_type());
  }

  auto run = [&](NodeId n, auto&& fn) {
    // Helper: run an async runtime call to completion on the simulator.
    bool done = false;
    fn(runtimes[n].get(), [&] { done = true; });
    world.pump_until([&] { return done; });
  };

  // Create a shared account object on node 0 with a strict-consistency
  // region and two replicas.
  RegionAttrs attrs;
  attrs.min_replicas = 2;
  ObjRef account;
  run(0, [&](ObjectRuntime* rt, auto done) {
    rt->create("account", i64(1000), 64, attrs, [&, done](Result<ObjRef> r) {
      if (r) account = r.value();
      done();
    });
  });
  std::printf("account object created at %s, balance 1000\n",
              account.addr.str().c_str());

  // Three bank branches (nodes) hammer the same account. Every invocation
  // runs under a Khazana write lock, so balances never interleave badly.
  std::int64_t last = 0;
  for (int round = 0; round < 3; ++round) {
    for (NodeId n = 0; n < 3; ++n) {
      run(n, [&](ObjectRuntime* rt, auto done) {
        rt->invoke(account, "deposit", i64(10 * (n + 1)),
                   InvokePolicy::kAuto, [&, done](Result<Bytes> r) {
                     if (r) last = as_i64(r.value());
                     done();
                   });
      });
    }
  }
  std::printf("after 3 rounds of deposits from 3 branches: balance %lld\n",
              static_cast<long long>(last));  // 1000 + 3*(10+20+30) = 1180

  // Overdraft protection is just object logic; the runtime returns the
  // method's error across the network like any other result.
  run(2, [&](ObjectRuntime* rt, auto done) {
    rt->invoke(account, "withdraw", i64(1'000'000), InvokePolicy::kAuto,
               [&, done](Result<Bytes> r) {
                 std::printf("huge withdrawal from node 2: %s\n",
                             r.ok() ? "accepted?!"
                                    : std::string(to_string(r.error())).c_str());
                 done();
               });
  });

  for (NodeId n = 0; n < 3; ++n) {
    const auto& s = runtimes[n]->stats();
    std::printf(
        "node %u runtime stats: local=%llu remote=%llu served-for-peers=%llu\n",
        n, static_cast<unsigned long long>(s.local_invokes),
        static_cast<unsigned long long>(s.remote_invokes),
        static_cast<unsigned long long>(s.remote_served));
  }
  return 0;
}
