// Quickstart: the core Khazana API in one file.
//
// Builds a 3-node Khazana deployment (on the deterministic network
// simulator), reserves and allocates a region of the 128-bit global
// address space from one node, writes to it, and reads the data back from
// a different node — no application-level message passing anywhere.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/client.h"

using namespace khz;           // NOLINT
using namespace khz::core;     // NOLINT

int main() {
  // A Khazana system is a set of cooperating peer daemons. Node 0 is the
  // genesis node (it bootstraps the address map) but is otherwise an
  // ordinary peer.
  SimWorld world({.nodes = 3});
  SimClient alice(world, 1);  // client library attached to node 1
  SimClient bob(world, 2);    // client library attached to node 2

  // 1. Reserve a region of global address space and allocate backing
  //    storage for it. Attributes choose the consistency protocol,
  //    replication factor, page size and access control.
  RegionAttrs attrs;
  attrs.level = ConsistencyLevel::kStrict;           // CREW protocol
  attrs.min_replicas = 2;                            // keep >= 2 copies
  auto region = alice.create_region(8192, attrs);
  if (!region) {
    std::printf("reserve/allocate failed: %s\n",
                std::string(to_string(region.error())).c_str());
    return 1;
  }
  const GlobalAddress base = region.value();
  std::printf("region reserved at %s (8 KiB, CREW, min 2 replicas)\n",
              base.str().c_str());

  // 2. Alice locks part of the region, writes, and unlocks. The lock is a
  //    statement of intent; the region's consistency manager decides when
  //    the grant is safe.
  auto wctx = alice.lock({base, 4096}, consistency::LockMode::kWrite);
  if (!wctx) return 1;
  const std::string message = "hello from node 1 via global memory";
  (void)alice.write(wctx.value(), 0,
              {reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()});
  alice.unlock(wctx.value());
  std::printf("node 1 wrote %zu bytes\n", message.size());

  // 3. Bob — a different process on a different node — reads the same
  //    global addresses. Khazana locates a copy, fetches it, and keeps it
  //    coherent; Bob never learns (or cares) where the data lives.
  auto rctx = bob.lock({base, 4096}, consistency::LockMode::kRead);
  if (!rctx) return 1;
  auto data = bob.read(rctx.value(), 0, message.size());
  bob.unlock(rctx.value());
  if (!data) return 1;
  std::printf("node 2 read:  \"%.*s\"\n",
              static_cast<int>(data.value().size()),
              reinterpret_cast<const char*>(data.value().data()));

  // 4. Where does the data physically live right now? Applications can
  //    ask (Section 4.2 uses this for the replicate-vs-RPC decision).
  auto holders = bob.locate(base);
  if (holders) {
    std::printf("copies currently on nodes: ");
    for (NodeId n : holders.value()) std::printf("%u ", n);
    std::printf("\n");
  }

  const auto& stats = world.net().stats();
  std::printf("total messages exchanged: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.bytes_sent));

  // 5. Observability: every node keeps a metrics registry (counters +
  //    latency histograms) and a causal trace of its operations. Dump
  //    node 2's metrics, and export the whole run as a Chrome trace —
  //    open quickstart_trace.json in chrome://tracing or ui.perfetto.dev
  //    to see Bob's lock() fan out across the cluster.
  std::printf("\nnode 2 metrics:\n%s", world.metrics_text(2).c_str());
  const std::string trace = world.trace_json();
  if (std::FILE* f = std::fopen("quickstart_trace.json", "w")) {
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("\nwrote quickstart_trace.json (%zu bytes of trace events)\n",
                trace.size());
  }
  return 0;
}
