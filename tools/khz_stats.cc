// khz_stats: scrape a live Khazana TCP deployment's telemetry.
//
// The tool joins the deployment's port arithmetic as one extra TcpBus
// endpoint (default node id 240, listening on base_port + 240), sends a
// kStatsReq to every node and renders the cluster: a top-like text table
// (counters and gauges per node plus the cluster total, histograms as the
// bucket-exact rollup) or, with --json, one machine-readable object on
// stdout (logs go to stderr, so stdout stays pure JSON for pipelines).
//
// No daemon-side support beyond the normal stats scrape path is needed:
// responses route back by the same base_port + id arithmetic the nodes use
// among themselves, and the scrape rides the protocol admission class, so
// it works exactly when it matters most — against an overloaded node.
//
// --demo spins up an in-process TcpWorld on --port, runs a small workload
// and then scrapes it through the real external path (used by the CI
// smoke).
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/node.h"
#include "core/tcp_world.h"
#include "net/tcp_transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace {

using khz::Bytes;
using khz::Decoder;
using khz::Encoder;
using khz::ErrorCode;
using khz::Micros;
using khz::NodeId;

struct Options {
  std::uint16_t port = 39000;
  std::size_t nodes = 3;
  NodeId scraper_id = 240;
  Micros timeout_us = 2'000'000;
  bool json = false;
  bool dossiers = false;
  bool series = false;
  bool demo = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port P] [--nodes N] [--json] [--dossiers] [--series]\n"
      "          [--scraper-id ID] [--timeout-ms T] [--demo]\n"
      "\n"
      "Scrapes the Khazana deployment on 127.0.0.1 ports [P, P+N) and\n"
      "prints a cluster rollup. --json emits one JSON object on stdout;\n"
      "--dossiers / --series include the slow-op flight recorder and the\n"
      "self-sampled time series. --demo runs an in-process 3-node TCP\n"
      "deployment first and scrapes that.\n",
      argv0);
}

/// A non-Node endpoint on the deployment's TcpBus: sends kStatsReq frames
/// and correlates kStatsResp replies by rpc_id.
class Scraper {
 public:
  Scraper(std::uint16_t base_port, NodeId id)
      : bus_(base_port), ep_(bus_.add_node(id)) {
    ep_.set_handler([this](khz::net::Message m) {
      std::lock_guard lk(mu_);
      responses_[m.rpc_id] = std::move(m);
      cv_.notify_all();
    });
  }

  std::optional<khz::core::Node::RemoteStats> scrape(NodeId peer,
                                                     std::uint8_t flags,
                                                     Micros timeout_us) {
    const khz::RpcId rpc_id = next_rpc_id_++;
    khz::net::Message req;
    req.type = khz::net::MsgType::kStatsReq;
    req.dst = peer;
    req.rpc_id = rpc_id;
    Encoder e;
    e.u8(flags);
    req.payload = std::move(e).take();
    ep_.send(std::move(req));

    std::unique_lock lk(mu_);
    if (!cv_.wait_for(lk, std::chrono::microseconds(timeout_us),
                      [&] { return responses_.contains(rpc_id); })) {
      return std::nullopt;
    }
    khz::net::Message resp = std::move(responses_[rpc_id]);
    responses_.erase(rpc_id);
    lk.unlock();

    Decoder d(resp.payload);
    khz::core::Node::RemoteStats rs;
    if (khz::core::Node::decode_stats_payload(d, rs) != ErrorCode::kOk) {
      return std::nullopt;
    }
    return rs;
  }

 private:
  khz::net::TcpBus bus_;
  khz::net::TcpTransport& ep_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<khz::RpcId, khz::net::Message> responses_;
  khz::RpcId next_rpc_id_ = 1;
};

using Scraped = std::vector<std::pair<NodeId, khz::core::Node::RemoteStats>>;

void print_table(const Options& opts, const Scraped& nodes,
                 const khz::obs::MetricsSnapshot& cluster) {
  std::printf("khz_stats: %zu/%zu nodes @ 127.0.0.1:%u\n\n", nodes.size(),
              opts.nodes, opts.port);

  std::printf("%-40s %14s", "COUNTER", "total");
  for (const auto& [id, _] : nodes) std::printf(" %11s%u", "n", id);
  std::printf("\n");
  for (const auto& [name, total] : cluster.counters) {
    std::printf("%-40s %14" PRIu64, name.c_str(), total);
    for (const auto& [id, rs] : nodes) {
      const auto it = rs.snapshot.counters.find(name);
      std::printf(" %12" PRIu64,
                  it != rs.snapshot.counters.end() ? it->second : 0);
    }
    std::printf("\n");
  }

  if (!cluster.gauges.empty()) {
    std::printf("\n%-40s %14s", "GAUGE", "total");
    for (const auto& [id, _] : nodes) std::printf(" %11s%u", "n", id);
    std::printf("\n");
    for (const auto& [name, total] : cluster.gauges) {
      std::printf("%-40s %14" PRId64, name.c_str(), total);
      for (const auto& [id, rs] : nodes) {
        const auto it = rs.snapshot.gauges.find(name);
        std::printf(" %12" PRId64,
                    it != rs.snapshot.gauges.end() ? it->second : 0);
      }
      std::printf("\n");
    }
  }

  std::printf("\n%-40s %10s %10s %10s %10s %10s %10s\n", "HISTOGRAM (rollup)",
              "count", "mean", "p50", "p95", "p99", "max");
  for (const auto& [name, h] : cluster.histograms) {
    std::printf("%-40s %10" PRIu64 " %10.1f %10.0f %10.0f %10.0f %10" PRIu64
                "\n",
                name.c_str(), h.count, h.mean(), h.percentile(50),
                h.percentile(95), h.percentile(99), h.max);
  }

  if (opts.dossiers) {
    for (const auto& [id, rs] : nodes) {
      std::printf("\nnode %u slow-op dossiers (%zu, %" PRIu64 " dropped):\n",
                  id, rs.dossiers.size(), rs.dossiers_dropped);
      for (const auto& od : rs.dossiers) {
        std::printf("  %s\n", od.to_json().c_str());
      }
    }
  }
  if (opts.series) {
    for (const auto& [id, rs] : nodes) {
      std::printf("\nnode %u time series: %zu samples, %" PRIu64 " dropped\n",
                  id, rs.series.size(), rs.series_dropped);
    }
  }
}

void print_json(const Options& opts, const Scraped& nodes,
                const khz::obs::MetricsSnapshot& cluster) {
  std::string out = "{\"port\":" + std::to_string(opts.port) +
                    ",\"scraped\":" + std::to_string(nodes.size()) +
                    ",\"cluster\":" + cluster.to_json() + ",\"nodes\":{";
  bool first = true;
  for (const auto& [id, rs] : nodes) {
    if (!first) out += ',';
    first = false;
    out += '"' + std::to_string(id) + "\":" + rs.snapshot.to_json();
  }
  out += '}';
  if (opts.dossiers) {
    out += ",\"dossiers\":{";
    first = true;
    for (const auto& [id, rs] : nodes) {
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(id) +
             "\":" + khz::obs::dossiers_json(rs.dossiers);
    }
    out += '}';
  }
  if (opts.series) {
    out += ",\"series\":{";
    first = true;
    for (const auto& [id, rs] : nodes) {
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(id) + "\":[";
      bool s_first = true;
      for (const auto& s : rs.series) {
        if (!s_first) out += ',';
        s_first = false;
        out += "{\"at\":" + std::to_string(s.at) +
               ",\"delta\":" + s.delta.to_json() + '}';
      }
      out += ']';
    }
    out += '}';
  }
  out += "}\n";
  std::fputs(out.c_str(), stdout);
}

/// --demo: a small in-process deployment with enough traffic that every
/// section of the scrape has content (slow-op threshold of 1us makes every
/// op cut a dossier).
void run_demo_workload(khz::core::TcpWorld& world) {
  khz::core::TcpClient client(world, 1);
  khz::core::RegionAttrs attrs;
  auto base = client.reserve(4 * khz::kDefaultPageSize, attrs);
  if (!base.ok()) {
    std::fprintf(stderr, "khz_stats: demo reserve failed\n");
    return;
  }
  const khz::AddressRange range{base.value(), 4 * khz::kDefaultPageSize};
  if (!client.allocate(range).ok()) return;
  const Bytes payload(512, 0xA5);
  for (int i = 0; i < 4; ++i) {
    auto ctx = client.lock({range.base, 512}, khz::consistency::LockMode::kWrite);
    if (!ctx.ok()) continue;
    (void)client.write(ctx.value(), 0, payload);
    client.unlock(ctx.value());
    (void)client.getattr(base.value());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--scraper-id") {
      opts.scraper_id = static_cast<NodeId>(std::atoi(next()));
    } else if (arg == "--timeout-ms") {
      opts.timeout_us = static_cast<Micros>(std::atoll(next())) * 1000;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--dossiers") {
      opts.dossiers = true;
    } else if (arg == "--series") {
      opts.series = true;
    } else if (arg == "--demo") {
      opts.demo = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (opts.scraper_id < opts.nodes) {
    std::fprintf(stderr,
                 "khz_stats: --scraper-id must be outside [0, nodes)\n");
    return 2;
  }

  std::unique_ptr<khz::core::TcpWorld> demo;
  if (opts.demo) {
    khz::core::TcpWorldOptions wopts;
    wopts.nodes = opts.nodes;
    wopts.base_port = opts.port;
    wopts.slow_op_threshold_us = 1;  // every op is "slow": dossiers flow
    wopts.stats_sample_interval = 20'000;
    demo = std::make_unique<khz::core::TcpWorld>(wopts);
    run_demo_workload(*demo);
    // Let a few self-sampler ticks land so --series has content.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }

  std::uint8_t flags = 0;
  if (opts.series) flags |= khz::core::Node::kScrapeSeries;
  if (opts.dossiers) flags |= khz::core::Node::kScrapeDossiers;

  Scraper scraper(opts.port, opts.scraper_id);
  Scraped nodes;
  khz::obs::MetricsSnapshot cluster;
  for (std::size_t i = 0; i < opts.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    auto rs = scraper.scrape(id, flags, opts.timeout_us);
    if (!rs.has_value()) {
      std::fprintf(stderr, "khz_stats: node %u did not answer\n", id);
      continue;
    }
    cluster.merge(rs->snapshot);
    nodes.emplace_back(id, std::move(*rs));
  }
  if (nodes.empty()) {
    std::fprintf(stderr, "khz_stats: no node answered on 127.0.0.1:%u\n",
                 opts.port);
    return 1;
  }

  if (opts.json) {
    print_json(opts, nodes, cluster);
  } else {
    print_table(opts, nodes, cluster);
  }
  return 0;
}
