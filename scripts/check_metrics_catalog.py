#!/usr/bin/env python3
"""Lint the metric catalogue in docs/observability.md against src/.

The catalogue's first column holds fnmatch globs over full instrument
names. This script extracts every literal registration —
counter("...") / gauge("...") / histogram("...") — from src/ and checks
both directions:

  * every registered instrument matches at least one catalogue glob
    (no undocumented metrics), and
  * every catalogue glob matches at least one registered instrument
    (no stale catalogue rows).

Only literal string names are checked: names assembled at runtime (e.g.
the per-LockMode "op.lock.<mode>_us" family) are registered through a
literal prefix elsewhere or covered by a glob that also matches a
literal sibling. Exit status: 0 when the catalogue is exact, 1 otherwise.
"""

import fnmatch
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC = ROOT / "docs" / "observability.md"
CATALOG_HEADING = "## Metric catalogue"

REGISTRATION_RE = re.compile(r'\b(?:counter|gauge|histogram)\("([^"]+)"\)')
GLOB_RE = re.compile(r"`([^`]+)`")


def source_names() -> dict[str, list[str]]:
    """instrument name -> files registering it, for every literal in src/."""
    names: dict[str, list[str]] = {}
    for path in sorted((ROOT / "src").rglob("*.cc")) + sorted(
        (ROOT / "src").rglob("*.h")
    ):
        for name in REGISTRATION_RE.findall(path.read_text()):
            names.setdefault(name, []).append(str(path.relative_to(ROOT)))
    return names


def catalog_globs() -> list[str]:
    """Backticked globs from the first column of the catalogue table."""
    text = DOC.read_text()
    if CATALOG_HEADING not in text:
        sys.exit(f"{DOC}: missing '{CATALOG_HEADING}' section")
    section = text.split(CATALOG_HEADING, 1)[1].split("\n## ", 1)[0]
    globs: list[str] = []
    for line in section.splitlines():
        if not line.startswith("|"):
            continue
        first_cell = line.split("|")[1]
        if set(first_cell.strip()) <= {"-", " "} or "name" == first_cell.strip():
            continue  # header / separator rows
        globs.extend(GLOB_RE.findall(first_cell))
    return globs


def main() -> int:
    names = source_names()
    globs = catalog_globs()
    if not names or not globs:
        print("check_metrics_catalog: found nothing to check", file=sys.stderr)
        return 1

    failures = []
    for name, files in sorted(names.items()):
        if not any(fnmatch.fnmatchcase(name, g) for g in globs):
            failures.append(
                f"undocumented instrument '{name}' (registered in "
                f"{files[0]}): add it to the catalogue in {DOC.name}"
            )
    for g in globs:
        if not any(fnmatch.fnmatchcase(name, g) for name in names):
            failures.append(
                f"stale catalogue glob '{g}' in {DOC.name}: matches no "
                "registration in src/"
            )

    for f in failures:
        print(f"check_metrics_catalog: {f}", file=sys.stderr)
    if not failures:
        print(
            f"check_metrics_catalog: {len(names)} instruments covered by "
            f"{len(globs)} catalogue globs"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
