#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans the given markdown files (or, with no arguments, every *.md in the
repository root plus docs/) for inline links `[text](target)` and image
links, and fails if a relative target does not exist on disk. External
links (http/https/mailto) and pure in-page anchors (#...) are skipped —
this is a structural check, not a liveness check, so it needs no network
and no third-party packages.

Exit status: 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions `[id]: target` are rare in this repo and intentionally not
# checked. Targets containing spaces are not used here either.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def candidate_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.glob("*.md"))
    return files


def check_file(md: Path, root: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Drop a trailing #anchor; the file part must still exist.
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(root)}:{lineno}: broken link "
                    f"'{target}' -> {resolved}"
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    files = [Path(a).resolve() for a in argv[1:]] or candidate_files(root)
    all_errors = []
    for md in files:
        all_errors += check_file(md, root)
    for err in all_errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken link(s)'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
