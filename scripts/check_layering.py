#!/usr/bin/env python3
"""Enforce the src/ include DAG (docs/architecture.md).

Layers, lowest first:

    common  ->  obs  ->  net / storage  ->  consistency  ->  core  ->  kfs / obj

Each layer may include itself and the layers listed for it below; any
other `#include "layer/..."` is a back-edge (e.g. consistency including
core — the CmHost bridge exists precisely so protocols never see Node)
and fails the build. Parses quoted includes only: system/third-party
headers in angle brackets are not layering edges.

Exit status: 0 when the DAG holds, 1 otherwise.
"""

import re
import sys
from pathlib import Path

# layer -> layers it may include (itself is always allowed).
ALLOWED = {
    "common": set(),
    "obs": {"common"},
    "net": {"common", "obs"},
    "storage": {"common", "obs"},
    "consistency": {"common", "obs", "net", "storage"},
    "core": {"common", "obs", "net", "storage", "consistency"},
    # The application layers sit on top of core but must stay independent
    # of each other.
    "kfs": {"common", "obs", "net", "storage", "consistency", "core"},
    "obj": {"common", "obs", "net", "storage", "consistency", "core"},
}

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"/]+)/[^"]+"')


def main() -> int:
    src = Path(__file__).resolve().parent.parent / "src"
    violations = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        layer = path.relative_to(src).parts[0]
        if layer not in ALLOWED:
            violations.append(f"{path}: unknown layer '{layer}'")
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if target == layer or target in ALLOWED[layer]:
                continue
            rel = path.relative_to(src.parent)
            violations.append(
                f"{rel}:{lineno}: layer '{layer}' may not include "
                f"'{target}/' ({line.strip()})"
            )
    if violations:
        print("include-DAG violations:")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"layering OK ({len(ALLOWED)} layers, no back-edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
