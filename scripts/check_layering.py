#!/usr/bin/env python3
"""Enforce the src/ include DAG (docs/architecture.md).

Layers, lowest first:

    common -> obs -> net / storage -> consistency -> location -> core -> kfs / obj

Each layer may include itself and the layers listed for it below; any
other `#include "layer/..."` is a back-edge (e.g. consistency including
core — the CmHost bridge exists precisely so protocols never see Node)
and fails the build. Parses quoted includes only: system/third-party
headers in angle brackets are not layering edges.

The lane primitives follow the same DAG: `common/lane.h` (lane tags,
lane_of hashing) sits at the bottom so net/ and core/ both use it, and
`core/lane_set.h` (per-lane telemetry) rides on obs like any other core
header.

Also enforces the src/core translation-unit size cap: node.cc was split
into one-subsystem TUs (ops / queries / handlers / migrate / failover /
telemetry / meta) and no src/core/*.cc may regress past MAX_CORE_TU_LINES
lines — growth belongs in a new focused TU, not back into a god file.

Exit status: 0 when the DAG holds and the cap is respected, 1 otherwise.
"""

import re
import sys
from pathlib import Path

# Hard ceiling for any single translation unit under src/core/.
MAX_CORE_TU_LINES = 800

# layer -> layers it may include (itself is always allowed).
ALLOWED = {
    "common": set(),
    "obs": {"common"},
    "net": {"common", "obs"},
    "storage": {"common", "obs"},
    "consistency": {"common", "obs", "net", "storage"},
    # The location subsystem (fabric / resolver / address map) sits under
    # core: it sees protocols (region descriptors carry a ProtocolId) but
    # never the Node — the Fabric::Host bridge keeps that edge out.
    "location": {"common", "obs", "net", "storage", "consistency"},
    "core": {"common", "obs", "net", "storage", "consistency", "location"},
    # The application layers sit on top of core but must stay independent
    # of each other.
    "kfs": {"common", "obs", "net", "storage", "consistency", "location",
            "core"},
    "obj": {"common", "obs", "net", "storage", "consistency", "location",
            "core"},
}

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"/]+)/[^"]+"')


def main() -> int:
    src = Path(__file__).resolve().parent.parent / "src"
    violations = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        layer = path.relative_to(src).parts[0]
        if layer not in ALLOWED:
            violations.append(f"{path}: unknown layer '{layer}'")
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if target == layer or target in ALLOWED[layer]:
                continue
            rel = path.relative_to(src.parent)
            violations.append(
                f"{rel}:{lineno}: layer '{layer}' may not include "
                f"'{target}/' ({line.strip()})"
            )
    for path in sorted((src / "core").glob("*.cc")):
        lines = len(path.read_text(encoding="utf-8").splitlines())
        if lines > MAX_CORE_TU_LINES:
            violations.append(
                f"{path.relative_to(src.parent)}: {lines} lines exceeds the "
                f"{MAX_CORE_TU_LINES}-line src/core TU cap — split a "
                f"subsystem into its own TU"
            )
    if violations:
        print("include-DAG violations:")
        for v in violations:
            print(f"  {v}")
        return 1
    print(
        f"layering OK ({len(ALLOWED)} layers, no back-edges; "
        f"src/core TUs within {MAX_CORE_TU_LINES} lines)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
