# Empty dependencies file for kfs_test.
# This may be replaced when dependencies are built.
