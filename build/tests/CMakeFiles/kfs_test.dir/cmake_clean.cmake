file(REMOVE_RECURSE
  "CMakeFiles/kfs_test.dir/kfs_test.cc.o"
  "CMakeFiles/kfs_test.dir/kfs_test.cc.o.d"
  "kfs_test"
  "kfs_test.pdb"
  "kfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
