# Empty compiler generated dependencies file for cm_unit_test.
# This may be replaced when dependencies are built.
