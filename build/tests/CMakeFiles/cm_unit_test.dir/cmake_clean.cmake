file(REMOVE_RECURSE
  "CMakeFiles/cm_unit_test.dir/cm_unit_test.cc.o"
  "CMakeFiles/cm_unit_test.dir/cm_unit_test.cc.o.d"
  "cm_unit_test"
  "cm_unit_test.pdb"
  "cm_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
