file(REMOVE_RECURSE
  "CMakeFiles/node_ops_test.dir/node_ops_test.cc.o"
  "CMakeFiles/node_ops_test.dir/node_ops_test.cc.o.d"
  "node_ops_test"
  "node_ops_test.pdb"
  "node_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
