# Empty compiler generated dependencies file for integration_tcp_test.
# This may be replaced when dependencies are built.
