# Empty compiler generated dependencies file for plugin_protocol_test.
# This may be replaced when dependencies are built.
