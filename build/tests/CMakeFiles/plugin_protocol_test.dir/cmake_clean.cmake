file(REMOVE_RECURSE
  "CMakeFiles/plugin_protocol_test.dir/plugin_protocol_test.cc.o"
  "CMakeFiles/plugin_protocol_test.dir/plugin_protocol_test.cc.o.d"
  "plugin_protocol_test"
  "plugin_protocol_test.pdb"
  "plugin_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
