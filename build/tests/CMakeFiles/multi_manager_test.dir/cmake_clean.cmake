file(REMOVE_RECURSE
  "CMakeFiles/multi_manager_test.dir/multi_manager_test.cc.o"
  "CMakeFiles/multi_manager_test.dir/multi_manager_test.cc.o.d"
  "multi_manager_test"
  "multi_manager_test.pdb"
  "multi_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
