
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multi_manager_test.cc" "tests/CMakeFiles/multi_manager_test.dir/multi_manager_test.cc.o" "gcc" "tests/CMakeFiles/multi_manager_test.dir/multi_manager_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/khz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kfs/CMakeFiles/khz_kfs.dir/DependInfo.cmake"
  "/root/repo/build/src/obj/CMakeFiles/khz_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/khz_net.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/khz_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/khz_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/khz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
