# Empty dependencies file for multi_manager_test.
# This may be replaced when dependencies are built.
