# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/address_map_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/cm_unit_test[1]_include.cmake")
include("/root/repo/build/tests/core_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/lookup_test[1]_include.cmake")
include("/root/repo/build/tests/node_ops_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/multi_manager_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/plugin_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/kfs_test[1]_include.cmake")
include("/root/repo/build/tests/obj_test[1]_include.cmake")
include("/root/repo/build/tests/integration_tcp_test[1]_include.cmake")
