# Empty compiler generated dependencies file for bench_location.
# This may be replaced when dependencies are built.
