file(REMOVE_RECURSE
  "CMakeFiles/bench_tcp.dir/bench_tcp.cc.o"
  "CMakeFiles/bench_tcp.dir/bench_tcp.cc.o.d"
  "bench_tcp"
  "bench_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
