file(REMOVE_RECURSE
  "CMakeFiles/bench_objects.dir/bench_objects.cc.o"
  "CMakeFiles/bench_objects.dir/bench_objects.cc.o.d"
  "bench_objects"
  "bench_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
