file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lockfetch.dir/bench_fig2_lockfetch.cc.o"
  "CMakeFiles/bench_fig2_lockfetch.dir/bench_fig2_lockfetch.cc.o.d"
  "bench_fig2_lockfetch"
  "bench_fig2_lockfetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lockfetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
