# Empty dependencies file for bench_fig2_lockfetch.
# This may be replaced when dependencies are built.
