file(REMOVE_RECURSE
  "CMakeFiles/bench_kfs.dir/bench_kfs.cc.o"
  "CMakeFiles/bench_kfs.dir/bench_kfs.cc.o.d"
  "bench_kfs"
  "bench_kfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
