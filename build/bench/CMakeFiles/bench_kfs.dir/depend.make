# Empty dependencies file for bench_kfs.
# This may be replaced when dependencies are built.
