file(REMOVE_RECURSE
  "CMakeFiles/bench_pagesize.dir/bench_pagesize.cc.o"
  "CMakeFiles/bench_pagesize.dir/bench_pagesize.cc.o.d"
  "bench_pagesize"
  "bench_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
