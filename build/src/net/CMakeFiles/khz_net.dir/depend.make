# Empty dependencies file for khz_net.
# This may be replaced when dependencies are built.
