file(REMOVE_RECURSE
  "libkhz_net.a"
)
