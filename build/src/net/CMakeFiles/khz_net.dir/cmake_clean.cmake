file(REMOVE_RECURSE
  "CMakeFiles/khz_net.dir/message.cc.o"
  "CMakeFiles/khz_net.dir/message.cc.o.d"
  "CMakeFiles/khz_net.dir/sim_network.cc.o"
  "CMakeFiles/khz_net.dir/sim_network.cc.o.d"
  "CMakeFiles/khz_net.dir/tcp_transport.cc.o"
  "CMakeFiles/khz_net.dir/tcp_transport.cc.o.d"
  "libkhz_net.a"
  "libkhz_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khz_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
