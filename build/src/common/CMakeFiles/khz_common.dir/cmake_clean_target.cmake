file(REMOVE_RECURSE
  "libkhz_common.a"
)
