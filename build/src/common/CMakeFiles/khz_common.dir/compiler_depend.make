# Empty compiler generated dependencies file for khz_common.
# This may be replaced when dependencies are built.
