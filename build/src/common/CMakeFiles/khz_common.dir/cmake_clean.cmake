file(REMOVE_RECURSE
  "CMakeFiles/khz_common.dir/global_address.cc.o"
  "CMakeFiles/khz_common.dir/global_address.cc.o.d"
  "CMakeFiles/khz_common.dir/log.cc.o"
  "CMakeFiles/khz_common.dir/log.cc.o.d"
  "CMakeFiles/khz_common.dir/serialize.cc.o"
  "CMakeFiles/khz_common.dir/serialize.cc.o.d"
  "libkhz_common.a"
  "libkhz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
