file(REMOVE_RECURSE
  "CMakeFiles/khz_consistency.dir/cm.cc.o"
  "CMakeFiles/khz_consistency.dir/cm.cc.o.d"
  "CMakeFiles/khz_consistency.dir/crew.cc.o"
  "CMakeFiles/khz_consistency.dir/crew.cc.o.d"
  "CMakeFiles/khz_consistency.dir/eventual.cc.o"
  "CMakeFiles/khz_consistency.dir/eventual.cc.o.d"
  "CMakeFiles/khz_consistency.dir/release.cc.o"
  "CMakeFiles/khz_consistency.dir/release.cc.o.d"
  "libkhz_consistency.a"
  "libkhz_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khz_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
