
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consistency/cm.cc" "src/consistency/CMakeFiles/khz_consistency.dir/cm.cc.o" "gcc" "src/consistency/CMakeFiles/khz_consistency.dir/cm.cc.o.d"
  "/root/repo/src/consistency/crew.cc" "src/consistency/CMakeFiles/khz_consistency.dir/crew.cc.o" "gcc" "src/consistency/CMakeFiles/khz_consistency.dir/crew.cc.o.d"
  "/root/repo/src/consistency/eventual.cc" "src/consistency/CMakeFiles/khz_consistency.dir/eventual.cc.o" "gcc" "src/consistency/CMakeFiles/khz_consistency.dir/eventual.cc.o.d"
  "/root/repo/src/consistency/release.cc" "src/consistency/CMakeFiles/khz_consistency.dir/release.cc.o" "gcc" "src/consistency/CMakeFiles/khz_consistency.dir/release.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/khz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/khz_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
