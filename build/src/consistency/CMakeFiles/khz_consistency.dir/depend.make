# Empty dependencies file for khz_consistency.
# This may be replaced when dependencies are built.
