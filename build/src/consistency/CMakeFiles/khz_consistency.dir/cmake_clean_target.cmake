file(REMOVE_RECURSE
  "libkhz_consistency.a"
)
