file(REMOVE_RECURSE
  "libkhz_obj.a"
)
