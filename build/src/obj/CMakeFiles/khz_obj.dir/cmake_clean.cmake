file(REMOVE_RECURSE
  "CMakeFiles/khz_obj.dir/runtime.cc.o"
  "CMakeFiles/khz_obj.dir/runtime.cc.o.d"
  "libkhz_obj.a"
  "libkhz_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khz_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
