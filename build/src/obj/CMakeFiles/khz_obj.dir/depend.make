# Empty dependencies file for khz_obj.
# This may be replaced when dependencies are built.
