# Empty compiler generated dependencies file for khz_core.
# This may be replaced when dependencies are built.
