file(REMOVE_RECURSE
  "libkhz_core.a"
)
