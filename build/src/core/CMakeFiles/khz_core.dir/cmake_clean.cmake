file(REMOVE_RECURSE
  "CMakeFiles/khz_core.dir/address_map.cc.o"
  "CMakeFiles/khz_core.dir/address_map.cc.o.d"
  "CMakeFiles/khz_core.dir/cluster.cc.o"
  "CMakeFiles/khz_core.dir/cluster.cc.o.d"
  "CMakeFiles/khz_core.dir/node.cc.o"
  "CMakeFiles/khz_core.dir/node.cc.o.d"
  "CMakeFiles/khz_core.dir/node_handlers.cc.o"
  "CMakeFiles/khz_core.dir/node_handlers.cc.o.d"
  "CMakeFiles/khz_core.dir/node_ops.cc.o"
  "CMakeFiles/khz_core.dir/node_ops.cc.o.d"
  "CMakeFiles/khz_core.dir/region.cc.o"
  "CMakeFiles/khz_core.dir/region.cc.o.d"
  "CMakeFiles/khz_core.dir/region_directory.cc.o"
  "CMakeFiles/khz_core.dir/region_directory.cc.o.d"
  "CMakeFiles/khz_core.dir/sim_world.cc.o"
  "CMakeFiles/khz_core.dir/sim_world.cc.o.d"
  "CMakeFiles/khz_core.dir/tcp_world.cc.o"
  "CMakeFiles/khz_core.dir/tcp_world.cc.o.d"
  "libkhz_core.a"
  "libkhz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
