
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_map.cc" "src/core/CMakeFiles/khz_core.dir/address_map.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/address_map.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/khz_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/khz_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/node.cc.o.d"
  "/root/repo/src/core/node_handlers.cc" "src/core/CMakeFiles/khz_core.dir/node_handlers.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/node_handlers.cc.o.d"
  "/root/repo/src/core/node_ops.cc" "src/core/CMakeFiles/khz_core.dir/node_ops.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/node_ops.cc.o.d"
  "/root/repo/src/core/region.cc" "src/core/CMakeFiles/khz_core.dir/region.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/region.cc.o.d"
  "/root/repo/src/core/region_directory.cc" "src/core/CMakeFiles/khz_core.dir/region_directory.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/region_directory.cc.o.d"
  "/root/repo/src/core/sim_world.cc" "src/core/CMakeFiles/khz_core.dir/sim_world.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/sim_world.cc.o.d"
  "/root/repo/src/core/tcp_world.cc" "src/core/CMakeFiles/khz_core.dir/tcp_world.cc.o" "gcc" "src/core/CMakeFiles/khz_core.dir/tcp_world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/khz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/khz_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/khz_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/khz_consistency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
