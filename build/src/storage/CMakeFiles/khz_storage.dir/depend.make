# Empty dependencies file for khz_storage.
# This may be replaced when dependencies are built.
