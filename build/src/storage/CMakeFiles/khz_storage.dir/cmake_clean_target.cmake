file(REMOVE_RECURSE
  "libkhz_storage.a"
)
