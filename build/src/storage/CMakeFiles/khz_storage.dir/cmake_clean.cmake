file(REMOVE_RECURSE
  "CMakeFiles/khz_storage.dir/disk_store.cc.o"
  "CMakeFiles/khz_storage.dir/disk_store.cc.o.d"
  "CMakeFiles/khz_storage.dir/hierarchy.cc.o"
  "CMakeFiles/khz_storage.dir/hierarchy.cc.o.d"
  "CMakeFiles/khz_storage.dir/memory_store.cc.o"
  "CMakeFiles/khz_storage.dir/memory_store.cc.o.d"
  "CMakeFiles/khz_storage.dir/page_directory.cc.o"
  "CMakeFiles/khz_storage.dir/page_directory.cc.o.d"
  "libkhz_storage.a"
  "libkhz_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khz_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
