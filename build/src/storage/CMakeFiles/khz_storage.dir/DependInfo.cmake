
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_store.cc" "src/storage/CMakeFiles/khz_storage.dir/disk_store.cc.o" "gcc" "src/storage/CMakeFiles/khz_storage.dir/disk_store.cc.o.d"
  "/root/repo/src/storage/hierarchy.cc" "src/storage/CMakeFiles/khz_storage.dir/hierarchy.cc.o" "gcc" "src/storage/CMakeFiles/khz_storage.dir/hierarchy.cc.o.d"
  "/root/repo/src/storage/memory_store.cc" "src/storage/CMakeFiles/khz_storage.dir/memory_store.cc.o" "gcc" "src/storage/CMakeFiles/khz_storage.dir/memory_store.cc.o.d"
  "/root/repo/src/storage/page_directory.cc" "src/storage/CMakeFiles/khz_storage.dir/page_directory.cc.o" "gcc" "src/storage/CMakeFiles/khz_storage.dir/page_directory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/khz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
