# Empty compiler generated dependencies file for khz_kfs.
# This may be replaced when dependencies are built.
