file(REMOVE_RECURSE
  "libkhz_kfs.a"
)
