file(REMOVE_RECURSE
  "CMakeFiles/khz_kfs.dir/fs.cc.o"
  "CMakeFiles/khz_kfs.dir/fs.cc.o.d"
  "libkhz_kfs.a"
  "libkhz_kfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khz_kfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
