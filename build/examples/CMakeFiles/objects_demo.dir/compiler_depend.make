# Empty compiler generated dependencies file for objects_demo.
# This may be replaced when dependencies are built.
