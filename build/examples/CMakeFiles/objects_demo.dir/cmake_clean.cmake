file(REMOVE_RECURSE
  "CMakeFiles/objects_demo.dir/objects_demo.cpp.o"
  "CMakeFiles/objects_demo.dir/objects_demo.cpp.o.d"
  "objects_demo"
  "objects_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objects_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
