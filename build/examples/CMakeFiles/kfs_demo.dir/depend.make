# Empty dependencies file for kfs_demo.
# This may be replaced when dependencies are built.
