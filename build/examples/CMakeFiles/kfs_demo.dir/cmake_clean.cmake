file(REMOVE_RECURSE
  "CMakeFiles/kfs_demo.dir/kfs_demo.cpp.o"
  "CMakeFiles/kfs_demo.dir/kfs_demo.cpp.o.d"
  "kfs_demo"
  "kfs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
