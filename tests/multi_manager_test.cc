// Multiple cluster managers (paper, Section 3.1: "Each cluster has one or
// more designated cluster managers"). Hints replicate to every manager;
// address-space grants are partitioned so managers never collide; the
// cluster keeps reserving and resolving through a manager crash.
#include <gtest/gtest.h>

#include "core/client.h"

namespace khz::core {
namespace {

Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

TEST(MultiManagerTest, BothManagersAccumulateHints) {
  SimWorld world({.nodes = 4, .managers = 2});
  auto base = world.create_region(2, 4096);
  ASSERT_TRUE(base.ok());
  world.pump_for(1'000'000);
  EXPECT_FALSE(world.node(0).cluster_state().hint(base.value()).empty());
  EXPECT_FALSE(world.node(1).cluster_state().hint(base.value()).empty());
}

TEST(MultiManagerTest, GrantsFromDifferentManagersAreDisjoint) {
  SimWorld world({.nodes = 4, .managers = 2, .rpc_timeout = 50'000});
  // Force node 2 to get its chunk from the primary and node 3 from the
  // backup, by crashing the primary in between.
  auto a = world.reserve(2, 4096);
  ASSERT_TRUE(a.ok());
  world.net().set_node_up(0, false);
  auto b = world.reserve(3, 4096);
  ASSERT_TRUE(b.ok()) << to_string(b.error());
  world.net().set_node_up(0, true);

  // The two regions come from disjoint manager slabs.
  EXPECT_FALSE(AddressRange({a.value(), 1ull << 30})
                   .overlaps({b.value(), 1ull << 30}));
}

TEST(MultiManagerTest, ReserveSurvivesPrimaryManagerCrash) {
  SimWorld world({.nodes = 4, .managers = 2, .rpc_timeout = 50'000});
  world.net().set_node_up(0, false);
  auto base = world.reserve(3, 4096);
  ASSERT_TRUE(base.ok()) << to_string(base.error());
  ASSERT_TRUE(world.allocate(3, {base.value(), 4096}).ok());
  ASSERT_TRUE(world.put(3, {base.value(), 4096}, fill(4096, 7)).ok());
  // Another node resolves the region through the surviving manager.
  auto r = world.get(2, {base.value(), 4096});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
  EXPECT_EQ(r.value()[0], 7);
}

TEST(MultiManagerTest, HintQueryFallsOverToBackupManager) {
  SimWorld world({.nodes = 4, .managers = 2, .rpc_timeout = 50'000});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 3)).ok());
  world.pump_for(1'000'000);  // hints reach both managers

  world.net().set_node_up(0, false);  // primary manager (and genesis) down
  auto r = world.get(3, {base.value(), 4096});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
  EXPECT_EQ(r.value()[0], 3);
  EXPECT_GE(world.node(3).stats().resolve_manager_hits, 1u);
}

TEST(MultiManagerTest, SingleManagerConfigStillWorks) {
  SimWorld world({.nodes = 3, .managers = 1});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(2, {base.value(), 4096}, fill(4096, 1)).ok());
  EXPECT_EQ(world.get(0, {base.value(), 4096}).value()[0], 1);
}

TEST(MultiManagerTest, ManyReservationsAcrossManagersStayDisjoint) {
  SimWorld world({.nodes = 6, .managers = 3, .rpc_timeout = 50'000});
  std::vector<AddressRange> ranges;
  for (int i = 0; i < 12; ++i) {
    // Rotate which manager is reachable so grants come from all slabs.
    const NodeId down = static_cast<NodeId>(i % 3);
    world.net().set_node_up(down, false);
    const NodeId reserver = static_cast<NodeId>(3 + i % 3);
    auto base = world.reserve(reserver, 1 << 20);
    world.net().set_node_up(down, true);
    ASSERT_TRUE(base.ok()) << i;
    ranges.push_back({base.value(), 1 << 20});
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    for (std::size_t j = i + 1; j < ranges.size(); ++j) {
      EXPECT_FALSE(ranges[i].overlaps(ranges[j]))
          << ranges[i].str() << " vs " << ranges[j].str();
    }
  }
}

}  // namespace
}  // namespace khz::core
