// Soak tests: larger worlds, mixed protocols and workloads, background
// churn — the "whole system under sustained load" check, plus tests for
// the replicate_to client-guidance hook and transport resource leaks
// under reconnect churn.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <thread>

#include "core/client.h"
#include "kfs/fs.h"
#include "net/tcp_transport.h"

namespace khz::core {
namespace {

using consistency::LockMode;
using consistency::ProtocolId;

Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

TEST(ReplicateTo, GuidedPlacementMakesRemoteReadsLocal) {
  SimWorld world({.nodes = 4});
  auto base = world.create_region(0, 8192);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 8192}, fill(8192, 0x2A)).ok());

  // Guide Khazana: node 3 is about to start reading this region heavily.
  ASSERT_TRUE(world.replicate_to(1, base.value(), 3).ok());
  world.pump_for(500'000);

  // Node 3's first read is already local: zero messages.
  const auto before = world.net().stats().messages_sent;
  auto r = world.get(3, {base.value(), 8192});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 0x2A);
  EXPECT_EQ(world.net().stats().messages_sent, before);
}

TEST(ReplicateTo, GuidedCopyIsInvalidatedByLaterWrites) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 1)).ok());
  ASSERT_TRUE(world.replicate_to(0, base.value(), 2).ok());
  world.pump_for(500'000);

  // A write must invalidate the pushed copy like any other replica.
  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 2)).ok());
  auto r = world.get(2, {base.value(), 4096});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 2);
}

TEST(ReplicateTo, UnknownRegionFails) {
  SimWorld world({.nodes = 2});
  EXPECT_FALSE(world.replicate_to(1, GlobalAddress{9, 9}, 0).ok());
}

TEST(SoakTest, SixteenNodesMixedProtocolsAndWorkloads) {
  SimWorld world({.nodes = 16, .managers = 2});
  Rng rng(2026);

  struct Workload {
    AddressRange range;
    ProtocolId protocol;
    std::uint8_t last_written = 0;
  };
  std::vector<Workload> workloads;

  // One region per protocol class, several of each, spread over homes.
  const ProtocolId kinds[] = {ProtocolId::kCrew, ProtocolId::kRelease,
                              ProtocolId::kEventual};
  for (int i = 0; i < 12; ++i) {
    RegionAttrs attrs;
    attrs.protocol = kinds[i % 3];
    attrs.level = attrs.protocol == ProtocolId::kCrew
                      ? ConsistencyLevel::kStrict
                  : attrs.protocol == ProtocolId::kRelease
                      ? ConsistencyLevel::kRelaxed
                      : ConsistencyLevel::kEventual;
    attrs.min_replicas = 1 + i % 3;
    const auto home = static_cast<NodeId>(i % 16);
    auto base = world.create_region(home, 2 * 4096, attrs);
    ASSERT_TRUE(base.ok()) << i;
    workloads.push_back({{base.value(), 2 * 4096}, attrs.protocol, 0});
  }

  // Sustained mixed traffic from random nodes.
  for (int step = 0; step < 400; ++step) {
    auto& w = workloads[rng.below(workloads.size())];
    const auto node = static_cast<NodeId>(rng.below(16));
    if (rng.chance(0.4)) {
      const auto value = static_cast<std::uint8_t>(1 + rng.below(250));
      ASSERT_TRUE(world.put(node, w.range, fill(w.range.size, value)).ok())
          << "step " << step;
      w.last_written = value;
    } else {
      auto r = world.get(node, w.range);
      ASSERT_TRUE(r.ok()) << "step " << step;
      if (w.protocol == ProtocolId::kCrew && w.last_written != 0) {
        // Strict regions must always read the latest write.
        EXPECT_EQ(r.value()[0], w.last_written) << "step " << step;
      }
    }
    if (step % 50 == 0) world.pump_for(200'000);
  }

  // Once traffic stops: strict and release regions settle on the last
  // write; eventual regions settle on ONE value everywhere (last-writer-
  // wins by version stamp — a write through a stale replica can
  // legitimately lose, so chronological order is not the invariant).
  world.pump_for(5'000'000);
  for (auto& w : workloads) {
    if (w.last_written == 0) continue;
    if (w.protocol == ProtocolId::kEventual) {
      std::set<std::uint8_t> values;
      for (NodeId n : {0u, 5u, 10u, 15u}) {
        auto r = world.get(n, w.range);
        ASSERT_TRUE(r.ok());
        values.insert(r.value()[0]);
      }
      EXPECT_EQ(values.size(), 1u) << "eventual region diverged";
    } else {
      auto r = world.get(15, w.range);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value()[0], w.last_written)
          << "protocol " << static_cast<int>(w.protocol);
    }
  }
}

TEST(SoakTest, KfsUnderConcurrentMultiNodeUse) {
  SimWorld world({.nodes = 6});
  std::vector<SimClient> clients;
  for (NodeId n = 0; n < 6; ++n) clients.emplace_back(world, n);
  auto super = kfs::FileSystem::mkfs(clients[0]);
  ASSERT_TRUE(super.ok());
  std::vector<kfs::FileSystem> mounts;
  for (NodeId n = 0; n < 6; ++n) {
    auto fs = kfs::FileSystem::mount(clients[n], super.value());
    ASSERT_TRUE(fs.ok());
    mounts.push_back(std::move(fs.value()));
  }

  // Each node owns a directory and creates/writes files; everyone then
  // verifies everyone else's files.
  for (NodeId n = 0; n < 6; ++n) {
    const std::string dir = "/node" + std::to_string(n);
    ASSERT_TRUE(mounts[n].mkdir(dir).ok());
    for (int f = 0; f < 4; ++f) {
      const std::string path = dir + "/f" + std::to_string(f);
      auto fh = mounts[n].create(path);
      ASSERT_TRUE(fh.ok()) << path;
      ASSERT_TRUE(mounts[n]
                      .write(fh.value(), 0,
                             fill(2000, static_cast<std::uint8_t>(n * 4 + f)))
                      .ok());
    }
  }
  for (NodeId reader = 0; reader < 6; ++reader) {
    for (NodeId owner = 0; owner < 6; ++owner) {
      for (int f = 0; f < 4; ++f) {
        const std::string path =
            "/node" + std::to_string(owner) + "/f" + std::to_string(f);
        auto fh = mounts[reader].open(path);
        ASSERT_TRUE(fh.ok()) << path;
        auto r = mounts[reader].read(fh.value(), 0, 2000);
        ASSERT_TRUE(r.ok()) << path;
        EXPECT_EQ(r.value()[0], static_cast<std::uint8_t>(owner * 4 + f));
      }
    }
  }
  // Root directory lists all six subdirectories from every node.
  for (NodeId n = 0; n < 6; ++n) {
    auto entries = mounts[n].readdir("/");
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), 6u);
  }
}

// The pre-epoll transport spawned one reader thread per accepted
// connection and never reaped them, so peer restart churn grew a thread
// (and stack) per cycle forever. The epoll transport owns exactly two
// threads per endpoint regardless of churn; assert that, plus that the
// timer heap doesn't accumulate cancelled tombstones under a ping-loop
// style schedule/cancel pattern.
TEST(SoakTest, TcpReconnectChurnLeaksNoThreadsOrTimers) {
  const auto thread_count = [] {
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("Threads:", 0) == 0) return std::stoi(line.substr(8));
    }
    return -1;
  };

  net::TcpBus bus(44800);
  auto& a = bus.add_node(0);
  a.set_handler([](net::Message) {});
  std::atomic<int> got{0};

  int baseline = -1;
  for (int cycle = 0; cycle < 8; ++cycle) {
    auto& b = bus.add_node(1);
    b.set_handler([&](net::Message) { got.fetch_add(1); });
    // Drive traffic until at least one message of this cycle lands
    // (resending is fine: the transport is best-effort and sends during
    // reconnection races may be lost).
    const int want = got.load() + 1;
    for (int i = 0; i < 2000 && got.load() < want; ++i) {
      net::Message m;
      m.type = net::MsgType::kPing;
      m.dst = 1;
      a.send(std::move(m));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(got.load(), want) << "cycle " << cycle;
    bus.remove_node(1);  // joins the peer's threads deterministically
    if (cycle == 0) baseline = thread_count();
  }
  EXPECT_EQ(thread_count(), baseline) << "reconnect churn grew threads";

  // A long-running ping loop schedules and cancels constantly; the timer
  // heap must not accumulate the cancelled entries.
  for (int i = 0; i < 5000; ++i) {
    a.cancel(a.schedule(60'000'000, [] {}));
  }
  EXPECT_LT(a.pending_timers(), 10u);
}

TEST(SoakTest, RepeatedCrashRecoverCyclesWithPersistence) {
  const auto tmp = std::filesystem::temp_directory_path() / "khz_soak_crash";
  std::filesystem::remove_all(tmp);
  {
    SimWorld world({.nodes = 4, .disk_root = tmp});
    auto base = world.create_region(0, 4096);
    ASSERT_TRUE(base.ok());
    for (int cycle = 0; cycle < 5; ++cycle) {
      const auto value = static_cast<std::uint8_t>(cycle + 1);
      ASSERT_TRUE(world.put(0, {base.value(), 4096},
                            fill(4096, value)).ok())
          << cycle;
      world.restart_node(0);
      auto r = world.get(1, {base.value(), 4096});
      ASSERT_TRUE(r.ok()) << cycle;
      EXPECT_EQ(r.value()[0], value) << cycle;
      // Fresh lock traffic still works after each recovery.
      ASSERT_TRUE(world.get(3, {base.value(), 4096}).ok()) << cycle;
    }
  }
  std::filesystem::remove_all(tmp);
}

}  // namespace
}  // namespace khz::core
