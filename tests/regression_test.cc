// Regression tests pinning the protocol bugs found (and fixed) during
// development. Each test reproduces the exact scenario that exposed the
// bug; see the comment on each for the failure it guards against.
#include <gtest/gtest.h>

#include "core/client.h"
#include "kfs/fs.h"

namespace khz::core {
namespace {

using consistency::LockMode;

Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

Result<GlobalAddress> kfs_mkfs(SyncClient& c) {
  return kfs::FileSystem::mkfs(c);
}

TEST(Regression, HomeTransferInvalidatesHomesOwnCopy) {
  // Bug: when the home mediated an owner->owner transfer (kXferDone), it
  // left its own shared copy marked valid; a later reader AT THE HOME was
  // served the stale bytes. Scenario: region homed on node 2, writers
  // rotate, reader is the home itself.
  SimWorld world({.nodes = 5});
  auto base = world.create_region(2, 4096);
  ASSERT_TRUE(base.ok());
  for (int round = 0; round < 5; ++round) {
    const auto writer = static_cast<NodeId>(round % 5);
    const auto reader = static_cast<NodeId>((round + 3) % 5);
    const auto value = static_cast<std::uint8_t>(round * 11 + 1);
    ASSERT_TRUE(world.put(writer, {base.value(), 4096},
                          fill(4096, value)).ok());
    auto r = world.get(reader, {base.value(), 4096});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value()[0], value) << "round " << round;
  }
}

TEST(Regression, HomeServingReadersDemotesItsExclusiveState) {
  // Bug: the home served read copies while keeping its own state
  // Exclusive, so its next local write skipped invalidating the readers.
  // Scenario: home writes, remote reads, home writes again, remote must
  // see the second write.
  SimWorld world({.nodes = 2});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 1)).ok());
  ASSERT_TRUE(world.get(1, {base.value(), 4096}).ok());  // node 1 shares
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 2)).ok());
  auto r = world.get(1, {base.value(), 4096});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 2);
}

TEST(Regression, OwnerUpgradePathInvalidatesHomeCopy) {
  // Bug: when a downgraded former owner re-upgraded to write (home's
  // "owner == requester" fast path), the home kept its own shared copy
  // valid and later served the stale version. Scenario: remote writer,
  // home reads (downgrade gives home a copy), same writer writes again,
  // home reads again.
  SimWorld world({.nodes = 2});
  auto base = world.create_region(0, 4096);  // home = node 0
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 5)).ok());
  ASSERT_TRUE(world.get(0, {base.value(), 4096}).ok());  // downgrade
  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 6)).ok());
  auto r = world.get(0, {base.value(), 4096});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 6);
}

TEST(Regression, ReplicaMaintenanceDoesNotMaskWriteInvalidations) {
  // Bug chain: with min_replicas > 1, (a) the home pushed replicas but
  // stayed Exclusive, skipping invalidation on its next write, and
  // (b) ownership grants triggered premature re-replication of soon-stale
  // data that then filled the sharer set. Scenario: repeated writes at
  // the home of a replicated region, then a remote read.
  SimWorld world({.nodes = 5});
  RegionAttrs attrs;
  attrs.min_replicas = 3;
  auto base = world.create_region(1, 4096, attrs);
  ASSERT_TRUE(base.ok());
  for (std::uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(world.put(1, {base.value(), 4096},
                          fill(4096, static_cast<std::uint8_t>(0x50 + i)))
                    .ok());
  }
  world.pump_for(1'000'000);
  auto r = world.get(2, {base.value(), 4096});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 0x53);
}

TEST(Regression, KfsWriteVisibleRemotelyWithReplication) {
  // End-to-end shape of the same bug chain as observed through KFS: a
  // min_replicas=3 file written on one node read back empty on another.
  SimWorld world({.nodes = 5});
  SimClient c0(world, 0);
  SimClient c1(world, 1);
  SimClient c2(world, 2);
  auto super = kfs_mkfs(c0);
  ASSERT_TRUE(super.ok());
  auto fs1 = kfs::FileSystem::mount(c1, super.value());
  auto fs2 = kfs::FileSystem::mount(c2, super.value());
  ASSERT_TRUE(fs1.ok());
  ASSERT_TRUE(fs2.ok());
  kfs::FileOptions hot;
  hot.attrs.min_replicas = 3;
  auto fh = fs1.value().create("/config", hot);
  ASSERT_TRUE(fh.ok());
  const std::string text = "mode=distributed\n";
  ASSERT_TRUE(fs1.value()
                  .write(fh.value(), 0,
                         {reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size()})
                  .ok());
  auto st = fs2.value().stat("/config");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, text.size());
}

TEST(Regression, SelfRpcResponsesAreRoutable) {
  // Bug: messages delivered through the self-loopback path carried no
  // source id, so their responses went to kNoNode and every single-node
  // operation timed out. Scenario: any operation on a 1-node world.
  SimWorld world({.nodes = 1});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 1)).ok());
}

TEST(Regression, EventualColdFetchInstallsInitialVersion) {
  // Bug: a gossip reply carrying the page's initial version (stamp equal
  // to the receiver's default stamp) was discarded as "not newer", so
  // cold fetches under the eventual protocol spun until timeout.
  SimWorld world({.nodes = 3});
  RegionAttrs attrs;
  attrs.level = ConsistencyLevel::kEventual;
  auto base = world.create_region(0, 4096, attrs);
  ASSERT_TRUE(base.ok());
  // Cold read from a node that has never seen the page, before any write.
  auto r = world.get(2, {base.value(), 4096});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
}

TEST(Regression, DecoderNeverAllocatesFromWireCounts) {
  // Bug: RegionDescriptor::decode reserved a vector sized by an untrusted
  // wire count; fuzzed input triggered std::bad_alloc.
  Bytes junk(64, 0xFF);  // all counts read as huge values
  Decoder d(junk);
  (void)RegionDescriptor::decode(d);
  SUCCEED();
}

}  // namespace
}  // namespace khz::core
