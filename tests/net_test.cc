// Unit tests for src/net: message codec, the discrete-event simulator
// (latency, FIFO, drops, partitions, crashes, timers), and the real TCP
// transport.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "net/sim_network.h"
#include "net/tcp_transport.h"

namespace khz::net {
namespace {

Message make(MsgType type, NodeId dst, Bytes payload = {}, RpcId rpc = 0) {
  Message m;
  m.type = type;
  m.dst = dst;
  m.rpc_id = rpc;
  m.payload = std::move(payload);
  return m;
}

// ---------------------------------------------------------------------------
// Message codec
// ---------------------------------------------------------------------------

TEST(MessageCodec, RoundTrip) {
  Message m;
  m.type = MsgType::kPageFetchReq;
  m.src = 3;
  m.dst = 9;
  m.rpc_id = 0x1234567890ull;
  m.payload = {1, 2, 3, 4, 5};
  Message out;
  ASSERT_TRUE(Message::decode(m.encode(), out));
  EXPECT_EQ(out.type, m.type);
  EXPECT_EQ(out.src, m.src);
  EXPECT_EQ(out.dst, m.dst);
  EXPECT_EQ(out.rpc_id, m.rpc_id);
  EXPECT_EQ(out.payload, m.payload);
}

TEST(MessageCodec, RejectsTruncatedFrame) {
  Message m = make(MsgType::kPing, 1, Bytes(10, 7));
  Bytes wire = m.encode();
  wire.resize(wire.size() - 3);
  Message out;
  EXPECT_FALSE(Message::decode(wire, out));
}

TEST(MessageCodec, RejectsTrailingGarbage) {
  Message m = make(MsgType::kPing, 1);
  Bytes wire = m.encode();
  wire.push_back(0xFF);
  Message out;
  EXPECT_FALSE(Message::decode(wire, out));
}

class MessageTypeNames : public ::testing::TestWithParam<MsgType> {};

TEST_P(MessageTypeNames, HasName) {
  EXPECT_NE(to_string(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, MessageTypeNames,
    ::testing::Values(MsgType::kJoinReq, MsgType::kJoinResp,
                      MsgType::kNodeListGossip, MsgType::kReserveReq,
                      MsgType::kReserveResp, MsgType::kUnreserveReq,
                      MsgType::kUnreserveResp, MsgType::kSpaceReq,
                      MsgType::kSpaceResp, MsgType::kDescLookupReq,
                      MsgType::kDescLookupResp, MsgType::kHintQueryReq,
                      MsgType::kHintQueryResp, MsgType::kHintPublish,
                      MsgType::kClusterWalkReq, MsgType::kClusterWalkResp,
                      MsgType::kAllocReq, MsgType::kAllocResp,
                      MsgType::kFreeReq, MsgType::kFreeResp,
                      MsgType::kGetAttrReq, MsgType::kGetAttrResp,
                      MsgType::kSetAttrReq, MsgType::kSetAttrResp,
                      MsgType::kPageFetchReq, MsgType::kPageFetchResp,
                      MsgType::kReplicaPush, MsgType::kReplicaDrop,
                      MsgType::kCm, MsgType::kMapMutateReq,
                      MsgType::kMapMutateResp, MsgType::kLocateReq,
                      MsgType::kLocateResp, MsgType::kPing, MsgType::kPong,
                      MsgType::kObjInvokeReq, MsgType::kObjInvokeResp));

// ---------------------------------------------------------------------------
// SimNetwork
// ---------------------------------------------------------------------------

class SimNetTest : public ::testing::Test {
 protected:
  SimNetTest() : net_(42) {
    for (NodeId i = 0; i < 3; ++i) {
      auto& t = net_.add_node(i);
      t.set_handler([this, i](Message m) { received_[i].push_back(m); });
      transports_.push_back(&t);
    }
  }

  SimNetwork net_;
  std::vector<SimTransport*> transports_;
  std::map<NodeId, std::vector<Message>> received_;
};

TEST_F(SimNetTest, DeliversWithLatency) {
  net_.set_default_link({.latency = 500, .jitter = 0});
  transports_[0]->send(make(MsgType::kPing, 1));
  EXPECT_TRUE(received_[1].empty());
  net_.run();
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(net_.now(), 500);
  EXPECT_EQ(received_[1][0].src, 0u);
}

TEST_F(SimNetTest, PerLinkOverrideBeatsDefault) {
  net_.set_default_link({.latency = 100, .jitter = 0});
  net_.set_link(0, 2, {.latency = 10'000, .jitter = 0});
  transports_[0]->send(make(MsgType::kPing, 1));
  transports_[0]->send(make(MsgType::kPing, 2));
  net_.run();
  EXPECT_EQ(net_.now(), 10'000);  // last delivery on the slow link
}

TEST_F(SimNetTest, FifoPerDirectedPairEvenWithJitter) {
  net_.set_default_link({.latency = 100, .jitter = 90});
  for (std::uint8_t i = 0; i < 50; ++i) {
    transports_[0]->send(make(MsgType::kPing, 1, Bytes{i}));
  }
  net_.run();
  ASSERT_EQ(received_[1].size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(received_[1][i].payload[0], i);
  }
}

TEST_F(SimNetTest, BandwidthAddsSizeProportionalDelay) {
  net_.set_default_link(
      {.latency = 0, .jitter = 0, .bytes_per_micro = 1.0});
  transports_[0]->send(make(MsgType::kPing, 1, Bytes(1000, 0)));
  net_.run();
  EXPECT_GE(net_.now(), 1000);
}

TEST_F(SimNetTest, DropsToCrashedNode) {
  net_.set_node_up(1, false);
  transports_[0]->send(make(MsgType::kPing, 1));
  net_.run();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(SimNetTest, InFlightMessageToNodeThatCrashesIsLost) {
  net_.set_default_link({.latency = 1000, .jitter = 0});
  transports_[0]->send(make(MsgType::kPing, 1));
  // Crash after the send but before delivery.
  net_.set_node_up(1, false);
  net_.run();
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(SimNetTest, RestartedNodeReceivesAgain) {
  net_.set_node_up(1, false);
  transports_[0]->send(make(MsgType::kPing, 1));
  net_.run();
  net_.set_node_up(1, true);
  transports_[0]->send(make(MsgType::kPing, 1));
  net_.run();
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(SimNetTest, PartitionBlocksCrossTraffic) {
  net_.partition({0}, {1, 2});
  transports_[0]->send(make(MsgType::kPing, 1));
  transports_[1]->send(make(MsgType::kPing, 2));
  net_.run();
  EXPECT_TRUE(received_[1].empty());   // crossed the partition
  EXPECT_EQ(received_[2].size(), 1u);  // same side
  net_.clear_partitions();
  transports_[0]->send(make(MsgType::kPing, 1));
  net_.run();
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(SimNetTest, DropProbabilityLosesRoughlyThatFraction) {
  net_.set_default_link({.latency = 10, .jitter = 0, .drop_probability = 0.5});
  for (int i = 0; i < 1000; ++i) {
    transports_[0]->send(make(MsgType::kPing, 1));
  }
  net_.run();
  EXPECT_GT(received_[1].size(), 350u);
  EXPECT_LT(received_[1].size(), 650u);
}

TEST_F(SimNetTest, TimersFireInOrderAndAdvanceClock) {
  std::vector<int> order;
  transports_[0]->schedule(300, [&] { order.push_back(3); });
  transports_[0]->schedule(100, [&] { order.push_back(1); });
  transports_[0]->schedule(200, [&] { order.push_back(2); });
  net_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(net_.now(), 300);
}

TEST_F(SimNetTest, CancelledTimerDoesNotFire) {
  bool fired = false;
  const auto id = transports_[0]->schedule(100, [&] { fired = true; });
  transports_[0]->cancel(id);
  net_.run();
  EXPECT_FALSE(fired);
}

TEST_F(SimNetTest, CrashedNodesTimersAreSuppressed) {
  bool fired = false;
  transports_[1]->schedule(100, [&] { fired = true; });
  net_.set_node_up(1, false);
  net_.run();
  EXPECT_FALSE(fired);
}

TEST_F(SimNetTest, RunForStopsAtDeadline) {
  int count = 0;
  transports_[0]->schedule(100, [&] { ++count; });
  transports_[0]->schedule(10'000, [&] { ++count; });
  net_.run_for(1000);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(net_.now(), 1000);
}

TEST_F(SimNetTest, RunUntilStopsEarly) {
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    transports_[0]->schedule(100 * (i + 1), [&] { ++count; });
  }
  EXPECT_TRUE(net_.run_until([&] { return count >= 3; }));
  EXPECT_EQ(count, 3);
}

TEST_F(SimNetTest, StatsCountTypesAndBytes) {
  transports_[0]->send(make(MsgType::kPing, 1));
  transports_[0]->send(make(MsgType::kPong, 1));
  transports_[0]->send(make(MsgType::kPing, 2, Bytes(100, 0)));
  net_.run();
  const auto& s = net_.stats();
  EXPECT_EQ(s.messages_sent, 3u);
  EXPECT_EQ(s.messages_delivered, 3u);
  EXPECT_EQ(s.per_type.at(MsgType::kPing), 2u);
  EXPECT_EQ(s.per_type.at(MsgType::kPong), 1u);
  EXPECT_GT(s.bytes_sent, 100u);
}

TEST_F(SimNetTest, SameSeedSameSchedule) {
  // Two separately seeded networks with jitter produce identical
  // delivery times: the basis of reproducible benchmarks.
  auto run_once = [](std::uint64_t seed) {
    SimNetwork net(seed);
    std::vector<Micros> times;
    auto& a = net.add_node(0);
    auto& b = net.add_node(1);
    b.set_handler([&](Message) { times.push_back(net.now()); });
    a.set_handler([](Message) {});
    net.set_default_link({.latency = 100, .jitter = 50});
    for (int i = 0; i < 20; ++i) {
      Message m;
      m.type = MsgType::kPing;
      m.dst = 1;
      a.send(std::move(m));
    }
    net.run();
    return times;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

// ---------------------------------------------------------------------------
// TcpTransport (real sockets on localhost)
// ---------------------------------------------------------------------------

TEST(TcpTransportTest, SendReceiveRoundTrip) {
  TcpBus bus(41200);
  auto& a = bus.add_node(0);
  auto& b = bus.add_node(1);

  std::atomic<int> got{0};
  Message seen;
  std::mutex mu;
  b.set_handler([&](Message m) {
    std::lock_guard lk(mu);
    seen = std::move(m);
    got.fetch_add(1);
  });
  a.set_handler([](Message) {});

  Message m = make(MsgType::kPing, 1, Bytes{9, 8, 7}, 55);
  a.send(std::move(m));
  for (int i = 0; i < 200 && got.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(got.load(), 1);
  std::lock_guard lk(mu);
  EXPECT_EQ(seen.type, MsgType::kPing);
  EXPECT_EQ(seen.src, 0u);
  EXPECT_EQ(seen.rpc_id, 55u);
  EXPECT_EQ(seen.payload, (Bytes{9, 8, 7}));
}

TEST(TcpTransportTest, ManyMessagesArriveInOrder) {
  TcpBus bus(41300);
  auto& a = bus.add_node(0);
  auto& b = bus.add_node(1);
  std::atomic<int> count{0};
  std::vector<std::uint8_t> order;
  std::mutex mu;
  b.set_handler([&](Message m) {
    std::lock_guard lk(mu);
    order.push_back(m.payload[0]);
    count.fetch_add(1);
  });
  a.set_handler([](Message) {});
  for (std::uint8_t i = 0; i < 100; ++i) {
    a.send(make(MsgType::kPing, 1, Bytes{i}));
  }
  for (int i = 0; i < 400 && count.load() < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(count.load(), 100);
  std::lock_guard lk(mu);
  for (std::uint8_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(TcpTransportTest, TimersFireOnExecutor) {
  TcpBus bus(41400);
  auto& a = bus.add_node(0);
  a.set_handler([](Message) {});
  std::atomic<bool> fired{false};
  a.schedule(10'000, [&] { fired.store(true); });
  for (int i = 0; i < 200 && !fired.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fired.load());
}

TEST(TcpTransportTest, CancelledTimerIsSilent) {
  TcpBus bus(41500);
  auto& a = bus.add_node(0);
  a.set_handler([](Message) {});
  std::atomic<bool> fired{false};
  const auto id = a.schedule(50'000, [&] { fired.store(true); });
  a.cancel(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(fired.load());
}

TEST(TcpTransportTest, SendToDeadPeerIsBestEffort) {
  TcpBus bus(41600);
  auto& a = bus.add_node(0);
  a.set_handler([](Message) {});
  // Node 7 was never started; the send must not crash or block.
  a.send(make(MsgType::kPing, 7));
  SUCCEED();
}

// Regression: schedule() used to return timers_.back().id *after*
// std::push_heap had reordered the heap, so scheduling a sooner timer after
// a later one returned the LATER timer's id — and cancel() then silenced
// the wrong timer.
TEST(TcpTransportTest, ScheduleReturnsIdOfTheTimerJustScheduled) {
  TcpBus bus(44100);
  auto& a = bus.add_node(0);
  a.set_handler([](Message) {});
  std::atomic<bool> late_fired{false};
  std::atomic<bool> soon_fired{false};
  // The later timer first, then a sooner one: push_heap moves the sooner
  // timer to the heap front, leaving the later timer at back().
  const auto late_id = a.schedule(60'000'000, [&] { late_fired.store(true); });
  const auto soon_id = a.schedule(20'000, [&] { soon_fired.store(true); });
  EXPECT_NE(late_id, soon_id);
  a.cancel(soon_id);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(soon_fired.load());  // the buggy id would cancel late instead
  EXPECT_FALSE(late_fired.load());
  a.cancel(late_id);
}

TEST(TcpTransportTest, CancelPurgesTimerTombstones) {
  TcpBus bus(44200);
  auto& a = bus.add_node(0);
  a.set_handler([](Message) {});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(a.schedule(60'000'000, [] {}));
  }
  EXPECT_EQ(a.pending_timers(), 200u);
  for (const auto id : ids) a.cancel(id);
  // Lazy compaction must have reclaimed the cancelled entries rather than
  // leaving 200 tombstones until their distant fire time.
  EXPECT_EQ(a.pending_timers(), 0u);
}

/// A listening socket that accepts connections into its backlog but never
/// reads: connect() succeeds, then the tiny receive buffer fills and the
/// sender's frames back up — a "live but wedged" peer.
class Blackhole {
 public:
  explicit Blackhole(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    int tiny = 4096;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(fd_, 8);
  }
  ~Blackhole() { ::close(fd_); }

 private:
  int fd_;
};

TEST(TcpTransportTest, WedgedPeerDoesNotStallSendsToHealthyPeers) {
  TcpBus bus(44300);
  auto& a = bus.add_node(0);
  auto& b = bus.add_node(1);
  Blackhole wedged(bus.port_of(2));

  std::atomic<int> got{0};
  b.set_handler([&](Message) { got.fetch_add(1); });
  a.set_handler([](Message) {});

  // ~10 MB to the wedged peer: far more than its kernel buffers absorb,
  // so most of it must park in the per-peer write queue without blocking.
  for (int i = 0; i < 300; ++i) {
    a.send(make(MsgType::kPing, 2, Bytes(32 * 1024, 0xAB)));
  }
  // Healthy traffic right behind it must still flow promptly.
  for (std::uint8_t i = 0; i < 50; ++i) {
    a.send(make(MsgType::kPing, 1, Bytes{i}));
  }
  for (int i = 0; i < 1000 && got.load() < 50; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(got.load(), 50);
  const auto s = a.stats();
  EXPECT_GT(s.queued_bytes, 0u);  // the wedged peer's backlog is parked
  EXPECT_GT(s.peak_queued_bytes, 1u << 20);
}

TEST(TcpTransportTest, ReconnectsWithBackoffAfterPeerRestart) {
  TcpBus bus(44400);
  auto& a = bus.add_node(0);
  auto& b = bus.add_node(1);
  std::atomic<int> got{0};
  b.set_handler([&](Message) { got.fetch_add(1); });
  a.set_handler([](Message) {});

  a.send(make(MsgType::kPing, 1));
  for (int i = 0; i < 400 && got.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(got.load(), 1);

  // Kill the peer and let the EOF reach a's event loop.
  bus.remove_node(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Sends while the peer is down queue up and drive connect attempts that
  // fail (with backoff) until the peer returns.
  a.send(make(MsgType::kPing, 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_GE(a.stats().connect_failures, 1u);
  EXPECT_EQ(got.load(), 1);

  // Restart the peer: the queued frame must arrive via a fresh connection.
  std::atomic<int> got2{0};
  auto& b2 = bus.add_node(1);
  b2.set_handler([&](Message) { got2.fetch_add(1); });
  for (int i = 0; i < 1000 && got2.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(got2.load(), 1);
  const auto s = a.stats();
  EXPECT_GE(s.reconnects, 1u);
  EXPECT_GE(s.connects, 2u);
}

TEST(TcpTransportTest, StatsCountTraffic) {
  TcpBus bus(44500);
  auto& a = bus.add_node(0);
  auto& b = bus.add_node(1);
  std::atomic<int> got{0};
  b.set_handler([&](Message) { got.fetch_add(1); });
  a.set_handler([](Message) {});
  for (int i = 0; i < 10; ++i) {
    a.send(make(MsgType::kPing, 1, Bytes(100, 1)));
  }
  for (int i = 0; i < 400 && got.load() < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(got.load(), 10);
  const auto sa = a.stats();
  const auto sb = b.stats();
  EXPECT_EQ(sa.messages_sent, 10u);
  EXPECT_GT(sa.bytes_sent, 1000u);
  EXPECT_EQ(sa.connects, 1u);
  EXPECT_EQ(sa.frames_dropped, 0u);
  EXPECT_EQ(sb.messages_received, 10u);
  EXPECT_EQ(sb.bytes_received, sa.bytes_sent);
  EXPECT_EQ(sa.queued_bytes, 0u);
}

}  // namespace
}  // namespace khz::net
