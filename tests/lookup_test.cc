// Location-lookup tests (paper, Section 3.2): the three-level search —
// region-directory cache, cluster-manager hints, address-map tree walk —
// plus the cluster-walk fallback and stale-hint recovery.
#include <gtest/gtest.h>

#include "core/client.h"

namespace khz::core {
namespace {

using consistency::LockMode;

Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

TEST(LookupTest, FirstRemoteAccessUsesManagerHint) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());

  // Node 2 has never heard of the region: its resolve should hit the
  // cluster manager's hint cache (level 2), not the map walk.
  ASSERT_TRUE(world.get(2, {base.value(), 4096}).ok());
  EXPECT_EQ(world.node(2).stats().resolve_manager_hits, 1u);
  EXPECT_EQ(world.node(2).stats().resolve_map_walks, 0u);
}

TEST(LookupTest, SecondAccessHitsRegionDirectory) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.get(2, {base.value(), 4096}).ok());
  const auto walks_before = world.node(2).stats().resolve_manager_hits;
  ASSERT_TRUE(world.get(2, {base.value(), 4096}).ok());
  EXPECT_GE(world.node(2).stats().resolve_cache_hits, 1u);
  EXPECT_EQ(world.node(2).stats().resolve_manager_hits, walks_before);
}

TEST(LookupTest, MapWalkFindsRegionWhenManagerHintMisses) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  world.pump_for(500'000);  // let the map registration land

  // Erase the manager's hint state to force the level-3 tree walk.
  world.node(0).cluster_state().clear();
  ASSERT_TRUE(world.get(2, {base.value(), 4096}).ok());
  EXPECT_GE(world.node(2).stats().resolve_map_walks, 1u);
}

TEST(LookupTest, ClusterWalkRecoversWhenMapLags) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 2)).ok());
  world.pump_for(1'000'000);

  // Simulate a lagging/incomplete map and hint cache: both the manager's
  // hint state and the map entry vanish (e.g. the registration was lost).
  world.node(0).cluster_state().clear();
  ASSERT_TRUE(world.node(0).address_map()->erase(base.value()).ok());

  // Node 2's lookup: directory miss, manager-hint miss, map-walk miss —
  // then the cluster walk finds node 1 ("the region can still be located
  // using a cluster-walk algorithm").
  auto r = world.get(2, {base.value(), 4096});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
  EXPECT_EQ(r.value()[0], 2);
  EXPECT_GE(world.node(2).stats().resolve_cluster_walks, 1u);
}

TEST(LookupTest, StaleDirectoryEntryRecoversThroughNextCandidate) {
  SimWorld world({.nodes = 4});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 6)).ok());
  ASSERT_TRUE(world.get(3, {base.value(), 4096}).ok());

  // Poison node 3's cached descriptor with a wrong home. The stale home
  // responds not-found; the fallback path re-locates the region.
  auto stale = world.node(3).region_directory().lookup(base.value());
  ASSERT_TRUE(stale.has_value());
  stale->home_nodes = {2};  // wrong
  world.node(3).region_directory().insert(*stale);
  // Also invalidate its local page copy so the read needs the home again.
  world.node(3).page_info(base.value()).state =
      storage::PageState::kInvalid;
  world.node(3).storage().erase(base.value());

  auto r = world.get(3, {base.value(), 4096});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
  EXPECT_EQ(r.value()[0], 6);
}

TEST(LookupTest, ManyRegionsResolveCorrectlyAcrossHomes) {
  SimWorld world({.nodes = 4});
  struct Entry {
    GlobalAddress base;
    NodeId home;
    std::uint8_t tag;
  };
  std::vector<Entry> regions;
  for (int i = 0; i < 24; ++i) {
    const NodeId home = static_cast<NodeId>(i % 4);
    auto base = world.create_region(home, 4096);
    ASSERT_TRUE(base.ok()) << i;
    const auto tag = static_cast<std::uint8_t>(i + 1);
    ASSERT_TRUE(world.put(home, {base.value(), 4096}, fill(4096, tag)).ok());
    regions.push_back({base.value(), home, tag});
  }
  // Every node reads every region.
  for (NodeId reader = 0; reader < 4; ++reader) {
    for (const auto& e : regions) {
      auto r = world.get(reader, {e.base, 4096});
      ASSERT_TRUE(r.ok()) << "reader " << reader;
      EXPECT_EQ(r.value()[0], e.tag);
    }
  }
}

TEST(LookupTest, AddressMapRecordsEveryReservation) {
  SimWorld world({.nodes = 3});
  std::vector<GlobalAddress> bases;
  for (int i = 0; i < 10; ++i) {
    auto base = world.reserve(static_cast<NodeId>(i % 3), 1 << 20);
    ASSERT_TRUE(base.ok());
    bases.push_back(base.value());
  }
  world.pump_for(1'000'000);  // reliable map registrations land
  auto* map = world.node(0).address_map();
  ASSERT_NE(map, nullptr);
  for (const auto& b : bases) {
    EXPECT_TRUE(map->lookup(b).has_value()) << b.str();
  }
  // The bootstrap map region itself is recorded too.
  EXPECT_TRUE(map->lookup(kMapRegionBase).has_value());
}

TEST(LookupTest, UnreserveRemovesMapEntryEventually) {
  SimWorld world({.nodes = 2});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  world.pump_for(1'000'000);
  ASSERT_TRUE(world.node(0).address_map()->lookup(base.value()).has_value());
  ASSERT_TRUE(world.unreserve(1, base.value()).ok());
  world.pump_for(1'000'000);
  EXPECT_FALSE(
      world.node(0).address_map()->lookup(base.value()).has_value());
}

TEST(LookupTest, LargePageSizeRegionsLockWholePages) {
  SimWorld world({.nodes = 2});
  RegionAttrs attrs;
  attrs.page_size = 65536;  // 64 KiB pages (Section 2)
  auto base = world.create_region(0, 1 << 20, attrs);
  ASSERT_TRUE(base.ok());
  // A 1-byte lock spans exactly one 64 KiB page; data written under it is
  // visible remotely.
  ASSERT_TRUE(world.put(1, {base.value(), 65536}, fill(65536, 4)).ok());
  auto r = world.get(0, {base.value().plus(65000), 100});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 4);
}

TEST(LookupTest, PoolRefillComesFromClusterManagerInChunks) {
  SimWorld world({.nodes = 3});
  // First reserve triggers a 1 GiB chunk grant (Section 3.1); subsequent
  // reserves carve locally with no further SpaceReq traffic.
  auto b1 = world.reserve(1, 4096);
  ASSERT_TRUE(b1.ok());
  const auto space_reqs =
      world.net().stats().per_type[net::MsgType::kSpaceReq];
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(world.reserve(1, 4096).ok());
  }
  EXPECT_EQ(world.net().stats().per_type[net::MsgType::kSpaceReq],
            space_reqs);
}

TEST(LookupTest, HugeReservationGetsDedicatedChunk) {
  SimWorld world({.nodes = 2});
  const std::uint64_t size = 3ull << 30;  // 3 GiB > pool chunk
  auto base = world.reserve(1, size);
  ASSERT_TRUE(base.ok());
  // And it does not overlap a later normal reservation.
  auto other = world.reserve(1, 4096);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(AddressRange({base.value(), size})
                   .contains(other.value()));
}

}  // namespace
}  // namespace khz::core
