// Unit tests for region descriptors/attributes, the region-directory cache
// (Section 3.2) and cluster-manager state (Section 3.1).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/region.h"
#include "core/region_directory.h"

namespace khz::core {
namespace {

RegionDescriptor desc(std::uint64_t base, std::uint64_t size,
                      std::vector<NodeId> homes = {0}) {
  RegionDescriptor d;
  d.range = {{0, base}, size};
  d.home_nodes = std::move(homes);
  return d;
}

// ---------------------------------------------------------------------------
// Attributes / descriptors
// ---------------------------------------------------------------------------

TEST(RegionAttrs, EncodeDecodeRoundTrip) {
  RegionAttrs a;
  a.page_size = 65536;
  a.level = ConsistencyLevel::kEventual;
  a.protocol = consistency::ProtocolId::kEventual;
  a.acl = {.owner = 42, .world_read = true, .world_write = false};
  a.min_replicas = 3;

  Encoder e;
  a.encode(e);
  Decoder d(e.data());
  EXPECT_EQ(RegionAttrs::decode(d), a);
  EXPECT_TRUE(d.at_end());
}

TEST(RegionDescriptor, EncodeDecodeRoundTrip) {
  RegionDescriptor r = desc(123456, 789, {1, 2, 3});
  r.attrs.min_replicas = 2;
  r.allocated = true;

  Encoder e;
  r.encode(e);
  Decoder d(e.data());
  const RegionDescriptor back = RegionDescriptor::decode(d);
  EXPECT_EQ(back.range, r.range);
  EXPECT_EQ(back.attrs, r.attrs);
  EXPECT_EQ(back.home_nodes, r.home_nodes);
  EXPECT_EQ(back.allocated, r.allocated);
}

TEST(RegionDescriptor, PrimaryHomeAndAlternates) {
  RegionDescriptor r = desc(0, 100, {5, 7, 9});
  EXPECT_EQ(r.primary_home(), 5u);
  EXPECT_EQ(r.alternates(), (std::vector<NodeId>{7, 9}));
  RegionDescriptor none = desc(0, 100, {});
  EXPECT_EQ(none.primary_home(), kNoNode);
  EXPECT_TRUE(none.alternates().empty());
}

TEST(RegionDescriptor, PageOfAlignsWithinRegion) {
  RegionDescriptor r = desc(8192, 65536);
  r.attrs.page_size = 16384;
  EXPECT_EQ(r.page_of({0, 8192}), GlobalAddress(0, 8192));
  EXPECT_EQ(r.page_of({0, 8192 + 16383}), GlobalAddress(0, 8192));
  EXPECT_EQ(r.page_of({0, 8192 + 16384}), GlobalAddress(0, 8192 + 16384));
}

TEST(AccessControl, OwnerAlwaysAllowed) {
  const AccessControl acl{.owner = 7, .world_read = false,
                          .world_write = false};
  EXPECT_TRUE(acl.allows(7, false));
  EXPECT_TRUE(acl.allows(7, true));
  EXPECT_FALSE(acl.allows(8, false));
  EXPECT_FALSE(acl.allows(8, true));
}

TEST(AccessControl, WorldBitsGateOthers) {
  const AccessControl acl{.owner = 0, .world_read = true,
                          .world_write = false};
  EXPECT_TRUE(acl.allows(5, false));
  EXPECT_FALSE(acl.allows(5, true));
}

TEST(MapRegionDescriptor, WellKnownShape) {
  const RegionDescriptor d = map_region_descriptor(3);
  EXPECT_EQ(d.range.base, kMapRegionBase);
  EXPECT_EQ(d.range.size, kMapRegionSize);
  EXPECT_EQ(d.primary_home(), 3u);
  EXPECT_EQ(d.attrs.protocol, consistency::ProtocolId::kRelease);
  EXPECT_TRUE(d.allocated);
}

// ---------------------------------------------------------------------------
// RegionDirectory
// ---------------------------------------------------------------------------

TEST(RegionDirectory, LookupByInteriorAddress) {
  RegionDirectory dir;
  dir.insert(desc(1000, 500));
  EXPECT_TRUE(dir.lookup({0, 1000}).has_value());
  EXPECT_TRUE(dir.lookup({0, 1499}).has_value());
  EXPECT_FALSE(dir.lookup({0, 1500}).has_value());
  EXPECT_FALSE(dir.lookup({0, 999}).has_value());
}

TEST(RegionDirectory, InsertRefreshesExisting) {
  RegionDirectory dir;
  dir.insert(desc(0, 100, {1}));
  dir.insert(desc(0, 100, {2}));
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_EQ(dir.lookup({0, 0})->primary_home(), 2u);
}

TEST(RegionDirectory, InvalidateDropsCoveringEntry) {
  RegionDirectory dir;
  dir.insert(desc(0, 100));
  dir.invalidate({0, 50});
  EXPECT_FALSE(dir.lookup({0, 0}).has_value());
  // Invalidating a non-covered address is a no-op.
  dir.insert(desc(0, 100));
  dir.invalidate({0, 500});
  EXPECT_TRUE(dir.lookup({0, 0}).has_value());
}

TEST(RegionDirectory, LruEvictionAtCapacity) {
  RegionDirectory dir(3);
  dir.insert(desc(0, 10));
  dir.insert(desc(100, 10));
  dir.insert(desc(200, 10));
  (void)dir.lookup({0, 0});  // refresh the oldest
  dir.insert(desc(300, 10));  // evicts {100,10}
  EXPECT_TRUE(dir.lookup({0, 0}).has_value());
  EXPECT_FALSE(dir.lookup({0, 100}).has_value());
  EXPECT_TRUE(dir.lookup({0, 200}).has_value());
  EXPECT_TRUE(dir.lookup({0, 300}).has_value());
}

TEST(RegionDirectory, StatsCountHitsAndMisses) {
  RegionDirectory dir;
  dir.insert(desc(0, 10));
  (void)dir.lookup({0, 5});
  (void)dir.lookup({0, 50});
  EXPECT_EQ(dir.stats().hits, 1u);
  EXPECT_EQ(dir.stats().misses, 1u);
}

TEST(RegionDirectory, AdjacentRegionsResolveDistinctly) {
  RegionDirectory dir;
  dir.insert(desc(0, 100, {1}));
  dir.insert(desc(100, 100, {2}));
  EXPECT_EQ(dir.lookup({0, 99})->primary_home(), 1u);
  EXPECT_EQ(dir.lookup({0, 100})->primary_home(), 2u);
}

// ---------------------------------------------------------------------------
// ClusterState
// ---------------------------------------------------------------------------

TEST(ClusterState, PublishAndHint) {
  ClusterState cs;
  cs.publish({0, 1000}, 500, 3);
  cs.publish({0, 1000}, 500, 4);
  const auto nodes = cs.hint({0, 1200});
  EXPECT_EQ(nodes, (std::vector<NodeId>{3, 4}));
  EXPECT_TRUE(cs.hint({0, 1500}).empty());
  EXPECT_TRUE(cs.hint({0, 999}).empty());
}

TEST(ClusterState, RetractRemovesNodeThenEntry) {
  ClusterState cs;
  cs.publish({0, 0}, 100, 1);
  cs.publish({0, 0}, 100, 2);
  cs.retract({0, 0}, 1);
  EXPECT_EQ(cs.hint({0, 0}), (std::vector<NodeId>{2}));
  cs.retract({0, 0}, 2);
  EXPECT_TRUE(cs.hint({0, 0}).empty());
  EXPECT_EQ(cs.hint_count(), 0u);
}

TEST(ClusterState, FreeSpaceTracking) {
  ClusterState cs;
  cs.report_free_space(1, 1000);
  cs.report_free_space(2, 5000);
  cs.report_free_space(3, 200);
  EXPECT_EQ(cs.free_space_of(2), 5000u);
  EXPECT_EQ(cs.free_space_of(9), 0u);
  EXPECT_EQ(cs.best_pool_node(100), 2u);
  EXPECT_EQ(cs.best_pool_node(10000), std::nullopt);
}

TEST(ClusterState, FreeSpaceOffersExpire) {
  ClusterState cs;
  cs.set_free_space_ttl(1'000'000);
  cs.report_free_space(1, 5000, /*now=*/100);
  cs.report_free_space(2, 1000, /*now=*/900'000);
  // Within the TTL the biggest offer wins; once node 1's report ages out,
  // best_pool_node stops recommending it even though the record remains.
  EXPECT_EQ(cs.best_pool_node(100, /*now=*/500'000), 1u);
  EXPECT_EQ(cs.best_pool_node(100, /*now=*/1'500'000), 2u);
  EXPECT_EQ(cs.best_pool_node(100, /*now=*/3'000'000), std::nullopt);
  EXPECT_EQ(cs.free_space_of(1), 5000u);  // raw record is still readable
}

TEST(ClusterState, RetractNodeTombstonesEverywhere) {
  ClusterState cs;
  cs.publish({0, 0}, 100, 1, /*now=*/10);
  cs.publish({0, 0}, 100, 2, /*now=*/10);
  cs.publish({0, 200}, 100, 1, /*now=*/10);
  EXPECT_EQ(cs.retract_node(1, /*now=*/20), 2u);
  EXPECT_EQ(cs.hint({0, 0}), (std::vector<NodeId>{2}));
  EXPECT_TRUE(cs.hint({0, 200}).empty());
  // Tombstones survive as records so anti-entropy can propagate them.
  std::size_t tombstones = 0;
  for (const auto& e : cs.entries()) tombstones += e.retracted ? 1 : 0;
  EXPECT_EQ(tombstones, 2u);
}

TEST(ClusterState, MergeIsNewestWins) {
  ClusterState a;
  ClusterState b;
  a.publish({0, 0}, 100, 1, /*now=*/10);
  b.publish({0, 0}, 100, 1, /*now=*/10);
  b.retract({0, 0}, 1, /*now=*/50);  // newer tombstone on b
  a.publish({0, 400}, 100, 3, /*now=*/30);

  // b's newer tombstone wins on a; a's record for the other region is new
  // to b. After a full exchange both digests agree.
  EXPECT_EQ(a.merge(b.entries()), 1u);
  EXPECT_TRUE(a.hint({0, 0}).empty());
  EXPECT_EQ(b.merge(a.entries()), 1u);
  EXPECT_EQ(a.digest(), b.digest());

  // Replaying either side is idempotent.
  EXPECT_EQ(a.merge(b.entries()), 0u);
}

TEST(ClusterState, MergeNeverResurrectsDetectedFailure) {
  ClusterState local;
  ClusterState peer;
  local.publish({0, 0}, 100, 7, /*now=*/10);
  local.retract_node(7, /*now=*/20);
  peer.publish({0, 0}, 100, 7, /*now=*/90);  // stale optimism, newer stamp
  const auto is_down = [](NodeId n) { return n == 7; };
  local.merge(peer.entries(), is_down);
  EXPECT_TRUE(local.hint({0, 0}).empty());
}

TEST(ClusterState, DigestIsOrderIndependentAndStampSensitive) {
  ClusterState a;
  ClusterState b;
  a.publish({0, 0}, 100, 1, /*now=*/10);
  a.publish({0, 200}, 100, 2, /*now=*/20);
  b.publish({0, 200}, 100, 2, /*now=*/20);
  b.publish({0, 0}, 100, 1, /*now=*/10);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(ClusterState::digest_of(a.entries()), a.digest());
  b.publish({0, 0}, 100, 1, /*now=*/30);  // same record, newer stamp
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace khz::core
