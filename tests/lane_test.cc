// Parallel execution lanes (docs/architecture.md, threading model):
// region-to-lane routing stability across restart, cross-lane multi-page
// locking with rollback intact, lane-affine timers, the lanes=1
// byte-for-byte-legacy guarantee, per-lane telemetry, and a TcpWorld
// multi-lane smoke over real sockets and threads.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/lane.h"
#include "core/client.h"
#include "core/tcp_world.h"

namespace khz::core {
namespace {

using consistency::LockMode;

namespace fs = std::filesystem;

constexpr std::uint64_t kPage = 4096;

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i / kPage);
  }
  return b;
}

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("khz_lane_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

// ---------------------------------------------------------------------------
// lane_of unit behaviour
// ---------------------------------------------------------------------------

TEST(LaneOf, SingleLaneAndZeroKeyAlwaysLaneZero) {
  EXPECT_EQ(lane_of(0, 1), 0u);
  EXPECT_EQ(lane_of(0x1234, 1), 0u);
  EXPECT_EQ(lane_of(0, 8), 0u);  // key 0 = the map region, pinned to lane 0
}

TEST(LaneOf, DeterministicAndCoversAllLanes) {
  bool hit[8] = {};
  for (std::uint64_t k = 1; k < 4096; ++k) {
    const unsigned l = lane_of(k, 8);
    ASSERT_LT(l, 8u);
    EXPECT_EQ(l, lane_of(k, 8));  // stable
    hit[l] = true;
  }
  for (bool h : hit) EXPECT_TRUE(h);  // splitmix spreads across every lane
}

// ---------------------------------------------------------------------------
// Routing stability across restart
// ---------------------------------------------------------------------------

TEST(Lanes, RegionDataSurvivesRestartWithLanes) {
  // Region state recovered from the metadata journal must land on the same
  // lane that owned it before the crash (region_key hashes the base
  // address, so the mapping is a pure function of the address). A put
  // before the crash must be readable after reboot.
  TempDir tmp;
  SimWorld world({.nodes = 2,
                  .disk_root = tmp.path(),
                  .disk_pages = 512,
                  .lanes = 4});
  const std::uint64_t bytes = 4 * kPage;
  std::vector<GlobalAddress> bases;
  for (int i = 0; i < 6; ++i) {  // several regions → several lanes
    auto base = world.create_region(0, bytes);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(world.put(0, {base.value(), bytes},
                          pattern(bytes, static_cast<std::uint8_t>(i)))
                    .ok());
    bases.push_back(base.value());
  }
  world.restart_node(0);
  for (int i = 0; i < 6; ++i) {
    auto got = world.get(0, {bases[static_cast<std::size_t>(i)], bytes});
    ASSERT_TRUE(got.ok()) << "region " << i;
    EXPECT_EQ(got.value(), pattern(bytes, static_cast<std::uint8_t>(i)));
  }
}

// ---------------------------------------------------------------------------
// Cross-lane locking
// ---------------------------------------------------------------------------

TEST(Lanes, MultiPageLockAcrossManyRegionsAndLanes) {
  // Locks against regions owned by different lanes, issued from one
  // client entry point, must all complete: the entry hop posts onto each
  // region's lane and the continuation carries the deadline across.
  SimWorld world({.nodes = 3, .lanes = 4});
  const std::uint64_t bytes = 8 * kPage;
  for (int i = 0; i < 8; ++i) {
    auto base = world.create_region(static_cast<NodeId>(i % 3), bytes);
    ASSERT_TRUE(base.ok());
    auto lk = world.lock(2, {base.value(), bytes}, LockMode::kWrite);
    ASSERT_TRUE(lk.ok()) << "region " << i;
    ASSERT_TRUE(world
                    .write(2, lk.value(), 0,
                           pattern(bytes, static_cast<std::uint8_t>(i)))
                    .ok());
    world.unlock(2, lk.value());
    auto got = world.get(1, {base.value(), bytes});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), pattern(bytes, static_cast<std::uint8_t>(i)));
  }
}

TEST(Lanes, FailedLockRollsBackWithLanes) {
  // All-or-nothing multi-page acquisition still holds with lanes: a lock
  // spanning unreserved space fails and leaves nothing held, so a
  // follow-up lock of the valid prefix succeeds immediately.
  SimWorld world({.nodes = 2, .lanes = 4});
  const std::uint64_t bytes = 4 * kPage;
  auto base = world.create_region(0, bytes);
  ASSERT_TRUE(base.ok());
  auto bad = world.lock(1, {base.value(), 2 * bytes}, LockMode::kWrite);
  EXPECT_FALSE(bad.ok());
  auto good = world.lock(1, {base.value(), bytes}, LockMode::kWrite);
  ASSERT_TRUE(good.ok());
  world.unlock(1, good.value());
}

// ---------------------------------------------------------------------------
// Lane-affine timers
// ---------------------------------------------------------------------------

TEST(Lanes, TimerFiresOnOwningLane) {
  SimWorld world({.nodes = 1, .lanes = 4});
  auto* ep = world.net().endpoint(0);
  ASSERT_NE(ep, nullptr);
  unsigned fired_on = 99;
  ep->schedule_on(2, 10, [&] { fired_on = current_lane(); });
  world.pump_for(1000);
  EXPECT_EQ(fired_on, 2u);
}

// ---------------------------------------------------------------------------
// lanes=1 is byte-for-byte the legacy node
// ---------------------------------------------------------------------------

std::uint64_t run_workload_messages(unsigned lanes) {
  SimWorld world({.nodes = 3, .lanes = lanes});
  const std::uint64_t bytes = 8 * kPage;
  auto base = world.create_region(0, bytes);
  EXPECT_TRUE(base.ok());
  EXPECT_TRUE(world.put(1, {base.value(), bytes}, pattern(bytes, 7)).ok());
  auto got = world.get(2, {base.value(), bytes});
  EXPECT_TRUE(got.ok());
  EXPECT_TRUE(world.migrate(0, base.value(), 1).ok());
  EXPECT_TRUE(world.unreserve(2, base.value()).ok());
  return world.net().stats().messages_sent;
}

TEST(Lanes, LanesOneMatchesLegacyMessageForMessage) {
  // The whole lane machinery must vanish at lanes=1: same rpc ids, same
  // hops, same retries — so the exact same number of messages on the wire
  // as the pre-lane node for an identical deterministic workload.
  EXPECT_EQ(run_workload_messages(1), run_workload_messages(1));
  const std::uint64_t legacy = run_workload_messages(1);
  SimWorld defaulted({.nodes = 3});  // lanes unset = legacy default
  EXPECT_EQ(defaulted.node(0).lanes(), 1u);
  EXPECT_GT(legacy, 0u);
}

// ---------------------------------------------------------------------------
// Per-lane telemetry
// ---------------------------------------------------------------------------

TEST(Lanes, LaneTelemetryVisibleInMetrics) {
  SimWorld world({.nodes = 2, .lanes = 4});
  const std::uint64_t bytes = 4 * kPage;
  for (int i = 0; i < 6; ++i) {
    auto base = world.create_region(0, bytes);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(world.put(1, {base.value(), bytes}, pattern(bytes, 1)).ok());
  }
  const std::string json = world.metrics_json(0);
  EXPECT_NE(json.find("lane.depth.0"), std::string::npos);
  EXPECT_NE(json.find("lane.depth.3"), std::string::npos);
  EXPECT_NE(json.find("lane.dispatch_us"), std::string::npos);
  // Every queued continuation was dispatched: depth gauges are back to 0.
  for (unsigned l = 0; l < 4; ++l) {
    EXPECT_EQ(world.node(0)
                  .metrics()
                  .gauge("lane.depth." + std::to_string(l))
                  .value(),
              0);
  }
}

// ---------------------------------------------------------------------------
// TcpWorld: real threads, one executor per lane
// ---------------------------------------------------------------------------

TEST(Lanes, TcpWorldMultiLaneRoundTrip) {
  TcpWorld world({.nodes = 2, .base_port = 41200, .lanes = 2});
  TcpClient client(world, 0);
  const std::uint64_t bytes = 4 * kPage;
  for (int i = 0; i < 4; ++i) {
    auto base = client.reserve(bytes, {});
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(client.allocate({base.value(), bytes}).ok());
    auto lk = client.lock({base.value(), bytes}, LockMode::kWrite);
    ASSERT_TRUE(lk.ok());
    const Bytes data = pattern(bytes, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(client.write(lk.value(), 0, data).ok());
    auto got = client.read(lk.value(), 0, bytes);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), data);
    client.unlock(lk.value());
  }
}

}  // namespace
}  // namespace khz::core
