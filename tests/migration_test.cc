// Region home migration tests: the directory authority, descriptor and
// resident copies move; the address never changes; stale descriptors
// elsewhere recover through the normal bounce + re-resolve path.
#include <gtest/gtest.h>

#include "core/client.h"

namespace khz::core {
namespace {

using consistency::LockMode;

Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

TEST(MigrationTest, DataSurvivesAndNewHomeServes) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(0, 8192);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 8192}, fill(8192, 0x3C)).ok());

  ASSERT_TRUE(world.migrate(0, base.value(), 2).ok());
  world.pump_for(1'000'000);

  // The new home answers descriptor lookups.
  auto attrs = world.getattr(1, base.value());
  ASSERT_TRUE(attrs.ok());
  // And the data is intact, served by node 2.
  auto r = world.get(1, {base.value(), 8192});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
  EXPECT_EQ(r.value()[0], 0x3C);
  EXPECT_EQ(r.value()[8191], 0x3C);
}

TEST(MigrationTest, OldHomeCanDieAfterMigration) {
  SimWorld world({.nodes = 3, .rpc_timeout = 50'000});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 0x77)).ok());
  ASSERT_TRUE(world.migrate(1, base.value(), 2).ok());
  world.pump_for(1'000'000);

  world.net().set_node_up(1, false);
  auto r = world.get(0, {base.value(), 4096});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
  EXPECT_EQ(r.value()[0], 0x77);
}

TEST(MigrationTest, WritesWorkAtNewHome) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 1)).ok());
  ASSERT_TRUE(world.migrate(0, base.value(), 1).ok());
  world.pump_for(1'000'000);

  ASSERT_TRUE(world.put(2, {base.value(), 4096}, fill(4096, 2)).ok());
  auto r = world.get(1, {base.value(), 4096});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 2);
}

TEST(MigrationTest, StaleCachedDescriptorRecovers) {
  SimWorld world({.nodes = 4});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 9)).ok());
  // Node 3 caches the descriptor (home = 0) and the page.
  ASSERT_TRUE(world.get(3, {base.value(), 4096}).ok());

  ASSERT_TRUE(world.migrate(0, base.value(), 2).ok());
  world.pump_for(1'000'000);
  // Invalidate node 3's page copy so its next read must contact a home —
  // using its stale cached descriptor that still names node 0.
  world.node(3).page_info(base.value()).state =
      storage::PageState::kInvalid;
  world.node(3).storage().erase(base.value());

  ASSERT_TRUE(world.put(1, {base.value(), 4096}, fill(4096, 10)).ok());
  auto r = world.get(3, {base.value(), 4096});
  ASSERT_TRUE(r.ok()) << to_string(r.error());
  EXPECT_EQ(r.value()[0], 10);
}

TEST(MigrationTest, RefusedWhileLockedLocally) {
  SimWorld world({.nodes = 2});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  auto ctx = world.lock(0, {base.value(), 4096}, LockMode::kWrite);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(world.migrate(0, base.value(), 1).error(),
            ErrorCode::kConflict);
  world.unlock(0, ctx.value());
  EXPECT_TRUE(world.migrate(0, base.value(), 1).ok());
}

TEST(MigrationTest, ErrorsForUnknownRegionOrNonBase) {
  SimWorld world({.nodes = 2});
  auto base = world.create_region(0, 8192);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(world.migrate(0, GlobalAddress{7, 7}, 1).ok());
  EXPECT_EQ(world.migrate(0, base.value().plus(4096), 1).error(),
            ErrorCode::kBadArgument);
}

TEST(MigrationTest, MigrateToSelfIsNoOp) {
  SimWorld world({.nodes = 2});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 5)).ok());
  EXPECT_TRUE(world.migrate(0, base.value(), 0).ok());
  EXPECT_EQ(world.get(1, {base.value(), 4096}).value()[0], 5);
}

TEST(MigrationTest, ChainOfMigrationsKeepsDataReachable) {
  SimWorld world({.nodes = 4});
  auto base = world.create_region(0, 4096);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(world.put(0, {base.value(), 4096}, fill(4096, 0xC0)).ok());
  for (NodeId target : {1u, 2u, 3u, 0u}) {
    ASSERT_TRUE(world.migrate(0, base.value(), target).ok()) << target;
    world.pump_for(1'000'000);
    auto r = world.get((target + 1) % 4, {base.value(), 4096});
    ASSERT_TRUE(r.ok()) << "after migrating to " << target;
    EXPECT_EQ(r.value()[0], 0xC0);
  }
}

TEST(MigrationTest, AddressMapTracksNewHome) {
  SimWorld world({.nodes = 3});
  auto base = world.create_region(1, 4096);
  ASSERT_TRUE(base.ok());
  world.pump_for(1'000'000);
  ASSERT_TRUE(world.migrate(1, base.value(), 2).ok());
  world.pump_for(1'000'000);
  auto entry = world.node(0).address_map()->lookup(base.value());
  ASSERT_TRUE(entry.has_value());
  ASSERT_FALSE(entry->homes.empty());
  EXPECT_EQ(entry->homes.front(), 2u);
}

}  // namespace
}  // namespace khz::core
