// Unit tests for src/common: 128-bit addresses, serialization, results,
// deterministic RNG.
#include <gtest/gtest.h>

#include "common/global_address.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace khz {
namespace {

// ---------------------------------------------------------------------------
// GlobalAddress
// ---------------------------------------------------------------------------

TEST(GlobalAddress, PlusCarriesIntoHighWord) {
  const GlobalAddress a{0, ~0ull};
  const GlobalAddress b = a.plus(1);
  EXPECT_EQ(b.hi, 1u);
  EXPECT_EQ(b.lo, 0u);
}

TEST(GlobalAddress, MinusBorrowsFromHighWord) {
  const GlobalAddress a{1, 0};
  const GlobalAddress b = a.minus(1);
  EXPECT_EQ(b.hi, 0u);
  EXPECT_EQ(b.lo, ~0ull);
}

TEST(GlobalAddress, PlusMinusRoundTrip) {
  const GlobalAddress a{7, 0xdeadbeefull};
  for (std::uint64_t d : {0ull, 1ull, 4096ull, ~0ull >> 1}) {
    EXPECT_EQ(a.plus(d).minus(d), a) << d;
  }
}

TEST(GlobalAddress, OrderingIsLexicographic) {
  EXPECT_LT(GlobalAddress(0, ~0ull), GlobalAddress(1, 0));
  EXPECT_LT(GlobalAddress(1, 5), GlobalAddress(1, 6));
  EXPECT_EQ(GlobalAddress(2, 3), GlobalAddress(2, 3));
}

TEST(GlobalAddress, PageFloorAndCeil) {
  const GlobalAddress a{0, 10000};
  EXPECT_EQ(a.page_floor(4096).lo, 8192u);
  EXPECT_EQ(a.page_ceil(4096).lo, 12288u);
  const GlobalAddress aligned{0, 8192};
  EXPECT_EQ(aligned.page_floor(4096).lo, 8192u);
  EXPECT_EQ(aligned.page_ceil(4096).lo, 8192u);
}

TEST(GlobalAddress, PageFloorCrossingWordBoundary) {
  // An address just above a 2^64 boundary must floor within the high page.
  const GlobalAddress a{1, 100};
  const GlobalAddress f = a.page_floor(4096);
  EXPECT_EQ(f.hi, 1u);
  EXPECT_EQ(f.lo, 0u);
}

TEST(GlobalAddress, DistanceTo) {
  const GlobalAddress a{0, 1000};
  EXPECT_EQ(a.distance_to(a.plus(42)), 42u);
}

TEST(GlobalAddress, StrParseRoundTrip) {
  const GlobalAddress a{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const auto parsed = GlobalAddress::parse(a.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(GlobalAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(GlobalAddress::parse("not an address").has_value());
  EXPECT_FALSE(GlobalAddress::parse("").has_value());
}

TEST(GlobalAddress, HashSpreadsDistinctAddresses) {
  std::hash<GlobalAddress> h;
  std::set<std::size_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    values.insert(h(GlobalAddress{0, i * 4096}));
  }
  EXPECT_GT(values.size(), 990u);  // near-perfect for page-strided keys
}

// ---------------------------------------------------------------------------
// AddressRange
// ---------------------------------------------------------------------------

TEST(AddressRange, ContainsAndEnd) {
  const AddressRange r{{0, 100}, 50};
  EXPECT_TRUE(r.contains({0, 100}));
  EXPECT_TRUE(r.contains({0, 149}));
  EXPECT_FALSE(r.contains({0, 150}));
  EXPECT_FALSE(r.contains({0, 99}));
  EXPECT_EQ(r.end(), GlobalAddress(0, 150));
}

TEST(AddressRange, OverlapsIsSymmetricAndExclusive) {
  const AddressRange a{{0, 0}, 100};
  const AddressRange b{{0, 100}, 100};  // adjacent, no overlap
  const AddressRange c{{0, 50}, 100};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(a));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(AddressRange, ContainsRange) {
  const AddressRange big{{0, 0}, 1000};
  EXPECT_TRUE(big.contains_range({{0, 0}, 1000}));
  EXPECT_TRUE(big.contains_range({{0, 500}, 500}));
  EXPECT_FALSE(big.contains_range({{0, 500}, 501}));
}

class RangeOverlapSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(RangeOverlapSweep, MatchesIntervalArithmetic) {
  const auto [a0, alen, b0, blen] = GetParam();
  const AddressRange a{{0, static_cast<std::uint64_t>(a0)},
                       static_cast<std::uint64_t>(alen)};
  const AddressRange b{{0, static_cast<std::uint64_t>(b0)},
                       static_cast<std::uint64_t>(blen)};
  const bool expect = a0 < b0 + blen && b0 < a0 + alen;
  EXPECT_EQ(a.overlaps(b), expect);
  EXPECT_EQ(b.overlaps(a), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RangeOverlapSweep,
    ::testing::Combine(::testing::Values(0, 5, 10), ::testing::Values(1, 5),
                       ::testing::Values(0, 4, 5, 9, 10, 15),
                       ::testing::Values(1, 5)));

// ---------------------------------------------------------------------------
// Result / Status
// ---------------------------------------------------------------------------

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.error(), ErrorCode::kOk);

  Result<int> bad(ErrorCode::kTimeout);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), ErrorCode::kTimeout);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e(ErrorCode::kNoSpace);
  EXPECT_FALSE(e.ok());
}

TEST(ErrorCodeNames, AllDistinctAndNonEmpty) {
  std::set<std::string_view> names;
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    const auto name = to_string(static_cast<ErrorCode>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

// ---------------------------------------------------------------------------
// Encoder / Decoder
// ---------------------------------------------------------------------------

TEST(Serialize, PrimitiveRoundTrip) {
  Encoder e;
  e.u8(0xAB);
  e.u16(0xCDEF);
  e.u32(0x12345678);
  e.u64(0x1122334455667788ull);
  e.i64(-42);
  e.boolean(true);
  e.addr({3, 4});
  e.range({{5, 6}, 7});
  e.str("hello");
  e.bytes(Bytes{1, 2, 3});

  Decoder d(e.data());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u16(), 0xCDEF);
  EXPECT_EQ(d.u32(), 0x12345678u);
  EXPECT_EQ(d.u64(), 0x1122334455667788ull);
  EXPECT_EQ(d.i64(), -42);
  EXPECT_TRUE(d.boolean());
  EXPECT_EQ(d.addr(), GlobalAddress(3, 4));
  const AddressRange r = d.range();
  EXPECT_EQ(r.base, GlobalAddress(5, 6));
  EXPECT_EQ(r.size, 7u);
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(d.at_end());
}

TEST(Serialize, TruncatedBufferSetsErrorNotCrash) {
  Encoder e;
  e.u64(12345);
  Bytes data = e.data();
  data.resize(4);  // cut the u64 in half
  Decoder d(data);
  (void)d.u64();
  EXPECT_FALSE(d.ok());
  // Further reads keep returning zero values without touching memory.
  EXPECT_EQ(d.u32(), 0u);
  EXPECT_TRUE(d.bytes().empty());
}

TEST(Serialize, OversizedLengthPrefixIsRejected) {
  Encoder e;
  e.u32(0xFFFFFFFF);  // blob claims 4 GiB
  Decoder d(e.data());
  EXPECT_TRUE(d.bytes().empty());
  EXPECT_FALSE(d.ok());
}

TEST(Serialize, EmptyStringAndBlob) {
  Encoder e;
  e.str("");
  e.bytes({});
  Decoder d(e.data());
  EXPECT_EQ(d.str(), "");
  EXPECT_TRUE(d.bytes().empty());
  EXPECT_TRUE(d.at_end());
}

TEST(Serialize, RestReturnsUndecodedTail) {
  Encoder e;
  e.u8(1);
  e.u8(2);
  e.u8(3);
  Decoder d(e.data());
  (void)d.u8();
  EXPECT_EQ(d.rest().size(), 2u);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace khz
